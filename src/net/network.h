// Simulated cluster network. Each node has a full-duplex NIC whose egress is
// modeled as a FIFO transmission queue with fixed bandwidth (1 Gbps default,
// matching the paper's testbed); delivery adds a propagation delay.
// Same-node delivery bypasses the NIC and costs only an IPC handoff.
//
// All bytes are attributed to a Purpose so experiments can report, e.g., the
// "state migration rate" and "remote data transfer rate" of Table 2.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.h"  // NodeId.
#include "exec/execution_backend.h"
#include "sim/time.h"

namespace elasticutor {

enum class Purpose : int {
  kInterOperator = 0,  // Tuples between operators (receiver->receiver).
  kRemoteTask = 1,     // Main process <-> remote tasks of an elastic executor.
  kStateMigration = 2, // Shard state: migration chunks, blobs, dirty deltas.
  kControl = 3,        // Scheduler / repartitioning coordination.
  kStateAccess = 4,    // External-KV backend per-tuple read/write RPCs.
  kCount = 5,
};

struct NetworkConfig {
  double bandwidth_bytes_per_sec = 125e6;  // 1 Gbps Ethernet.
  SimDuration propagation_ns = Micros(200);
  SimDuration intra_node_ns = Micros(30);  // In-process / loopback handoff.
  int64_t per_message_overhead_bytes = 64; // Framing + headers.
};

class Network {
 public:
  Network(exec::ExecutionBackend* exec, int num_nodes, NetworkConfig config);

  /// Sends `bytes` from `src` to `dst`; `deliver` runs at the destination
  /// when the message arrives. Per-(src,dst) FIFO ordering is guaranteed
  /// (egress serialization is monotone), which the shard-reassignment
  /// labeling protocol relies on.
  ///
  /// Templated on the callable so the delivery wrapper captures the
  /// concrete closure (not a type-erased EventFn whose footprint is always
  /// kInlineBytes): per-tuple delivery closures stay within EventFn's
  /// inline storage and the hot path schedules without allocating.
  template <typename F>
  void Send(NodeId src, NodeId dst, int64_t bytes, Purpose purpose,
            F deliver) {
    SimTime arrive = AdmitMessage(src, dst, bytes, purpose);
    exec_->At(arrive, Delivery<F>{this, std::move(deliver)});
  }

  /// Request/response helper: `at_dst` runs when the request arrives (after
  /// `handler_delay`), then a response of `resp_bytes` is sent back and
  /// `reply_at_src` runs at the source.
  void Rpc(NodeId src, NodeId dst, int64_t req_bytes, int64_t resp_bytes,
           SimDuration handler_delay, EventFn at_dst, EventFn reply_at_src);

  /// Inter-node bytes sent for a purpose (excludes same-node traffic).
  int64_t inter_node_bytes(Purpose purpose) const {
    return inter_bytes_[static_cast<int>(purpose)];
  }
  /// Same-node bytes for a purpose.
  int64_t intra_node_bytes(Purpose purpose) const {
    return intra_bytes_[static_cast<int>(purpose)];
  }
  int64_t total_inter_node_bytes() const;
  int64_t messages_sent() const { return messages_sent_; }
  int64_t messages_delivered() const { return messages_delivered_; }

  /// Earliest time node's egress is free (diagnostics / tests).
  SimTime egress_free_at(NodeId node) const { return egress_free_at_.at(node); }

  const NetworkConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(egress_free_at_.size()); }

  /// Resets byte/message counters (not in-flight traffic). Benches call this
  /// after warm-up.
  void ResetCounters();

  // ---- Fault-injection hooks (scenario layer) ----
  /// Multiplier on the node's effective egress bandwidth (1 = nominal,
  /// 0.1 = a NIC degraded to 10%). Applies to messages serialized after the
  /// call; in-flight transmissions keep their original timing.
  void SetEgressBandwidthFactor(NodeId node, double factor);
  double egress_bandwidth_factor(NodeId node) const {
    return egress_factor_.at(node);
  }
  /// Extra one-way delay added to every message the node sends or receives
  /// (models a flapping/congested NIC rather than a slow link).
  void SetExtraDelay(NodeId node, SimDuration extra);
  SimDuration extra_delay(NodeId node) const { return extra_delay_.at(node); }

 private:
  template <typename F>
  struct Delivery {
    Network* net;
    F fn;
    void operator()() {
      ++net->messages_delivered_;
      fn();
    }
  };

  /// Serializes the message on the egress model and returns its arrival
  /// time; updates byte/message counters and the per-channel FIFO floor.
  SimTime AdmitMessage(NodeId src, NodeId dst, int64_t bytes, Purpose purpose);

  exec::ExecutionBackend* exec_;
  NetworkConfig config_;
  std::vector<SimTime> egress_free_at_;
  std::vector<double> egress_factor_;
  std::vector<SimDuration> extra_delay_;
  // Per-(src,dst) arrival floor: keeps delivery FIFO per channel even when
  // SetExtraDelay shrinks mid-flight (the labeling protocol depends on it).
  std::vector<std::vector<SimTime>> last_arrival_;
  std::array<int64_t, static_cast<int>(Purpose::kCount)> inter_bytes_{};
  std::array<int64_t, static_cast<int>(Purpose::kCount)> intra_bytes_{};
  int64_t messages_sent_ = 0;
  int64_t messages_delivered_ = 0;
};

}  // namespace elasticutor
