#include "net/network.h"

#include <algorithm>

#include "common/status.h"

namespace elasticutor {

Network::Network(exec::ExecutionBackend* exec, int num_nodes,
                 NetworkConfig config)
    : exec_(exec),
      config_(config),
      egress_free_at_(num_nodes, 0),
      egress_factor_(num_nodes, 1.0),
      extra_delay_(num_nodes, 0),
      last_arrival_(num_nodes, std::vector<SimTime>(num_nodes, 0)) {
  ELASTICUTOR_CHECK(num_nodes > 0);
  ELASTICUTOR_CHECK(config_.bandwidth_bytes_per_sec > 0);
}

void Network::SetEgressBandwidthFactor(NodeId node, double factor) {
  ELASTICUTOR_CHECK_MSG(factor > 0.0, "egress bandwidth factor must be > 0");
  egress_factor_.at(node) = factor;
}

void Network::SetExtraDelay(NodeId node, SimDuration extra) {
  ELASTICUTOR_CHECK_MSG(extra >= 0, "extra delay must be >= 0");
  extra_delay_.at(node) = extra;
}

SimTime Network::AdmitMessage(NodeId src, NodeId dst, int64_t bytes,
                              Purpose purpose) {
  ELASTICUTOR_CHECK(bytes >= 0);
  ++messages_sent_;
  if (src == dst) {
    intra_bytes_[static_cast<int>(purpose)] += bytes;
    return exec_->now() + config_.intra_node_ns;
  }
  int64_t wire_bytes = bytes + config_.per_message_overhead_bytes;
  inter_bytes_[static_cast<int>(purpose)] += wire_bytes;
  double tx_seconds = static_cast<double>(wire_bytes) /
                      (config_.bandwidth_bytes_per_sec * egress_factor_[src]);
  SimDuration tx = static_cast<SimDuration>(tx_seconds * 1e9);
  SimTime start = std::max(exec_->now(), egress_free_at_[src]);
  SimTime tx_done = start + tx;
  egress_free_at_[src] = tx_done;
  SimTime arrive = tx_done + config_.propagation_ns + extra_delay_[src] +
                   extra_delay_[dst];
  arrive = std::max(arrive, last_arrival_[src][dst]);
  last_arrival_[src][dst] = arrive;
  return arrive;
}

void Network::Rpc(NodeId src, NodeId dst, int64_t req_bytes,
                  int64_t resp_bytes, SimDuration handler_delay,
                  EventFn at_dst, EventFn reply_at_src) {
  Send(src, dst, req_bytes, Purpose::kControl,
       [this, src, dst, resp_bytes, handler_delay, at_dst = std::move(at_dst),
        reply = std::move(reply_at_src)]() mutable {
         if (at_dst) at_dst();
         exec_->After(handler_delay, [this, src, dst, resp_bytes,
                                      reply = std::move(reply)]() mutable {
           Send(dst, src, resp_bytes, Purpose::kControl, std::move(reply));
         });
       });
}

int64_t Network::total_inter_node_bytes() const {
  int64_t total = 0;
  for (int64_t b : inter_bytes_) total += b;
  return total;
}

void Network::ResetCounters() {
  inter_bytes_.fill(0);
  intra_bytes_.fill(0);
  messages_sent_ = 0;
  messages_delivered_ = 0;
}

}  // namespace elasticutor
