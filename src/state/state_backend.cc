#include "state/state_backend.h"

#include "net/network.h"

namespace elasticutor {

const char* StateBackendName(StateBackendKind kind) {
  switch (kind) {
    case StateBackendKind::kLocalShared:
      return "local-shared";
    case StateBackendKind::kAlwaysMigrate:
      return "always-migrate";
    case StateBackendKind::kExternalKv:
      return "external-kv";
  }
  return "?";
}

const char* MigrationStrategyName(MigrationStrategy strategy) {
  switch (strategy) {
    case MigrationStrategy::kSyncBlob:
      return "sync-blob";
    case MigrationStrategy::kChunkedLive:
      return "chunked-live";
  }
  return "?";
}

ProcessStateStore* LocalSharedBackend::AddProcess(NodeId node) {
  return &stores_[node];
}

void LocalSharedBackend::RemoveProcess(NodeId node) {
  auto it = stores_.find(node);
  if (it == stores_.end()) return;
  ELASTICUTOR_CHECK_MSG(it->second.num_shards() == 0,
                        "process store torn down with shards inside");
  stores_.erase(it);
}

ProcessStateStore* LocalSharedBackend::store(NodeId node) {
  auto it = stores_.find(node);
  ELASTICUTOR_CHECK_MSG(it != stores_.end(), "no process on node");
  return &it->second;
}

int64_t LocalSharedBackend::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [node, store] : stores_) total += store.TotalBytes();
  return total;
}

SimDuration ExternalKvBackend::OnTupleAccess(NodeId task_node) {
  if (net_ != nullptr) {
    // Read request + write payload toward the store, then the read value +
    // write ack back. The response is chained on the request's delivery so
    // the store's egress is consumed at the physically right time; the
    // fixed per-access latency below stands in for the full round trips so
    // the data path stays synchronous.
    Network* net = net_;
    NodeId home = home_;
    int64_t bytes = value_bytes_;
    net->Send(task_node, home, bytes, Purpose::kStateAccess,
              [net, home, task_node, bytes]() {
                net->Send(home, task_node, bytes, Purpose::kStateAccess,
                          []() {});
              });
  }
  return 2 * access_ns_;
}

std::unique_ptr<StateBackend> CreateStateBackend(const StateLayerConfig& config,
                                                 NodeId home, Network* net) {
  switch (config.backend) {
    case StateBackendKind::kLocalShared:
      return std::make_unique<LocalSharedBackend>();
    case StateBackendKind::kAlwaysMigrate:
      return std::make_unique<AlwaysMigrateBackend>(
          config.local_copy_bytes_per_sec);
    case StateBackendKind::kExternalKv:
      return std::make_unique<ExternalKvBackend>(
          home, net, config.external_access_ns, config.external_value_bytes);
  }
  ELASTICUTOR_CHECK_MSG(false, "unknown state backend kind");
  return nullptr;
}

}  // namespace elasticutor
