// Per-process shard state store — the "lightweight in-memory key-value
// store" of §3.2. Each elastic-executor process (main or remote) owns one
// ProcessStateStore; tasks in the same process share it, so reassigning a
// shard between two tasks of the same process needs no state migration
// (intra-process state sharing). Cross-process reassignment extracts the
// shard as a blob, ships it over the simulated network, and installs it at
// the destination.
//
// State has two components per shard:
//  * base_bytes — the configured synthetic shard payload (the paper's "shard
//    state size", 32 KB by default), representing opaque operator state;
//  * user entries — real typed per-key values operator logic reads/writes
//    through StateAccessor (e.g. the SSE order books), with an estimated
//    byte footprint that contributes to migration cost.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace elasticutor {

using ShardId = int32_t;
using StateKey = uint64_t;

/// One shard's state: opaque payload plus typed per-key user entries.
struct ShardState {
  int64_t base_bytes = 0;
  int64_t user_bytes = 0;
  std::unordered_map<StateKey, std::any> entries;

  int64_t bytes() const { return base_bytes + user_bytes; }
};

class ProcessStateStore {
 public:
  ProcessStateStore() = default;

  /// Creates an empty shard with the given opaque payload size. Fails if the
  /// shard already exists.
  Status CreateShard(ShardId shard, int64_t base_bytes);

  bool HasShard(ShardId shard) const { return shards_.contains(shard); }

  /// Removes and returns a shard blob for migration.
  Result<ShardState> ExtractShard(ShardId shard);

  /// Installs a migrated shard blob. Fails if the shard already exists.
  Status InstallShard(ShardId shard, ShardState state);

  /// Size in bytes of one shard (0 if absent).
  int64_t ShardBytes(ShardId shard) const;

  /// Total bytes across all shards in this process.
  int64_t TotalBytes() const;

  size_t num_shards() const { return shards_.size(); }

  /// Mutable access for StateAccessor; shard must exist.
  ShardState* GetShard(ShardId shard);

 private:
  std::unordered_map<ShardId, ShardState> shards_;
};

/// Handle through which operator logic reads and updates the state of the
/// key it is currently processing ("state access interface ... on a per-key
/// basis", §3.2).
class StateAccessor {
 public:
  StateAccessor(ProcessStateStore* store, ShardId shard, StateKey key)
      : shard_state_(store->GetShard(shard)), key_(key) {}

  /// Returns the typed state for the current key, default-constructing it on
  /// first access. `approx_bytes` feeds the migration-cost estimate.
  template <typename T>
  T* GetOrCreate(int64_t approx_bytes = static_cast<int64_t>(sizeof(T))) {
    auto it = shard_state_->entries.find(key_);
    if (it == shard_state_->entries.end()) {
      it = shard_state_->entries.emplace(key_, T{}).first;
      shard_state_->user_bytes += approx_bytes + kEntryOverheadBytes;
    }
    T* value = std::any_cast<T>(&it->second);
    ELASTICUTOR_CHECK_MSG(value != nullptr, "state type mismatch for key");
    return value;
  }

  /// Records growth of the current key's state (e.g. an order book gaining
  /// a resting order).
  void AddBytes(int64_t delta) { shard_state_->user_bytes += delta; }

  StateKey key() const { return key_; }

  static constexpr int64_t kEntryOverheadBytes = 48;

 private:
  ShardState* shard_state_;
  StateKey key_;
};

}  // namespace elasticutor
