// Per-process shard state store — the "lightweight in-memory key-value
// store" of §3.2. Each elastic-executor process (main or remote) owns one
// ProcessStateStore; tasks in the same process share it, so reassigning a
// shard between two tasks of the same process needs no state migration
// (intra-process state sharing). Cross-process reassignment is driven by the
// MigrationEngine (state/migration_engine.h), which extracts the shard here,
// ships it (as one blob or as live pre-copied chunks) and installs it at the
// destination store.
//
// State has two components per shard:
//  * base_bytes — the configured synthetic shard payload (the paper's "shard
//    state size", 32 KB by default), representing opaque operator state;
//  * user entries — real typed per-key values operator logic reads/writes
//    through StateAccessor (e.g. the SSE order books), with an estimated
//    byte footprint that contributes to migration cost.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace elasticutor {

using ShardId = int32_t;
using StateKey = uint64_t;

/// Records the keys and bytes written to a shard while its pre-copy is in
/// flight; the MigrationEngine ships exactly this delta during the final
/// paused window of a chunked-live migration.
class DirtyTracker {
 public:
  /// A (potential) write to `key`'s entry of roughly `approx_bytes` bytes.
  /// Re-touching a key does not grow the delta (the delta ships each dirty
  /// entry once).
  void OnWrite(StateKey key, int64_t approx_bytes) {
    if (keys_.insert(key).second) bytes_ += approx_bytes;
    ++writes_;
  }

  /// In-place growth of an already-dirty entry (e.g. an order book gaining a
  /// resting order): the extra bytes must be shipped too.
  void OnGrow(int64_t delta) { bytes_ += delta; }

  int64_t dirty_bytes() const { return bytes_; }
  size_t dirty_keys() const { return keys_.size(); }
  int64_t writes() const { return writes_; }

 private:
  std::unordered_set<StateKey> keys_;
  int64_t bytes_ = 0;
  int64_t writes_ = 0;
};

/// One shard's state: opaque payload plus typed per-key user entries.
/// Move-only: a shard blob is extracted and installed exactly once per
/// migration, and an accidental deep copy would silently double the state a
/// migration appears to ship.
struct ShardState {
  ShardState() = default;
  ShardState(const ShardState&) = delete;
  ShardState& operator=(const ShardState&) = delete;
  ShardState(ShardState&&) = default;
  ShardState& operator=(ShardState&&) = default;

  int64_t base_bytes = 0;
  int64_t user_bytes = 0;
  std::unordered_map<StateKey, std::any> entries;

  /// Non-owning write observer, attached by the MigrationEngine for the
  /// duration of a live pre-copy (null otherwise). Not part of the migrated
  /// payload; cleared before the blob is installed at the destination.
  DirtyTracker* dirty = nullptr;

  int64_t bytes() const { return base_bytes + user_bytes; }
};

class ProcessStateStore {
 public:
  ProcessStateStore() = default;

  /// Creates an empty shard with the given opaque payload size. Fails if the
  /// shard already exists.
  Status CreateShard(ShardId shard, int64_t base_bytes);

  bool HasShard(ShardId shard) const { return shards_.contains(shard); }

  /// Removes and returns a shard blob for migration (moved out, never
  /// copied).
  Result<ShardState> ExtractShard(ShardId shard);

  /// Installs a migrated shard blob. Fails if the shard already exists.
  Status InstallShard(ShardId shard, ShardState state);

  /// Size in bytes of one shard (0 if absent).
  int64_t ShardBytes(ShardId shard) const;

  /// Total bytes across all shards in this process.
  int64_t TotalBytes() const;

  size_t num_shards() const { return shards_.size(); }

  /// Mutable access for StateAccessor; shard must exist.
  ShardState* GetShard(ShardId shard);

  /// Read-only iteration over every shard in this store (equivalence tests
  /// compare per-key entries across backends; diagnostics dump state sizes).
  template <typename Fn>
  void ForEachShard(Fn&& fn) const {
    for (const auto& [id, state] : shards_) fn(id, state);
  }

 private:
  std::unordered_map<ShardId, ShardState> shards_;
};

/// Handle through which operator logic reads and updates the state of the
/// key it is currently processing ("state access interface ... on a per-key
/// basis", §3.2). Writes are observed by the shard's DirtyTracker when a
/// live migration is pre-copying the shard.
class StateAccessor {
 public:
  StateAccessor(ProcessStateStore* store, ShardId shard, StateKey key)
      : shard_state_(store->GetShard(shard)), key_(key) {}

  /// Returns the typed state for the current key, default-constructing it on
  /// first access. `approx_bytes` feeds the migration-cost estimate. Counts
  /// as a write for dirty tracking: callers receive a mutable pointer, and
  /// stream operators overwhelmingly update the entry they fetch.
  template <typename T>
  T* GetOrCreate(int64_t approx_bytes = static_cast<int64_t>(sizeof(T))) {
    auto it = shard_state_->entries.find(key_);
    if (it == shard_state_->entries.end()) {
      it = shard_state_->entries.emplace(key_, T{}).first;
      shard_state_->user_bytes += approx_bytes + kEntryOverheadBytes;
    }
    if (shard_state_->dirty) {
      shard_state_->dirty->OnWrite(key_, approx_bytes + kEntryOverheadBytes);
    }
    T* value = std::any_cast<T>(&it->second);
    ELASTICUTOR_CHECK_MSG(value != nullptr, "state type mismatch for key");
    return value;
  }

  /// Records growth of the current key's state (e.g. an order book gaining
  /// a resting order).
  void AddBytes(int64_t delta) {
    shard_state_->user_bytes += delta;
    if (shard_state_->dirty) shard_state_->dirty->OnGrow(delta);
  }

  StateKey key() const { return key_; }

  static constexpr int64_t kEntryOverheadBytes = 48;

 private:
  ShardState* shard_state_;
  StateKey key_;
};

}  // namespace elasticutor
