// MigrationEngine — the single shard-migration code path for every
// controller (elastic executor and RC repartitioner). Replaces the three
// divergent inline extract/send/install paths that used to live in
// elastic_executor.cc and rc_controller.cc.
//
// Two strategies (MigrationConfig::strategy):
//
//  * kSyncBlob — stop-the-world: the caller pauses the shard first, then
//    Finalize() ships the whole blob and installs it. Pause time grows
//    linearly with state size (the failure mode probed by Fig 12).
//
//  * kChunkedLive — incremental pre-copy (Röger & Mayer's taxonomy,
//    arXiv:1901.09716): Begin() snapshots the shard size and streams
//    fixed-size chunks over Purpose::kStateMigration while the source task
//    keeps processing; a DirtyTracker attached to the shard records the
//    keys/bytes written meanwhile. When the last chunk lands the caller
//    pauses + drains the source, and Finalize() ships only the dirty delta
//    before the routing flip — so pause time tracks the write rate, not the
//    state size.
//
// Protocol per migration:
//
//   handle = engine->Begin(src_store, shard, from, to, strategy, rate, cb)
//     ... caller keeps processing; `cb` fires when pre-copy is done
//         (synchronously for kSyncBlob — nothing to pre-copy) ...
//   caller pauses routing + drains the source task (labeling tuple) ...
//   engine->Finalize(handle, dst_store, done)   // ships remainder, installs
//     ... `done(stats)` fires once the shard lives in `dst_store`.
//
// Transfers between distinct nodes go through the Network (per-(src,dst)
// FIFO, so chunks, the labeling tuple and post-flip data tuples on the same
// path cannot overtake each other); same-node transfers cost
// bytes / local_copy_bytes_per_sec (0 = free handoff, completes
// synchronously — intra-process state sharing).
//
// Threading: on the sim backend everything is single-threaded. On the
// native backend, Begin() and Finalize() run on a worker thread while the
// paced-chunk completions fire on the backend's driver thread; the
// pre-copy window is guarded by a per-handle mutex and the cumulative
// counters are atomics. The caller must still provide the happens-before
// edge between the precopy_done callback and Finalize() (the native
// runtime's control mutex does), and must not touch one handle from two
// threads at once beyond that protocol.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "exec/execution_backend.h"
#include "net/network.h"
#include "state/state_backend.h"
#include "state/state_store.h"

namespace elasticutor {

/// Accounting for one completed (or in-flight) shard migration.
struct MigrationStats {
  bool inter_node = false;
  int chunks = 0;               // Pre-copy chunks shipped.
  int64_t precopy_bytes = 0;    // Bytes shipped while processing continued.
  int64_t delta_bytes = 0;      // Bytes shipped inside the pause window.
  int64_t moved_bytes = 0;      // precopy_bytes + delta_bytes.
  SimDuration precopy_ns = 0;   // Begin -> last pre-copy chunk landed.
  SimDuration finalize_ns = 0;  // Finalize -> installed (in-pause transfer).
};

/// In-flight migration handle (create via MigrationEngine::Begin).
class ShardMigration {
 public:
  ShardId shard() const { return shard_; }
  bool precopy_done() const { return precopy_done_; }
  bool finalized() const { return finalized_; }
  const MigrationStats& stats() const { return stats_; }
  const DirtyTracker& dirty() const { return tracker_; }

 private:
  friend class MigrationEngine;

  ProcessStateStore* src_ = nullptr;
  ShardId shard_ = -1;
  NodeId from_ = -1;
  NodeId to_ = -1;
  MigrationStrategy strategy_ = MigrationStrategy::kSyncBlob;
  double local_copy_bytes_per_sec_ = 0.0;

  DirtyTracker tracker_;
  bool precopy_done_ = false;
  bool finalized_ = false;

  SimTime begin_at_ = 0;
  // Pre-copy window, guarded by mu_ (the Begin() thread and the driver's
  // chunk-completion callbacks both pump it on the native backend).
  std::mutex mu_;
  int64_t snapshot_bytes_ = 0;   // Shard size when the pre-copy started.
  int64_t precopy_sent_ = 0;     // Bytes handed to the transfer layer.
  int chunks_in_flight_ = 0;
  EventFn precopy_done_cb_;

  MigrationStats stats_;
};

class MigrationEngine {
 public:
  using Handle = std::shared_ptr<ShardMigration>;
  using DoneFn = std::function<void(const MigrationStats&)>;

  MigrationEngine(exec::ExecutionBackend* exec, Network* net,
                  MigrationConfig config)
      : exec_(exec), net_(net), config_(config) {}

  /// Starts migrating `shard` out of `src` (the store of the process on
  /// `from`) toward the process on `to`. Under kChunkedLive this streams the
  /// pre-copy and attaches a dirty tracker; `precopy_done` (optional) fires
  /// when the snapshot has fully landed — synchronously under kSyncBlob,
  /// where the whole blob moves in Finalize(). The shard stays readable and
  /// writable in `src` until Finalize().
  Handle Begin(ProcessStateStore* src, ShardId shard, NodeId from, NodeId to,
               MigrationStrategy strategy, double local_copy_bytes_per_sec,
               EventFn precopy_done);

  /// Convenience overload using the engine's configured strategy.
  Handle Begin(ProcessStateStore* src, ShardId shard, NodeId from, NodeId to,
               double local_copy_bytes_per_sec, EventFn precopy_done) {
    return Begin(src, shard, from, to, config_.strategy,
                 local_copy_bytes_per_sec, std::move(precopy_done));
  }

  /// Completes a migration: call once the source task is paused and drained.
  /// Ships the remaining bytes (the whole blob for kSyncBlob, the dirty
  /// delta for kChunkedLive), moves the ShardState from the source store
  /// into `dst`, then runs `done(stats)`. Runs synchronously when the
  /// remaining transfer is free (same node, zero copy rate, or empty delta).
  void Finalize(const Handle& m, ProcessStateStore* dst, DoneFn done);

  /// One-shot stop-the-world migration (the sync-blob baseline): for callers
  /// that have already paused all processing (the RC repartitioner).
  /// Equivalent to Begin(kSyncBlob) + Finalize().
  void MigrateSync(ProcessStateStore* src, ProcessStateStore* dst,
                   ShardId shard, NodeId from, NodeId to,
                   double local_copy_bytes_per_sec, DoneFn done);

  const MigrationConfig& config() const { return config_; }

  // ---- Cumulative counters (tests/benches) ----
  int64_t migrations_begun() const { return migrations_begun_.load(); }
  int64_t migrations_completed() const {
    return migrations_completed_.load();
  }
  int64_t chunks_shipped() const { return chunks_shipped_.load(); }
  int64_t bytes_shipped() const { return bytes_shipped_.load(); }

 private:
  void PumpPrecopy(const Handle& m);
  /// Moves `bytes` from `from` to `to`: Network for cross-node, local copy
  /// rate otherwise. `done` runs synchronously iff the transfer is free.
  void Transfer(NodeId from, NodeId to, int64_t bytes, double local_rate,
                EventFn done);

  exec::ExecutionBackend* exec_;
  Network* net_;
  MigrationConfig config_;

  std::atomic<int64_t> migrations_begun_{0};
  std::atomic<int64_t> migrations_completed_{0};
  std::atomic<int64_t> chunks_shipped_{0};
  std::atomic<int64_t> bytes_shipped_{0};
};

}  // namespace elasticutor
