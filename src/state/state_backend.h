// Pluggable state backends for the elastic executor (§3.2 design space).
//
// A StateBackend answers three questions the data path and the reassignment
// protocol used to hard-code per-enum:
//  * which ProcessStateStore a task running on a given node reads/writes,
//  * what a state access costs (and what network traffic it implies),
//  * whether moving a shard between two tasks requires a state migration
//    (and, if so, how fast a same-node copy runs).
//
// Backends:
//  * LocalSharedBackend  — the paper design: one store per process, shared
//    by all tasks of that process; only cross-process moves migrate.
//  * AlwaysMigrateBackend — ablation: per-task private state; every
//    reassignment serializes and copies, even within a process.
//  * ExternalKvBackend   — RAMCloud-style external store: a single home
//    store stands in for the KV cluster, no shard ever migrates, and every
//    tuple pays two store round trips whose bytes are attributed to
//    Purpose::kStateAccess on the simulated network.
//
// Backend selection lives here (state layer), not in the engine config enum
// zoo: EngineConfig embeds a StateLayerConfig and the executor calls
// CreateStateBackend().
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cluster/cluster.h"  // NodeId.
#include "common/units.h"
#include "sim/time.h"
#include "state/state_store.h"

namespace elasticutor {

class Network;

enum class StateBackendKind {
  kLocalShared = 0,   // Paper design: per-process store, shared by tasks.
  kAlwaysMigrate = 1, // Per-task private state: every reassignment migrates.
  kExternalKv = 2,    // External KV: per-access RPCs, no migration.
};

const char* StateBackendName(StateBackendKind kind);

/// How shard state travels during a reassignment.
enum class MigrationStrategy {
  kSyncBlob = 0,     // Stop-the-world: pause, ship everything, resume.
  kChunkedLive = 1,  // Pre-copy fixed-size chunks while processing continues;
                     // pause only for the dirty delta + routing flip.
};

const char* MigrationStrategyName(MigrationStrategy strategy);

struct MigrationConfig {
  MigrationStrategy strategy = MigrationStrategy::kChunkedLive;
  /// Pre-copy chunk size; the pause-time flatness of chunked-live migration
  /// is insensitive to this as long as chunks are small vs the shard.
  int64_t chunk_bytes = 64 * kKiB;
  /// Chunks in flight at once during pre-copy: 1 = fully RTT-paced, higher
  /// values pipeline the path (but hog the NIC for longer bursts).
  int pipeline_depth = 4;
};

struct StateLayerConfig {
  StateBackendKind backend = StateBackendKind::kLocalShared;
  /// Per store access latency (one read or one write) under kExternalKv.
  SimDuration external_access_ns = Micros(150);
  /// Approximate payload of one KV request/response message.
  int64_t external_value_bytes = 128;
  /// Same-node serialize+copy rate for backends that migrate within a
  /// process (kAlwaysMigrate); ~2 GB/s memcpy+serde.
  double local_copy_bytes_per_sec = 2e9;
  MigrationConfig migration;
};

class StateBackend {
 public:
  virtual ~StateBackend() = default;

  virtual StateBackendKind kind() const = 0;
  const char* name() const { return StateBackendName(kind()); }

  /// Ensures a store exists for a (new) process on `node`; idempotent.
  /// Returns the store a process on `node` owns.
  virtual ProcessStateStore* AddProcess(NodeId node) = 0;

  /// Tears down the store of an emptied process on `node` (checks that no
  /// shard is left inside). No-op for backends without per-node stores.
  virtual void RemoveProcess(NodeId node) = 0;

  /// The store holding migratable shard state for a process on `node`; the
  /// MigrationEngine extracts from / installs into this.
  virtual ProcessStateStore* store(NodeId node) = 0;

  /// The store a task running on `task_node` reads and writes on the data
  /// path (for kExternalKv this is the home store regardless of the node).
  virtual ProcessStateStore* AccessStore(NodeId task_node) = 0;

  /// Charged once per processed tuple: returns extra service latency and
  /// attributes whatever network traffic the access implies.
  virtual SimDuration OnTupleAccess(NodeId task_node) = 0;

  /// True if moving a shard from a task on `from` to a task on `to`
  /// requires a state migration.
  virtual bool NeedsMigration(NodeId from, NodeId to) const = 0;

  /// Same-node migration copy rate in bytes/s (0 = free handoff). Only
  /// consulted when NeedsMigration(n, n) can be true.
  virtual double local_copy_bytes_per_sec() const { return 0.0; }

  /// Aggregate state bytes across all processes (s_j for the scheduler).
  virtual int64_t TotalBytes() const = 0;
};

/// The paper's per-process shared store (§3.2). Also the base for the
/// always-migrate ablation, which only changes the migration policy.
class LocalSharedBackend : public StateBackend {
 public:
  LocalSharedBackend() = default;

  StateBackendKind kind() const override {
    return StateBackendKind::kLocalShared;
  }
  ProcessStateStore* AddProcess(NodeId node) override;
  void RemoveProcess(NodeId node) override;
  ProcessStateStore* store(NodeId node) override;
  ProcessStateStore* AccessStore(NodeId task_node) override {
    return store(task_node);
  }
  SimDuration OnTupleAccess(NodeId) override { return 0; }
  bool NeedsMigration(NodeId from, NodeId to) const override {
    return from != to;
  }
  int64_t TotalBytes() const override;

 private:
  std::unordered_map<NodeId, ProcessStateStore> stores_;
};

/// Ablation: per-task private state — every reassignment migrates, and a
/// same-process move still pays a serialize+copy at memcpy speed.
class AlwaysMigrateBackend : public LocalSharedBackend {
 public:
  explicit AlwaysMigrateBackend(double local_copy_bytes_per_sec)
      : local_copy_bytes_per_sec_(local_copy_bytes_per_sec) {}

  StateBackendKind kind() const override {
    return StateBackendKind::kAlwaysMigrate;
  }
  bool NeedsMigration(NodeId, NodeId) const override { return true; }
  double local_copy_bytes_per_sec() const override {
    return local_copy_bytes_per_sec_;
  }

 private:
  double local_copy_bytes_per_sec_;
};

/// RAMCloud-style external KV store (§3.2 design alternative). A single
/// store homed at the executor's local node stands in for the KV cluster;
/// shards never migrate, and each processed tuple pays one read and one
/// write round trip whose request/response bytes are sent through the
/// Network under Purpose::kStateAccess.
class ExternalKvBackend : public StateBackend {
 public:
  ExternalKvBackend(NodeId home, Network* net, SimDuration access_ns,
                    int64_t value_bytes)
      : home_(home), net_(net), access_ns_(access_ns),
        value_bytes_(value_bytes) {}

  StateBackendKind kind() const override {
    return StateBackendKind::kExternalKv;
  }
  ProcessStateStore* AddProcess(NodeId) override { return &store_; }
  void RemoveProcess(NodeId) override {}
  ProcessStateStore* store(NodeId) override { return &store_; }
  ProcessStateStore* AccessStore(NodeId) override { return &store_; }
  SimDuration OnTupleAccess(NodeId task_node) override;
  bool NeedsMigration(NodeId, NodeId) const override { return false; }
  int64_t TotalBytes() const override { return store_.TotalBytes(); }

  NodeId home() const { return home_; }

 private:
  NodeId home_;
  Network* net_;  // May be null (pure unit tests): accesses cost time only.
  SimDuration access_ns_;
  int64_t value_bytes_;
  ProcessStateStore store_;
};

/// Factory: backend selection for one elastic executor homed at `home`.
/// `net` is used by kExternalKv for per-access byte attribution.
std::unique_ptr<StateBackend> CreateStateBackend(const StateLayerConfig& config,
                                                 NodeId home, Network* net);

}  // namespace elasticutor
