#include "state/migration_engine.h"

#include <algorithm>
#include <vector>

namespace elasticutor {

namespace {
// A same-node handoff at zero copy rate moves ownership without shipping a
// byte (intra-process state sharing) — it must not count as traffic.
bool FreeTransfer(NodeId from, NodeId to, double local_rate) {
  return from == to && local_rate <= 0.0;
}
}  // namespace

void MigrationEngine::Transfer(NodeId from, NodeId to, int64_t bytes,
                               double local_rate, EventFn done) {
  if (from != to) {
    net_->Send(from, to, bytes, Purpose::kStateMigration, std::move(done));
    return;
  }
  if (local_rate <= 0.0 || bytes <= 0) {
    done();  // Free handoff (intra-process state sharing): synchronous.
    return;
  }
  SimDuration copy = static_cast<SimDuration>(
      static_cast<double>(bytes) / local_rate * 1e9);
  exec_->After(copy, std::move(done));
}

MigrationEngine::Handle MigrationEngine::Begin(ProcessStateStore* src,
                                               ShardId shard, NodeId from,
                                               NodeId to,
                                               MigrationStrategy strategy,
                                               double local_copy_bytes_per_sec,
                                               EventFn precopy_done) {
  ELASTICUTOR_CHECK(src != nullptr && src->HasShard(shard));
  auto m = std::make_shared<ShardMigration>();
  m->src_ = src;
  m->shard_ = shard;
  m->from_ = from;
  m->to_ = to;
  m->strategy_ = strategy;
  m->local_copy_bytes_per_sec_ = local_copy_bytes_per_sec;
  m->begin_at_ = exec_->now();
  m->stats_.inter_node = from != to;
  ++migrations_begun_;

  if (strategy == MigrationStrategy::kSyncBlob ||
      FreeTransfer(from, to, local_copy_bytes_per_sec)) {
    // Sync-blob: nothing moves until the caller has paused; the blob ships
    // in Finalize(). Free handoff: there are no bytes to pre-copy at all.
    // Both complete synchronously so the caller's pause/label sequence is
    // identical to the historical inline path.
    m->precopy_done_ = true;
    if (precopy_done) precopy_done();
    return m;
  }

  // Chunked live pre-copy: snapshot the current size, intercept writes, and
  // stream chunks while the caller keeps processing.
  ShardState* state = src->GetShard(shard);
  ELASTICUTOR_CHECK_MSG(state->dirty == nullptr,
                        "shard already has a migration in flight");
  state->dirty = &m->tracker_;
  m->snapshot_bytes_ = state->bytes();
  m->precopy_done_cb_ = std::move(precopy_done);
  PumpPrecopy(m);
  return m;
}

void MigrationEngine::PumpPrecopy(const Handle& m) {
  // Keep up to pipeline_depth chunks in flight; each landing chunk refills
  // the window, so data tuples sharing the NIC interleave between chunks
  // instead of waiting behind the whole snapshot. Same-node copies are a
  // single memcpy stream — no pipelining to exploit.
  //
  // The window accounting happens under the handle's mutex (on the native
  // backend the Begin() thread and the driver's chunk callbacks pump
  // concurrently); the Transfer calls happen outside it so a chunk landing
  // synchronously cannot self-deadlock.
  const int64_t chunk = std::max<int64_t>(1, config_.chunk_bytes);
  const int depth =
      m->from_ == m->to_ ? 1 : std::max(1, config_.pipeline_depth);
  std::vector<int64_t> to_send;
  {
    std::lock_guard<std::mutex> lock(m->mu_);
    while (m->chunks_in_flight_ < depth &&
           (m->precopy_sent_ < m->snapshot_bytes_ ||
            (m->snapshot_bytes_ == 0 && m->stats_.chunks == 0 &&
             m->chunks_in_flight_ == 0 && to_send.empty()))) {
      int64_t bytes =
          std::min<int64_t>(chunk, m->snapshot_bytes_ - m->precopy_sent_);
      bytes = std::max<int64_t>(bytes, 0);  // Empty shard: one zero-byte
                                            // chunk.
      m->precopy_sent_ += bytes;
      ++m->chunks_in_flight_;
      to_send.push_back(bytes);
      if (m->snapshot_bytes_ == 0) break;
    }
  }
  for (int64_t bytes : to_send) {
    Handle handle = m;
    Transfer(m->from_, m->to_, bytes, m->local_copy_bytes_per_sec_,
             [this, handle, bytes]() {
               chunks_shipped_.fetch_add(1, std::memory_order_relaxed);
               bytes_shipped_.fetch_add(bytes, std::memory_order_relaxed);
               bool pump = false;
               EventFn cb;
               {
                 std::lock_guard<std::mutex> lock(handle->mu_);
                 --handle->chunks_in_flight_;
                 ++handle->stats_.chunks;
                 handle->stats_.precopy_bytes += bytes;
                 if (handle->precopy_sent_ < handle->snapshot_bytes_) {
                   pump = true;
                 } else if (handle->chunks_in_flight_ == 0 &&
                            !handle->precopy_done_) {
                   handle->precopy_done_ = true;
                   handle->stats_.precopy_ns =
                       exec_->now() - handle->begin_at_;
                   cb = std::move(handle->precopy_done_cb_);
                   handle->precopy_done_cb_ = nullptr;
                 }
               }
               if (pump) PumpPrecopy(handle);
               if (cb) cb();
             });
  }
}

void MigrationEngine::Finalize(const Handle& m, ProcessStateStore* dst,
                               DoneFn done) {
  ELASTICUTOR_CHECK_MSG(m->precopy_done_, "Finalize before pre-copy finished");
  ELASTICUTOR_CHECK_MSG(!m->finalized_, "migration finalized twice");
  m->finalized_ = true;
  ELASTICUTOR_CHECK(dst != nullptr);

  Result<ShardState> extracted = m->src_->ExtractShard(m->shard_);
  ELASTICUTOR_CHECK(extracted.ok());
  auto blob = std::make_shared<ShardState>(std::move(extracted).value());
  blob->dirty = nullptr;  // The tracker stays behind with the source.

  const int64_t total = blob->bytes();
  int64_t remaining;
  if (FreeTransfer(m->from_, m->to_, m->local_copy_bytes_per_sec_)) {
    remaining = 0;  // Ownership handoff: nothing ships.
  } else if (m->strategy_ == MigrationStrategy::kSyncBlob) {
    remaining = total;
  } else {
    // The delta is what was written since the snapshot: dirtied entries plus
    // in-place growth, capped by the blob itself (re-shipping everything can
    // never beat the blob).
    remaining = std::min<int64_t>(m->tracker_.dirty_bytes(), total);
  }
  m->stats_.delta_bytes = remaining;
  m->stats_.moved_bytes = m->stats_.precopy_bytes + remaining;
  bytes_shipped_ += remaining;

  const SimTime finalize_start = exec_->now();
  Handle handle = m;
  EventFn install = [this, handle, dst, blob, finalize_start,
                     done = std::move(done)]() {
    ELASTICUTOR_CHECK(
        dst->InstallShard(handle->shard_, std::move(*blob)).ok());
    handle->stats_.finalize_ns = exec_->now() - finalize_start;
    ++migrations_completed_;
    if (done) done(handle->stats_);
  };
  if (remaining <= 0) {
    install();  // Nothing left to ship: flip immediately.
    return;
  }
  Transfer(m->from_, m->to_, remaining, m->local_copy_bytes_per_sec_,
           std::move(install));
}

void MigrationEngine::MigrateSync(ProcessStateStore* src,
                                  ProcessStateStore* dst, ShardId shard,
                                  NodeId from, NodeId to,
                                  double local_copy_bytes_per_sec,
                                  DoneFn done) {
  Handle m = Begin(src, shard, from, to, MigrationStrategy::kSyncBlob,
                   local_copy_bytes_per_sec, nullptr);
  Finalize(m, dst, std::move(done));
}

}  // namespace elasticutor
