#include "state/state_store.h"

namespace elasticutor {

Status ProcessStateStore::CreateShard(ShardId shard, int64_t base_bytes) {
  if (shards_.contains(shard)) {
    return Status::AlreadyExists("shard " + std::to_string(shard));
  }
  ShardState state;
  state.base_bytes = base_bytes;
  shards_.emplace(shard, std::move(state));
  return Status::OK();
}

Result<ShardState> ProcessStateStore::ExtractShard(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) {
    return Status::NotFound("shard " + std::to_string(shard));
  }
  ShardState state = std::move(it->second);
  shards_.erase(it);
  return state;
}

Status ProcessStateStore::InstallShard(ShardId shard, ShardState state) {
  if (shards_.contains(shard)) {
    return Status::AlreadyExists("shard " + std::to_string(shard));
  }
  shards_.emplace(shard, std::move(state));
  return Status::OK();
}

int64_t ProcessStateStore::ShardBytes(ShardId shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.bytes();
}

int64_t ProcessStateStore::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [id, state] : shards_) total += state.bytes();
  return total;
}

ShardState* ProcessStateStore::GetShard(ShardId shard) {
  auto it = shards_.find(shard);
  ELASTICUTOR_CHECK_MSG(it != shards_.end(),
                        "state access to absent shard (routing bug?)");
  return &it->second;
}

}  // namespace elasticutor
