#include "engine/runtime.h"

namespace elasticutor {

Runtime::Runtime(Simulator* sim, Network* net, MigrationEngine* migration,
                 const NodeFaultPlane* faults, const Topology* topology,
                 const EngineConfig* config, EngineMetrics* metrics)
    : sim_(sim),
      net_(net),
      migration_(migration),
      faults_(faults),
      topology_(topology),
      config_(config),
      metrics_(metrics),
      validate_(config->validate_key_order),
      rng_(config->seed, 0x5eed5eed) {
  int n = topology_->num_operators();
  partitions_.resize(n);
  executors_.resize(n);
  inflight_.assign(n, 0);
}

void Runtime::SetPartition(OperatorId op,
                           std::unique_ptr<OperatorPartition> p) {
  partitions_.at(op) = std::move(p);
}

void Runtime::SetExecutors(OperatorId op, std::vector<ExecutorPtr> executors) {
  executors_.at(op) = std::move(executors);
}

bool Runtime::TryRoute(NodeId from, OperatorId to_op, const Tuple& t,
                       ExecutorMetrics* emitter_metrics) {
  OperatorPartition* part = partitions_.at(to_op).get();
  if (part->paused()) return false;
  ExecutorIndex ei = part->ExecutorOfKey(t.key);
  ExecutorPtr target = executors_.at(to_op).at(ei);
  if (!target->CanAccept()) return false;

  target->ReserveSlot();  // Admission is decided here, not on arrival.
  ++inflight_.at(to_op);
  if (emitter_metrics != nullptr) {
    emitter_metrics->bytes_out += t.size_bytes;
  }
  Tuple copy = t;
  NodeId dst = target->home_node();  // Before the move (evaluation order).
  net_->Send(from, dst, t.size_bytes, Purpose::kInterOperator,
             [target = std::move(target), copy]() mutable {
               target->OnTupleArrive(copy);
             });
  return true;
}

void Runtime::FlushBatchFrom(ExecutorPtr emitter,
                             std::shared_ptr<std::vector<PendingEmit>> batch,
                             size_t next, EventFn done) {
  while (next < batch->size()) {
    const PendingEmit& emit = (*batch)[next];
    if (TryRoute(emitter->home_node(), emit.to_op, emit.tuple,
                 &emitter->metrics())) {
      ++next;
      continue;
    }
    // Blocked: retry the remaining suffix later (jittered to avoid
    // synchronized herds). The emitter stays alive via the captured
    // shared_ptr.
    SimDuration delay = static_cast<SimDuration>(
        config_->emit_retry_ns * (0.5 + rng_.NextDouble()));
    sim_->After(delay,
                [this, emitter = std::move(emitter), batch = std::move(batch),
                 next, done = std::move(done)]() mutable {
                  FlushBatchFrom(std::move(emitter), std::move(batch), next,
                                 std::move(done));
                });
    return;
  }
  if (done) done();
}

void Runtime::OnProcessed(OperatorId op, const Tuple& t) {
  --inflight_.at(op);
  if (validate_) {
    validator_.OnProcess(op, t.key, t.arrival_seq);
  }
  if (topology_->is_sink(op)) {
    metrics_->OnSinkTuple(sim_->now(), t.created_at);
  }
}

void Runtime::StampArrival(OperatorId op, Tuple* t) {
  if (validate_) {
    t->arrival_seq = validator_.OnArrive(op, t->key);
  }
}

void Runtime::ResetMetricsAfterWarmup() {
  metrics_->ResetAfterWarmup();
  net_->ResetCounters();
  for (auto& execs : executors_) {
    for (auto& e : execs) e->metrics().Reset();
  }
}

}  // namespace elasticutor
