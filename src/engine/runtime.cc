#include "engine/runtime.h"

#include <algorithm>

#include "sim/event_fn.h"

namespace elasticutor {

namespace {

// Delivery closures are concrete structs (not lambdas) so their size is
// explicit: both fit EventFn's inline storage even inside the Network's
// Delivery<> wrapper — the per-tuple data path never touches the heap.

/// Unbatched delivery: one tuple straight to its executor.
struct DeliverOne {
  ExecutorBase* target;
  Tuple tuple;
  void operator()() { target->OnTupleArrive(tuple); }
};
static_assert(sizeof(DeliverOne) + sizeof(void*) <= EventFn::kInlineBytes,
              "single-tuple delivery must stay inline in EventFn");

}  // namespace

/// Batched delivery: the tuples travel in a pooled vector referenced by raw
/// pointer; the pool entry is recycled after the handoff.
struct Runtime::BatchDeliver {
  Runtime* rt;
  ExecutorBase* target;
  std::vector<Tuple>* batch;
  void operator()() {
    target->OnTupleBatch(batch->data(), batch->size());
    rt->ReleaseTupleBatch(batch);
  }
};

/// Back-pressure retry for an in-flight flush job. The job owns all state
/// (emits, emitter, continuation), so the scheduled closure is two pointers
/// — inline in EventFn even while the rest of the system is saturated.
struct Runtime::FlushRetry {
  Runtime* rt;
  FlushJob* job;
  void operator()() { rt->FlushJobStep(job); }
};

Runtime::Runtime(exec::ExecutionBackend* exec, Network* net,
                 MigrationEngine* migration, const NodeFaultPlane* faults,
                 const Topology* topology, const EngineConfig* config,
                 EngineMetrics* metrics)
    : exec_(exec),
      net_(net),
      migration_(migration),
      faults_(faults),
      topology_(topology),
      config_(config),
      metrics_(metrics),
      validate_(config->validate_key_order),
      max_batch_(static_cast<size_t>(std::max(1, config->max_batch_tuples))),
      rng_(config->seed, 0x5eed5eed) {
  int n = topology_->num_operators();
  partitions_.resize(n);
  executors_.resize(n);
  inflight_.assign(n, 0);
}

void Runtime::SetPartition(OperatorId op,
                           std::unique_ptr<OperatorPartition> p) {
  partitions_.at(op) = std::move(p);
}

void Runtime::SetExecutors(OperatorId op, std::vector<ExecutorPtr> executors) {
  executors_.at(op) = std::move(executors);
}

bool Runtime::TryRoute(NodeId from, OperatorId to_op, const Tuple& t,
                       ExecutorMetrics* emitter_metrics) {
  // A single-tuple run: delegating keeps the admission semantics (paused
  // check, reservation, accounting) in exactly one place, so the batch-1
  // path can never diverge from the tuple-at-a-time one.
  PendingEmit emit{to_op, t};
  return RouteRun(from, &emit, 1, emitter_metrics) == 1;
}

size_t Runtime::RouteRun(NodeId from, const PendingEmit* emits, size_t n,
                         ExecutorMetrics* emitter_metrics) {
  ELASTICUTOR_CHECK(n > 0);
  const OperatorId to_op = emits[0].to_op;
  OperatorPartition* part = partitions_.at(to_op).get();
  if (part->paused()) return 0;
  const ExecutorIndex ei = part->ExecutorOfKey(emits[0].tuple.key);
  ExecutorBase* target = executors_.at(to_op).at(ei).get();
  if (!target->CanAccept()) return 0;

  // Multi-slot reservation: extend the run while the next emission shares
  // this destination and the target still has a slot. CanAccept() sees the
  // reservations made so far, so a run can never overshoot the queue bound.
  target->ReserveSlot();
  size_t k = 1;
  while (k < n && k < max_batch_ && emits[k].to_op == to_op &&
         part->ExecutorOfKey(emits[k].tuple.key) == ei &&
         target->CanAccept()) {
    target->ReserveSlot();
    ++k;
  }

  inflight_.at(to_op) += static_cast<int64_t>(k);
  int64_t bytes = 0;
  for (size_t i = 0; i < k; ++i) bytes += emits[i].tuple.size_bytes;
  if (emitter_metrics != nullptr) {
    emitter_metrics->bytes_out += bytes;
  }
  metrics_->OnTuplesRouted(static_cast<int64_t>(k));

  NodeId dst = target->home_node();
  if (k == 1) {
    net_->Send(from, dst, bytes, Purpose::kInterOperator,
               DeliverOne{target, emits[0].tuple});
    return 1;
  }
  // One message, one per-message overhead, one delivery event for the run.
  std::vector<Tuple>* batch = AcquireTupleBatch();
  batch->reserve(k);
  for (size_t i = 0; i < k; ++i) batch->push_back(emits[i].tuple);
  net_->Send(from, dst, bytes, Purpose::kInterOperator,
             BatchDeliver{this, target, batch});
  return k;
}

Runtime::FlushJob* Runtime::AcquireFlushJob() {
  if (free_jobs_.empty()) {
    job_pool_.push_back(std::make_unique<FlushJob>());
    return job_pool_.back().get();
  }
  FlushJob* job = free_jobs_.back();
  free_jobs_.pop_back();
  return job;
}

void Runtime::ReleaseFlushJob(FlushJob* job) {
  job->emits.clear();  // Keeps capacity for the next acquisition.
  job->emitter.reset();
  job->next = 0;
  job->done = nullptr;
  free_jobs_.push_back(job);
}

std::vector<Tuple>* Runtime::AcquireTupleBatch() {
  if (free_batches_.empty()) {
    batch_pool_.push_back(std::make_unique<std::vector<Tuple>>());
    return batch_pool_.back().get();
  }
  std::vector<Tuple>* batch = free_batches_.back();
  free_batches_.pop_back();
  return batch;
}

void Runtime::ReleaseTupleBatch(std::vector<Tuple>* batch) {
  batch->clear();
  free_batches_.push_back(batch);
}

void Runtime::FlushBatch(ExecutorPtr emitter, FlushJob* job, EventFn done) {
  job->emitter = std::move(emitter);
  job->next = 0;
  job->done = std::move(done);
  FlushJobStep(job);
}

void Runtime::FlushJobStep(FlushJob* job) {
  while (job->next < job->emits.size()) {
    size_t routed =
        RouteRun(job->emitter->home_node(), job->emits.data() + job->next,
                 job->emits.size() - job->next, &job->emitter->metrics());
    if (routed == 0) {
      // Blocked: retry the remaining suffix later (jittered to avoid
      // synchronized herds). The emitter stays alive via the job.
      SimDuration delay = static_cast<SimDuration>(
          config_->emit_retry_ns * (0.5 + rng_.NextDouble()));
      exec_->After(delay, FlushRetry{this, job});
      return;
    }
    job->next += routed;
  }
  // The job returns to the pool before `done` runs (so a re-entrant flush
  // can reuse it), but the emitter must outlive `done` — the continuation
  // typically captures the emitter's raw `this` (see FlushBatch's
  // contract).
  ExecutorPtr emitter = std::move(job->emitter);
  EventFn done = std::move(job->done);
  ReleaseFlushJob(job);
  if (done) done();
}

void Runtime::OnProcessed(OperatorId op, const Tuple& t) {
  --inflight_.at(op);
  if (validate_) {
    validator_.OnProcess(op, t.key, t.arrival_seq);
  }
  if (topology_->is_sink(op)) {
    metrics_->OnSinkTuple(exec_->now(), t.created_at);
  }
}

void Runtime::StampArrival(OperatorId op, Tuple* t) {
  if (validate_) {
    t->arrival_seq = validator_.OnArrive(op, t->key);
  }
}

void Runtime::ResetMetricsAfterWarmup() {
  metrics_->ResetAfterWarmup();
  net_->ResetCounters();
  metrics_->BeginPerfWindow(exec_->events_executed(),
                            EventFn::heap_allocations());
  for (auto& execs : executors_) {
    for (auto& e : execs) e->metrics().Reset();
  }
}

}  // namespace elasticutor
