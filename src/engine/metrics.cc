#include "engine/metrics.h"

namespace elasticutor {

int64_t EngineMetrics::sink_count_in_window(SimTime from, SimTime to) const {
  int64_t count = 0;
  for (const auto& [start, value] : sink_throughput_.Bins()) {
    if (start >= from && start < to) count += static_cast<int64_t>(value);
  }
  return count;
}

}  // namespace elasticutor
