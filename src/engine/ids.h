// Identifier types shared across the engine.
#pragma once

#include <cstdint>

namespace elasticutor {

using OperatorId = int32_t;   // Index of the operator in the topology.
using ExecutorIndex = int32_t; // Index of an executor within its operator.

/// Globally unique executor id (used as the core-ledger owner id).
using ExecutorId = int64_t;

constexpr ExecutorId MakeExecutorId(OperatorId op, ExecutorIndex index) {
  return (static_cast<ExecutorId>(op) << 32) | static_cast<uint32_t>(index);
}
constexpr OperatorId OperatorOf(ExecutorId id) {
  return static_cast<OperatorId>(id >> 32);
}
constexpr ExecutorIndex IndexOf(ExecutorId id) {
  return static_cast<ExecutorIndex>(id & 0xffffffff);
}

}  // namespace elasticutor
