// Operator specification: the user-facing description of one vertex of the
// topology (the analog of the paper's ElasticBolt). The same spec is
// instantiated under every execution paradigm.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "engine/tuple.h"
#include "sim/time.h"
#include "state/state_store.h"

namespace elasticutor {

class EmitContext;

/// User processing logic: consume a tuple, read/update the state of its key,
/// emit output tuples. If absent, the engine applies `selectivity` copies of
/// the input re-sized to `output_bytes`.
using OperatorLogic =
    std::function<void(const Tuple&, StateAccessor&, EmitContext*)>;

/// Per-tuple CPU cost override; if absent, cost is `mean_cost_ns`
/// (exponentially distributed unless the engine is configured for
/// deterministic service times).
using CostFn = std::function<SimDuration(const Tuple&, Rng*)>;

/// Source (spout) behaviour for operators with `is_source`.
struct SourceSpec {
  enum class Mode {
    kSaturation,  // Emit as fast as back-pressure allows (throughput tests).
    kTrace,       // Poisson arrivals at rate_fn(t); backlog buffers excess.
  };
  Mode mode = Mode::kSaturation;

  /// Produces the next tuple (key, size, payload). created_at is set by the
  /// engine. Required for every source.
  std::function<Tuple(Rng*, SimTime)> factory;

  /// Aggregate arrival rate (tuples/s across all executors of the source) at
  /// simulated time t. Required in kTrace mode.
  std::function<double(SimTime)> rate_fn;

  /// CPU time a source executor spends generating + emitting one tuple;
  /// bounds the per-executor offered rate.
  SimDuration gen_overhead_ns = Micros(10);

  /// Tuple budget PER SOURCE EXECUTOR (0 = unlimited). When set, the
  /// executor stops after emitting this many tuples, letting a run drain to
  /// completion — the basis of the sim-vs-native equivalence tests, which
  /// need both backends to process the exact same tuple multiset.
  int64_t max_tuples = 0;
};

struct OperatorSpec {
  std::string name;

  // ---- Parallelism (paper: y executors per operator, z shards each) ----
  int num_executors = 32;
  int shards_per_executor = 256;

  // ---- Static-paradigm provisioning ----
  /// Number of single-core executors the static paradigm creates for this
  /// operator (0 = auto: proportional to expected CPU share). RC starts from
  /// the same count.
  int static_executors = 0;

  // ---- Cost model ----
  SimDuration mean_cost_ns = Millis(1);
  CostFn cost_fn;

  // ---- Output ----
  /// Expected output tuples per input when no logic is given.
  double selectivity = 1.0;
  int32_t output_bytes = 128;
  OperatorLogic logic;

  // ---- State ----
  /// Opaque per-shard payload installed at start ("shard state size").
  int64_t shard_state_bytes = 32 * kKiB;

  // ---- Source ----
  bool is_source = false;
  SourceSpec source;

  int total_shards() const { return num_executors * shards_per_executor; }
};

/// Handed to operator logic for emitting output tuples. The engine sets
/// routing, timing and accounting; logic only chooses key/size/payload.
class EmitContext {
 public:
  virtual ~EmitContext() = default;
  virtual void Emit(uint64_t key, int32_t size_bytes,
                    const TuplePayload& payload) = 0;
};

}  // namespace elasticutor
