// Common executor interface. Every paradigm instantiates operators as sets
// of executors; the runtime routes tuples to an executor's home node and
// calls OnTupleArrive there.
#pragma once

#include <memory>

#include "cluster/cluster.h"
#include "engine/ids.h"
#include "engine/metrics.h"
#include "engine/tuple.h"

namespace elasticutor {

class Runtime;

class ExecutorBase : public std::enable_shared_from_this<ExecutorBase> {
 public:
  ExecutorBase(Runtime* rt, OperatorId op, ExecutorIndex index, NodeId home)
      : rt_(rt), op_(op), index_(index), home_node_(home) {}
  virtual ~ExecutorBase() = default;

  ExecutorBase(const ExecutorBase&) = delete;
  ExecutorBase& operator=(const ExecutorBase&) = delete;

  /// A tuple from upstream arrived at this executor's home node.
  virtual void OnTupleArrive(Tuple t) = 0;

  /// A micro-batch from upstream arrived in one network message (channel
  /// micro-batching, EngineConfig::max_batch_tuples). All tuples were
  /// admitted (one reservation each) when the batch was routed. The default
  /// unrolls to the per-tuple path; executors with a cheaper bulk path
  /// override it.
  virtual void OnTupleBatch(const Tuple* tuples, size_t count) {
    for (size_t i = 0; i < count; ++i) OnTupleArrive(tuples[i]);
  }

  /// Back-pressure gate: senders check this before dispatching.
  virtual bool CanAccept() const = 0;

  /// Admission reservation: the runtime reserves a queue slot when it
  /// dispatches a tuple and the executor consumes the reservation on
  /// arrival. Without this, every tuple in network flight would bypass
  /// CanAccept (check-then-send race) and queues would overshoot their
  /// bound by the flight-time bandwidth-delay product.
  void ReserveSlot() { ++reserved_; }
  int64_t reserved() const { return reserved_; }

  /// Tuples currently queued inside the executor.
  virtual int64_t queued() const = 0;

  /// Starts generation loops / periodic work (called once after wiring).
  virtual void Start() {}

  ExecutorId id() const { return MakeExecutorId(op_, index_); }
  OperatorId op() const { return op_; }
  ExecutorIndex index() const { return index_; }
  NodeId home_node() const { return home_node_; }

  ExecutorMetrics& metrics() { return metrics_; }
  const ExecutorMetrics& metrics() const { return metrics_; }

 protected:
  void ConsumeReservation() {
    if (reserved_ > 0) --reserved_;
  }

  Runtime* rt_;
  OperatorId op_;
  ExecutorIndex index_;
  NodeId home_node_;
  ExecutorMetrics metrics_;
  int64_t reserved_ = 0;
};

using ExecutorPtr = std::shared_ptr<ExecutorBase>;

}  // namespace elasticutor
