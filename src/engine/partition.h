// Operator-level key partitioning shared by all paradigms.
//
// The key space of each operator is hashed into S = y·z shards. How shards
// map to executors is the paradigm-defining choice (Table 1):
//  * static      — fixed map, set at start;
//  * RC          — dynamic map, updated by repartitioning under a global
//                  pause of the operator;
//  * Elasticutor — fixed blocked map (executor j owns shards [j·z, (j+1)·z));
//                  elasticity happens inside the executor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "engine/ids.h"
#include "state/state_store.h"

namespace elasticutor {

class OperatorPartition {
 public:
  /// `salt` decorrelates this operator's hashing from other operators'.
  OperatorPartition(int num_shards, int num_executors, uint64_t salt);

  ShardId ShardOf(uint64_t key) const {
    return static_cast<ShardId>(HashKey(key, salt_) %
                                static_cast<uint64_t>(num_shards_));
  }

  ExecutorIndex ExecutorOfShard(ShardId shard) const {
    return shard_to_executor_.at(shard);
  }
  ExecutorIndex ExecutorOfKey(uint64_t key) const {
    return ExecutorOfShard(ShardOf(key));
  }

  /// Installs a new shard→executor map (RC repartitioning). Size must equal
  /// num_shards; bumps the routing-table version.
  Status SetMap(std::vector<ExecutorIndex> map, int new_num_executors);

  /// Blocked map used by Elasticutor: shard s → s / shards_per_executor.
  void SetBlockedMap(int shards_per_executor);
  /// Interleaved map used by the static paradigm: shard s → s mod y.
  void SetInterleavedMap();

  int num_shards() const { return num_shards_; }
  int num_executors() const { return num_executors_; }
  uint64_t version() const { return version_; }
  const std::vector<ExecutorIndex>& map() const { return shard_to_executor_; }

  /// Shards currently owned by an executor.
  std::vector<ShardId> ShardsOf(ExecutorIndex e) const;

  // ---- Pause flag (RC repartitioning / global sync) ----
  bool paused() const { return paused_; }
  void set_paused(bool paused) { paused_ = paused; }

  // ---- Offered-load statistics: counted at the *first* emission attempt
  // of each tuple (before back-pressure). Controllers must balance and
  // provision on offered load: admitted arrivals are capped at a starved
  // executor's capacity, so they can never reveal how many cores it
  // actually needs, and processed counts equalize under saturation. ----
  void CountOffered(ShardId shard) { ++offered_.at(shard); }
  const std::vector<int64_t>& offered() const { return offered_; }
  /// Sum of offered counts over a shard range (an elastic executor's slice).
  int64_t OfferedInRange(ShardId first, int count) const {
    int64_t total = 0;
    for (int s = 0; s < count; ++s) total += offered_[first + s];
    return total;
  }

 private:
  int num_shards_;
  int num_executors_;
  uint64_t salt_;
  uint64_t version_ = 0;
  bool paused_ = false;
  std::vector<ExecutorIndex> shard_to_executor_;
  std::vector<int64_t> offered_;
};

}  // namespace elasticutor
