// Source executors. Two modes (SourceSpec::Mode):
//  * kSaturation — emit as fast as back-pressure allows; used for
//    throughput-capacity experiments. The generation loop stalls (and
//    retries) whenever the target executor is paused or full, which is
//    exactly how a Storm spout with a max-pending bound behaves.
//  * kTrace — tuples arrive by a Poisson process at rate_fn(t); arrivals
//    that cannot be dispatched queue in an unbounded spout backlog, so
//    measured latency includes the backlog delay (event-time latency).
//
// Under channel micro-batching (EngineConfig::max_batch_tuples > 1) the
// saturation loop generates and emits up to that many tuples per generation
// event (Runtime::RouteRun coalesces same-destination runs into single
// messages), so spout-side events amortize like delivery events. At the
// default of 1 the loop is the historical tuple-at-a-time path.
#pragma once

#include <deque>
#include <vector>

#include "engine/executor_base.h"
#include "engine/runtime.h"

namespace elasticutor {

class SpoutExecutor : public ExecutorBase {
 public:
  SpoutExecutor(Runtime* rt, OperatorId op, ExecutorIndex index, NodeId home);

  void Start() override;

  // Sources receive no upstream tuples.
  void OnTupleArrive(Tuple) override;
  bool CanAccept() const override { return false; }
  int64_t queued() const override {
    return static_cast<int64_t>(backlog_.size());
  }

  /// Stops generating (end of a measured run).
  void Stop() { stopped_ = true; }

  /// True once the SourceSpec::max_tuples budget is exhausted (always false
  /// for unbounded sources).
  bool budget_exhausted() const { return budget_exhausted_; }

  int64_t emitted() const { return emitted_; }
  /// Emission attempts rejected by back-pressure (diagnostics).
  int64_t blocked_attempts() const { return blocked_attempts_; }

 private:
  void SaturationLoop();
  void ScheduleNextTraceArrival();
  void DrainBacklog();

  bool TryEmitDownstream(const Tuple& t);

  bool stopped_ = false;
  bool draining_ = false;
  bool budget_exhausted_ = false;
  int64_t generated_ = 0;
  int64_t emitted_ = 0;
  int64_t blocked_attempts_ = 0;
  // Saturation mode: the generated-but-not-yet-routed run (head-of-line
  // semantics: blocked tuples are retried, never replaced). Capacity is
  // reused across generations.
  std::vector<Runtime::PendingEmit> held_run_;
  size_t held_next_ = 0;
  std::deque<Tuple> backlog_;  // Trace mode only.
  Rng rng_;
};

}  // namespace elasticutor
