// Engine configuration: execution paradigm, cluster shape, queue bounds and
// calibrated cost constants (DESIGN.md §5.6 documents the calibration).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "elastic/balancer_config.h"
#include "exec/execution_backend.h"
#include "net/network.h"
#include "rc/rc_config.h"
#include "scheduler/scheduler_config.h"
#include "sim/time.h"
#include "state/state_backend.h"

namespace elasticutor {

/// The three execution paradigms of Table 1.
enum class Paradigm {
  kStatic = 0,          // Fixed executors, one core each, static partitioning.
  kResourceCentric = 1, // Dynamic operator-level key repartitioning.
  kElastic = 2,         // Elasticutor: executor-centric core reassignment.
};

const char* ParadigmName(Paradigm p);

/// Knobs of the native multithreaded runtime (exec/native_runtime.h); only
/// read when `EngineConfig::backend == BackendKind::kNative`. Grouped by
/// concern: the data path (batching/back-pressure), the balance policy
/// (resource-control plane measurement loop) and thread placement. The old
/// flat field names remain as reference aliases for one release — new code
/// should write `native.data_path.batch_tuples`, not `native.batch_tuples`.
struct NativeOptions {
  struct DataPathOptions {
    /// Tuples accumulated per cross-thread micro-batch (the native analog
    /// of max_batch_tuples; batches are flushed early when the producer
    /// idles).
    int batch_tuples = 64;
    /// Bounded channel depth, in batches, per worker input (back-pressure).
    int channel_capacity_batches = 64;
  };

  /// Driver-side balance tick (Paradigm::kElastic only): samples the
  /// runtime's TelemetrySnapshot and plans ReassignShard moves.
  struct BalanceOptions {
    /// Tick period (0 = off; reassignments then come only from explicit
    /// ReassignShard calls).
    SimDuration period_ns = 0;
    /// Imbalance trigger (max/avg per-worker normalized load), mirroring
    /// BalancerConfig::theta.
    double theta = 1.25;
    /// Moves planned per tick per operator.
    int max_moves = 2;
    /// Load signal: measured per-shard wall-busy ns with per-worker
    /// measured capacities (the paper's CPU-weighted load model). false
    /// falls back to raw processed-count deltas (pre-PR-9 behavior; only
    /// correct when every tuple costs the same).
    bool use_wall_busy = true;
  };

  /// Optional thread placement (exec/cpu_affinity.h shim; no-op off-Linux).
  struct PinningOptions {
    /// Pin every source/worker thread to its own CPU, round-robin over the
    /// online CPU list. Grown workers are pinned from the same plan.
    bool enabled = false;
    /// Order the CPU list package-major so one operator's workers (and the
    /// shards they own) fill a socket before spilling to the next.
    bool numa_aware = false;
  };

  /// Worker threads per non-source operator (0 = the operator's
  /// static_executors, or 1 when that is unset). Sources get one thread per
  /// source executor.
  int workers_per_operator = 0;
  /// Worker-slot reservation per operator for runtime growth
  /// (WorkerPool::GrowWorkers). 0 = auto: max(2 x initial workers, 16).
  /// Slots cost a few pointers each until grown into.
  int max_workers_per_operator = 0;
  /// Same-process shard-copy rate for migrations between worker threads
  /// (bytes/s). 0 = free handoff: the move is a pointer swap and pre-copy
  /// completes synchronously. Positive rates pace MigrationEngine's
  /// chunked pre-copy / delta shipment on the backend's timer wheel, the
  /// native analog of StateLayerConfig::local_copy_bytes_per_sec.
  double migration_copy_bytes_per_sec = 0.0;

  DataPathOptions data_path;
  BalanceOptions balance;
  PinningOptions pinning;

  // ---- Deprecated flat aliases (one release; see the nested fields) ----
  int& batch_tuples = data_path.batch_tuples;
  int& channel_capacity_batches = data_path.channel_capacity_batches;
  SimDuration& balance_period_ns = balance.period_ns;
  double& balance_theta = balance.theta;
  int& balance_max_moves = balance.max_moves;

  // The reference aliases make the implicit copy operations wrong (a
  // copied object would alias the original's nested fields), so copying is
  // spelled out: copy the values, let each new object's NSDMIs rebind its
  // own references.
  NativeOptions() = default;
  NativeOptions(const NativeOptions& o)
      : workers_per_operator(o.workers_per_operator),
        max_workers_per_operator(o.max_workers_per_operator),
        migration_copy_bytes_per_sec(o.migration_copy_bytes_per_sec),
        data_path(o.data_path),
        balance(o.balance),
        pinning(o.pinning) {}
  NativeOptions& operator=(const NativeOptions& o) {
    workers_per_operator = o.workers_per_operator;
    max_workers_per_operator = o.max_workers_per_operator;
    migration_copy_bytes_per_sec = o.migration_copy_bytes_per_sec;
    data_path = o.data_path;
    balance = o.balance;
    pinning = o.pinning;
    return *this;
  }
};

/// Deprecated name of NativeOptions (pre-PR-9), kept for one release.
using NativeRuntimeOptions = NativeOptions;

struct EngineConfig {
  Paradigm paradigm = Paradigm::kElastic;

  // ---- Execution backend (exec/execution_backend.h) ----
  /// kSim (default): single-threaded discrete-event simulation, the
  /// deterministic path every figure bench and test runs on. kNative: real
  /// OS threads + monotonic clock, supporting the static and elastic
  /// paradigms (shards migrate live between worker threads via the
  /// in-channel labeling barrier) — see docs/architecture.md "Execution
  /// backends".
  exec::BackendKind backend = exec::BackendKind::kSim;
  NativeOptions native;

  // ---- Cluster (paper testbed: 32 nodes x 8 cores, 1 Gbps) ----
  int num_nodes = 32;
  int cores_per_node = 8;
  NetworkConfig net;

  uint64_t seed = 42;

  // ---- Queueing / back-pressure ----
  /// Pending-queue capacity of one elastic-executor task. Kept small, like
  /// Storm's spout max-pending bound: queue depth is what the labeling
  /// tuple of a shard reassignment must drain behind (Fig 8's EC sync
  /// time), and what bounds steady-state latency.
  int task_queue_cap = 8;
  /// Input-queue capacity of a static/RC single-threaded executor.
  int executor_queue_cap = 256;
  /// Retry delay when an emitter finds the target executor full or paused.
  SimDuration emit_retry_ns = Micros(500);
  /// Per-task bound on outputs not yet accepted downstream (the flow-control
  /// window between a task and the executor's emitter daemon). Lets remote
  /// tasks pipeline processing with output transfer while still propagating
  /// back-pressure.
  int task_output_credit = 64;
  /// Channel micro-batching: maximum CONSECUTIVE same-destination emissions
  /// coalesced into one network message / delivery event (see
  /// Runtime::RouteRun). 1 = tuple-at-a-time (the historical data path,
  /// byte-identical results); higher values amortize per-message overhead
  /// and scheduler events without reordering anything.
  int max_batch_tuples = 1;

  // ---- Service times ----
  /// Exponentially distributed per-tuple CPU cost (matches the M/M/k model);
  /// false = deterministic.
  bool exponential_service = true;

  // ---- Validation (tests) ----
  /// Track per-key arrival/processing order and state conservation.
  bool validate_key_order = false;

  // ---- Elasticutor ----
  SchedulerConfig scheduler;
  BalancerConfig balancer;
  /// State layer: backend selection + migration strategy/chunking (see
  /// state/state_backend.h — backends are constructed via the state-layer
  /// factory, not special-cased in the data path).
  StateLayerConfig state;

  // ---- RC ----
  RcConfig rc;

  int total_cores() const { return num_nodes * cores_per_node; }
};

}  // namespace elasticutor
