// Engine configuration: execution paradigm, cluster shape, queue bounds and
// calibrated cost constants (DESIGN.md §5.6 documents the calibration).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "elastic/balancer_config.h"
#include "exec/execution_backend.h"
#include "net/network.h"
#include "rc/rc_config.h"
#include "scheduler/scheduler_config.h"
#include "sim/time.h"
#include "state/state_backend.h"

namespace elasticutor {

/// The three execution paradigms of Table 1.
enum class Paradigm {
  kStatic = 0,          // Fixed executors, one core each, static partitioning.
  kResourceCentric = 1, // Dynamic operator-level key repartitioning.
  kElastic = 2,         // Elasticutor: executor-centric core reassignment.
};

const char* ParadigmName(Paradigm p);

/// Knobs of the native multithreaded runtime (exec/native_runtime.h); only
/// read when `EngineConfig::backend == BackendKind::kNative`.
struct NativeRuntimeOptions {
  /// Worker threads per non-source operator (0 = the operator's
  /// static_executors, or 1 when that is unset). Sources get one thread per
  /// source executor.
  int workers_per_operator = 0;
  /// Tuples accumulated per cross-thread micro-batch (the native analog of
  /// max_batch_tuples; batches are flushed early when the producer idles).
  int batch_tuples = 64;
  /// Bounded channel depth, in batches, per worker input (back-pressure).
  int channel_capacity_batches = 64;

  // ---- Elastic paradigm (Paradigm::kElastic on the native backend) ----
  /// Same-process shard-copy rate for migrations between worker threads
  /// (bytes/s). 0 = free handoff: the move is a pointer swap and pre-copy
  /// completes synchronously. Positive rates pace MigrationEngine's
  /// chunked pre-copy / delta shipment on the backend's timer wheel, the
  /// native analog of StateLayerConfig::local_copy_bytes_per_sec.
  double migration_copy_bytes_per_sec = 0.0;
  /// Period of the driver-side balance tick that samples per-shard
  /// processed counts and plans ReassignShard moves across the worker
  /// threads (0 = off; reassignments then come only from explicit
  /// ReassignShard calls).
  SimDuration balance_period_ns = 0;
  /// Imbalance trigger (max/avg per-worker load) for the native balance
  /// tick, mirroring BalancerConfig::theta.
  double balance_theta = 1.25;
  /// Moves planned per balance tick per operator.
  int balance_max_moves = 2;
};

struct EngineConfig {
  Paradigm paradigm = Paradigm::kElastic;

  // ---- Execution backend (exec/execution_backend.h) ----
  /// kSim (default): single-threaded discrete-event simulation, the
  /// deterministic path every figure bench and test runs on. kNative: real
  /// OS threads + monotonic clock, supporting the static and elastic
  /// paradigms (shards migrate live between worker threads via the
  /// in-channel labeling barrier) — see docs/architecture.md "Execution
  /// backends".
  exec::BackendKind backend = exec::BackendKind::kSim;
  NativeRuntimeOptions native;

  // ---- Cluster (paper testbed: 32 nodes x 8 cores, 1 Gbps) ----
  int num_nodes = 32;
  int cores_per_node = 8;
  NetworkConfig net;

  uint64_t seed = 42;

  // ---- Queueing / back-pressure ----
  /// Pending-queue capacity of one elastic-executor task. Kept small, like
  /// Storm's spout max-pending bound: queue depth is what the labeling
  /// tuple of a shard reassignment must drain behind (Fig 8's EC sync
  /// time), and what bounds steady-state latency.
  int task_queue_cap = 8;
  /// Input-queue capacity of a static/RC single-threaded executor.
  int executor_queue_cap = 256;
  /// Retry delay when an emitter finds the target executor full or paused.
  SimDuration emit_retry_ns = Micros(500);
  /// Per-task bound on outputs not yet accepted downstream (the flow-control
  /// window between a task and the executor's emitter daemon). Lets remote
  /// tasks pipeline processing with output transfer while still propagating
  /// back-pressure.
  int task_output_credit = 64;
  /// Channel micro-batching: maximum CONSECUTIVE same-destination emissions
  /// coalesced into one network message / delivery event (see
  /// Runtime::RouteRun). 1 = tuple-at-a-time (the historical data path,
  /// byte-identical results); higher values amortize per-message overhead
  /// and scheduler events without reordering anything.
  int max_batch_tuples = 1;

  // ---- Service times ----
  /// Exponentially distributed per-tuple CPU cost (matches the M/M/k model);
  /// false = deterministic.
  bool exponential_service = true;

  // ---- Validation (tests) ----
  /// Track per-key arrival/processing order and state conservation.
  bool validate_key_order = false;

  // ---- Elasticutor ----
  SchedulerConfig scheduler;
  BalancerConfig balancer;
  /// State layer: backend selection + migration strategy/chunking (see
  /// state/state_backend.h — backends are constructed via the state-layer
  /// factory, not special-cased in the data path).
  StateLayerConfig state;

  // ---- RC ----
  RcConfig rc;

  int total_cores() const { return num_nodes * cores_per_node; }
};

}  // namespace elasticutor
