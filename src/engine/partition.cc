#include "engine/partition.h"

namespace elasticutor {

OperatorPartition::OperatorPartition(int num_shards, int num_executors,
                                     uint64_t salt)
    : num_shards_(num_shards), num_executors_(num_executors), salt_(salt) {
  ELASTICUTOR_CHECK(num_shards > 0);
  ELASTICUTOR_CHECK(num_executors > 0);
  ELASTICUTOR_CHECK(num_shards >= num_executors);
  offered_.assign(num_shards, 0);
  SetInterleavedMap();
  version_ = 0;
}

Status OperatorPartition::SetMap(std::vector<ExecutorIndex> map,
                                 int new_num_executors) {
  if (static_cast<int>(map.size()) != num_shards_) {
    return Status::InvalidArgument("shard map size mismatch");
  }
  for (ExecutorIndex e : map) {
    if (e < 0 || e >= new_num_executors) {
      return Status::InvalidArgument("shard map references invalid executor");
    }
  }
  shard_to_executor_ = std::move(map);
  num_executors_ = new_num_executors;
  ++version_;
  return Status::OK();
}

void OperatorPartition::SetBlockedMap(int shards_per_executor) {
  ELASTICUTOR_CHECK(shards_per_executor > 0);
  ELASTICUTOR_CHECK(num_shards_ == num_executors_ * shards_per_executor);
  shard_to_executor_.resize(num_shards_);
  for (int s = 0; s < num_shards_; ++s) {
    shard_to_executor_[s] = s / shards_per_executor;
  }
  ++version_;
}

void OperatorPartition::SetInterleavedMap() {
  shard_to_executor_.resize(num_shards_);
  for (int s = 0; s < num_shards_; ++s) {
    shard_to_executor_[s] = s % num_executors_;
  }
  ++version_;
}

std::vector<ShardId> OperatorPartition::ShardsOf(ExecutorIndex e) const {
  std::vector<ShardId> shards;
  for (int s = 0; s < num_shards_; ++s) {
    if (shard_to_executor_[s] == e) shards.push_back(s);
  }
  return shards;
}

}  // namespace elasticutor
