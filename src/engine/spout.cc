#include "engine/spout.h"

namespace elasticutor {

SpoutExecutor::SpoutExecutor(Runtime* rt, OperatorId op, ExecutorIndex index,
                             NodeId home)
    : ExecutorBase(rt, op, index, home),
      rng_(rt->rng()->Fork(0x500 + MakeExecutorId(op, index))) {}

void SpoutExecutor::OnTupleArrive(Tuple) {
  ELASTICUTOR_CHECK_MSG(false, "source executor received an upstream tuple");
}

void SpoutExecutor::Start() {
  const SourceSpec& src = rt_->topology().spec(op_).source;
  if (src.mode == SourceSpec::Mode::kSaturation) {
    rt_->sim()->After(0, [this]() { SaturationLoop(); });
  } else {
    ScheduleNextTraceArrival();
  }
}

bool SpoutExecutor::TryEmitDownstream(const Tuple& t) {
  // A keyed tuple goes to every downstream operator; all-or-nothing here is
  // unnecessary because sources in this repo have exactly one downstream
  // operator (checked by Engine at setup).
  const auto& downstream = rt_->topology().downstream(op_);
  return rt_->TryRoute(home_node_, downstream[0], t, &metrics_);
}

void SpoutExecutor::SaturationLoop() {
  if (stopped_) return;
  const SourceSpec& src = rt_->topology().spec(op_).source;
  if (!held_.has_value()) {
    held_ = src.factory(&rng_, rt_->sim()->now());
    // Event time is the first emission attempt: back-pressure stalls (e.g.
    // RC pause barriers) count toward latency, as in Storm's complete
    // latency metric.
    held_->created_at = rt_->sim()->now();
    rt_->CountOffered(rt_->topology().downstream(op_)[0], held_->key);
  }
  // Head-of-line semantics (Storm spout): a blocked tuple is retried, not
  // replaced — a saturated hot executor therefore throttles this spout.
  if (TryEmitDownstream(*held_)) {
    held_.reset();
    ++emitted_;
    ++metrics_.processed;
    metrics_.busy_ns += src.gen_overhead_ns;
    rt_->sim()->After(src.gen_overhead_ns, [this]() { SaturationLoop(); });
  } else {
    ++blocked_attempts_;
    // Jittered back-off: synchronized retries would otherwise arrive in
    // thundering herds that slam queues to their cap and drain them empty.
    SimDuration delay = static_cast<SimDuration>(
        rt_->config().emit_retry_ns * (0.5 + rng_.NextDouble()));
    rt_->sim()->After(delay, [this]() { SaturationLoop(); });
  }
}

void SpoutExecutor::ScheduleNextTraceArrival() {
  if (stopped_) return;
  const SourceSpec& src = rt_->topology().spec(op_).source;
  int num_executors = static_cast<int>(rt_->executors(op_).size());
  double rate = src.rate_fn(rt_->sim()->now()) / num_executors;
  // Guard against zero-rate intervals: poll again shortly.
  SimDuration gap = rate <= 1e-9
                        ? Millis(100)
                        : static_cast<SimDuration>(
                              rng_.NextExponential(1e9 / rate));
  rt_->sim()->After(gap, [this]() {
    if (stopped_) return;
    const SourceSpec& spec_src = rt_->topology().spec(op_).source;
    Tuple t = spec_src.factory(&rng_, rt_->sim()->now());
    t.created_at = rt_->sim()->now();  // Event time: latency includes backlog.
    rt_->CountOffered(rt_->topology().downstream(op_)[0], t.key);
    backlog_.push_back(t);
    DrainBacklog();
    ScheduleNextTraceArrival();
  });
}

void SpoutExecutor::DrainBacklog() {
  if (draining_) return;
  while (!backlog_.empty()) {
    if (TryEmitDownstream(backlog_.front())) {
      backlog_.pop_front();
      ++emitted_;
      ++metrics_.processed;
      continue;
    }
    // Blocked: retry later; `draining_` prevents stacking retry loops.
    draining_ = true;
    SimDuration delay = static_cast<SimDuration>(
        rt_->config().emit_retry_ns * (0.5 + rng_.NextDouble()));
    rt_->sim()->After(delay, [this]() {
      draining_ = false;
      DrainBacklog();
    });
    return;
  }
}

}  // namespace elasticutor
