#include "engine/spout.h"

#include <algorithm>

namespace elasticutor {

SpoutExecutor::SpoutExecutor(Runtime* rt, OperatorId op, ExecutorIndex index,
                             NodeId home)
    : ExecutorBase(rt, op, index, home),
      rng_(rt->rng()->Fork(0x500 + MakeExecutorId(op, index))) {}

void SpoutExecutor::OnTupleArrive(Tuple) {
  ELASTICUTOR_CHECK_MSG(false, "source executor received an upstream tuple");
}

void SpoutExecutor::Start() {
  const SourceSpec& src = rt_->topology().spec(op_).source;
  if (src.mode == SourceSpec::Mode::kSaturation) {
    rt_->exec()->After(0, [this]() { SaturationLoop(); });
  } else {
    ScheduleNextTraceArrival();
  }
}

bool SpoutExecutor::TryEmitDownstream(const Tuple& t) {
  // A keyed tuple goes to every downstream operator; all-or-nothing here is
  // unnecessary because sources in this repo have exactly one downstream
  // operator (checked by Engine at setup).
  const auto& downstream = rt_->topology().downstream(op_);
  return rt_->TryRoute(home_node_, downstream[0], t, &metrics_);
}

void SpoutExecutor::SaturationLoop() {
  if (stopped_) return;
  const SourceSpec& src = rt_->topology().spec(op_).source;
  const OperatorId down = rt_->topology().downstream(op_)[0];
  const size_t gen_batch =
      static_cast<size_t>(std::max(1, rt_->config().max_batch_tuples));
  size_t want = gen_batch;
  if (held_run_.empty()) {
    if (src.max_tuples > 0) {
      int64_t left = src.max_tuples - generated_;
      if (left <= 0) {
        budget_exhausted_ = true;
        return;
      }
      want = std::min(want, static_cast<size_t>(left));
    }
    for (size_t i = 0; i < want; ++i) {
      Tuple t = src.factory(&rng_, rt_->exec()->now());
      // Event time is the first emission attempt: back-pressure stalls
      // (e.g. RC pause barriers) count toward latency, as in Storm's
      // complete latency metric.
      t.created_at = rt_->exec()->now();
      rt_->CountOffered(down, t.key);
      held_run_.push_back(Runtime::PendingEmit{down, t});
    }
    generated_ += static_cast<int64_t>(want);
    held_next_ = 0;
  }
  // Head-of-line semantics (Storm spout): blocked tuples are retried, not
  // replaced — a saturated hot executor therefore throttles this spout.
  // RouteRun coalesces same-destination prefixes into single messages.
  while (held_next_ < held_run_.size()) {
    size_t routed = rt_->RouteRun(home_node_, held_run_.data() + held_next_,
                                  held_run_.size() - held_next_, &metrics_);
    if (routed == 0) {
      ++blocked_attempts_;
      // Jittered back-off: synchronized retries would otherwise arrive in
      // thundering herds that slam queues to their cap and drain them empty.
      SimDuration delay = static_cast<SimDuration>(
          rt_->config().emit_retry_ns * (0.5 + rng_.NextDouble()));
      rt_->exec()->After(delay, [this]() { SaturationLoop(); });
      return;
    }
    held_next_ += routed;
    emitted_ += static_cast<int64_t>(routed);
    metrics_.processed += static_cast<int64_t>(routed);
  }
  const size_t drained = held_run_.size();
  held_run_.clear();
  SimDuration gen =
      src.gen_overhead_ns * static_cast<SimDuration>(drained);
  metrics_.busy_ns += gen;
  if (src.max_tuples > 0 && generated_ >= src.max_tuples) {
    budget_exhausted_ = true;  // Budget spent and fully routed: fall silent.
    return;
  }
  rt_->exec()->After(gen, [this]() { SaturationLoop(); });
}

void SpoutExecutor::ScheduleNextTraceArrival() {
  if (stopped_) return;
  const SourceSpec& src = rt_->topology().spec(op_).source;
  if (src.max_tuples > 0 && generated_ >= src.max_tuples) {
    budget_exhausted_ = true;  // Backlog keeps draining via DrainBacklog.
    return;
  }
  int num_executors = static_cast<int>(rt_->executors(op_).size());
  double rate = src.rate_fn(rt_->exec()->now()) / num_executors;
  // Guard against zero-rate intervals: poll again shortly.
  SimDuration gap = rate <= 1e-9
                        ? Millis(100)
                        : static_cast<SimDuration>(
                              rng_.NextExponential(1e9 / rate));
  rt_->exec()->After(gap, [this]() {
    if (stopped_) return;
    const SourceSpec& spec_src = rt_->topology().spec(op_).source;
    Tuple t = spec_src.factory(&rng_, rt_->exec()->now());
    t.created_at = rt_->exec()->now();  // Event time: latency includes backlog.
    rt_->CountOffered(rt_->topology().downstream(op_)[0], t.key);
    ++generated_;
    backlog_.push_back(t);
    DrainBacklog();
    ScheduleNextTraceArrival();
  });
}

void SpoutExecutor::DrainBacklog() {
  if (draining_) return;
  while (!backlog_.empty()) {
    if (TryEmitDownstream(backlog_.front())) {
      backlog_.pop_front();
      ++emitted_;
      ++metrics_.processed;
      continue;
    }
    // Blocked: retry later; `draining_` prevents stacking retry loops.
    draining_ = true;
    SimDuration delay = static_cast<SimDuration>(
        rt_->config().emit_retry_ns * (0.5 + rng_.NextDouble()));
    rt_->exec()->After(delay, [this]() {
      draining_ = false;
      DrainBacklog();
    });
    return;
  }
}

}  // namespace elasticutor
