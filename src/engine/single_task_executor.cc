#include "engine/single_task_executor.h"

namespace elasticutor {

SimDuration SampleCost(const OperatorSpec& spec, const EngineConfig& config,
                       const Tuple& t, Rng* rng) {
  if (spec.cost_fn) return spec.cost_fn(t, rng);
  if (!config.exponential_service) return spec.mean_cost_ns;
  return static_cast<SimDuration>(
      rng->NextExponential(static_cast<double>(spec.mean_cost_ns)));
}

void ApplyOperatorLogic(const Topology& topology, const OperatorSpec& spec,
                        OperatorId op, const Tuple& t,
                        ProcessStateStore* store, ShardId shard,
                        EmitContext* emit, Rng* rng) {
  if (spec.logic) {
    StateAccessor accessor(store, shard, t.key);
    spec.logic(t, accessor, emit);
    return;
  }
  // Default logic: touch a per-key counter, then emit `selectivity` outputs
  // (fractional part resolved probabilistically).
  StateAccessor accessor(store, shard, t.key);
  int64_t* counter = accessor.GetOrCreate<int64_t>();
  ++*counter;
  if (topology.downstream(op).empty()) return;
  double want = spec.selectivity;
  int outputs = static_cast<int>(want);
  if (rng->NextDouble() < want - outputs) ++outputs;
  for (int i = 0; i < outputs; ++i) {
    emit->Emit(t.key, spec.output_bytes, t.payload);
  }
}

SingleTaskExecutor::SingleTaskExecutor(Runtime* rt, OperatorId op,
                                       ExecutorIndex index, NodeId home)
    : ExecutorBase(rt, op, index, home),
      service_rng_(rt->rng()->Fork(MakeExecutorId(op, index))) {}

bool SingleTaskExecutor::CanAccept() const {
  return static_cast<int64_t>(queue_.size()) + reserved() <
         rt_->config().executor_queue_cap;
}

void SingleTaskExecutor::Admit(const Tuple& t) {
  ConsumeReservation();
  ++metrics_.arrivals;
  metrics_.bytes_in += t.size_bytes;
  queue_.push_back(t);
  rt_->StampArrival(op_, &queue_.back());
}

void SingleTaskExecutor::OnTupleArrive(Tuple t) {
  Admit(t);
  metrics_.queued = static_cast<int64_t>(queue_.size());
  if (!busy_) StartNext();
}

void SingleTaskExecutor::OnTupleBatch(const Tuple* tuples, size_t count) {
  // Bulk arrival path (channel micro-batching): admit the whole run, then
  // kick the processing loop once.
  for (size_t i = 0; i < count; ++i) Admit(tuples[i]);
  metrics_.queued = static_cast<int64_t>(queue_.size());
  if (!busy_) StartNext();
}

void SingleTaskExecutor::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Tuple t = queue_.front();
  queue_.pop_front();
  metrics_.queued = static_cast<int64_t>(queue_.size());
  const OperatorSpec& spec = rt_->topology().spec(op_);
  SimDuration cost = SampleCost(spec, rt_->config(), t, &service_rng_);
  // Injected node slowdown (straggler / degraded node) stretches the actual
  // service time; busy_ns includes it, so measured µ drops accordingly.
  cost = static_cast<SimDuration>(
      static_cast<double>(cost) * rt_->faults()->cpu_factor(home_node_));
  metrics_.busy_ns += cost;
  rt_->metrics()->OnBusy(home_node_, cost);
  rt_->exec()->After(cost, [this, t]() { OnProcessingComplete(t); });
}

void SingleTaskExecutor::OnProcessingComplete(Tuple t) {
  const OperatorSpec& spec = rt_->topology().spec(op_);
  OperatorPartition* part = rt_->partition(op_);
  ShardId shard = part->ShardOf(t.key);
  ++shard_load_[shard];

  BatchEmitContext emit(rt_, op_, t.created_at);
  ApplyOperatorLogic(rt_->topology(), spec, op_, t, &store_, shard, &emit,
                     &service_rng_);

  ++metrics_.processed;
  rt_->OnProcessed(op_, t);

  if (emit.empty()) {
    StartNext();
    return;
  }
  // The single thread does not take the next tuple until outputs are
  // dispatched (this is how back-pressure propagates upstream).
  rt_->FlushBatch(shared_from_this(), emit.TakeJob(),
                  [this]() { StartNext(); });
}

}  // namespace elasticutor
