// Engine: top-level driver. Owns the execution backend, network, cluster,
// runtime, executors and the paradigm-specific controller; provides the
// run/measure API used by examples, tests and benches.
//
// The backend (EngineConfig::backend) decides what actually executes:
//  * kSim (default)  — discrete-event simulation, deterministic; all
//    paradigms, all tests/figures.
//  * kNative         — real OS threads via exec::NativeRuntime; static
//    dataflow only, wall-clock time. Same Engine API.
//
//   Engine engine(topology, config);
//   ELASTICUTOR_CHECK(engine.Setup().ok());
//   engine.Start();
//   engine.RunFor(Seconds(5));          // Warm-up.
//   engine.ResetMetricsAfterWarmup();
//   engine.RunFor(Seconds(20));         // Measured window.
//   double tput = engine.MeasuredThroughput();
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault_plane.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"
#include "engine/runtime.h"
#include "engine/spout.h"
#include "engine/topology.h"
#include "exec/execution_backend.h"
#include "net/network.h"

namespace elasticutor {

namespace exec {
class NativeRuntime;
}  // namespace exec

class ElasticExecutor;
class DynamicScheduler;
class MigrationEngine;
class RcController;

class Engine {
 public:
  Engine(Topology topology, EngineConfig config);
  ~Engine();

  /// Instantiates partitions, executors, state and the controller for the
  /// configured paradigm.
  Status Setup();

  /// Starts sources, balancers and the scheduler/controller.
  void Start();

  /// Advances virtual time by `duration`. Sim: runs the event loop. Native:
  /// sleeps wall-clock on the driver thread (firing timers) while the
  /// dataflow threads run.
  void RunFor(SimDuration duration) {
    exec_->RunUntil(exec_->now() + duration);
  }
  void RunUntil(SimTime t) { exec_->RunUntil(t); }

  /// Runs until every source's SourceSpec::max_tuples budget is exhausted
  /// AND the dataflow has fully drained (requires a budget on every source;
  /// checked). The basis of the sim-vs-native equivalence tests: after this
  /// returns, both backends have processed the identical tuple multiset.
  void RunToCompletion();

  /// Clears metric counters; call at the end of the warm-up phase.
  void ResetMetricsAfterWarmup();

  /// Stops all sources (end of run; lets queues drain if run further).
  void StopSources();

  /// Multiplies the arrival rate of every trace-mode source by `factor(t)`
  /// (scenario-driver hook; saturation-mode sources are back-pressure bound
  /// and unaffected). Composes: a second call wraps the already-shaped rate.
  void ShapeSourceRates(std::function<double(SimTime)> factor);

  // ---- Measurement helpers ----
  /// Mean sink throughput (tuples/s) since the last metrics reset.
  double MeasuredThroughput() const;
  /// Latency histogram over completed sink tuples since the last reset.
  const Histogram& LatencyHistogram() const { return metrics_->latency(); }
  int64_t order_violations() const;
  /// Deterministic hot-path cost counters (events / heap allocs / messages
  /// per routed tuple) since the last warm-up reset.
  PerfCounters Perf() const {
    return metrics_->PerfWindow(
        static_cast<int64_t>(exec_->events_executed()),
        EventFn::heap_allocations(), net_->messages_sent());
  }

  // ---- Resource-control plane (exec/telemetry.h, exec/worker_pool.h) ----
  /// Point-in-time sample of the execution, backend-independent: the native
  /// runtime serves it from lock-free wall-busy counters; the sim serves it
  /// from the executors' ExecutorMetrics. See telemetry.h for the liveness
  /// contract.
  exec::TelemetrySnapshot SampleTelemetry() const {
    return exec_->SampleTelemetry();
  }
  /// Runtime worker scaling; null under the sim backend (AddCore/RemoveCore
  /// on the elastic executors is the simulated actuation path).
  exec::WorkerPool* worker_pool() const { return exec_->worker_pool(); }

  // ---- Accessors ----
  /// The execution backend (virtual clock + deferred-call scheduling).
  exec::ExecutionBackend* exec() { return exec_.get(); }
  /// The native runtime (threads/channels); null under the sim backend.
  exec::NativeRuntime* native() { return native_.get(); }
  Network* net() { return net_.get(); }
  Runtime* runtime() { return runtime_.get(); }
  EngineMetrics* metrics() { return metrics_.get(); }
  const Cluster& cluster() const { return *cluster_; }
  CoreLedger* ledger() { return ledger_.get(); }
  /// Injected node faults (CPU slowdown / availability); written by the
  /// scenario driver, read by executors and the scheduler.
  NodeFaultPlane* faults() { return faults_.get(); }
  const Topology& topology() const { return topology_; }
  const EngineConfig& config() const { return config_; }
  DynamicScheduler* scheduler() { return scheduler_.get(); }
  RcController* rc_controller() { return rc_.get(); }
  MigrationEngine* migration() { return migration_.get(); }

  /// Elastic executors of an operator (elastic paradigm only).
  std::vector<std::shared_ptr<ElasticExecutor>> elastic_executors(
      OperatorId op) const;
  std::vector<std::shared_ptr<SpoutExecutor>> source_executors(
      OperatorId op) const;

  /// Static-paradigm executor counts chosen for each operator (also RC's
  /// starting point). Filled by Setup().
  const std::vector<int>& provisioned_executors() const {
    return provisioned_;
  }

 private:
  Status SetupSources(OperatorId op, int* next_home_node);
  Status SetupStaticLike(OperatorId op);
  Status SetupElastic(OperatorId op, int* next_home_node);
  std::vector<int> ComputeStaticProvisioning() const;

  Topology topology_;
  EngineConfig config_;

  std::unique_ptr<exec::ExecutionBackend> exec_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<CoreLedger> ledger_;
  std::unique_ptr<NodeFaultPlane> faults_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<MigrationEngine> migration_;
  std::unique_ptr<EngineMetrics> metrics_;
  /// kNative backend only. Declared after the migration engine, metrics and
  /// backend: its destructor (emergency teardown) joins worker threads that
  /// touch all three.
  std::unique_ptr<exec::NativeRuntime> native_;
  /// kSim backend only: the ExecutorMetrics -> TelemetrySnapshot adapter
  /// bound to the backend's resource-control plane.
  std::unique_ptr<exec::TelemetrySource> sim_telemetry_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<DynamicScheduler> scheduler_;
  std::unique_ptr<RcController> rc_;

  std::vector<int> provisioned_;
  int round_robin_node_ = 0;
  SimTime metrics_reset_at_ = 0;
  bool setup_done_ = false;
};

}  // namespace elasticutor
