// Topology: a DAG of operators. Built once via TopologyBuilder and then
// shared (immutable) by the engine.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/ids.h"
#include "engine/operator.h"

namespace elasticutor {

class Topology {
 public:
  int num_operators() const { return static_cast<int>(operators_.size()); }
  const OperatorSpec& spec(OperatorId op) const { return operators_.at(op); }
  OperatorSpec& mutable_spec(OperatorId op) { return operators_.at(op); }

  /// Operators fed by `op`.
  const std::vector<OperatorId>& downstream(OperatorId op) const {
    return downstream_.at(op);
  }
  /// Operators feeding `op`.
  const std::vector<OperatorId>& upstream(OperatorId op) const {
    return upstream_.at(op);
  }
  bool is_sink(OperatorId op) const { return downstream_.at(op).empty(); }

  /// Operator ids in topological order (sources first).
  const std::vector<OperatorId>& topo_order() const { return topo_order_; }

  Result<OperatorId> FindOperator(const std::string& name) const;

 private:
  friend class TopologyBuilder;
  std::vector<OperatorSpec> operators_;
  std::vector<std::vector<OperatorId>> downstream_;
  std::vector<std::vector<OperatorId>> upstream_;
  std::vector<OperatorId> topo_order_;
};

class TopologyBuilder {
 public:
  /// Adds an operator; returns its id.
  OperatorId AddOperator(OperatorSpec spec);

  /// Adds a key-partitioned edge from `from` to `to`.
  Status Connect(OperatorId from, OperatorId to);

  /// Validates (DAG, sources have no inputs, non-sources have inputs,
  /// every source has a factory) and returns the immutable topology.
  Result<Topology> Build();

 private:
  Topology topology_;
};

}  // namespace elasticutor
