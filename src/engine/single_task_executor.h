// Single-threaded executor: the building block of the static and
// resource-centric paradigms ("each executor consists of a single data
// processing thread bound to an assigned CPU core", §2.2).
//
// It owns the state of the operator-level shards currently mapped to it; the
// RC repartitioner moves shards (and their state) between executors of the
// same operator under a global pause.
#pragma once

#include <deque>
#include <memory>
#include <utility>

#include "engine/executor_base.h"
#include "engine/runtime.h"
#include "state/state_store.h"

namespace elasticutor {

class SingleTaskExecutor : public ExecutorBase {
 public:
  SingleTaskExecutor(Runtime* rt, OperatorId op, ExecutorIndex index,
                     NodeId home);

  void OnTupleArrive(Tuple t) override;
  void OnTupleBatch(const Tuple* tuples, size_t count) override;
  bool CanAccept() const override;
  int64_t queued() const override {
    return static_cast<int64_t>(queue_.size());
  }

  /// True when the input queue is empty and no tuple is being processed
  /// (drain barrier of the RC repartitioning protocol).
  bool idle() const { return !busy_ && queue_.empty(); }

  ProcessStateStore* state_store() { return &store_; }

  /// Per-shard processed-tuple counts since the last repartition (feeds the
  /// RC controller's balance statistics).
  const std::unordered_map<ShardId, int64_t>& shard_load() const {
    return shard_load_;
  }
  void ResetShardLoad() { shard_load_.clear(); }

 private:
  void Admit(const Tuple& t);
  void StartNext();
  void OnProcessingComplete(Tuple t);

  std::deque<Tuple> queue_;
  bool busy_ = false;
  ProcessStateStore store_;
  std::unordered_map<ShardId, int64_t> shard_load_;
  Rng service_rng_;
};

/// EmitContext that collects outputs into a pooled Runtime::FlushJob for
/// Runtime::FlushBatch. A context that was never Emit()ted into (or whose
/// job was not taken) returns the job to the pool on destruction, so the
/// steady-state emit path performs no allocation.
class BatchEmitContext : public EmitContext {
 public:
  BatchEmitContext(Runtime* rt, OperatorId from_op, SimTime created_at)
      : rt_(rt), created_at_(created_at), job_(rt->AcquireFlushJob()) {
    downstream_ = &rt->topology().downstream(from_op);
  }
  ~BatchEmitContext() override {
    if (job_ != nullptr) rt_->ReleaseFlushJob(job_);
  }

  void Emit(uint64_t key, int32_t size_bytes,
            const TuplePayload& payload) override {
    Tuple out;
    out.key = key;
    out.size_bytes = size_bytes;
    out.created_at = created_at_;
    out.payload = payload;
    for (OperatorId to : *downstream_) {
      rt_->CountOffered(to, key);  // Demand signal, pre-back-pressure.
      job_->emits.push_back(Runtime::PendingEmit{to, out});
    }
  }

  /// Hands the filled job to the caller (who routes it through
  /// Runtime::FlushBatch or drains it into an emitter queue and releases).
  Runtime::FlushJob* TakeJob() { return std::exchange(job_, nullptr); }
  bool empty() const { return job_->emits.empty(); }

 private:
  Runtime* rt_;
  SimTime created_at_;
  const std::vector<OperatorId>* downstream_;
  Runtime::FlushJob* job_;
};

/// Applies the operator's logic (or default selectivity-based emission) for
/// one tuple. Shared by every executor implementation on every execution
/// backend (the native runtime calls it with its own EmitContext), so the
/// per-tuple semantics cannot diverge between sim and native.
void ApplyOperatorLogic(const Topology& topology, const OperatorSpec& spec,
                        OperatorId op, const Tuple& t,
                        ProcessStateStore* store, ShardId shard,
                        EmitContext* emit, Rng* rng);

/// Samples the CPU cost of processing `t` under `spec`.
SimDuration SampleCost(const OperatorSpec& spec, const EngineConfig& config,
                       const Tuple& t, Rng* rng);

}  // namespace elasticutor
