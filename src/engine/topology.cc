#include "engine/topology.h"

#include <algorithm>
#include <queue>

namespace elasticutor {

Result<OperatorId> Topology::FindOperator(const std::string& name) const {
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (operators_[i].name == name) return static_cast<OperatorId>(i);
  }
  return Status::NotFound("operator '" + name + "'");
}

OperatorId TopologyBuilder::AddOperator(OperatorSpec spec) {
  topology_.operators_.push_back(std::move(spec));
  topology_.downstream_.emplace_back();
  topology_.upstream_.emplace_back();
  return static_cast<OperatorId>(topology_.operators_.size() - 1);
}

Status TopologyBuilder::Connect(OperatorId from, OperatorId to) {
  int n = topology_.num_operators();
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return Status::InvalidArgument("operator id out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  auto& down = topology_.downstream_[from];
  if (std::find(down.begin(), down.end(), to) != down.end()) {
    return Status::AlreadyExists("duplicate edge");
  }
  down.push_back(to);
  topology_.upstream_[to].push_back(from);
  return Status::OK();
}

Result<Topology> TopologyBuilder::Build() {
  const int n = topology_.num_operators();
  if (n == 0) return Status::InvalidArgument("empty topology");

  for (OperatorId op = 0; op < n; ++op) {
    const OperatorSpec& spec = topology_.operators_[op];
    if (spec.num_executors <= 0 || spec.shards_per_executor <= 0) {
      return Status::InvalidArgument("operator '" + spec.name +
                                     "': parallelism must be positive");
    }
    if (spec.is_source) {
      if (!topology_.upstream_[op].empty()) {
        return Status::InvalidArgument("source '" + spec.name +
                                       "' has upstream edges");
      }
      if (!spec.source.factory) {
        return Status::InvalidArgument("source '" + spec.name +
                                       "' has no tuple factory");
      }
      if (spec.source.mode == SourceSpec::Mode::kTrace &&
          !spec.source.rate_fn) {
        return Status::InvalidArgument("trace source '" + spec.name +
                                       "' has no rate function");
      }
    } else if (topology_.upstream_[op].empty()) {
      return Status::InvalidArgument("operator '" + spec.name +
                                     "' is unreachable (no inputs)");
    }
  }

  // Kahn's algorithm: topological order + cycle detection.
  std::vector<int> indegree(n, 0);
  for (OperatorId op = 0; op < n; ++op) {
    indegree[op] = static_cast<int>(topology_.upstream_[op].size());
  }
  std::queue<OperatorId> ready;
  for (OperatorId op = 0; op < n; ++op) {
    if (indegree[op] == 0) ready.push(op);
  }
  topology_.topo_order_.clear();
  while (!ready.empty()) {
    OperatorId op = ready.front();
    ready.pop();
    topology_.topo_order_.push_back(op);
    for (OperatorId next : topology_.downstream_[op]) {
      if (--indegree[next] == 0) ready.push(next);
    }
  }
  if (static_cast<int>(topology_.topo_order_.size()) != n) {
    return Status::InvalidArgument("topology contains a cycle");
  }
  return topology_;
}

}  // namespace elasticutor
