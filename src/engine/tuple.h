// Stream tuples. Tuples are small value types (copied into queues); the
// payload is a fixed-size POD so millions of tuples per simulated second do
// not allocate.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace elasticutor {

/// Application payload: enough fields for the workloads in this repo (e.g.
/// SSE orders carry price/volume/side/stock). Interpretation is up to the
/// operator logic.
struct TuplePayload {
  double f0 = 0.0;
  double f1 = 0.0;
  int64_t i0 = 0;
  int64_t i1 = 0;
};

struct Tuple {
  uint64_t key = 0;
  int32_t size_bytes = 128;
  /// Root event time: set when the tuple (or its root ancestor) entered the
  /// topology; inherited by derived tuples so sink latency is end-to-end.
  SimTime created_at = 0;
  /// Order-validation bookkeeping, populated only when
  /// EngineConfig::validate_key_order is on. Sim backend: `arrival_seq` is
  /// assigned at the destination operator on admission. Native backend:
  /// `origin` identifies the producer slot and `arrival_seq` is that
  /// producer's per-(destination op, key) emission counter — the consumer
  /// checks the sequence is consecutive per (origin, key), which is exactly
  /// the per-channel FIFO + per-key routing guarantee the runtime makes.
  uint64_t arrival_seq = 0;
  uint32_t origin = 0;
  TuplePayload payload;
};

}  // namespace elasticutor
