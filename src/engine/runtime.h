// Runtime: the shared hub all executors talk to. It owns per-operator
// routing state (partition + executor set + in-flight counters) and
// implements the inter-operator data path with back-pressure:
//
//   emitter --TryRoute--> [paused? full?] --Network::Send--> OnTupleArrive
//
// A blocked emitter retries after EngineConfig::emit_retry_ns; because a
// task does not start its next input until its current outputs are flushed,
// back-pressure propagates upstream to the spouts (bounded queues
// everywhere => bounded latency, §5.2).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/fault_plane.h"
#include "common/random.h"
#include "engine/engine_config.h"
#include "engine/executor_base.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/topology.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace elasticutor {

class MigrationEngine;

class Runtime {
 public:
  Runtime(Simulator* sim, Network* net, MigrationEngine* migration,
          const NodeFaultPlane* faults, const Topology* topology,
          const EngineConfig* config, EngineMetrics* metrics);

  // ---- Wiring ----
  void SetPartition(OperatorId op, std::unique_ptr<OperatorPartition> p);
  OperatorPartition* partition(OperatorId op) {
    return partitions_.at(op).get();
  }
  /// Installs/replaces the executor set of an operator (RC rescaling swaps
  /// sets at a pause barrier).
  void SetExecutors(OperatorId op, std::vector<ExecutorPtr> executors);
  const std::vector<ExecutorPtr>& executors(OperatorId op) const {
    return executors_.at(op);
  }
  ExecutorPtr executor(OperatorId op, ExecutorIndex index) const {
    return executors_.at(op).at(index);
  }

  // ---- Data path ----
  /// Attempts to deliver `t` to `to_op` (routing by key). Returns false if
  /// the operator is paused or the target executor's queues are full.
  /// On success the tuple is in flight and inflight(to_op) was incremented;
  /// `emitter_metrics` (optional) gets bytes_out credit.
  bool TryRoute(NodeId from, OperatorId to_op, const Tuple& t,
                ExecutorMetrics* emitter_metrics);

  struct PendingEmit {
    OperatorId to_op;
    Tuple tuple;
  };
  /// Drains `batch` in order (retrying while blocked), then runs `done`.
  /// `emitter` is kept alive for the duration of the flush.
  void FlushBatch(ExecutorPtr emitter,
                  std::shared_ptr<std::vector<PendingEmit>> batch,
                  EventFn done) {
    FlushBatchFrom(std::move(emitter), std::move(batch), 0, std::move(done));
  }

  /// Records offered demand for `to_op` (called exactly once per tuple, at
  /// its first emission attempt — before any back-pressure).
  void CountOffered(OperatorId to_op, uint64_t key) {
    OperatorPartition* part = partitions_.at(to_op).get();
    part->CountOffered(part->ShardOf(key));
  }

  // ---- Processing bookkeeping ----
  /// Called by an executor when a tuple has been fully processed.
  void OnProcessed(OperatorId op, const Tuple& t);

  /// Tuples dispatched toward `op` but not yet fully processed (in network +
  /// queued + being processed). The RC drain barrier waits on this.
  int64_t inflight(OperatorId op) const { return inflight_.at(op); }

  // ---- Order validation (enabled by config.validate_key_order) ----
  /// Assigns the arrival sequence number for a tuple entering `op`.
  void StampArrival(OperatorId op, Tuple* t);
  OrderValidator* validator() {
    return validate_ ? &validator_ : nullptr;
  }

  // ---- Accessors ----
  Simulator* sim() { return sim_; }
  Network* net() { return net_; }
  /// The shared shard-migration engine (single migration code path for the
  /// elastic executor and the RC repartitioner).
  MigrationEngine* migration() { return migration_; }
  /// Injected node faults (scenario layer): per-node CPU slowdown factors
  /// and scheduling availability. Executors scale sampled service times by
  /// faults()->cpu_factor(node); the scheduler zeroes the capacity of
  /// unavailable nodes.
  const NodeFaultPlane* faults() const { return faults_; }
  const Topology& topology() const { return *topology_; }
  const EngineConfig& config() const { return *config_; }
  EngineMetrics* metrics() { return metrics_; }
  Rng* rng() { return &rng_; }

  /// Resets executor + engine counters (after warm-up).
  void ResetMetricsAfterWarmup();

 private:
  void FlushBatchFrom(ExecutorPtr emitter,
                      std::shared_ptr<std::vector<PendingEmit>> batch,
                      size_t next, EventFn done);

  Simulator* sim_;
  Network* net_;
  MigrationEngine* migration_;
  const NodeFaultPlane* faults_;
  const Topology* topology_;
  const EngineConfig* config_;
  EngineMetrics* metrics_;
  bool validate_;
  Rng rng_;

  std::vector<std::unique_ptr<OperatorPartition>> partitions_;
  std::vector<std::vector<ExecutorPtr>> executors_;
  std::vector<int64_t> inflight_;
  OrderValidator validator_;
};

}  // namespace elasticutor
