// Runtime: the shared hub all executors talk to. It owns per-operator
// routing state (partition + executor set + in-flight counters) and
// implements the inter-operator data path with back-pressure:
//
//   emitter --RouteRun--> [paused? full?] --Network::Send--> OnTupleBatch
//
// A blocked emitter retries after EngineConfig::emit_retry_ns; because a
// task does not start its next input until its current outputs are flushed,
// back-pressure propagates upstream to the spouts (bounded queues
// everywhere => bounded latency, §5.2).
//
// Channel micro-batching: RouteRun coalesces CONSECUTIVE emissions bound
// for the same destination executor (up to EngineConfig::max_batch_tuples)
// into one Network message with one delivery event, reserving one admission
// slot per tuple up front. Only leading runs coalesce, so emission order —
// and with it per-(src,dst) FIFO and the labeling protocol — is preserved
// exactly; at max_batch_tuples == 1 the data path is tuple-at-a-time.
//
// Emission batches and delivery payloads live in free-list pools whose
// entries keep their capacity, so the steady-state data path performs no
// heap allocation (EventFn::heap_allocations() stays flat; benches gate it).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/fault_plane.h"
#include "common/random.h"
#include "engine/engine_config.h"
#include "engine/executor_base.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/topology.h"
#include "exec/execution_backend.h"
#include "net/network.h"

namespace elasticutor {

class MigrationEngine;

class Runtime {
 public:
  Runtime(exec::ExecutionBackend* exec, Network* net,
          MigrationEngine* migration, const NodeFaultPlane* faults,
          const Topology* topology, const EngineConfig* config,
          EngineMetrics* metrics);

  // ---- Wiring ----
  void SetPartition(OperatorId op, std::unique_ptr<OperatorPartition> p);
  OperatorPartition* partition(OperatorId op) {
    return partitions_.at(op).get();
  }
  /// Installs/replaces the executor set of an operator (RC rescaling swaps
  /// sets at a pause barrier).
  void SetExecutors(OperatorId op, std::vector<ExecutorPtr> executors);
  const std::vector<ExecutorPtr>& executors(OperatorId op) const {
    return executors_.at(op);
  }
  ExecutorPtr executor(OperatorId op, ExecutorIndex index) const {
    return executors_.at(op).at(index);
  }

  // ---- Data path ----
  struct PendingEmit {
    OperatorId to_op;
    Tuple tuple;
  };

  /// Attempts to deliver `t` to `to_op` (routing by key). Returns false if
  /// the operator is paused or the target executor's queues are full.
  /// On success the tuple is in flight and inflight(to_op) was incremented;
  /// `emitter_metrics` (optional) gets bytes_out credit.
  ///
  /// Delivery closures borrow the target executor by raw pointer: executor
  /// sets only shrink at the RC pause barrier, which waits for
  /// inflight(op) == 0, so no delivery can outlive its target.
  bool TryRoute(NodeId from, OperatorId to_op, const Tuple& t,
                ExecutorMetrics* emitter_metrics);

  /// Routes a maximal leading run of `emits[0..n)` that shares emits[0]'s
  /// destination (same to_op AND same destination executor), capped at
  /// EngineConfig::max_batch_tuples, as ONE network message with one
  /// delivery event and one admission reservation per tuple. Returns the
  /// number of tuples consumed; 0 means blocked (paused or first slot
  /// unavailable — the caller retries later).
  size_t RouteRun(NodeId from, const PendingEmit* emits, size_t n,
                  ExecutorMetrics* emitter_metrics);

  // ---- Pooled emission batches ----
  /// One in-flight output flush: the emissions of one processed tuple plus
  /// the retry state needed to drain them under back-pressure. Jobs are
  /// pooled; `emits` keeps its capacity across reuse so the steady-state
  /// emit path does not allocate.
  struct FlushJob {
    std::vector<PendingEmit> emits;
    ExecutorPtr emitter;
    size_t next = 0;
    EventFn done;
  };
  FlushJob* AcquireFlushJob();
  void ReleaseFlushJob(FlushJob* job);

  /// Drains `job->emits` in order (coalescing same-destination runs,
  /// retrying while blocked), then runs `done` and releases the job back to
  /// the pool. `emitter` is kept alive for the duration of the flush.
  void FlushBatch(ExecutorPtr emitter, FlushJob* job, EventFn done);

  /// Records offered demand for `to_op` (called exactly once per tuple, at
  /// its first emission attempt — before any back-pressure).
  void CountOffered(OperatorId to_op, uint64_t key) {
    OperatorPartition* part = partitions_.at(to_op).get();
    part->CountOffered(part->ShardOf(key));
  }

  // ---- Processing bookkeeping ----
  /// Called by an executor when a tuple has been fully processed.
  void OnProcessed(OperatorId op, const Tuple& t);

  /// Tuples dispatched toward `op` but not yet fully processed (in network +
  /// queued + being processed). The RC drain barrier waits on this.
  int64_t inflight(OperatorId op) const { return inflight_.at(op); }

  // ---- Order validation (enabled by config.validate_key_order) ----
  /// Assigns the arrival sequence number for a tuple entering `op`.
  void StampArrival(OperatorId op, Tuple* t);
  OrderValidator* validator() {
    return validate_ ? &validator_ : nullptr;
  }

  // ---- Accessors ----
  /// The execution backend: virtual clock + deferred-call scheduling
  /// (SimBackend by default; see exec/execution_backend.h).
  exec::ExecutionBackend* exec() { return exec_; }
  Network* net() { return net_; }
  /// The shared shard-migration engine (single migration code path for the
  /// elastic executor and the RC repartitioner).
  MigrationEngine* migration() { return migration_; }
  /// Injected node faults (scenario layer): per-node CPU slowdown factors
  /// and scheduling availability. Executors scale sampled service times by
  /// faults()->cpu_factor(node); the scheduler zeroes the capacity of
  /// unavailable nodes.
  const NodeFaultPlane* faults() const { return faults_; }
  const Topology& topology() const { return *topology_; }
  const EngineConfig& config() const { return *config_; }
  EngineMetrics* metrics() { return metrics_; }
  Rng* rng() { return &rng_; }

  /// Resets executor + engine counters (after warm-up) and starts a new
  /// perf-counter window (events/allocs/messages per routed tuple).
  void ResetMetricsAfterWarmup();

 private:
  struct FlushRetry;
  struct BatchDeliver;

  /// Drains the job from job->next; schedules itself on back-pressure.
  void FlushJobStep(FlushJob* job);

  std::vector<Tuple>* AcquireTupleBatch();
  void ReleaseTupleBatch(std::vector<Tuple>* batch);

  exec::ExecutionBackend* exec_;
  Network* net_;
  MigrationEngine* migration_;
  const NodeFaultPlane* faults_;
  const Topology* topology_;
  const EngineConfig* config_;
  EngineMetrics* metrics_;
  bool validate_;
  size_t max_batch_;
  Rng rng_;

  std::vector<std::unique_ptr<OperatorPartition>> partitions_;
  std::vector<std::vector<ExecutorPtr>> executors_;
  std::vector<int64_t> inflight_;
  OrderValidator validator_;

  // Free-list pools (owned storage + free pointers). Entries retain vector
  // capacity, so after warm-up both pools stop allocating.
  std::vector<std::unique_ptr<FlushJob>> job_pool_;
  std::vector<FlushJob*> free_jobs_;
  std::vector<std::unique_ptr<std::vector<Tuple>>> batch_pool_;
  std::vector<std::vector<Tuple>*> free_batches_;
};

}  // namespace elasticutor
