// Measurement plumbing shared by all paradigms:
//  * ExecutorMetrics — cumulative counters per executor; the scheduler and
//    the RC controller snapshot and diff them each interval to estimate
//    λ_j, µ_j and data intensity.
//  * EngineMetrics — sink throughput/latency (totals, histograms, and per-
//    second time series for the "instantaneous" figures) plus elasticity
//    operation accounting (sync/migration time breakdowns of Fig 8).
//  * OrderValidator — asserts the per-key processing-order invariant.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/rate_meter.h"
#include "engine/ids.h"
#include "sim/time.h"

namespace elasticutor {

struct ExecutorMetrics {
  // Data path (cumulative).
  int64_t arrivals = 0;
  int64_t processed = 0;
  int64_t busy_ns = 0;          // Summed over all tasks/cores.
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;

  // Instantaneous.
  int64_t queued = 0;           // Tuples waiting in all pending queues.

  void Reset() {
    arrivals = processed = busy_ns = bytes_in = bytes_out = 0;
  }
};

/// Deterministic hot-path cost counters over a measurement window (started
/// by EngineMetrics::BeginPerfWindow, normally at the warm-up reset). The
/// per-routed-tuple ratios are exact at a fixed seed/scale, so CI can gate
/// the simulator's per-tuple overheads without flaky wall-clock assertions
/// (bench_core_speed reports both).
struct PerfCounters {
  int64_t routed_tuples = 0;        // Admissions through Runtime routing.
  int64_t events_fired = 0;         // Simulator events executed.
  int64_t callback_heap_allocs = 0; // EventFn inline-storage misses.
  int64_t messages_sent = 0;        // Network messages (batches count once).

  double events_per_tuple() const { return Ratio(events_fired); }
  double heap_allocs_per_tuple() const { return Ratio(callback_heap_allocs); }
  double messages_per_tuple() const { return Ratio(messages_sent); }

 private:
  double Ratio(int64_t count) const {
    return routed_tuples > 0
               ? static_cast<double>(count) /
                     static_cast<double>(routed_tuples)
               : 0.0;
  }
};

/// One elasticity operation (shard reassignment / RC repartition) breakdown.
/// The routing-pause window decomposes as pause_ns = sync_ns + migration_ns;
/// under chunked-live migration most of the state moves during precopy_ns,
/// while processing continues, and only delta_bytes ship inside the pause.
struct ElasticityOp {
  bool inter_node = false;
  SimDuration sync_ns = 0;       // Drain / coordination inside the pause.
  SimDuration precopy_ns = 0;    // Live pre-copy (processing continues).
  SimDuration migration_ns = 0;  // State transfer inside the pause.
  SimDuration pause_ns = 0;      // Total routing-pause window.
  int64_t moved_bytes = 0;       // Total state shipped (pre-copy + delta).
  int64_t delta_bytes = 0;       // Shipped inside the pause window.
};

class EngineMetrics {
 public:
  EngineMetrics()
      : sink_throughput_(kNanosPerSecond), sink_latency_sum_(kNanosPerSecond),
        sink_latency_count_(kNanosPerSecond) {}

  /// Records the completion of a tuple at a sink operator.
  void OnSinkTuple(SimTime now, SimTime created_at) {
    ++sink_count_;
    latency_.Record(now - created_at);
    sink_throughput_.Add(now, 1.0);
    sink_latency_sum_.Add(now, static_cast<double>(now - created_at));
    sink_latency_count_.Add(now, 1.0);
  }

  void OnElasticityOp(const ElasticityOp& op) { ops_.push_back(op); }

  /// Called by the runtime for every admitted (routed) tuple; `n` > 1 when a
  /// micro-batch routes several tuples in one message.
  void OnTuplesRouted(int64_t n) { routed_tuples_ += n; }
  int64_t routed_tuples() const { return routed_tuples_; }

  /// Starts a perf-counter window: subsequent PerfWindow() calls report
  /// deltas from this point. The simulator/EventFn totals are passed in
  /// because they live below the engine layer; Network messages are windowed
  /// by Network::ResetCounters (performed by the same warm-up reset).
  void BeginPerfWindow(int64_t events_now, int64_t heap_allocs_now) {
    routed_tuples_ = 0;
    perf_events_base_ = events_now;
    perf_allocs_base_ = heap_allocs_now;
  }
  PerfCounters PerfWindow(int64_t events_now, int64_t heap_allocs_now,
                          int64_t messages_since_reset) const {
    PerfCounters perf;
    perf.routed_tuples = routed_tuples_;
    perf.events_fired = events_now - perf_events_base_;
    perf.callback_heap_allocs = heap_allocs_now - perf_allocs_base_;
    perf.messages_sent = messages_since_reset;
    return perf;
  }

  /// Attributes task busy time to the node it ran on (straggler/failover
  /// scenarios report where the cluster's processing actually happened).
  void OnBusy(int32_t node, SimDuration ns) {
    if (node >= static_cast<int32_t>(busy_ns_by_node_.size())) {
      busy_ns_by_node_.resize(node + 1, 0);
    }
    busy_ns_by_node_[node] += ns;
  }

  /// Cumulative busy ns per node since the last warm-up reset. Nodes that
  /// never ran a task may be absent (treat as zero).
  const std::vector<int64_t>& busy_ns_by_node() const {
    return busy_ns_by_node_;
  }

  /// Bulk merges used by the native runtime AFTER its threads joined: the
  /// native data path keeps per-worker counters and sink-latency histograms
  /// (no shared mutable metrics while running) and folds them in once, so
  /// EngineMetrics itself stays single-threaded on every backend. Time
  /// series remain simulator-only (timing columns); latency() is valid on
  /// both backends — post-drain only on the native one.
  void MergeSinkCount(int64_t n) { sink_count_ += n; }
  void MergeLatency(const Histogram& h) { latency_.Merge(h); }

  int64_t sink_count() const { return sink_count_; }
  const Histogram& latency() const { return latency_; }
  const TimeSeries& sink_throughput_series() const { return sink_throughput_; }
  const TimeSeries& latency_sum_series() const { return sink_latency_sum_; }
  const TimeSeries& latency_count_series() const {
    return sink_latency_count_;
  }
  const std::vector<ElasticityOp>& elasticity_ops() const { return ops_; }

  /// Mean sink throughput (tuples/s) between two instants.
  double MeanThroughput(SimTime from, SimTime to) const {
    if (to <= from) return 0.0;
    return static_cast<double>(sink_count_in_window(from, to)) /
           ToSeconds(to - from);
  }

  int64_t sink_count_in_window(SimTime from, SimTime to) const;

  /// Clears counters/histograms (benches call after warm-up). Time series
  /// are kept (they are globally binned).
  void ResetAfterWarmup() {
    sink_count_ = 0;
    latency_.Reset();
    ops_.clear();
    busy_ns_by_node_.clear();
    routed_tuples_ = 0;
  }

 private:
  int64_t sink_count_ = 0;
  int64_t routed_tuples_ = 0;
  int64_t perf_events_base_ = 0;
  int64_t perf_allocs_base_ = 0;
  Histogram latency_;
  TimeSeries sink_throughput_;
  TimeSeries sink_latency_sum_;
  TimeSeries sink_latency_count_;
  std::vector<ElasticityOp> ops_;
  std::vector<int64_t> busy_ns_by_node_;
};

/// Checks that tuples of the same key are processed in arrival order at each
/// operator, across shard reassignments and repartitionings (§2.1's "basic
/// requirement in stateful computation").
class OrderValidator {
 public:
  /// Assigns the arrival sequence number for (op, key).
  uint64_t OnArrive(OperatorId op, uint64_t key) {
    return ++arrival_seq_[Slot(op, key)];
  }

  /// Validates processing order; increments `violations` on error.
  void OnProcess(OperatorId op, uint64_t key, uint64_t seq) {
    uint64_t& last = processed_seq_[Slot(op, key)];
    if (seq != last + 1) {
      ++violations_;
    }
    last = seq;
  }

  int64_t violations() const { return violations_; }

 private:
  static uint64_t Slot(OperatorId op, uint64_t key) {
    return (static_cast<uint64_t>(op) << 48) ^ key;
  }

  std::unordered_map<uint64_t, uint64_t> arrival_seq_;
  std::unordered_map<uint64_t, uint64_t> processed_seq_;
  int64_t violations_ = 0;
};

}  // namespace elasticutor
