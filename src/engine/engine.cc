#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "elastic/elastic_executor.h"
#include "engine/single_task_executor.h"
#include "exec/native_backend.h"
#include "exec/native_runtime.h"
#include "exec/sim_backend.h"
#include "rc/rc_controller.h"
#include "scheduler/scheduler.h"
#include "state/migration_engine.h"

namespace elasticutor {

const char* ParadigmName(Paradigm p) {
  switch (p) {
    case Paradigm::kStatic:
      return "static";
    case Paradigm::kResourceCentric:
      return "resource-centric";
    case Paradigm::kElastic:
      return "elasticutor";
  }
  return "?";
}

namespace {

/// Sim-side TelemetrySource: walks every executor's ExecutorMetrics (and the
/// spouts' emitted counts) into one TelemetrySnapshot, so controllers sample
/// load through the same backend surface on both backends. Per-shard rows
/// stay empty — the simulator's shard accounting lives inside the elastic
/// executors; per-worker busy_ns is the figure-level signal here.
class SimTelemetryAdapter final : public exec::TelemetrySource {
 public:
  SimTelemetryAdapter(const exec::ExecutionBackend* backend,
                      const Topology* topology, Runtime* runtime,
                      const EngineMetrics* metrics, bool elastic)
      : backend_(backend),
        topology_(topology),
        runtime_(runtime),
        metrics_(metrics),
        elastic_(elastic) {}

  exec::TelemetrySnapshot SampleTelemetry() const override {
    exec::TelemetrySnapshot snap;
    snap.sampled_at = backend_->now();
    for (OperatorId op = 0; op < topology_->num_operators(); ++op) {
      const bool is_source = topology_->spec(op).is_source;
      const bool is_sink = topology_->is_sink(op);
      for (const auto& ex : runtime_->executors(op)) {
        if (is_source) {
          exec::SourceTelemetry st;
          st.op = op;
          st.index = ex->index();
          st.emitted =
              std::static_pointer_cast<SpoutExecutor>(ex)->emitted();
          snap.source_emitted += st.emitted;
          snap.sources.push_back(st);
          continue;
        }
        exec::WorkerTelemetry wt;
        wt.op = op;
        wt.index = ex->index();
        wt.busy_ns = ex->metrics().busy_ns;
        wt.processed = ex->metrics().processed;
        if (is_sink) wt.sink_tuples = ex->metrics().processed;
        if (elastic_) {
          auto el = std::static_pointer_cast<ElasticExecutor>(ex);
          wt.speed = el->TaskSpeedOn(el->home_node());
          snap.reassignments_done += el->reassignments_done();
        }
        snap.total_processed += wt.processed;
        snap.total_busy_ns += wt.busy_ns;
        snap.workers.push_back(wt);
      }
    }
    snap.sink_count = metrics_->sink_count();
    return snap;
  }

 private:
  const exec::ExecutionBackend* backend_;
  const Topology* topology_;
  Runtime* runtime_;
  const EngineMetrics* metrics_;
  const bool elastic_;
};

}  // namespace

Engine::Engine(Topology topology, EngineConfig config)
    : topology_(std::move(topology)), config_(config) {
  if (config_.backend == exec::BackendKind::kNative) {
    exec_ = std::make_unique<exec::NativeBackend>();
  } else {
    exec_ = std::make_unique<exec::SimBackend>();
  }
  cluster_ = std::make_unique<Cluster>(config_.num_nodes,
                                       config_.cores_per_node);
  ledger_ = std::make_unique<CoreLedger>(*cluster_);
  faults_ = std::make_unique<NodeFaultPlane>(config_.num_nodes);
  net_ = std::make_unique<Network>(exec_.get(), config_.num_nodes,
                                   config_.net);
  migration_ = std::make_unique<MigrationEngine>(exec_.get(), net_.get(),
                                                 config_.state.migration);
  metrics_ = std::make_unique<EngineMetrics>();
  runtime_ = std::make_unique<Runtime>(exec_.get(), net_.get(),
                                       migration_.get(), faults_.get(),
                                       &topology_, &config_, metrics_.get());
}

Engine::~Engine() = default;

std::vector<int> Engine::ComputeStaticProvisioning() const {
  // Expected relative CPU demand per operator: unit rate per source,
  // propagated through selectivities, times mean processing cost. This is
  // the "enough executors to fully utilize all CPU cores" provisioning of
  // the paper's static baseline (also RC's starting point).
  const int n = topology_.num_operators();
  std::vector<double> rate(n, 0.0);
  std::vector<double> demand(n, 0.0);
  for (OperatorId op : topology_.topo_order()) {
    const OperatorSpec& spec = topology_.spec(op);
    if (spec.is_source) {
      rate[op] = 1.0;
      continue;
    }
    for (OperatorId up : topology_.upstream(op)) {
      rate[op] += rate[up] * topology_.spec(up).selectivity;
    }
    demand[op] = rate[op] * static_cast<double>(spec.mean_cost_ns);
  }
  // Sources emit their input as-is (selectivity applies to processing ops;
  // for sources we use selectivity 1 implicitly via rate[op] above).
  double total_demand = 0.0;
  for (OperatorId op = 0; op < n; ++op) total_demand += demand[op];

  std::vector<int> counts(n, 0);
  if (total_demand <= 0) return counts;
  int total_cores = cluster_->total_cores();
  int assigned = 0;
  std::vector<std::pair<double, OperatorId>> remainders;
  for (OperatorId op = 0; op < n; ++op) {
    if (demand[op] <= 0) continue;
    double exact = total_cores * demand[op] / total_demand;
    counts[op] = std::max(1, static_cast<int>(std::floor(exact)));
    assigned += counts[op];
    remainders.emplace_back(exact - std::floor(exact), op);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  size_t r = 0;
  while (assigned < total_cores && !remainders.empty()) {
    ++counts[remainders[r % remainders.size()].second];
    ++assigned;
    ++r;
  }
  while (assigned > total_cores) {
    // Shave the largest counts down to fit.
    OperatorId biggest = -1;
    for (OperatorId op = 0; op < n; ++op) {
      if (counts[op] > 1 && (biggest < 0 || counts[op] > counts[biggest])) {
        biggest = op;
      }
    }
    if (biggest < 0) break;
    --counts[biggest];
    --assigned;
  }
  return counts;
}

Status Engine::SetupSources(OperatorId op, int* next_home_node) {
  const OperatorSpec& spec = topology_.spec(op);
  if (topology_.downstream(op).size() != 1) {
    return Status::InvalidArgument("source '" + spec.name +
                                   "' must have exactly one downstream "
                                   "operator");
  }
  auto partition = std::make_unique<OperatorPartition>(
      spec.total_shards(), spec.num_executors, /*salt=*/op);
  runtime_->SetPartition(op, std::move(partition));
  std::vector<ExecutorPtr> executors;
  for (int e = 0; e < spec.num_executors; ++e) {
    NodeId home = (*next_home_node)++ % cluster_->num_nodes();
    executors.push_back(
        std::make_shared<SpoutExecutor>(runtime_.get(), op, e, home));
  }
  runtime_->SetExecutors(op, std::move(executors));
  return Status::OK();
}

Status Engine::SetupStaticLike(OperatorId op) {
  const OperatorSpec& spec = topology_.spec(op);
  int count = spec.static_executors > 0 ? spec.static_executors
                                        : provisioned_[op];
  count = std::max(1, count);
  // An executor without shards would idle forever; shard count caps the
  // useful parallelism of the static/RC paradigms.
  count = std::min(count, spec.total_shards());
  auto partition = std::make_unique<OperatorPartition>(spec.total_shards(),
                                                       count, /*salt=*/op);
  OperatorPartition* part = partition.get();
  runtime_->SetPartition(op, std::move(partition));

  std::vector<ExecutorPtr> executors;
  for (int e = 0; e < count; ++e) {
    // One core per executor, round-robin over nodes with capacity.
    NodeId node = -1;
    for (int i = 0; i < cluster_->num_nodes(); ++i) {
      NodeId candidate = (round_robin_node_ + i) % cluster_->num_nodes();
      if (ledger_->FreeOn(candidate) > 0) {
        node = candidate;
        break;
      }
    }
    if (node < 0) {
      return Status::ResourceExhausted(
          "not enough cores for static executors of '" + spec.name + "'");
    }
    round_robin_node_ = (node + 1) % cluster_->num_nodes();
    ELASTICUTOR_CHECK(ledger_->Acquire(node, MakeExecutorId(op, e)) >= 0);
    auto ex =
        std::make_shared<SingleTaskExecutor>(runtime_.get(), op, e, node);
    executors.push_back(std::move(ex));
  }
  // Install shard states on their owning executors.
  for (int s = 0; s < part->num_shards(); ++s) {
    auto owner = std::static_pointer_cast<SingleTaskExecutor>(
        executors[part->ExecutorOfShard(s)]);
    ELASTICUTOR_RETURN_NOT_OK(
        owner->state_store()->CreateShard(s, spec.shard_state_bytes));
  }
  runtime_->SetExecutors(op, std::move(executors));
  return Status::OK();
}

Status Engine::SetupElastic(OperatorId op, int* next_home_node) {
  const OperatorSpec& spec = topology_.spec(op);
  auto partition = std::make_unique<OperatorPartition>(
      spec.total_shards(), spec.num_executors, /*salt=*/op);
  partition->SetBlockedMap(spec.shards_per_executor);
  runtime_->SetPartition(op, std::move(partition));

  std::vector<ExecutorPtr> executors;
  for (int e = 0; e < spec.num_executors; ++e) {
    // Home nodes round-robin; the first core must be local.
    NodeId home = -1;
    for (int i = 0; i < cluster_->num_nodes(); ++i) {
      NodeId candidate = (*next_home_node + i) % cluster_->num_nodes();
      if (ledger_->FreeOn(candidate) > 0) {
        home = candidate;
        break;
      }
    }
    if (home < 0) {
      return Status::ResourceExhausted(
          "not enough cores to give every elastic executor one core; "
          "reduce executors per operator");
    }
    *next_home_node = (home + 1) % cluster_->num_nodes();
    auto ex = std::make_shared<ElasticExecutor>(
        runtime_.get(), op, e, home,
        /*first_shard=*/e * spec.shards_per_executor,
        /*num_shards=*/spec.shards_per_executor);
    ELASTICUTOR_RETURN_NOT_OK(ex->InitShards(spec.shard_state_bytes));
    ELASTICUTOR_CHECK(ledger_->Acquire(home, ex->id()) >= 0);
    ELASTICUTOR_RETURN_NOT_OK(ex->AddCore(home));
    executors.push_back(std::move(ex));
  }
  runtime_->SetExecutors(op, std::move(executors));
  return Status::OK();
}

Status Engine::Setup() {
  if (setup_done_) return Status::FailedPrecondition("Setup called twice");
  provisioned_ = ComputeStaticProvisioning();

  if (config_.backend == exec::BackendKind::kNative) {
    // Native: the thread/channel dataflow replaces the simulated executor
    // wiring entirely. Elasticity runs live: shards migrate between worker
    // threads through the in-channel labeling barrier, reusing the same
    // MigrationEngine the simulated controllers use.
    native_ = std::make_unique<exec::NativeRuntime>(
        &topology_, &config_,
        static_cast<exec::NativeBackend*>(exec_.get()), migration_.get(),
        metrics_.get());
    ELASTICUTOR_RETURN_NOT_OK(native_->Setup());
    // The runtime is both halves of the resource-control plane: the
    // telemetry source (wall-busy counters) and the worker pool
    // (GrowWorkers/ShrinkWorkers actuation).
    exec_->BindResourcePlane(native_.get(), native_.get());
    setup_done_ = true;
    return Status::OK();
  }

  int source_home = 0;
  int elastic_home = 0;
  for (OperatorId op : topology_.topo_order()) {
    const OperatorSpec& spec = topology_.spec(op);
    if (spec.is_source) {
      ELASTICUTOR_RETURN_NOT_OK(SetupSources(op, &source_home));
      continue;
    }
    switch (config_.paradigm) {
      case Paradigm::kStatic:
      case Paradigm::kResourceCentric:
        ELASTICUTOR_RETURN_NOT_OK(SetupStaticLike(op));
        break;
      case Paradigm::kElastic:
        ELASTICUTOR_RETURN_NOT_OK(SetupElastic(op, &elastic_home));
        break;
    }
  }

  std::vector<OperatorId> managed;
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    if (!topology_.spec(op).is_source) managed.push_back(op);
  }
  if (config_.paradigm == Paradigm::kElastic) {
    std::vector<std::shared_ptr<ElasticExecutor>> elastic;
    for (OperatorId op : managed) {
      for (const auto& ex : runtime_->executors(op)) {
        elastic.push_back(std::static_pointer_cast<ElasticExecutor>(ex));
      }
    }
    scheduler_ = std::make_unique<DynamicScheduler>(
        runtime_.get(), cluster_.get(), ledger_.get(), std::move(elastic));
  } else if (config_.paradigm == Paradigm::kResourceCentric) {
    rc_ = std::make_unique<RcController>(runtime_.get(), cluster_.get(),
                                         ledger_.get(), managed);
  }
  // Telemetry half only: simulated "worker scaling" is the elastic
  // executors' AddCore/RemoveCore, not a thread pool.
  sim_telemetry_ = std::make_unique<SimTelemetryAdapter>(
      exec_.get(), &topology_, runtime_.get(), metrics_.get(),
      config_.paradigm == Paradigm::kElastic);
  exec_->BindResourcePlane(sim_telemetry_.get(), /*pool=*/nullptr);
  setup_done_ = true;
  return Status::OK();
}

void Engine::Start() {
  ELASTICUTOR_CHECK_MSG(setup_done_, "Start before Setup");
  if (native_ != nullptr) {
    native_->Start();
    return;
  }
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    for (const auto& ex : runtime_->executors(op)) {
      ex->Start();
    }
  }
  if (scheduler_ && config_.scheduler.enabled) scheduler_->Start();
  if (rc_ && config_.rc.enabled) rc_->Start();
}

void Engine::ResetMetricsAfterWarmup() {
  runtime_->ResetMetricsAfterWarmup();
  metrics_reset_at_ = exec_->now();
}

void Engine::RunToCompletion() {
  if (native_ != nullptr) {
    native_->WaitDrained();
    return;
  }
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    const OperatorSpec& spec = topology_.spec(op);
    ELASTICUTOR_CHECK_MSG(!spec.is_source || spec.source.max_tuples > 0,
                          "RunToCompletion requires max_tuples on every "
                          "source (unbounded sources never drain)");
  }
  // Budgeted sources fall silent once their tuples are routed; the event
  // queue then drains and RunUntil returns early. Periodic control
  // processes (balancer/scheduler/RC ticks) would keep the queue non-empty
  // forever, so step in bounded windows until the sinks stop moving.
  int64_t last_sinks = -1;
  while (metrics_->sink_count() != last_sinks) {
    last_sinks = metrics_->sink_count();
    exec_->RunUntil(exec_->now() + Seconds(60));
  }
}

void Engine::StopSources() {
  if (native_ != nullptr) {
    native_->StopSources();
    return;
  }
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    if (!topology_.spec(op).is_source) continue;
    for (const auto& ex : runtime_->executors(op)) {
      std::static_pointer_cast<SpoutExecutor>(ex)->Stop();
    }
  }
}

void Engine::ShapeSourceRates(std::function<double(SimTime)> factor) {
  ELASTICUTOR_CHECK_MSG(factor != nullptr, "rate shaper must be callable");
  for (OperatorId op = 0; op < topology_.num_operators(); ++op) {
    OperatorSpec& spec = topology_.mutable_spec(op);
    if (!spec.is_source || spec.source.mode != SourceSpec::Mode::kTrace) {
      continue;
    }
    ELASTICUTOR_CHECK_MSG(spec.source.rate_fn != nullptr,
                          "trace source without rate_fn");
    spec.source.rate_fn = [base = spec.source.rate_fn,
                           factor](SimTime t) { return base(t) * factor(t); };
  }
}

double Engine::MeasuredThroughput() const {
  SimDuration elapsed = exec_->now() - metrics_reset_at_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(metrics_->sink_count()) / ToSeconds(elapsed);
}

int64_t Engine::order_violations() const {
  if (native_ != nullptr) return native_->order_violations();
  const OrderValidator* v =
      const_cast<Runtime*>(runtime_.get())->validator();
  return v == nullptr ? 0 : v->violations();
}

std::vector<std::shared_ptr<ElasticExecutor>> Engine::elastic_executors(
    OperatorId op) const {
  std::vector<std::shared_ptr<ElasticExecutor>> out;
  for (const auto& ex : runtime_->executors(op)) {
    out.push_back(std::static_pointer_cast<ElasticExecutor>(ex));
  }
  return out;
}

std::vector<std::shared_ptr<SpoutExecutor>> Engine::source_executors(
    OperatorId op) const {
  std::vector<std::shared_ptr<SpoutExecutor>> out;
  for (const auto& ex : runtime_->executors(op)) {
    out.push_back(std::static_pointer_cast<SpoutExecutor>(ex));
  }
  return out;
}

}  // namespace elasticutor
