#include "elastic/load_balancer.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace elasticutor {
namespace balance {

double ImbalanceFactor(const std::vector<double>& slot_load) {
  if (slot_load.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (double load : slot_load) {
    max = std::max(max, load);
    sum += load;
  }
  if (sum <= 0.0) return 1.0;
  double avg = sum / static_cast<double>(slot_load.size());
  return max / avg;
}

std::vector<Move> PlanMoves(const std::vector<double>& shard_load,
                            std::vector<int>* assignment, int num_slots,
                            double theta, int max_moves,
                            const std::vector<bool>* frozen) {
  ELASTICUTOR_CHECK(assignment != nullptr);
  ELASTICUTOR_CHECK(assignment->size() == shard_load.size());
  std::vector<Move> moves;
  if (num_slots <= 1) return moves;

  // Effective slot set: frozen slots are excluded from the balance.
  auto is_frozen = [&](int slot) {
    return frozen != nullptr && (*frozen)[slot];
  };

  std::vector<double> slot_load(num_slots, 0.0);
  for (size_t s = 0; s < assignment->size(); ++s) {
    int slot = (*assignment)[s];
    ELASTICUTOR_CHECK(slot >= 0 && slot < num_slots);
    slot_load[slot] += shard_load[s];
  }

  int active = 0;
  double total = 0.0;
  for (int i = 0; i < num_slots; ++i) {
    if (!is_frozen(i)) {
      ++active;
      total += slot_load[i];
    }
  }
  if (active <= 1 || total <= 0.0) return moves;
  const double avg = total / active;

  while (static_cast<int>(moves.size()) < max_moves) {
    // Most- and least-loaded active slots.
    int src = -1, dst = -1;
    for (int i = 0; i < num_slots; ++i) {
      if (is_frozen(i)) continue;
      if (src < 0 || slot_load[i] > slot_load[src]) src = i;
      if (dst < 0 || slot_load[i] < slot_load[dst]) dst = i;
    }
    double delta = slot_load[src] / avg;
    if (delta <= theta || src == dst) break;

    // Highest load among slots other than src and dst (for the δ' of a
    // candidate move).
    double max_other = 0.0;
    for (int i = 0; i < num_slots; ++i) {
      if (is_frozen(i) || i == src || i == dst) continue;
      max_other = std::max(max_other, slot_load[i]);
    }

    // Pick the shard on src whose move to dst reduces δ the most.
    int best_shard = -1;
    double best_new_max = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < assignment->size(); ++s) {
      if ((*assignment)[s] != src) continue;
      double w = shard_load[s];
      if (w <= 0.0) continue;
      double new_max =
          std::max({max_other, slot_load[src] - w, slot_load[dst] + w});
      if (new_max < best_new_max) {
        best_new_max = new_max;
        best_shard = static_cast<int>(s);
      }
    }
    if (best_shard < 0) break;                    // src has no movable load.
    if (best_new_max >= slot_load[src]) break;    // No move improves δ.

    slot_load[src] -= shard_load[best_shard];
    slot_load[dst] += shard_load[best_shard];
    (*assignment)[best_shard] = dst;
    moves.push_back(Move{best_shard, src, dst});
  }
  return moves;
}

std::vector<Move> PlanEvacuation(const std::vector<int>& shards,
                                 const std::vector<double>& shard_load,
                                 std::vector<double>* slot_load, int from_slot,
                                 const std::vector<bool>& allowed) {
  ELASTICUTOR_CHECK(slot_load != nullptr);
  ELASTICUTOR_CHECK(slot_load->size() == allowed.size());
  std::vector<int> order = shards;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return shard_load[a] > shard_load[b];  // Heaviest first (FFD).
  });
  std::vector<Move> moves;
  moves.reserve(order.size());
  for (int shard : order) {
    int best = -1;
    for (size_t i = 0; i < slot_load->size(); ++i) {
      if (!allowed[i] || static_cast<int>(i) == from_slot) continue;
      if (best < 0 || (*slot_load)[i] < (*slot_load)[best]) {
        best = static_cast<int>(i);
      }
    }
    ELASTICUTOR_CHECK_MSG(best >= 0, "no destination slot for evacuation");
    (*slot_load)[best] += shard_load[shard];
    moves.push_back(Move{shard, from_slot, best});
  }
  return moves;
}

}  // namespace balance
}  // namespace elasticutor
