#include "elastic/load_balancer.h"

#include <algorithm>
#include <limits>

namespace elasticutor {
namespace balance {

namespace {

// Capacity of `slot` under an optional capacity vector (1.0 when null).
inline double CapOf(const std::vector<double>* capacity, int slot) {
  return capacity == nullptr ? 1.0 : (*capacity)[slot];
}

}  // namespace

double ImbalanceFactor(const std::vector<double>& slot_load,
                       const std::vector<double>* capacity) {
  if (slot_load.empty()) return 1.0;
  ELASTICUTOR_CHECK(capacity == nullptr ||
                    capacity->size() == slot_load.size());
  double max_norm = 0.0, sum = 0.0, cap_sum = 0.0;
  for (size_t i = 0; i < slot_load.size(); ++i) {
    double cap = CapOf(capacity, static_cast<int>(i));
    if (cap <= 0.0) continue;  // Zero-capacity slots are out of the balance.
    max_norm = std::max(max_norm, slot_load[i] / cap);
    sum += slot_load[i];
    cap_sum += cap;
  }
  if (sum <= 0.0 || cap_sum <= 0.0) return 1.0;
  // In the balanced state every slot carries load proportional to its
  // capacity, i.e. a normalized load of sum/cap_sum — the capacity-weighted
  // average. With unit capacities this is the paper's max/avg.
  return max_norm / (sum / cap_sum);
}

std::vector<Move> PlanMoves(const std::vector<double>& shard_load,
                            std::vector<int>* assignment, int num_slots,
                            double theta, int max_moves,
                            const std::vector<bool>* frozen,
                            const std::vector<double>* capacity) {
  ELASTICUTOR_CHECK(assignment != nullptr);
  ELASTICUTOR_CHECK(assignment->size() == shard_load.size());
  ELASTICUTOR_CHECK(capacity == nullptr ||
                    static_cast<int>(capacity->size()) == num_slots);
  std::vector<Move> moves;
  if (num_slots <= 1) return moves;

  // Effective slot set: frozen and zero-capacity slots are excluded from
  // the balance.
  auto is_frozen = [&](int slot) {
    if (frozen != nullptr && (*frozen)[slot]) return true;
    return CapOf(capacity, slot) <= 0.0;
  };
  auto norm = [&](double load, int slot) {
    return load / CapOf(capacity, slot);
  };

  std::vector<double> slot_load(num_slots, 0.0);
  for (size_t s = 0; s < assignment->size(); ++s) {
    int slot = (*assignment)[s];
    ELASTICUTOR_CHECK(slot >= 0 && slot < num_slots);
    slot_load[slot] += shard_load[s];
  }

  int active = 0;
  double total = 0.0, total_cap = 0.0;
  for (int i = 0; i < num_slots; ++i) {
    if (!is_frozen(i)) {
      ++active;
      total += slot_load[i];
      total_cap += CapOf(capacity, i);
    }
  }
  if (active <= 1 || total <= 0.0 || total_cap <= 0.0) return moves;
  // Balanced-state normalized load (capacity-weighted average).
  const double avg = total / total_cap;

  while (static_cast<int>(moves.size()) < max_moves) {
    // Most- and least-loaded active slots by normalized load.
    int src = -1, dst = -1;
    for (int i = 0; i < num_slots; ++i) {
      if (is_frozen(i)) continue;
      if (src < 0 || norm(slot_load[i], i) > norm(slot_load[src], src)) {
        src = i;
      }
      if (dst < 0 || norm(slot_load[i], i) < norm(slot_load[dst], dst)) {
        dst = i;
      }
    }
    double delta = norm(slot_load[src], src) / avg;
    if (delta <= theta || src == dst) break;

    // Highest normalized load among slots other than src and dst (for the
    // δ' of a candidate move).
    double max_other = 0.0;
    for (int i = 0; i < num_slots; ++i) {
      if (is_frozen(i) || i == src || i == dst) continue;
      max_other = std::max(max_other, norm(slot_load[i], i));
    }

    // Pick the shard on src whose move to dst reduces δ the most.
    int best_shard = -1;
    double best_new_max = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < assignment->size(); ++s) {
      if ((*assignment)[s] != src) continue;
      double w = shard_load[s];
      if (w <= 0.0) continue;
      double new_max = std::max({max_other, norm(slot_load[src] - w, src),
                                 norm(slot_load[dst] + w, dst)});
      if (new_max < best_new_max) {
        best_new_max = new_max;
        best_shard = static_cast<int>(s);
      }
    }
    if (best_shard < 0) break;  // src has no movable load.
    if (best_new_max >= norm(slot_load[src], src)) break;  // No improvement.

    slot_load[src] -= shard_load[best_shard];
    slot_load[dst] += shard_load[best_shard];
    (*assignment)[best_shard] = dst;
    moves.push_back(Move{best_shard, src, dst});
  }
  return moves;
}

Result<std::vector<Move>> PlanEvacuation(
    const std::vector<int>& shards, const std::vector<double>& shard_load,
    std::vector<double>* slot_load, int from_slot,
    const std::vector<bool>& allowed, const std::vector<double>* capacity) {
  ELASTICUTOR_CHECK(slot_load != nullptr);
  ELASTICUTOR_CHECK(slot_load->size() == allowed.size());
  ELASTICUTOR_CHECK(capacity == nullptr ||
                    capacity->size() == allowed.size());
  std::vector<int> order = shards;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return shard_load[a] > shard_load[b];  // Heaviest first (FFD).
  });
  std::vector<Move> moves;
  moves.reserve(order.size());
  for (int shard : order) {
    // Destination with the lowest normalized load after receiving the
    // shard; zero-capacity slots can never receive.
    int best = -1;
    double best_norm = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < slot_load->size(); ++i) {
      if (!allowed[i] || static_cast<int>(i) == from_slot) continue;
      double cap = CapOf(capacity, static_cast<int>(i));
      if (cap <= 0.0) continue;
      double after = ((*slot_load)[i] + shard_load[shard]) / cap;
      if (after < best_norm) {
        best_norm = after;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      return Status::FailedPrecondition(
          "no destination slot for evacuation");
    }
    (*slot_load)[best] += shard_load[shard];
    moves.push_back(Move{shard, from_slot, best});
  }
  return moves;
}

}  // namespace balance
}  // namespace elasticutor
