// Intra-executor load-balancer configuration (§3.1).
#pragma once

#include "common/units.h"
#include "sim/time.h"

namespace elasticutor {

struct BalancerConfig {
  /// Master switch (benches probing manual shard placement disable it).
  bool enabled = true;

  /// Imbalance threshold θ: rebalancing runs until δ = max task load /
  /// average task load is at or below this. Paper default 1.2 (max 20%
  /// deviation from the average).
  double theta = 1.2;

  /// How often each elastic executor evaluates its task balance.
  SimDuration interval_ns = Millis(250);

  /// Safety valve on reassignments per balancing round. Large enough that
  /// a freshly grown executor (e.g. 1 -> 256 cores) spreads its shards
  /// within a few rounds; intra-process moves are nearly free anyway.
  int max_moves_per_round = 512;

  /// EWMA smoothing for per-shard load statistics.
  double shard_load_alpha = 0.4;

  /// Capacity-aware balancing: weight the planner by each task's observed
  /// service rate (nominal work executed per wall-second busy), so shards
  /// drain off a slow task — e.g. on an undetected straggler node — even
  /// when raw load shares look balanced. Off = the paper's homogeneous
  /// heuristic (kept for ablation).
  bool capacity_aware = true;

  /// EWMA smoothing for the per-task service-rate estimate.
  double task_speed_alpha = 0.4;

  /// Minimum busy time per balancing interval before a task's service-rate
  /// observation updates the EWMA (less than this is measurement noise).
  SimDuration task_speed_min_busy_ns = Millis(1);

  /// Per-round drift of an *unobserved* task's speed estimate back toward
  /// nominal. A task drained to zero shards accrues no busy time and would
  /// otherwise keep its stuck-low estimate forever — permanently stranding
  /// the core after the node heals. The drift makes the planner probe it
  /// again; if the node is still slow the next observation pushes the
  /// estimate right back down.
  double task_speed_recovery = 0.05;
};

}  // namespace elasticutor
