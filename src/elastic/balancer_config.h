// Intra-executor load-balancer configuration (§3.1).
#pragma once

#include "common/units.h"
#include "sim/time.h"

namespace elasticutor {

struct BalancerConfig {
  /// Master switch (benches probing manual shard placement disable it).
  bool enabled = true;

  /// Imbalance threshold θ: rebalancing runs until δ = max task load /
  /// average task load is at or below this. Paper default 1.2 (max 20%
  /// deviation from the average).
  double theta = 1.2;

  /// How often each elastic executor evaluates its task balance.
  SimDuration interval_ns = Millis(250);

  /// Safety valve on reassignments per balancing round. Large enough that
  /// a freshly grown executor (e.g. 1 -> 256 cores) spreads its shards
  /// within a few rounds; intra-process moves are nearly free anyway.
  int max_moves_per_round = 512;

  /// EWMA smoothing for per-shard load statistics.
  double shard_load_alpha = 0.4;
};

}  // namespace elasticutor
