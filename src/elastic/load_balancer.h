// Shard-to-slot load balancing (§3.1). A "slot" is a task for the
// intra-executor balancer, or an executor for the RC operator-level
// repartitioner — the paper gives both the same heuristic, a variant of
// First-Fit-Decreasing for the (NP-hard) multi-way partitioning problem:
//
//   while δ = max_load/avg_load > θ:
//     among all moves of one shard from the most-loaded slot to the
//     least-loaded slot, apply the one that reduces δ the most.
//
// The move count is what the heuristic minimizes implicitly: shards are only
// ever moved off the most-loaded slot, and the loop stops as soon as the
// imbalance target is met.
//
// Capacity model: the paper's formulation assumes homogeneous slot speeds.
// Every planner entry point optionally takes per-slot capacities (relative
// service rates; 1.0 = nominal). With capacities, the quantity balanced is
// the *normalized* load load_i / cap_i — the wall-clock seconds of work per
// second a slot actually faces — so a slot on a 4x-straggler node (capacity
// 0.25) sheds shards even when raw loads look balanced. A capacity <= 0 is
// treated like a frozen slot (it neither gives nor receives; evacuation
// never targets it). A null capacity vector means all slots weigh 1 and the
// heuristic degenerates to the paper's.
#pragma once

#include <vector>

#include "common/status.h"

namespace elasticutor {
namespace balance {

struct Move {
  int shard;
  int from;
  int to;
};

/// Plans moves until max/avg normalized load <= theta (or no move improves,
/// or max_moves). `assignment` maps shard -> slot and is updated in place to
/// the planned final assignment. Slots listed in `frozen` (same size as
/// num_slots) neither give nor receive shards; so do slots whose `capacity`
/// entry is <= 0.
std::vector<Move> PlanMoves(const std::vector<double>& shard_load,
                            std::vector<int>* assignment, int num_slots,
                            double theta, int max_moves,
                            const std::vector<bool>* frozen = nullptr,
                            const std::vector<double>* capacity = nullptr);

/// Plans the evacuation of `shards` (e.g. of a task being removed):
/// assigns each, heaviest first, to the allowed slot with the lowest
/// resulting normalized load. `slot_load` is updated in place. Returns
/// shard -> destination slot pairs, or FailedPrecondition when no allowed
/// destination slot exists (e.g. a full-cluster fault) — the caller degrades
/// gracefully instead of aborting.
Result<std::vector<Move>> PlanEvacuation(
    const std::vector<int>& shards, const std::vector<double>& shard_load,
    std::vector<double>* slot_load, int from_slot,
    const std::vector<bool>& allowed,
    const std::vector<double>* capacity = nullptr);

/// max/avg over per-slot normalized loads (load_i / cap_i); 1.0 when all
/// loads are zero or there are no slots. Without capacities this is the
/// paper's δ = max load / avg load.
double ImbalanceFactor(const std::vector<double>& slot_load,
                       const std::vector<double>* capacity = nullptr);

}  // namespace balance
}  // namespace elasticutor
