// Shard-to-slot load balancing (§3.1). A "slot" is a task for the
// intra-executor balancer, or an executor for the RC operator-level
// repartitioner — the paper gives both the same heuristic, a variant of
// First-Fit-Decreasing for the (NP-hard) multi-way partitioning problem:
//
//   while δ = max_load/avg_load > θ:
//     among all moves of one shard from the most-loaded slot to the
//     least-loaded slot, apply the one that reduces δ the most.
//
// The move count is what the heuristic minimizes implicitly: shards are only
// ever moved off the most-loaded slot, and the loop stops as soon as the
// imbalance target is met.
#pragma once

#include <vector>

namespace elasticutor {
namespace balance {

struct Move {
  int shard;
  int from;
  int to;
};

/// Plans moves until max/avg <= theta (or no move improves, or max_moves).
/// `assignment` maps shard -> slot and is updated in place to the planned
/// final assignment. Slots listed in `frozen` (same size as num_slots)
/// neither give nor receive shards.
std::vector<Move> PlanMoves(const std::vector<double>& shard_load,
                            std::vector<int>* assignment, int num_slots,
                            double theta, int max_moves,
                            const std::vector<bool>* frozen = nullptr);

/// Plans the evacuation of `shards` (e.g. of a task being removed):
/// assigns each, heaviest first, to the least-loaded allowed slot.
/// `slot_load` is updated in place. Returns shard -> destination slot pairs.
std::vector<Move> PlanEvacuation(const std::vector<int>& shards,
                                 const std::vector<double>& shard_load,
                                 std::vector<double>* slot_load, int from_slot,
                                 const std::vector<bool>& allowed);

/// max/avg over slots; 1.0 when all loads are zero or there are no slots.
double ImbalanceFactor(const std::vector<double>& slot_load);

}  // namespace balance
}  // namespace elasticutor
