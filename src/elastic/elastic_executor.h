// ElasticExecutor — the paper's primary contribution (§3): a lightweight,
// self-contained distributed subsystem responsible for one fixed key
// subspace, able to use a dynamic number of CPU cores on multiple nodes.
//
// Structure (Fig 4):
//  * The main process runs on the executor's local node and hosts the
//    receiver daemon (single entrance for upstream tuples), the emitter
//    daemon (single exit for downstream tuples), the two-tier routing table
//    (static key→shard hash; dynamic shard→task map with per-shard pause
//    buffers) and the local per-process state store.
//  * One task (data-processing thread) per assigned CPU core, each with a
//    pending queue. Tasks on remote nodes live in remote processes with
//    their own state stores; remote tasks exchange tuples only with the
//    receiver/emitter of the main process.
//
// Elasticity operations:
//  * AddCore(node) — creates a task (and a remote process when needed).
//  * RemoveCore(node, done) — drains a task: every shard it owns is
//    reassigned away with the consistent protocol, then the task is
//    destroyed and `done` runs (the scheduler releases the core).
//  * Balance round — the intra-executor load balancer (§3.1).
//
// Consistent shard reassignment (§3.3), on top of the shared
// MigrationEngine: when the backend requires a migration, the engine first
// pre-copies the shard in chunks while the source task keeps processing
// (under MigrationStrategy::kChunkedLive; a sync-blob baseline skips this).
// Only then is routing for the shard paused (arrivals buffer at the
// receiver) and a labeling tuple sent down the same FIFO path as data to the
// source task; when the task pops it, all pending tuples of the shard have
// been processed; the engine ships the dirty delta (or, for sync-blob, the
// whole blob), the shard→task map is updated, and buffered tuples are
// flushed to the destination task. Same-process moves migrate nothing
// (intra-process state sharing — the backend decides).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "elastic/load_balancer.h"
#include "engine/executor_base.h"
#include "engine/runtime.h"
#include "engine/single_task_executor.h"
#include "state/migration_engine.h"
#include "state/state_backend.h"
#include "state/state_store.h"

namespace elasticutor {

class ElasticExecutor : public ExecutorBase {
 public:
  /// Owns global shards [first_shard, first_shard + num_shards).
  ElasticExecutor(Runtime* rt, OperatorId op, ExecutorIndex index, NodeId home,
                  ShardId first_shard, int num_shards);

  /// Creates the shard states in the local store. Call once before Start().
  Status InitShards(int64_t shard_state_bytes);

  // ---- ExecutorBase ----
  void OnTupleArrive(Tuple t) override;  // Receiver daemon.
  /// Receiver daemon, micro-batch arrival (one message, `count` tuples).
  void OnTupleBatch(const Tuple* tuples, size_t count) override;
  bool CanAccept() const override;
  int64_t queued() const override { return total_queued_; }
  void Start() override;

  // ---- Core management (scheduler interface) ----
  Status AddCore(NodeId node);
  /// Drains and destroys one task on `node`; `done` runs when the core is
  /// free. Fails if the executor has a single task or none on `node`.
  Status RemoveCore(NodeId node, EventFn done);

  int num_tasks() const;
  int tasks_on(NodeId node) const;
  /// Cores per node (x_ij column of the assignment matrix), active tasks
  /// only (draining tasks excluded).
  std::unordered_map<NodeId, int> core_distribution() const;
  /// Same data as core_distribution(), as node-ascending (node, cores)
  /// pairs — the sparse placement row the scheduler feeds Algorithm 1.
  std::vector<std::pair<int, int>> placement() const;

  /// Aggregate state size s_j across all processes.
  int64_t state_bytes() const;

  /// Cumulative offered demand for this executor's key subspace, measured
  /// at the upstream routing tables before back-pressure (the scheduler's
  /// λ_j signal; admitted arrivals under-report a starved executor).
  int64_t offered_count() const {
    return rt_->partition(op_)->OfferedInRange(first_shard_, num_shards_);
  }

  /// True while reassignments or task removals are in progress (the
  /// scheduler defers further changes).
  bool transition_pending() const {
    return reassigns_in_progress_ > 0 || removals_in_progress_ > 0;
  }

  // ---- Balancing ----
  /// One balancing round (normally driven by the periodic timer; exposed
  /// for tests and for the scheduler to trigger right after AddCore).
  void RunBalanceRound();

  /// Test/bench hook: reassign one shard to any active task on `node`
  /// using the full consistent-reassignment protocol. Asynchronous; the
  /// resulting ElasticityOp lands in EngineMetrics.
  Status ProbeReassign(int local_shard, NodeId node);

  /// Test/bench hook: freezes/unfreezes the periodic balancer (probes want
  /// a balanced but quiescent executor).
  void set_balancing_frozen(bool frozen) { balancing_frozen_ = frozen; }

  /// Current imbalance factor δ over active tasks (capacity-normalized when
  /// capacity-aware balancing is on).
  double CurrentImbalance() const;

  /// Smoothed service-rate estimate (1.0 = nominal) of the slowest active
  /// task on `node`; 1.0 when the node hosts no task. Tests/benches use it
  /// to observe straggler detection.
  /// DEPRECATED as an introspection surface: prefer the backend-independent
  /// Engine::SampleTelemetry() (WorkerTelemetry::speed carries the same
  /// signal; see exec/telemetry.h). Kept for one release — the balancer
  /// itself still consumes the estimate internally.
  double TaskSpeedOn(NodeId node) const;

  // ---- Introspection (tests/benches) ----
  int shards_on_task_count(NodeId node) const;
  int64_t reassignments_done() const { return reassignments_done_; }
  StateBackend* state_backend() { return backend_.get(); }
  int num_shards() const { return num_shards_; }

 private:
  /// One entry of a task's pending queue: a data tuple, or a labeling
  /// marker (label_id >= 0) of the reassignment protocol.
  struct QueueItem {
    Tuple tuple;
    int label_id = -1;
    bool is_label() const { return label_id >= 0; }
  };

  struct Task {
    int id = -1;
    NodeId node = -1;
    bool busy = false;
    bool draining = false;
    bool waiting_credit = false;
    int outputs_outstanding = 0;
    std::deque<QueueItem> pending;
    Rng rng;
    // Service-rate statistics: nominal (unstretched) work executed vs the
    // wall-clock busy time it actually took on this task's node. Their
    // ratio, EWMA-smoothed, is the task's relative capacity for the
    // balancer (1.0 = nominal speed, 0.25 = a 4x straggler).
    int64_t work_ns = 0;       // Cumulative nominal cost executed.
    int64_t busy_ns = 0;       // Cumulative wall-clock busy time.
    int64_t work_prev_ns = 0;  // Snapshots at the last balance round.
    int64_t busy_prev_ns = 0;
    double speed = 1.0;        // EWMA of work/busy.
  };
  using TaskPtr = std::shared_ptr<Task>;

  struct EmitterEntry {
    Runtime::PendingEmit emit;
    TaskPtr task;  // Credit accounting + liveness.
  };

  struct Reassign {
    int local_shard = -1;
    int from_task = -1;
    int to_task = -1;
    SimTime pause_start = 0;  // Routing paused (pre-copy done).
    SimTime sync_done = 0;    // Labeling tuple drained.
    MigrationEngine::Handle migration;  // Null when no state moves.
    EventFn done;
  };

  // Data path.
  void AdmitOne(Tuple t);
  void RouteToTask(int local_shard, const Tuple& t);
  void EnqueueToTask(const TaskPtr& task, QueueItem item);
  void TaskStartNext(const TaskPtr& task);
  void OnProcessingComplete(const TaskPtr& task, Tuple t);
  /// Appends a task's outputs to the emitter queue (over the network for a
  /// remote task) and releases the job back to the runtime pool.
  void EnqueueEmitter(const TaskPtr& task, Runtime::FlushJob* job);
  void RunEmitter();
  void ScheduleEmitterRetry();
  /// Pops `count` routed entries off the emitter queue, returning output
  /// credit to their tasks (resuming any that were credit-blocked).
  void PopEmitted(size_t count);

  // Reassignment protocol.
  void ReassignShard(int local_shard, int to_task, EventFn done);
  void PauseAndLabel(int label_id);
  void SendLabel(const TaskPtr& task, int label_id);
  void OnLabel(const TaskPtr& task, int label_id);
  void FinishReassign(int label_id, const MigrationStats& stats);

  // Task removal.
  void TryFinalizeRemoval(const TaskPtr& task, EventFn done);

  ShardId global_shard(int local) const { return first_shard_ + local; }
  const TaskPtr& task(int id) const { return tasks_.at(id); }
  double EffectiveCostNs() const;

  /// Refreshes every task's service-rate EWMA from the cost counters
  /// accumulated since the last balance round.
  void RefreshTaskSpeeds();
  /// Per-slot capacities (task speeds; 0 for empty slots) for the planner.
  std::vector<double> TaskCapacities() const;

  ShardId first_shard_;
  int num_shards_;

  // Two-tier routing table (second tier; first tier is the operator
  // partition hash).
  std::vector<int> shard_task_;
  std::vector<uint8_t> shard_paused_;         // Arrivals buffer (final phase).
  std::vector<uint8_t> shard_in_transition_;  // Reassignment in flight
                                              // (includes live pre-copy,
                                              // during which routing stays
                                              // open).
  std::vector<std::deque<Tuple>> pause_buffers_;

  // Per-shard statistics for the balancer.
  std::vector<int64_t> shard_cost_ns_;   // Cumulative processing cost.
  std::vector<int64_t> shard_cost_prev_;
  std::vector<double> shard_load_;       // EWMA, cost-seconds per second.

  std::vector<TaskPtr> tasks_;  // Slot may be nullptr after removal.
  std::unique_ptr<StateBackend> backend_;

  // Emitter daemon.
  std::deque<EmitterEntry> emitter_queue_;
  // Scratch for coalescing the queue's leading same-destination run into
  // one Runtime::RouteRun call (capacity reused across runs).
  std::vector<Runtime::PendingEmit> emitter_scratch_;
  bool emitter_flushing_ = false;

  // Reassignments in flight.
  std::unordered_map<int, Reassign> pending_reassigns_;
  int next_label_id_ = 0;
  int reassigns_in_progress_ = 0;
  int removals_in_progress_ = 0;
  int64_t reassignments_done_ = 0;

  int64_t total_queued_ = 0;
  int64_t last_balance_arrivals_ = 0;
  bool balancing_frozen_ = false;
  Rng rng_;
};

}  // namespace elasticutor
