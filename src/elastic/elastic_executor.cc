#include "elastic/elastic_executor.h"

#include <algorithm>

namespace elasticutor {

ElasticExecutor::ElasticExecutor(Runtime* rt, OperatorId op,
                                 ExecutorIndex index, NodeId home,
                                 ShardId first_shard, int num_shards)
    : ExecutorBase(rt, op, index, home),
      first_shard_(first_shard),
      num_shards_(num_shards),
      rng_(rt->rng()->Fork(0xE1A5 + MakeExecutorId(op, index))) {
  ELASTICUTOR_CHECK(num_shards > 0);
  shard_task_.assign(num_shards, -1);
  shard_paused_.assign(num_shards, 0);
  shard_in_transition_.assign(num_shards, 0);
  pause_buffers_.resize(num_shards);
  shard_cost_ns_.assign(num_shards, 0);
  shard_cost_prev_.assign(num_shards, 0);
  shard_load_.assign(num_shards, 0.0);
  backend_ = CreateStateBackend(rt->config().state, home, rt->net());
  backend_->AddProcess(home);
}

Status ElasticExecutor::InitShards(int64_t shard_state_bytes) {
  ProcessStateStore* store = backend_->store(home_node_);
  for (int s = 0; s < num_shards_; ++s) {
    ELASTICUTOR_RETURN_NOT_OK(
        store->CreateShard(global_shard(s), shard_state_bytes));
  }
  return Status::OK();
}

void ElasticExecutor::Start() {
  ELASTICUTOR_CHECK_MSG(num_tasks() > 0,
                        "elastic executor started with no cores");
  const BalancerConfig& cfg = rt_->config().balancer;
  if (!cfg.enabled) return;
  rt_->exec()->Periodic(cfg.interval_ns, cfg.interval_ns,
                       [this](SimTime) {
                         RunBalanceRound();
                         return true;
                       });
}

Status ElasticExecutor::ProbeReassign(int local_shard, NodeId node) {
  if (local_shard < 0 || local_shard >= num_shards_) {
    return Status::InvalidArgument("shard out of range");
  }
  if (shard_in_transition_[local_shard]) {
    return Status::FailedPrecondition("shard reassignment in progress");
  }
  int from = shard_task_[local_shard];
  for (const auto& t : tasks_) {
    if (t && !t->draining && t->node == node && t->id != from) {
      ReassignShard(local_shard, t->id, nullptr);
      return Status::OK();
    }
  }
  return Status::NotFound("no other task on that node");
}

// ---------------------------------------------------------------------------
// Receiver daemon (single entrance).
// ---------------------------------------------------------------------------

bool ElasticExecutor::CanAccept() const {
  int64_t cap = static_cast<int64_t>(rt_->config().task_queue_cap) *
                std::max(1, num_tasks());
  return total_queued_ + reserved() < cap;
}

void ElasticExecutor::OnTupleArrive(Tuple t) { AdmitOne(std::move(t)); }

void ElasticExecutor::OnTupleBatch(const Tuple* tuples, size_t count) {
  // Bulk arrival path (channel micro-batching): one delivery event admits
  // the whole run, in order.
  for (size_t i = 0; i < count; ++i) AdmitOne(tuples[i]);
}

void ElasticExecutor::AdmitOne(Tuple t) {
  ConsumeReservation();
  rt_->StampArrival(op_, &t);
  ++metrics_.arrivals;
  metrics_.bytes_in += t.size_bytes;
  int local = static_cast<int>(rt_->partition(op_)->ShardOf(t.key)) -
              static_cast<int>(first_shard_);
  ELASTICUTOR_CHECK_MSG(local >= 0 && local < num_shards_,
                        "tuple routed to wrong elastic executor");
  // Offered-load statistic for the balancer (arrival-based: processed
  // counts equalize under saturation and would hide imbalance).
  shard_cost_ns_[local] += rt_->topology().spec(op_).mean_cost_ns;
  if (shard_paused_[local]) {
    pause_buffers_[local].push_back(t);
    ++total_queued_;
    return;
  }
  RouteToTask(local, t);
}

void ElasticExecutor::RouteToTask(int local_shard, const Tuple& t) {
  int task_id = shard_task_.at(local_shard);
  ELASTICUTOR_CHECK_MSG(task_id >= 0, "shard not mapped to a task");
  const TaskPtr& target = task(task_id);
  if (target->node == home_node_) {
    EnqueueToTask(target, QueueItem{t, -1});
    return;
  }
  // Remote task: main process -> remote process over the network. Delivery
  // order per (home, node) is FIFO, which the labeling protocol needs.
  ++total_queued_;  // Counted from dispatch so CanAccept sees in-flight load.
  rt_->net()->Send(home_node_, target->node, t.size_bytes,
                   Purpose::kRemoteTask, [this, target, t]() {
                     --total_queued_;
                     EnqueueToTask(target, QueueItem{t, -1});
                   });
}

void ElasticExecutor::EnqueueToTask(const TaskPtr& target, QueueItem item) {
  if (!item.is_label()) ++total_queued_;
  target->pending.push_back(std::move(item));
  if (!target->busy) TaskStartNext(target);
}

// ---------------------------------------------------------------------------
// Task processing loop.
// ---------------------------------------------------------------------------

void ElasticExecutor::TaskStartNext(const TaskPtr& task) {
  if (task->busy) return;
  while (!task->pending.empty()) {
    // Labeling markers carry no computation. Handling is deferred one event
    // so that FinishReassign's pause-buffer flush cannot re-enter this loop;
    // no tuple of the paused shard can be behind the label, so deferral
    // cannot reorder anything.
    if (task->pending.front().is_label()) {
      int label_id = task->pending.front().label_id;
      task->pending.pop_front();
      rt_->exec()->After(
          0, [this, task, label_id]() { OnLabel(task, label_id); });
      continue;
    }
    if (task->outputs_outstanding >= rt_->config().task_output_credit) {
      task->waiting_credit = true;  // Resumed when the emitter frees credit.
      return;
    }
    Tuple t = task->pending.front().tuple;
    task->pending.pop_front();
    --total_queued_;
    task->busy = true;
    const OperatorSpec& spec = rt_->topology().spec(op_);
    SimDuration nominal = SampleCost(spec, rt_->config(), t, &task->rng);
    // Injected node slowdown (straggler / degraded node) stretches the
    // actual service time on this task's node; busy_ns includes it, so the
    // scheduler's µ estimate drops and it compensates with capacity.
    SimDuration cost = static_cast<SimDuration>(
        static_cast<double>(nominal) * rt_->faults()->cpu_factor(task->node));
    // Backend-specific per-tuple state-access cost (e.g. the external KV's
    // read + write round trips, with their bytes attributed to the network).
    // It is node-independent, so it counts as nominal work below.
    SimDuration access = backend_->OnTupleAccess(task->node);
    cost += access;
    metrics_.busy_ns += cost;
    // Per-task service-rate statistics for the capacity-aware balancer, and
    // per-node busy attribution for the bench/scenario layer.
    task->work_ns += nominal + access;
    task->busy_ns += cost;
    rt_->metrics()->OnBusy(task->node, cost);
    rt_->exec()->After(cost, [this, task, t]() {
      task->busy = false;
      OnProcessingComplete(task, t);
    });
    return;
  }
}

void ElasticExecutor::OnProcessingComplete(const TaskPtr& task, Tuple t) {
  const OperatorSpec& spec = rt_->topology().spec(op_);
  int local = static_cast<int>(rt_->partition(op_)->ShardOf(t.key)) -
              static_cast<int>(first_shard_);
  BatchEmitContext emit(rt_, op_, t.created_at);
  // The backend decides which store a task on this node reads and writes
  // (the external KV routes every task to the home-standing store; the
  // shared backend to the task's process store).
  ProcessStateStore* store = backend_->AccessStore(task->node);
  ApplyOperatorLogic(rt_->topology(), spec, op_, t, store,
                     global_shard(local), &emit, &task->rng);
  ++metrics_.processed;
  rt_->OnProcessed(op_, t);

  if (!emit.empty()) {
    EnqueueEmitter(task, emit.TakeJob());
  }
  TaskStartNext(task);
}

// ---------------------------------------------------------------------------
// Emitter daemon (single exit).
// ---------------------------------------------------------------------------

void ElasticExecutor::EnqueueEmitter(const TaskPtr& task,
                                     Runtime::FlushJob* job) {
  std::vector<Runtime::PendingEmit>& outs = job->emits;
  task->outputs_outstanding += static_cast<int>(outs.size());
  if (task->node == home_node_) {
    for (const auto& out : outs) {
      emitter_queue_.push_back(EmitterEntry{out, task});
    }
    rt_->ReleaseFlushJob(job);
    RunEmitter();
    return;
  }
  // Remote task -> emitter transfer. One message carries the batch; the
  // pooled job itself rides in the delivery closure (releasing it here and
  // moving the vector out would strip the pool entry's capacity and
  // re-allocate on every remote output batch).
  int64_t bytes = 0;
  for (const auto& out : outs) bytes += out.tuple.size_bytes;
  rt_->net()->Send(task->node, home_node_, bytes, Purpose::kRemoteTask,
                   [this, task, job]() {
                     for (const auto& out : job->emits) {
                       emitter_queue_.push_back(EmitterEntry{out, task});
                     }
                     rt_->ReleaseFlushJob(job);
                     RunEmitter();
                   });
}

void ElasticExecutor::RunEmitter() {
  if (emitter_flushing_) return;
  const size_t max_batch = static_cast<size_t>(
      std::max(1, rt_->config().max_batch_tuples));
  while (!emitter_queue_.empty()) {
    if (max_batch == 1) {
      // Tuple-at-a-time: route the head in place, no scratch copy.
      if (rt_->RouteRun(home_node_, &emitter_queue_.front().emit, 1,
                        &metrics_) == 0) {
        ScheduleEmitterRetry();
        return;
      }
      PopEmitted(1);
      continue;
    }
    // Coalesce the queue's leading same-operator run into the scratch ONCE;
    // RouteRun then consumes it in destination-executor sub-runs by offset
    // (no re-copying), so outputs of many tasks bound for the same
    // downstream channel share one message. Only leading runs batch — the
    // single exit stays strictly FIFO. Nothing can append to the queue
    // while this loop runs (completions are asynchronous events), so the
    // snapshot stays aligned with the queue head.
    emitter_scratch_.clear();
    const OperatorId to_op = emitter_queue_.front().emit.to_op;
    for (size_t i = 0;
         i < emitter_queue_.size() && emitter_scratch_.size() < max_batch;
         ++i) {
      const EmitterEntry& entry = emitter_queue_[i];
      if (entry.emit.to_op != to_op) break;
      emitter_scratch_.push_back(entry.emit);
    }
    size_t offset = 0;
    while (offset < emitter_scratch_.size()) {
      size_t routed =
          rt_->RouteRun(home_node_, emitter_scratch_.data() + offset,
                        emitter_scratch_.size() - offset, &metrics_);
      if (routed == 0) {
        ScheduleEmitterRetry();
        return;
      }
      offset += routed;
      PopEmitted(routed);
    }
  }
}

void ElasticExecutor::ScheduleEmitterRetry() {
  // Downstream full or paused: single retry loop keeps FIFO order through
  // the single exit. Jittered like every back-pressure retry.
  emitter_flushing_ = true;
  SimDuration delay = static_cast<SimDuration>(
      rt_->config().emit_retry_ns * (0.5 + rng_.NextDouble()));
  rt_->exec()->After(delay, [this]() {
    emitter_flushing_ = false;
    RunEmitter();
  });
}

void ElasticExecutor::PopEmitted(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    TaskPtr task = std::move(emitter_queue_.front().task);
    emitter_queue_.pop_front();
    --task->outputs_outstanding;
    if (task->waiting_credit && !task->busy &&
        task->outputs_outstanding < rt_->config().task_output_credit) {
      task->waiting_credit = false;
      TaskStartNext(task);
    }
  }
}

// ---------------------------------------------------------------------------
// Core management.
// ---------------------------------------------------------------------------

int ElasticExecutor::num_tasks() const {
  int count = 0;
  for (const auto& t : tasks_) {
    if (t && !t->draining) ++count;
  }
  return count;
}

int ElasticExecutor::tasks_on(NodeId node) const {
  int count = 0;
  for (const auto& t : tasks_) {
    if (t && !t->draining && t->node == node) ++count;
  }
  return count;
}

std::unordered_map<NodeId, int> ElasticExecutor::core_distribution() const {
  std::unordered_map<NodeId, int> dist;
  for (const auto& t : tasks_) {
    if (t && !t->draining) ++dist[t->node];
  }
  return dist;
}

std::vector<std::pair<int, int>> ElasticExecutor::placement() const {
  std::vector<std::pair<int, int>> out;
  for (const auto& t : tasks_) {
    if (!t || t->draining) continue;
    auto it = std::lower_bound(
        out.begin(), out.end(), t->node,
        [](const std::pair<int, int>& e, NodeId v) { return e.first < v; });
    if (it != out.end() && it->first == t->node) {
      ++it->second;
    } else {
      out.insert(it, {t->node, 1});
    }
  }
  return out;
}

int64_t ElasticExecutor::state_bytes() const { return backend_->TotalBytes(); }

Status ElasticExecutor::AddCore(NodeId node) {
  // The very first task adopts all shards, whose state lives in the home
  // store — so it must be local.
  bool first = num_tasks() == 0 && shard_task_[0] < 0;
  if (first && node != home_node_) {
    return Status::FailedPrecondition(
        "first core of an elastic executor must be on its local node");
  }
  auto task = std::make_shared<Task>();
  task->id = static_cast<int>(tasks_.size());
  task->node = node;
  task->rng = rng_.Fork(0x7A5C + tasks_.size());
  tasks_.push_back(task);
  backend_->AddProcess(node);  // New remote process (idempotent).
  if (first) {
    for (int s = 0; s < num_shards_; ++s) shard_task_[s] = task->id;
  }
  return Status::OK();
}

Status ElasticExecutor::RemoveCore(NodeId node, EventFn done) {
  // Victim: a non-draining task on `node`; prefer the one with fewest shards.
  TaskPtr victim;
  int victim_shards = 0;
  for (const auto& t : tasks_) {
    if (!t || t->draining || t->node != node) continue;
    int count = 0;
    for (int s = 0; s < num_shards_; ++s) {
      if (shard_task_[s] == t->id) ++count;
    }
    if (!victim || count < victim_shards) {
      victim = t;
      victim_shards = count;
    }
  }
  if (!victim) return Status::NotFound("no removable task on node");
  if (num_tasks() <= 1) {
    return Status::FailedPrecondition("cannot remove the last core");
  }
  if (transition_pending()) {
    // A concurrent reassignment could otherwise target the victim (or a
    // concurrent removal could drain a reassignment's destination).
    return Status::FailedPrecondition("executor transition in progress");
  }
  // Evacuate all its shards to the least-loaded remaining tasks (normalized
  // by task speed, so a slow surviving task is not handed a fair share).
  std::vector<int> shards;
  for (int s = 0; s < num_shards_; ++s) {
    if (shard_task_[s] == victim->id && !shard_in_transition_[s]) {
      shards.push_back(s);
    }
  }
  std::vector<double> slot_load(tasks_.size(), 0.0);
  std::vector<bool> allowed(tasks_.size(), false);
  for (const auto& t : tasks_) {
    if (t && !t->draining && t->id != victim->id) allowed[t->id] = true;
  }
  for (int s = 0; s < num_shards_; ++s) {
    if (shard_task_[s] >= 0) slot_load[shard_task_[s]] += shard_load_[s];
  }
  std::vector<double> capacity = TaskCapacities();
  auto plan = balance::PlanEvacuation(
      shards, shard_load_, &slot_load, victim->id, allowed,
      rt_->config().balancer.capacity_aware ? &capacity : nullptr);
  if (!plan.ok()) return plan.status();
  std::vector<balance::Move> moves = std::move(plan).value();

  victim->draining = true;
  ++removals_in_progress_;

  if (moves.empty()) {
    TryFinalizeRemoval(victim, std::move(done));
    return Status::OK();
  }
  // EventFn is move-only; `done` fires once, after the LAST evacuation, so
  // the per-move continuations share it (and the countdown) explicitly.
  auto remaining = std::make_shared<int>(static_cast<int>(moves.size()));
  auto shared_done = std::make_shared<EventFn>(std::move(done));
  for (const auto& move : moves) {
    ReassignShard(move.shard, move.to,
                  [this, victim, remaining, shared_done]() {
                    if (--*remaining > 0) return;
                    TryFinalizeRemoval(victim, std::move(*shared_done));
                  });
  }
  return Status::OK();
}

void ElasticExecutor::TryFinalizeRemoval(const TaskPtr& victim, EventFn done) {
  // The task may still hold in-flight work: unprocessed labels, unflushed
  // outputs, or (if remote) data that was on the wire when draining started.
  if (!victim->pending.empty() || victim->busy ||
      victim->outputs_outstanding > 0) {
    rt_->exec()->After(Millis(1),
                      [this, victim, done = std::move(done)]() mutable {
                        TryFinalizeRemoval(victim, std::move(done));
                      });
    return;
  }
  for (int s = 0; s < num_shards_; ++s) {
    ELASTICUTOR_CHECK_MSG(shard_task_[s] != victim->id,
                          "draining task still owns a shard");
  }
  NodeId node = victim->node;
  tasks_[victim->id] = nullptr;
  --removals_in_progress_;
  // Tear down an emptied remote process (the backend checks that no shard
  // is left inside its store).
  if (node != home_node_ && tasks_on(node) == 0) {
    backend_->RemoveProcess(node);
  }
  if (done) done();
}

// ---------------------------------------------------------------------------
// Consistent shard reassignment (§3.3).
// ---------------------------------------------------------------------------

void ElasticExecutor::ReassignShard(int local_shard, int to_task,
                                    EventFn done) {
  ELASTICUTOR_CHECK(!shard_in_transition_[local_shard]);
  int from_task = shard_task_.at(local_shard);
  ELASTICUTOR_CHECK(from_task >= 0 && from_task != to_task);
  ELASTICUTOR_CHECK(tasks_.at(to_task) && !tasks_.at(to_task)->draining);

  shard_in_transition_[local_shard] = 1;
  ++reassigns_in_progress_;
  int label_id = next_label_id_++;
  Reassign rec;
  rec.local_shard = local_shard;
  rec.from_task = from_task;
  rec.to_task = to_task;
  rec.done = std::move(done);

  NodeId from_node = task(from_task)->node;
  NodeId to_node = task(to_task)->node;
  const bool migrate = backend_->NeedsMigration(from_node, to_node);
  pending_reassigns_.emplace(label_id, std::move(rec));

  if (!migrate) {
    // Intra-process state sharing / external store: no state moves — pause
    // and label immediately; the pause lasts only for the label drain.
    PauseAndLabel(label_id);
    return;
  }
  // 1. Begin the migration. Under chunked-live the shard keeps processing
  // while its snapshot streams over; under sync-blob this completes
  // synchronously and the pause covers the whole transfer.
  pending_reassigns_.at(label_id).migration = rt_->migration()->Begin(
      backend_->store(from_node), global_shard(local_shard), from_node,
      to_node, backend_->local_copy_bytes_per_sec(),
      [this, label_id]() { PauseAndLabel(label_id); });
}

void ElasticExecutor::PauseAndLabel(int label_id) {
  auto it = pending_reassigns_.find(label_id);
  ELASTICUTOR_CHECK(it != pending_reassigns_.end());
  Reassign& rec = it->second;
  shard_paused_[rec.local_shard] = 1;  // 2. Pause routing for the shard.
  rec.pause_start = rt_->exec()->now();
  SendLabel(task(rec.from_task), label_id);  // 3. Labeling tuple, FIFO path.
}

void ElasticExecutor::SendLabel(const TaskPtr& target, int label_id) {
  if (target->node == home_node_) {
    EnqueueToTask(target, QueueItem{Tuple{}, label_id});
    return;
  }
  // The label must follow previously routed data tuples through the same
  // network channel (per-(src,dst) FIFO).
  rt_->net()->Send(home_node_, target->node, 64, Purpose::kRemoteTask,
                   [this, target, label_id]() {
                     EnqueueToTask(target, QueueItem{Tuple{}, label_id});
                   });
}

void ElasticExecutor::OnLabel(const TaskPtr& from, int label_id) {
  auto it = pending_reassigns_.find(label_id);
  ELASTICUTOR_CHECK(it != pending_reassigns_.end());
  Reassign& rec = it->second;
  rec.sync_done = rt_->exec()->now();  // Pending tuples all processed.
  (void)from;

  if (!rec.migration) {
    // No state moves (intra-process sharing / external store): flip now.
    FinishReassign(label_id, MigrationStats{});
    return;
  }
  // 4. Ship the remainder (whole blob for sync-blob, dirty delta for
  // chunked-live) and install the shard at the destination process.
  NodeId to_node = task(rec.to_task)->node;
  rt_->migration()->Finalize(
      rec.migration, backend_->store(to_node),
      [this, label_id](const MigrationStats& stats) {
        FinishReassign(label_id, stats);
      });
}

void ElasticExecutor::FinishReassign(int label_id,
                                     const MigrationStats& stats) {
  auto it = pending_reassigns_.find(label_id);
  ELASTICUTOR_CHECK(it != pending_reassigns_.end());
  Reassign rec = std::move(it->second);
  pending_reassigns_.erase(it);

  NodeId from_node = task(rec.from_task)->node;
  NodeId to_node = task(rec.to_task)->node;

  // 5. Update the shard->task map, then resume routing.
  shard_task_[rec.local_shard] = rec.to_task;
  shard_paused_[rec.local_shard] = 0;
  shard_in_transition_[rec.local_shard] = 0;
  auto& buffer = pause_buffers_[rec.local_shard];
  while (!buffer.empty()) {
    Tuple t = buffer.front();
    buffer.pop_front();
    --total_queued_;  // RouteToTask/EnqueueToTask re-counts it.
    RouteToTask(rec.local_shard, t);
  }

  SimTime now = rt_->exec()->now();
  ElasticityOp op;
  op.inter_node = from_node != to_node;
  op.sync_ns = rec.sync_done - rec.pause_start;
  op.precopy_ns = stats.precopy_ns;
  op.migration_ns = now - rec.sync_done;
  op.pause_ns = now - rec.pause_start;
  op.moved_bytes = stats.moved_bytes;
  op.delta_bytes = stats.delta_bytes;
  rt_->metrics()->OnElasticityOp(op);

  ++reassignments_done_;
  --reassigns_in_progress_;
  if (rec.done) rec.done();
}

// ---------------------------------------------------------------------------
// Intra-executor load balancing (§3.1).
// ---------------------------------------------------------------------------

void ElasticExecutor::RunBalanceRound() {
  if (balancing_frozen_) return;
  const BalancerConfig& cfg = rt_->config().balancer;
  // Refresh per-shard load EWMAs from the cost counters.
  double interval_s = ToSeconds(cfg.interval_ns);
  for (int s = 0; s < num_shards_; ++s) {
    double rate =
        static_cast<double>(shard_cost_ns_[s] - shard_cost_prev_[s]) / 1e9 /
        interval_s;
    shard_cost_prev_[s] = shard_cost_ns_[s];
    shard_load_[s] = cfg.shard_load_alpha * rate +
                     (1.0 - cfg.shard_load_alpha) * shard_load_[s];
  }
  RefreshTaskSpeeds();
  if (reassigns_in_progress_ > 0 || removals_in_progress_ > 0) return;
  if (num_tasks() <= 1) return;

  // Balance on shrinkage-smoothed loads. With few arrivals per shard the
  // per-shard estimates are noise; the prior (every shard expected to carry
  // ~average traffic) then dominates and the balancer effectively spreads
  // by cardinality — crucial right after a scale-out, when the whole key
  // subspace sits on one task and almost nothing has been observed yet. As
  // samples accumulate the measured loads take over.
  int64_t observed = metrics_.arrivals - last_balance_arrivals_;
  last_balance_arrivals_ = metrics_.arrivals;
  double total_load = 0.0;
  for (double l : shard_load_) total_load += l;
  double avg_load = total_load / static_cast<double>(num_shards_);
  double pseudo = 2.0 * static_cast<double>(num_shards_);
  double prior =
      avg_load * pseudo / (pseudo + static_cast<double>(observed)) + 1e-12;
  std::vector<double> loads = shard_load_;
  for (double& l : loads) l += prior;

  std::vector<bool> frozen(tasks_.size(), false);
  for (size_t i = 0; i < tasks_.size(); ++i) {
    frozen[i] = !tasks_[i] || tasks_[i]->draining;
  }
  std::vector<int> assignment = shard_task_;
  std::vector<double> capacity = TaskCapacities();
  balance::PlanMoves(loads, &assignment, static_cast<int>(tasks_.size()),
                     cfg.theta, cfg.max_moves_per_round, &frozen,
                     cfg.capacity_aware ? &capacity : nullptr);
  // Execute the final-assignment diff: one reassignment per shard, even if
  // the planner routed a shard through several intermediate slots.
  for (int s = 0; s < num_shards_; ++s) {
    if (assignment[s] != shard_task_[s]) {
      ReassignShard(s, assignment[s], nullptr);
    }
  }
}

void ElasticExecutor::RefreshTaskSpeeds() {
  const BalancerConfig& cfg = rt_->config().balancer;
  for (const auto& t : tasks_) {
    if (!t) continue;
    int64_t dwork = t->work_ns - t->work_prev_ns;
    int64_t dbusy = t->busy_ns - t->busy_prev_ns;
    t->work_prev_ns = t->work_ns;
    t->busy_prev_ns = t->busy_ns;
    // Without a meaningful busy window there is no observation — idleness
    // is not evidence of slowness. Drift the estimate toward nominal
    // instead, so a task that was fully drained (zero shards => zero busy
    // time, forever) gets probed with load again after its node heals; a
    // still-slow node pushes the estimate right back down on the next
    // observation.
    if (dbusy < cfg.task_speed_min_busy_ns || dwork <= 0) {
      t->speed += cfg.task_speed_recovery * (1.0 - t->speed);
      continue;
    }
    double observed = static_cast<double>(dwork) / static_cast<double>(dbusy);
    t->speed = std::max(1e-3, cfg.task_speed_alpha * observed +
                                  (1.0 - cfg.task_speed_alpha) * t->speed);
  }
}

std::vector<double> ElasticExecutor::TaskCapacities() const {
  std::vector<double> capacity(tasks_.size(), 0.0);
  for (const auto& t : tasks_) {
    if (t) capacity[t->id] = t->speed;
  }
  return capacity;
}

double ElasticExecutor::TaskSpeedOn(NodeId node) const {
  double speed = 1.0;
  for (const auto& t : tasks_) {
    if (t && !t->draining && t->node == node) speed = std::min(speed, t->speed);
  }
  return speed;
}

double ElasticExecutor::CurrentImbalance() const {
  std::vector<double> loads, caps;
  std::vector<double> by_slot(tasks_.size(), 0.0);
  for (int s = 0; s < num_shards_; ++s) {
    if (shard_task_[s] >= 0) by_slot[shard_task_[s]] += shard_load_[s];
  }
  for (const auto& t : tasks_) {
    if (t && !t->draining) {
      loads.push_back(by_slot[t->id]);
      caps.push_back(t->speed);
    }
  }
  return balance::ImbalanceFactor(
      loads, rt_->config().balancer.capacity_aware ? &caps : nullptr);
}

int ElasticExecutor::shards_on_task_count(NodeId node) const {
  int count = 0;
  for (int s = 0; s < num_shards_; ++s) {
    int id = shard_task_[s];
    if (id >= 0 && tasks_[id] && tasks_[id]->node == node) ++count;
  }
  return count;
}

}  // namespace elasticutor
