// CPU-to-executor assignment (§4.2, Algorithm 1).
//
// Given per-executor core targets k_j (from the performance model), the
// existing assignment X̃ and per-node capacities c_i, find a new assignment
// X minimizing the state-migration cost
//
//   C(X|X̃) = Σ_j Σ_i max(0, s_j·x̃_ij/X̃_j − s_j·x_ij/X_j)
//
// subject to (a) node capacity, (b) X_j ≥ k_j, and (c) computation locality:
// executors whose per-core data intensity exceeds φ accept only cores on
// their local node. The greedy uses the marginal costs
//
//   C⁺_ij(X) = s_j (X_j − x_ij) / (X_j (X_j+1))   — allocating on node i
//   C⁻_ij(X) = s_j (X_j − x_ij) / (X_j (X_j−1))   — deallocating from node i
//
// and processes under-provisioned executors in descending data intensity.
// If no feasible assignment exists at φ, the caller doubles φ and retries
// (SolveAssignment automates the doubling).
#pragma once

#include <cstdint>
#include <vector>

namespace elasticutor {

struct AssignmentInput {
  std::vector<int> node_capacity;          // c_i.
  std::vector<int> home;                   // I(j), node of the main process.
  std::vector<int> target;                 // k_j (each >= 1).
  std::vector<double> state_bytes;         // s_j.
  std::vector<double> data_intensity;      // Bytes/s per core.
  std::vector<std::vector<int>> current;   // x̃[node][executor].
  double phi = 512.0 * 1024.0;             // Initial φ̃.
  /// Relative per-core speed of each node (perf_model.h CoreSpeed of the
  /// fault plane's cpu_factor; 1 = nominal). Empty = all nominal. The
  /// greedy penalizes allocating on slow nodes, so scale-out placement
  /// avoids stragglers unless migration savings dominate.
  std::vector<double> node_speed;
};

struct AssignmentOutput {
  bool feasible = false;
  std::vector<std::vector<int>> x;         // x[node][executor].
  double phi_used = 0.0;                   // φ of the feasible solution.
  double migration_cost_bytes = 0.0;       // C(X|X̃).
};

/// One run of Algorithm 1 at a fixed φ.
AssignmentOutput SolveAssignmentOnce(const AssignmentInput& in, double phi);

/// Algorithm 1 with the paper's φ-doubling loop. Always terminates: with
/// φ = ∞ the locality constraint vanishes and a solution exists whenever
/// Σ k_j ≤ Σ c_i.
AssignmentOutput SolveAssignment(const AssignmentInput& in);

/// naive-EC baseline: first-fit packing of k_j cores over nodes, ignoring
/// the current assignment, state sizes and data intensity. `salt` rotates
/// the packing order between invocations (the point of naive-EC is that
/// placement is recomputed obliviously each cycle, so cores — and the state
/// behind them — wander between nodes).
AssignmentOutput NaiveAssignment(const AssignmentInput& in, uint64_t salt = 0);

/// C(X|X̃) between two assignments.
double MigrationCostBytes(const AssignmentInput& in,
                          const std::vector<std::vector<int>>& x);

}  // namespace elasticutor
