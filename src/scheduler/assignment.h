// CPU-to-executor assignment (§4.2, Algorithm 1).
//
// Given per-executor core targets k_j (from the performance model), the
// existing assignment X̃ and per-node capacities c_i, find a new assignment
// X minimizing the state-migration cost
//
//   C(X|X̃) = Σ_j Σ_i max(0, s_j·x̃_ij/X̃_j − s_j·x_ij/X_j)
//
// subject to (a) node capacity, (b) X_j ≥ k_j, and (c) computation locality:
// executors whose per-core data intensity exceeds φ accept only cores on
// their local node. The greedy uses the marginal costs
//
//   C⁺_ij(X) = s_j (X_j − x_ij) / (X_j (X_j+1))   — allocating on node i
//   C⁻_ij(X) = s_j (X_j − x_ij) / (X_j (X_j−1))   — deallocating from node i
//
// and processes under-provisioned executors in descending data intensity.
// If no feasible assignment exists at φ, the caller doubles φ and retries
// (SolveAssignment automates the doubling).
//
// Two interchangeable solvers implement the same greedy:
//  * SolveAssignmentOnce — the production path: sparse placements plus
//    indexed min-heaps (a per-node heap of dealloc candidates and a global
//    heap over nodes) with lazy invalidation, so a core grant costs
//    O((P + K)·log) where P is the touched executors' placement size and K
//    the popped tie run — not O(n·m).
//  * SolveAssignmentOnceDense — the original dense scan, retained as the
//    reference oracle. Both share the marginal-cost helpers and identical
//    tie-breaking ((cost, node, donor) lexicographic), so their decisions
//    are bit-identical; tests/assignment_equivalence_test.cc enforces it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace elasticutor {

/// Sparse placement of one executor: node-ascending (node, cores) pairs,
/// cores > 0 (absent node = zero cores).
using PlacementVec = std::vector<std::pair<int, int>>;

/// Sparse assignment matrix, stored per executor. Executors touch a handful
/// of nodes while clusters have thousands, so the dense n×m matrix is
/// almost entirely zeros; this stores only the nonzero columns.
struct SparseAssignment {
  std::vector<PlacementVec> exec;  // [executor] → sorted (node, cores).

  SparseAssignment() = default;
  explicit SparseAssignment(int num_executors) : exec(num_executors) {}

  int num_executors() const { return static_cast<int>(exec.size()); }
  /// Cores of executor `j` on `node` (0 when absent).
  int At(int node, int j) const;
  /// Adds `delta` cores of executor `j` on `node`, keeping entries sorted
  /// and dropping them at zero.
  void Add(int node, int j, int delta);
  /// Total cores of executor `j` (X_j).
  int Total(int j) const;

  static SparseAssignment FromDense(const std::vector<std::vector<int>>& x);
  /// Dense [node][executor] matrix (tests and the dense oracle).
  std::vector<std::vector<int>> ToDense(int num_nodes) const;

  bool operator==(const SparseAssignment&) const = default;
};

struct AssignmentInput {
  std::vector<int> node_capacity;          // c_i.
  std::vector<int> home;                   // I(j), node of the main process.
  std::vector<int> target;                 // k_j (each >= 1).
  std::vector<double> state_bytes;         // s_j.
  std::vector<double> data_intensity;      // Bytes/s per core.
  SparseAssignment current;                // x̃, per-executor placements.
  double phi = 512.0 * 1024.0;             // Initial φ̃.
  /// Relative per-core speed of each node (perf_model.h CoreSpeed of the
  /// fault plane's cpu_factor; 1 = nominal). Empty = all nominal. The
  /// greedy penalizes allocating on slow nodes, so scale-out placement
  /// avoids stragglers unless migration savings dominate.
  std::vector<double> node_speed;
};

struct AssignmentOutput {
  bool feasible = false;
  SparseAssignment x;                      // Per-executor placements.
  double phi_used = 0.0;                   // φ of the feasible solution.
  double migration_cost_bytes = 0.0;       // C(X|X̃).
};

/// One run of Algorithm 1 at a fixed φ — sparse indexed-heap solver.
AssignmentOutput SolveAssignmentOnce(const AssignmentInput& in, double phi);

/// One run of Algorithm 1 at a fixed φ — dense O(n·m)-per-grant reference
/// oracle (bit-identical decisions to SolveAssignmentOnce).
AssignmentOutput SolveAssignmentOnceDense(const AssignmentInput& in,
                                          double phi);

/// Algorithm 1 with the paper's φ-doubling loop. Always terminates: with
/// φ = ∞ the locality constraint vanishes and a solution exists whenever
/// Σ k_j ≤ Σ c_i.
AssignmentOutput SolveAssignment(const AssignmentInput& in);

/// φ-doubling loop over the dense reference solver (equivalence tests and
/// the Table-3 speedup comparison).
AssignmentOutput SolveAssignmentDense(const AssignmentInput& in);

/// naive-EC baseline: first-fit packing of k_j cores over nodes, ignoring
/// the current assignment, state sizes and data intensity. `salt` rotates
/// the packing order between invocations (the point of naive-EC is that
/// placement is recomputed obliviously each cycle, so cores — and the state
/// behind them — wander between nodes).
AssignmentOutput NaiveAssignment(const AssignmentInput& in, uint64_t salt = 0);

/// C(X|X̃) between two assignments. Iterates only placements present in
/// either side — cost O(moved entries), not O(n·m).
double MigrationCostBytes(const AssignmentInput& in,
                          const SparseAssignment& x);

/// One planned core move: executor `executor` gains/loses a core on `node`.
struct CoreMove {
  int node = -1;
  int executor = -1;
  bool operator==(const CoreMove&) const = default;
};

/// The diff between the live placement and a solver output, in the exact
/// order the scheduler issues moves: additions carry one entry per core and
/// removal candidates one entry per (node, executor) that must shrink, both
/// (node, executor)-ascending. Pure function of the two sparse assignments
/// (no n×m delta matrix), shared by DynamicScheduler::ExecuteDiff and the
/// equivalence tests.
struct DiffPlan {
  std::vector<CoreMove> adds;
  std::vector<CoreMove> removal_candidates;
  bool operator==(const DiffPlan&) const = default;
};
DiffPlan PlanCoreDiff(const SparseAssignment& current,
                      const SparseAssignment& x);

}  // namespace elasticutor
