// Queueing-network performance model (§4.1). Each executor j is an M/M/k_j
// queue; the topology is a Jackson network, so the mean end-to-end latency is
//
//   E[T](k) = (1/λ0) · Σ_j λ_j · E[T_j](k_j),
//
// with E[T_j] from the Erlang-C formula. The greedy allocator initializes
// k_j = ⌊λ_j/µ_j⌋ + 1 (minimal stable allocation) and repeatedly grants one
// core to the executor whose grant decreases E[T] the most, until the target
// T_max is met or cores run out — the DRS algorithm, shown optimal in
// [Fu et al., ICDCS'15].
#pragma once

#include <vector>

#include "sim/time.h"

namespace elasticutor {

/// Measured demand of one executor.
struct ExecutorDemand {
  double lambda = 0.0;  // Arrival rate, tuples/s (incl. backlog pressure).
  double mu = 1.0;      // Per-core service rate, tuples/s.
};

/// Relative capacity of one core on a node with service-time multiplier
/// `cpu_factor` (the NodeFaultPlane read path): a core on a 4x straggler
/// node sustains 0.25x the nominal per-core service rate µ, so it is worth
/// a quarter core to the placement layer.
inline double CoreSpeed(double cpu_factor) {
  return 1.0 / (cpu_factor > 1e-6 ? cpu_factor : 1e-6);
}

/// Erlang-C: probability that an arrival to an M/M/k queue waits.
/// Requires rho = lambda/(k*mu) < 1.
double ErlangC(int k, double lambda, double mu);

/// Mean sojourn time (seconds) of an M/M/k queue; +inf if unstable (k*mu <=
/// lambda) or k <= 0.
double MmkSojournSeconds(int k, double lambda, double mu);

/// Jackson-network mean latency (seconds) for an allocation k.
double JacksonLatencySeconds(const std::vector<ExecutorDemand>& demands,
                             const std::vector<int>& k, double lambda0);

struct AllocationResult {
  std::vector<int> cores;       // k_j, one per executor; each >= 1.
  double expected_latency_s = 0;
  bool target_met = false;
};

/// Pause-cost model for shard reassignment (§3.3 plus the chunked-live
/// migration engine). A sync-blob migration pauses the shard for the whole
/// state transfer; a chunked-live migration pre-copies while processing
/// continues and pauses only for the dirty delta written during the
/// pre-copy window.
struct PauseCostModel {
  double bandwidth_bytes_per_sec = 125e6;  // State-transfer path.
  double sync_seconds = 0.0;               // Label-drain / coordination time.
  bool chunked_live = true;                // MigrationStrategy in effect.
  double dirty_bytes_per_sec = 0.0;        // Write rate into the moving shard.
};

/// Expected routing-pause seconds for reassigning `state_bytes` of shard
/// state under `model`. Grows linearly with state size for sync-blob; stays
/// near sync_seconds for chunked-live unless the write rate approaches the
/// transfer bandwidth.
double EstimatePauseSeconds(const PauseCostModel& model, int64_t state_bytes);

/// Greedy core allocation. `total_cores` bounds Σk. If `allocate_all` is
/// set, cores left over after meeting `latency_target` are distributed to
/// the executors with the highest per-core utilization (work-conserving
/// mode for saturation experiments).
AllocationResult AllocateCores(const std::vector<ExecutorDemand>& demands,
                               int total_cores, double latency_target_s,
                               bool allocate_all);

}  // namespace elasticutor
