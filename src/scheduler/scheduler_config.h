// Dynamic-scheduler configuration (§4). Kept dependency-free so that
// engine_config.h can embed it.
#pragma once

#include "common/units.h"
#include "sim/time.h"

namespace elasticutor {

struct SchedulerConfig {
  /// Master switch (benches probing manual core placement disable it).
  bool enabled = true;

  /// How often the scheduler recomputes allocation and assignment.
  SimDuration interval_ns = Seconds(1);

  /// User-specified latency target T_max for the Jackson-network model.
  SimDuration latency_target_ns = Millis(50);

  /// Initial data-intensity threshold φ̃ (bytes/s per core) above which an
  /// executor is constrained to local cores. Doubles until Algorithm 1
  /// finds a feasible assignment. Paper default: 512 KB/s.
  double phi_bytes_per_sec = 512.0 * 1024.0;

  /// EWMA smoothing for measured λ/µ/data-intensity.
  double metric_alpha = 0.5;

  /// If true, disable the migration-cost and locality optimizations of
  /// Algorithm 1 (the paper's "naive-EC" baseline): the assignment is
  /// recomputed from scratch each round, ignoring the existing placement and
  /// data intensity.
  bool naive_assignment = false;

  /// Work-conserving mode: after meeting the latency target, spread the
  /// remaining free cores over executors proportional to load (used in
  /// saturation/throughput experiments so all cores contribute).
  bool allocate_all_cores = true;

  /// Routing-pause budget per scheduling cycle (seconds; 0 = unlimited).
  /// The cycle's planned state movement is priced with the pause-cost model
  /// (perf_model.h, strategy-aware: chunked-live pauses only for the dirty
  /// delta) and the whole diff is deferred when the estimate exceeds the
  /// budget — a brake on state-movement-heavy reconfigurations whose pauses
  /// would violate the latency SLO.
  double pause_budget_s = 0.0;
};

}  // namespace elasticutor
