#include "scheduler/perf_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace elasticutor {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double ErlangC(int k, double lambda, double mu) {
  ELASTICUTOR_CHECK(k > 0 && mu > 0);
  double a = lambda / mu;  // Offered load (Erlangs).
  double rho = a / k;
  ELASTICUTOR_CHECK_MSG(rho < 1.0, "ErlangC requires a stable queue");
  // Iterative form avoids factorial overflow: term_i = a^i/i!.
  double sum = 1.0;   // i = 0 term.
  double term = 1.0;
  for (int i = 1; i < k; ++i) {
    term *= a / i;
    sum += term;
  }
  double term_k = term * a / k;  // a^k / k!.
  double numerator = term_k / (1.0 - rho);
  return numerator / (sum + numerator);
}

double MmkSojournSeconds(int k, double lambda, double mu) {
  if (k <= 0 || mu <= 0) return kInf;
  if (lambda <= 0) return 1.0 / mu;
  if (k * mu <= lambda) return kInf;
  double c = ErlangC(k, lambda, mu);
  double wait = c / (k * mu - lambda);
  return wait + 1.0 / mu;
}

double JacksonLatencySeconds(const std::vector<ExecutorDemand>& demands,
                             const std::vector<int>& k, double lambda0) {
  ELASTICUTOR_CHECK(demands.size() == k.size());
  if (lambda0 <= 0) return 0.0;
  double total = 0.0;
  for (size_t j = 0; j < demands.size(); ++j) {
    double t = MmkSojournSeconds(k[j], demands[j].lambda, demands[j].mu);
    if (t == kInf) return kInf;
    total += demands[j].lambda * t;
  }
  return total / lambda0;
}

double EstimatePauseSeconds(const PauseCostModel& model, int64_t state_bytes) {
  double bw = std::max(model.bandwidth_bytes_per_sec, 1.0);
  double bytes = static_cast<double>(std::max<int64_t>(state_bytes, 0));
  if (!model.chunked_live) {
    return model.sync_seconds + bytes / bw;
  }
  // Pre-copy streams the snapshot in bytes/bw seconds; what gets written
  // meanwhile is the delta the pause must ship (never more than the state
  // itself — re-shipping everything cannot beat the blob).
  double precopy_s = bytes / bw;
  double delta = std::min(model.dirty_bytes_per_sec * precopy_s, bytes);
  return model.sync_seconds + delta / bw;
}

AllocationResult AllocateCores(const std::vector<ExecutorDemand>& demands,
                               int total_cores, double latency_target_s,
                               bool allocate_all) {
  const int m = static_cast<int>(demands.size());
  AllocationResult result;
  result.cores.assign(m, 1);
  if (m == 0) return result;

  double lambda0 = 0.0;
  for (const auto& d : demands) lambda0 = std::max(lambda0, d.lambda);
  // λ0 is the topology input rate; using the max executor rate is a safe
  // stand-in when the caller does not track source rates — it only scales
  // E[T] uniformly and does not change the argmax structure of the greedy.

  // Minimal stable allocation: k_j = floor(λ_j/µ_j) + 1.
  int used = 0;
  for (int j = 0; j < m; ++j) {
    int k = static_cast<int>(std::floor(demands[j].lambda /
                                        std::max(demands[j].mu, 1e-9))) +
            1;
    result.cores[j] = std::max(1, k);
    used += result.cores[j];
  }
  // If the minimal allocation is infeasible, shave from the most
  // over-allocated executors (keeping each >= 1).
  while (used > total_cores) {
    int victim = -1;
    double best_slack = -kInf;
    for (int j = 0; j < m; ++j) {
      if (result.cores[j] <= 1) continue;
      double slack = result.cores[j] -
                     demands[j].lambda / std::max(demands[j].mu, 1e-9);
      if (slack > best_slack) {
        best_slack = slack;
        victim = j;
      }
    }
    if (victim < 0) break;  // Everything at 1 core; nothing to shave.
    --result.cores[victim];
    --used;
  }

  // Incremental greedy: E[T] = Σ contrib_j / λ0 where contrib_j = λ_j·T_j.
  // Granting a core to j changes only contrib_j, so we track per-executor
  // contributions and marginal gains instead of recomputing the whole sum.
  const double l0 = std::max(lambda0, 1e-9);
  std::vector<double> contrib(m), gain(m);
  auto term = [&](int j, int k) {
    double t = MmkSojournSeconds(k, demands[j].lambda, demands[j].mu);
    return t == kInf ? kInf : demands[j].lambda * t;
  };
  auto gain_of = [&](int j, int k) {
    double cur = contrib[j];
    double next = term(j, k + 1);
    if (cur == kInf && next == kInf) {
      // Still unstable after one more core: granting is progress anyway;
      // prioritize by demand so the most overloaded executor recovers first.
      return 1e18 * (1.0 + demands[j].lambda);
    }
    if (cur == kInf) return kInf;
    return cur - next;
  };
  double total_contrib = 0.0;
  for (int j = 0; j < m; ++j) {
    contrib[j] = term(j, result.cores[j]);
    total_contrib += contrib[j];
    gain[j] = gain_of(j, result.cores[j]);
  }
  double current = total_contrib / l0;
  while (used < total_cores && current > latency_target_s) {
    int best = -1;
    for (int j = 0; j < m; ++j) {
      if (gain[j] > 0 && (best < 0 || gain[j] > gain[best])) best = j;
    }
    if (best < 0) break;  // No grant helps (already latency-optimal).
    ++result.cores[best];
    ++used;
    double old_contrib = contrib[best];
    contrib[best] = term(best, result.cores[best]);
    if (old_contrib == kInf || contrib[best] == kInf) {
      // Rebuild the sum when infinities are involved.
      total_contrib = 0.0;
      for (int j = 0; j < m; ++j) total_contrib += contrib[j];
    } else {
      total_contrib += contrib[best] - old_contrib;
    }
    gain[best] = gain_of(best, result.cores[best]);
    current = total_contrib / l0;
  }
  result.target_met = current <= latency_target_s;

  if (allocate_all) {
    // Spread leftovers to the busiest executors (per-core utilization).
    int fallback = 0;
    while (used < total_cores) {
      int best = -1;
      double best_util = 0.0;
      for (int j = 0; j < m; ++j) {
        double util = std::max(demands[j].lambda, 0.0) /
                      (std::max(demands[j].mu, 1e-9) * result.cores[j]);
        if (best < 0 || util > best_util) {
          best_util = util;
          best = j;
        }
      }
      if (best < 0) best = fallback++ % m;  // All idle: round-robin.
      ++result.cores[best];
      ++used;
    }
    current = JacksonLatencySeconds(demands, result.cores, l0);
  }
  result.expected_latency_s = current;
  return result;
}

}  // namespace elasticutor
