#include "scheduler/scheduler.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <utility>

#include "common/logging.h"

namespace elasticutor {

double SchedulerTiming::MaxCycleMs() const {
  double best = 0.0;
  for (double v : cycle_ms) best = std::max(best, v);
  return best;
}

double SchedulerTiming::P99CycleMs() const {
  if (cycle_ms.empty()) return 0.0;
  std::vector<double> sorted = cycle_ms;
  size_t idx = static_cast<size_t>(0.99 * (sorted.size() - 1));
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

DynamicScheduler::DynamicScheduler(
    Runtime* rt, const Cluster* cluster, CoreLedger* ledger,
    std::vector<std::shared_ptr<ElasticExecutor>> executors)
    : rt_(rt), cluster_(cluster), ledger_(ledger) {
  const SchedulerConfig& cfg = rt_->config().scheduler;
  states_.reserve(executors.size());
  for (auto& ex : executors) {
    ExecutorState state;
    state.executor = std::move(ex);
    state.lambda = Ewma(cfg.metric_alpha);
    state.mu = Ewma(cfg.metric_alpha);
    state.intensity = Ewma(cfg.metric_alpha);
    // Seed µ from the operator's declared mean cost so the first cycles have
    // a sane service-rate estimate.
    const OperatorSpec& spec = rt_->topology().spec(state.executor->op());
    state.mu.Add(1e9 / static_cast<double>(std::max<SimDuration>(
                           spec.mean_cost_ns, 1)));
    states_.push_back(std::move(state));
  }
}

void DynamicScheduler::Start() {
  SimDuration interval = rt_->config().scheduler.interval_ns;
  last_run_ = rt_->exec()->now();
  rt_->exec()->Periodic(rt_->exec()->now() + interval, interval,
                       [this](SimTime) {
                         RunOnce();
                         return true;
                       });
}

void DynamicScheduler::MeasureInterval(SimDuration dt) {
  double dt_s = std::max(ToSeconds(dt), 1e-6);
  for (auto& s : states_) {
    const ExecutorMetrics& m = s.executor->metrics();
    int64_t offered_now = s.executor->offered_count();
    // Counters may have been reset (warm-up boundary); clamp diffs.
    int64_t offered = std::max<int64_t>(0, offered_now - s.prev_offered);
    int64_t processed = std::max<int64_t>(0, m.processed - s.prev_processed);
    int64_t busy = std::max<int64_t>(0, m.busy_ns - s.prev_busy_ns);
    int64_t bytes =
        std::max<int64_t>(0, (m.bytes_in + m.bytes_out) - s.prev_bytes);
    s.prev_offered = offered_now;
    s.prev_processed = m.processed;
    s.prev_busy_ns = m.busy_ns;
    s.prev_bytes = m.bytes_in + m.bytes_out;

    // Demand = offered load (pre-back-pressure): admitted arrivals are
    // capped at a starved executor's capacity and would hide its need.
    s.lambda.Add(static_cast<double>(offered) / dt_s);
    if (processed > 0 && busy > 0) {
      s.mu.Add(static_cast<double>(processed) / (ToSeconds(busy)));
    }
    int cores = std::max(1, s.executor->num_tasks());
    s.intensity.Add(static_cast<double>(bytes) / dt_s / cores);
  }
}

int DynamicScheduler::AvailableCores() const {
  int total = 0;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    if (rt_->faults()->available(i)) total += cluster_->cores(i);
  }
  return total;
}

std::vector<int> DynamicScheduler::ComputeTargets() {
  const SchedulerConfig& cfg = rt_->config().scheduler;
  std::vector<ExecutorDemand> demands(states_.size());
  for (size_t j = 0; j < states_.size(); ++j) {
    demands[j].lambda = states_[j].lambda.value();
    demands[j].mu = std::max(states_[j].mu.value(), 1e-6);
  }
  AllocationResult alloc =
      AllocateCores(demands, AvailableCores(),
                    ToSeconds(cfg.latency_target_ns), cfg.allocate_all_cores);
  return alloc.cores;
}

void DynamicScheduler::RunOnce() {
  using WallClock = std::chrono::steady_clock;
  auto wall_ms = [](WallClock::time_point a, WallClock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  SimTime now = rt_->exec()->now();
  SimDuration dt = now - last_run_;
  last_run_ = now;
  if (dt <= 0) dt = rt_->config().scheduler.interval_ns;
  auto wall_measure = WallClock::now();
  MeasureInterval(dt);

  const SchedulerConfig& cfg = rt_->config().scheduler;
  auto wall_start = WallClock::now();

  std::vector<int> targets = ComputeTargets();
  // Deadband: a ±1-core difference is within measurement noise; chasing it
  // would churn shards every cycle. Exception: a starved executor gets its
  // increase — pinning it would cap the whole pipeline at
  // min_j(µ_j·k_j / demand-share_j). Starvation is offered demand at or
  // beyond current capacity (ρ = λ/µk ≳ 1), *not* busy-time utilization:
  // back-pressure retry gaps keep even a drowning executor's tasks
  // partially idle (and on a straggler node µ itself has collapsed), so a
  // utilization test would never fire exactly when it matters.
  std::vector<bool> starved(states_.size(), false);
  for (size_t j = 0; j < states_.size(); ++j) {
    int current = states_[j].executor->num_tasks();
    starved[j] = targets[j] > current &&
                 states_[j].lambda.value() >=
                     0.95 * std::max(states_[j].mu.value(), 1e-9) * current;
    if (!starved[j] && std::abs(targets[j] - current) <= 1) {
      targets[j] = std::max(1, current);
    }
  }
  const int available_cores = AvailableCores();
  if (rt_->config().scheduler.allocate_all_cores) {
    // The deadband must not strand capacity: hand leftover cores to the
    // executors with the highest per-core utilization. A grant only changes
    // the grantee's utilization (its target grew), so a max-heap with
    // recompute-on-pop staleness replaces the per-core O(m) argmax scan;
    // (util, -j) keys reproduce the scan's smallest-index tie-break.
    int total_target = 0;
    for (int t : targets) total_target += t;
    if (total_target < available_cores) {
      auto util_of = [&](int j) {
        return std::max(states_[j].lambda.value(), 0.0) /
               (std::max(states_[j].mu.value(), 1e-9) * targets[j]);
      };
      std::priority_queue<std::pair<double, int>> heap;
      for (int j = 0; j < static_cast<int>(states_.size()); ++j) {
        heap.push({util_of(j), -j});
      }
      while (total_target < available_cores) {
        auto [util, neg_j] = heap.top();
        heap.pop();
        int j = -neg_j;
        double fresh = util_of(j);
        if (fresh != util) {  // Stale (j was granted since the push).
          heap.push({fresh, neg_j});
          continue;
        }
        ++targets[j];
        ++total_target;
        heap.push({util_of(j), neg_j});
      }
    }
  }

  // Build the assignment problem from the *actual* current distribution —
  // except on unavailable (crashed) nodes: those get zero capacity and their
  // current cores are excluded from the input, so the solver plans the full
  // target on healthy nodes. ExecuteDiff diffs against the real distribution,
  // which turns the exclusion into removals on the dead node plus additions
  // elsewhere — the evacuation. (Excluded cores also don't enter the
  // migration-cost/pause estimate: the pause-budget brake must never defer
  // an evacuation.)
  AssignmentInput in;
  in.node_capacity.resize(cluster_->num_nodes());
  in.node_speed.resize(cluster_->num_nodes());
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    in.node_capacity[i] =
        rt_->faults()->available(i) ? cluster_->cores(i) : 0;
    // Fault-plane-derived per-core speed (perf_model.h): the assignment
    // greedy steers new cores away from straggler nodes.
    in.node_speed[i] = rt_->faults()->available(i)
                           ? CoreSpeed(rt_->faults()->cpu_factor(i))
                           : 0.0;
  }
  const int m = static_cast<int>(states_.size());
  in.home.resize(m);
  in.target = targets;
  in.state_bytes.resize(m);
  in.data_intensity.resize(m);
  in.current = SparseAssignment(m);
  in.phi = cfg.phi_bytes_per_sec;
  for (int j = 0; j < m; ++j) {
    const auto& s = states_[j];
    in.home[j] = s.executor->home_node();
    in.state_bytes[j] = static_cast<double>(s.executor->state_bytes());
    in.data_intensity[j] = s.intensity.value();
    int current_total = 0;
    for (const auto& [node, count] : s.executor->placement()) {
      if (!rt_->faults()->available(node)) continue;  // Being evacuated.
      in.current.exec[j].push_back({node, count});
      current_total += count;
    }
    // Executors mid-transition keep their current allocation this round.
    if (s.executor->transition_pending()) {
      in.target[j] = std::max(1, current_total);
    }
  }
  // The pin-to-current overrides can push Σ targets over capacity; shave
  // back to feasibility, largest targets first. Prefer shaving executors
  // that are *not* starved: under an undetected straggler the starved
  // executors (whose µ collapsed with the node's speed) are exactly the
  // ones that must grow — shaving them first would pin the whole cluster
  // at the status quo while the deadband pins everyone else.
  {
    int total_target = 0;
    for (int j = 0; j < m; ++j) total_target += in.target[j];
    // Largest-target-first victim selection via a (target, -j) max-heap —
    // same victims as the old per-core O(m) argmax scan (ties go to the
    // smallest index). An entry is stale iff its stored target no longer
    // matches; a fresh entry is pushed after every decrement, so the valid
    // maximum is always resident. Eligibility (mid-transition, starved in
    // pass 1) is fixed within a pass and checked at push; target > 1 only
    // decreases, so entries matching the current target still satisfy it.
    auto shave = [&](bool allow_starved) {
      if (total_target <= available_cores) return;
      std::priority_queue<std::pair<int, int>> heap;
      for (int j = 0; j < m; ++j) {
        if (states_[j].executor->transition_pending() || in.target[j] <= 1) {
          continue;
        }
        if (!allow_starved && starved[j]) continue;
        heap.push({in.target[j], -j});
      }
      while (total_target > available_cores && !heap.empty()) {
        auto [target, neg_j] = heap.top();
        heap.pop();
        int j = -neg_j;
        if (target != in.target[j]) continue;  // Stale.
        --in.target[j];
        --total_target;
        if (in.target[j] > 1) heap.push({in.target[j], neg_j});
      }
    };
    shave(/*allow_starved=*/false);
    shave(/*allow_starved=*/true);
  }

  auto wall_solve = WallClock::now();
  AssignmentOutput out =
      cfg.naive_assignment
          ? NaiveAssignment(in, static_cast<uint64_t>(cycles_ / 8))
          : SolveAssignment(in);

  auto wall_end = WallClock::now();
  scheduling_wall_ms_total_ += wall_ms(wall_start, wall_end);
  ++cycles_;
  timing_.measure_ms += wall_ms(wall_measure, wall_start);
  timing_.targets_ms += wall_ms(wall_start, wall_solve);
  timing_.solve_ms += wall_ms(wall_solve, wall_end);
  // The diff phase (everything below, including the pause estimate) runs
  // inside this guard so every exit path records its cycle breakdown.
  struct CycleRecorder {
    SchedulerTiming* timing;
    WallClock::time_point cycle_start, diff_start;
    ~CycleRecorder() {
      auto end = WallClock::now();
      timing->diff_ms +=
          std::chrono::duration<double, std::milli>(end - diff_start).count();
      timing->cycle_ms.push_back(
          std::chrono::duration<double, std::milli>(end - cycle_start)
              .count());
    }
  } recorder{&timing_, wall_measure, wall_end};

  if (!out.feasible) {
    ELOG_WARN << "scheduler: no feasible assignment this cycle";
    return;
  }
  last_phi_used_ = out.phi_used;
  last_migration_cost_ = out.migration_cost_bytes;

  // Translate the planned state movement into an expected routing-pause
  // cost under the configured migration strategy: chunked-live pauses only
  // for the dirty delta, sync-blob for the whole transfer. The label-drain
  // term is the time a task needs to clear one full pending queue; the
  // dirty rate is the mean per-core write intensity hitting one shard.
  if (!states_.empty()) {
    PauseCostModel pause_model;
    pause_model.bandwidth_bytes_per_sec =
        rt_->net()->config().bandwidth_bytes_per_sec;
    pause_model.chunked_live = rt_->config().state.migration.strategy ==
                               MigrationStrategy::kChunkedLive;
    double mean_mu = 0.0, mean_intensity = 0.0;
    int64_t total_shards = 0;
    for (const auto& s : states_) {
      mean_mu += std::max(s.mu.value(), 1e-6);
      mean_intensity += std::max(s.intensity.value(), 0.0);
      total_shards += s.executor->num_shards();
    }
    const double m_exec = static_cast<double>(states_.size());
    mean_mu /= m_exec;
    mean_intensity /= m_exec;
    double shards_per_exec =
        std::max(1.0, static_cast<double>(total_shards) / m_exec);
    pause_model.sync_seconds =
        static_cast<double>(rt_->config().task_queue_cap) / mean_mu;
    pause_model.dirty_bytes_per_sec = mean_intensity / shards_per_exec;
    // A plan that moves no state pauses nothing (core additions on the home
    // node are free under intra-process state sharing).
    last_pause_estimate_s_ =
        out.migration_cost_bytes <= 0.0
            ? 0.0
            : EstimatePauseSeconds(
                  pause_model,
                  static_cast<int64_t>(out.migration_cost_bytes));
    // The estimate is a decision input, not just telemetry: a cycle whose
    // planned state movement would pause routing beyond the budget is
    // deferred (the next cycle re-plans from fresh measurements; under
    // chunked-live the same movement prices far cheaper than sync-blob).
    double budget = cfg.pause_budget_s;
    if (budget > 0.0 && last_pause_estimate_s_ > budget) {
      ELOG_WARN << "scheduler: deferring reconfiguration (estimated pause "
                << last_pause_estimate_s_ << " s exceeds budget " << budget
                << " s)";
      return;
    }
  }

  ExecuteDiff(out.x);
}

void DynamicScheduler::ExecuteDiff(const SparseAssignment& x) {
  const int m = static_cast<int>(states_.size());
  pending_adds_.clear();  // Drop stale intents from the previous cycle.

  // Diff the plan against the *live* distribution — on a crashed node the
  // solver input excluded the cores, so the diff turns into removals there
  // plus additions elsewhere: the evacuation. The plan's moves come
  // (node, executor)-ascending, the order the old dense delta scan issued.
  SparseAssignment live(m);
  for (int j = 0; j < m; ++j) live.exec[j] = states_[j].executor->placement();
  DiffPlan plan = PlanCoreDiff(live, x);

  // Queue additions; issue at most one removal per executor per cycle (the
  // executor serializes transitions anyway), then satisfy additions as cores
  // free up.
  for (const CoreMove& mv : plan.adds) {
    pending_adds_[mv.node].push_back(mv.executor);
  }
  std::vector<bool> removal_issued(m, false);
  for (const CoreMove& mv : plan.removal_candidates) {
    int j = mv.executor;
    if (removal_issued[j]) continue;
    if (states_[j].executor->transition_pending()) continue;
    NodeId node = mv.node;
    auto& s = states_[j];
    Status st = s.executor->RemoveCore(node, [this, node, j]() {
      // Core physically free once the task drained.
      int core = ledger_->ReleaseOneOf(node, states_[j].executor->id());
      ELASTICUTOR_CHECK_MSG(core >= 0, "ledger out of sync on removal");
      TryDrainPendingAdds(node);
    });
    if (st.ok()) {
      removal_issued[j] = true;
      ++core_moves_issued_;
    }
  }
  // Satisfy whatever fits in the currently free cores; the rest chain on
  // removal completions (and are discarded at the next cycle, which
  // recomputes the diff from fresh state). Walk the planned nodes in
  // ascending order (plan.adds is node-major) — the historical drain order.
  for (size_t k = 0; k < plan.adds.size();) {
    NodeId node = plan.adds[k].node;
    while (k < plan.adds.size() && plan.adds[k].node == node) ++k;
    TryDrainPendingAdds(node);
  }
}

void DynamicScheduler::TryDrainPendingAdds(NodeId node) {
  auto it = pending_adds_.find(node);
  if (it == pending_adds_.end()) return;
  auto& adds = it->second;
  while (!adds.empty() && ledger_->FreeOn(node) > 0) {
    int j = adds.front();
    adds.pop_front();
    auto& s = states_[j];
    int core = ledger_->Acquire(node, s.executor->id());
    ELASTICUTOR_CHECK(core >= 0);
    Status st = s.executor->AddCore(node);
    if (!st.ok()) {
      ledger_->Release(node, core);
      continue;
    }
    ++core_moves_issued_;
    // React immediately: pull load onto the new task.
    s.executor->RunBalanceRound();
  }
}

}  // namespace elasticutor
