#include "scheduler/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/status.h"

namespace elasticutor {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct WorkingState {
  std::vector<std::vector<int>> x;  // [node][executor].
  std::vector<int> total;           // X_j.
  std::vector<int> free_cores;      // Per node.
};

// Penalty (in cost bytes) for allocating a core on a slow node: a node at
// speed 1/f forfeits (f - 1) nominal cores' worth of work, priced against
// the executor's state size so it stays commensurable with migration cost
// (the +1 keeps the preference strict even for stateless executors).
double SlownessPenalty(const AssignmentInput& in, int node, int j) {
  if (in.node_speed.empty()) return 0.0;
  double speed = in.node_speed[node];
  if (speed >= 1.0 || speed <= 0.0) return 0.0;
  return (1.0 / speed - 1.0) * (in.state_bytes[j] + 1.0);
}

double CostAlloc(const AssignmentInput& in, const WorkingState& w, int node,
                 int j) {
  int xj = w.total[j];
  double penalty = SlownessPenalty(in, node, j);
  if (xj <= 0) return penalty;
  return in.state_bytes[j] * (xj - w.x[node][j]) /
             (static_cast<double>(xj) * (xj + 1)) +
         penalty;
}

double CostDealloc(const AssignmentInput& in, const WorkingState& w, int node,
                   int j) {
  int xj = w.total[j];
  if (xj <= 1) return kInf;  // Would drop the executor to zero cores.
  return in.state_bytes[j] * (xj - w.x[node][j]) /
         (static_cast<double>(xj) * (xj - 1));
}

}  // namespace

double MigrationCostBytes(const AssignmentInput& in,
                          const std::vector<std::vector<int>>& x) {
  const int n = static_cast<int>(in.node_capacity.size());
  const int m = static_cast<int>(in.target.size());
  double cost = 0.0;
  for (int j = 0; j < m; ++j) {
    int old_total = 0, new_total = 0;
    for (int i = 0; i < n; ++i) {
      old_total += in.current[i][j];
      new_total += x[i][j];
    }
    if (old_total == 0 || new_total == 0) continue;
    for (int i = 0; i < n; ++i) {
      double before = in.state_bytes[j] * in.current[i][j] / old_total;
      double after = in.state_bytes[j] * x[i][j] / new_total;
      cost += std::max(0.0, before - after);
    }
  }
  return cost;
}

AssignmentOutput SolveAssignmentOnce(const AssignmentInput& in, double phi) {
  const int n = static_cast<int>(in.node_capacity.size());
  const int m = static_cast<int>(in.target.size());
  ELASTICUTOR_CHECK(static_cast<int>(in.current.size()) == n);

  WorkingState w;
  w.x = in.current;
  w.total.assign(m, 0);
  w.free_cores.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    int used = 0;
    for (int j = 0; j < m; ++j) used += w.x[i][j];
    w.free_cores[i] = in.node_capacity[i] - used;
    ELASTICUTOR_CHECK_MSG(w.free_cores[i] >= 0, "node over capacity");
  }
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < n; ++i) w.total[j] += w.x[i][j];
  }

  auto over_provisioned = [&](int j) { return w.total[j] > in.target[j]; };
  auto intensive = [&](int j) { return in.data_intensity[j] > phi; };

  // Under-provisioned executors, most data-intensive first.
  std::vector<int> under;
  for (int j = 0; j < m; ++j) {
    if (w.total[j] < in.target[j]) under.push_back(j);
  }
  std::sort(under.begin(), under.end(), [&](int a, int b) {
    return in.data_intensity[a] > in.data_intensity[b];
  });

  AssignmentOutput out;
  for (int j : under) {
    while (w.total[j] < in.target[j]) {
      if (intensive(j)) {
        // Locality constraint: only cores on the home node.
        int i = in.home[j];
        if (w.free_cores[i] > 0) {
          --w.free_cores[i];
        } else {
          int donor = -1;
          double best = kInf;
          for (int cand = 0; cand < m; ++cand) {
            if (cand == j || !over_provisioned(cand) || w.x[i][cand] <= 0) {
              continue;
            }
            double cost = CostDealloc(in, w, i, cand);
            if (cost < best) {
              best = cost;
              donor = cand;
            }
          }
          if (donor < 0) return out;  // FAIL at this φ.
          --w.x[i][donor];
          --w.total[donor];
        }
        ++w.x[i][j];
        ++w.total[j];
      } else {
        // Any node: cheapest dealloc+alloc pair (free cores cost only C+).
        int best_node = -1, donor = -1;
        double best = kInf;
        for (int i = 0; i < n; ++i) {
          if (w.free_cores[i] > 0) {
            double cost = CostAlloc(in, w, i, j);
            if (cost < best) {
              best = cost;
              best_node = i;
              donor = -1;
            }
          }
          for (int cand = 0; cand < m; ++cand) {
            if (cand == j || !over_provisioned(cand) || w.x[i][cand] <= 0) {
              continue;
            }
            double cost = CostDealloc(in, w, i, cand) + CostAlloc(in, w, i, j);
            if (cost < best) {
              best = cost;
              best_node = i;
              donor = cand;
            }
          }
        }
        if (best_node < 0) return out;  // FAIL at this φ.
        if (donor >= 0) {
          --w.x[best_node][donor];
          --w.total[donor];
        } else {
          --w.free_cores[best_node];
        }
        ++w.x[best_node][j];
        ++w.total[j];
      }
    }
  }

  out.feasible = true;
  out.x = std::move(w.x);
  out.phi_used = phi;
  out.migration_cost_bytes = MigrationCostBytes(in, out.x);
  return out;
}

AssignmentOutput SolveAssignment(const AssignmentInput& in) {
  int total_target = std::accumulate(in.target.begin(), in.target.end(), 0);
  int total_capacity =
      std::accumulate(in.node_capacity.begin(), in.node_capacity.end(), 0);
  if (total_target > total_capacity) {
    return AssignmentOutput{};  // Structurally infeasible.
  }
  double phi = in.phi;
  for (int attempt = 0; attempt < 64; ++attempt) {
    AssignmentOutput out = SolveAssignmentOnce(in, phi);
    if (out.feasible) return out;
    phi *= 2.0;
  }
  return SolveAssignmentOnce(in, kInf);
}

AssignmentOutput NaiveAssignment(const AssignmentInput& in, uint64_t salt) {
  const int n = static_cast<int>(in.node_capacity.size());
  const int m = static_cast<int>(in.target.size());
  AssignmentOutput out;
  out.x.assign(n, std::vector<int>(m, 0));
  std::vector<int> free_cores = in.node_capacity;
  int cursor = static_cast<int>(salt % static_cast<uint64_t>(n));
  for (int j = 0; j < m; ++j) {
    // First-fit from a rotating cursor, oblivious to home nodes and the
    // existing placement — an executor's only task can end up remote from
    // its receiver/emitter, which is exactly the locality failure the
    // optimized Algorithm 1 avoids.
    int need = in.target[j];
    for (int step = 0; step < n && need > 0; ++step) {
      int i = (cursor + step) % n;
      int take = std::min(need, free_cores[i]);
      free_cores[i] -= take;
      out.x[i][j] += take;
      need -= take;
    }
    cursor = (cursor + 1) % n;
    if (need > 0) return AssignmentOutput{};  // Out of capacity.
  }
  out.feasible = true;
  out.phi_used = 0.0;
  out.migration_cost_bytes = MigrationCostBytes(in, out.x);
  return out;
}

}  // namespace elasticutor
