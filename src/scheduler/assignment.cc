#include "scheduler/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <queue>

#include "common/status.h"

namespace elasticutor {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int GetAt(const PlacementVec& p, int node) {
  auto it = std::lower_bound(
      p.begin(), p.end(), node,
      [](const std::pair<int, int>& e, int v) { return e.first < v; });
  return (it != p.end() && it->first == node) ? it->second : 0;
}

void AddAt(PlacementVec& p, int node, int delta) {
  auto it = std::lower_bound(
      p.begin(), p.end(), node,
      [](const std::pair<int, int>& e, int v) { return e.first < v; });
  if (it != p.end() && it->first == node) {
    it->second += delta;
    if (it->second == 0) p.erase(it);
  } else if (delta != 0) {
    p.insert(it, {node, delta});
  }
}

// Penalty (in cost bytes) for allocating a core on a slow node: a node at
// speed 1/f forfeits (f - 1) nominal cores' worth of work, priced against
// the executor's state size so it stays commensurable with migration cost
// (the +1 keeps the preference strict even for stateless executors).
double SlownessPenalty(const AssignmentInput& in, int node, int j) {
  if (in.node_speed.empty()) return 0.0;
  double speed = in.node_speed[node];
  if (speed >= 1.0 || speed <= 0.0) return 0.0;
  return (1.0 / speed - 1.0) * (in.state_bytes[j] + 1.0);
}

// Marginal-cost formulas shared by the sparse and dense solvers — a single
// code path so their floating-point results are bit-identical.
double MarginalAlloc(double s, int xj, int x_ij, double penalty) {
  if (xj <= 0) return penalty;
  return s * (xj - x_ij) / (static_cast<double>(xj) * (xj + 1)) + penalty;
}

double MarginalDealloc(double s, int xj, int x_ij) {
  if (xj <= 1) return kInf;  // Would drop the executor to zero cores.
  return s * (xj - x_ij) / (static_cast<double>(xj) * (xj - 1));
}

// Under-provisioned executors, most data-intensive first; index tie-break
// keeps the two solvers (and any std::sort implementation) in lockstep.
std::vector<int> UnderProvisioned(const AssignmentInput& in,
                                  const std::vector<int>& total) {
  std::vector<int> under;
  for (int j = 0; j < static_cast<int>(in.target.size()); ++j) {
    if (total[j] < in.target[j]) under.push_back(j);
  }
  std::sort(under.begin(), under.end(), [&](int a, int b) {
    if (in.data_intensity[a] != in.data_intensity[b]) {
      return in.data_intensity[a] > in.data_intensity[b];
    }
    return a < b;
  });
  return under;
}

// ---------------------------------------------------------------------------
// Sparse indexed-heap solver.
//
// State per grant candidate, mirroring the dense scan's tie-breaking
// (first strict minimum in (node, donor)-ascending order):
//  * donor_heaps_[i] — min-heap of (C⁻_i,cand, cand) over executors holding
//    cores on node i. Entries are lazily invalidated: a pop/peek recomputes
//    the cost and drops entries whose stored cost or eligibility no longer
//    match; every donation eagerly re-pushes fresh entries for the donor's
//    placement nodes, so the true minimum is always present.
//  * node_heap_ — min-heap of (base_i, i) where base_i is the node's
//    donor-independent floor: 0 with free cores, else the clean donor-heap
//    top, else +inf (node unusable). base_[i] caches the true value; an
//    entry is stale iff its stored base differs.
//
// A grant for executor j evaluates exactly: (1) the nodes of j's own
// placement (the only nodes where the alloc discount −s·x_ij/(X_j(X_j+1))
// applies), and (2) heap nodes popped while base_i + C⁺(x_ij=0, penalty=0)
// could still beat the best candidate — for unpenalized foreign nodes that
// bound is exact, so the pop run ends after one entry in the common case.
// ---------------------------------------------------------------------------

class SparseSolver {
 public:
  SparseSolver(const AssignmentInput& in, double phi)
      : in_(in),
        phi_(phi),
        n_(static_cast<int>(in.node_capacity.size())),
        m_(static_cast<int>(in.target.size())) {}

  AssignmentOutput Solve() {
    Init();
    AssignmentOutput out;
    for (int j : UnderProvisioned(in_, total_)) {
      while (total_[j] < in_.target[j]) {
        if (in_.data_intensity[j] > phi_) {
          if (!GrantLocal(j)) return out;  // FAIL at this φ.
        } else {
          if (!GrantAnywhere(j)) return out;  // FAIL at this φ.
        }
      }
    }
    out.feasible = true;
    out.x.exec = std::move(x_);
    out.phi_used = phi_;
    out.migration_cost_bytes = MigrationCostBytes(in_, out.x);
    return out;
  }

 private:
  struct DonorEntry {
    double cost;
    int cand;
  };
  struct DonorGreater {
    bool operator()(const DonorEntry& a, const DonorEntry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;
      return a.cand > b.cand;
    }
  };
  using DonorHeap =
      std::priority_queue<DonorEntry, std::vector<DonorEntry>, DonorGreater>;

  struct NodeEntry {
    double base;
    int node;
  };
  struct NodeGreater {
    bool operator()(const NodeEntry& a, const NodeEntry& b) const {
      if (a.base != b.base) return a.base > b.base;
      return a.node > b.node;
    }
  };
  using NodeHeap =
      std::priority_queue<NodeEntry, std::vector<NodeEntry>, NodeGreater>;

  struct Candidate {
    double cost = 0.0;
    int node = -1;
    int donor = -1;  // -1 = free core; sorts before every executor id.
    bool valid = false;
  };

  void Init() {
    ELASTICUTOR_CHECK(static_cast<int>(in_.current.exec.size()) == m_);
    x_ = in_.current.exec;
    total_.assign(m_, 0);
    std::vector<int> used(n_, 0);
    for (int j = 0; j < m_; ++j) {
      for (const auto& [node, cores] : x_[j]) {
        total_[j] += cores;
        used[node] += cores;
      }
    }
    free_cores_.resize(n_);
    for (int i = 0; i < n_; ++i) {
      free_cores_[i] = in_.node_capacity[i] - used[i];
      ELASTICUTOR_CHECK_MSG(free_cores_[i] >= 0, "node over capacity");
    }
    donor_heaps_.resize(n_);
    for (int cand = 0; cand < m_; ++cand) {
      if (total_[cand] <= in_.target[cand]) continue;
      for (const auto& [node, cores] : x_[cand]) {
        donor_heaps_[node].push(
            {MarginalDealloc(in_.state_bytes[cand], total_[cand], cores),
             cand});
      }
    }
    base_.assign(n_, kInf);
    for (int i = 0; i < n_; ++i) {
      double nb = NodeBase(i);
      base_[i] = nb;
      if (nb < kInf) node_heap_.push({nb, i});
    }
  }

  bool DonorEligible(int cand) const {
    return total_[cand] > in_.target[cand];
  }

  /// Valid minimum of node i's donor heap (pops stale entries).
  std::optional<DonorEntry> CleanDonorTop(int i) {
    DonorHeap& heap = donor_heaps_[i];
    while (!heap.empty()) {
      DonorEntry e = heap.top();
      if (DonorEligible(e.cand)) {
        int x_ic = GetAt(x_[e.cand], i);
        if (x_ic > 0 &&
            MarginalDealloc(in_.state_bytes[e.cand], total_[e.cand], x_ic) ==
                e.cost) {
          return e;
        }
      }
      heap.pop();
    }
    return std::nullopt;
  }

  double NodeBase(int i) {
    if (free_cores_[i] > 0) return 0.0;
    auto top = CleanDonorTop(i);
    return top ? top->cost : kInf;
  }

  void RefreshNodeBase(int i) {
    double nb = NodeBase(i);
    if (nb != base_[i]) {
      base_[i] = nb;
      if (nb < kInf) node_heap_.push({nb, i});
    }
  }

  /// Takes one core on `node` from `donor` (-1 = a free core) and hands it
  /// to `j`, eagerly re-posting every heap entry the change dirties.
  void ApplyGrant(int node, int donor, int j) {
    if (donor >= 0) {
      AddAt(x_[donor], node, -1);
      --total_[donor];
      // The donor's marginal dealloc cost changed on every node it still
      // occupies (X_cand moved); repost fresh entries and refresh the
      // affected node floors. Stale copies die lazily on the next peek.
      bool eligible = DonorEligible(donor);
      for (const auto& [nd, cores] : x_[donor]) {
        if (eligible) {
          donor_heaps_[nd].push(
              {MarginalDealloc(in_.state_bytes[donor], total_[donor], cores),
               donor});
        }
        RefreshNodeBase(nd);
      }
      RefreshNodeBase(node);  // Covers the donor fully leaving `node`.
    } else {
      --free_cores_[node];
      RefreshNodeBase(node);
    }
    AddAt(x_[j], node, +1);
    ++total_[j];
  }

  /// Locality-constrained grant: only the home node (free core, else the
  /// cheapest donor there — the per-node min-heap).
  bool GrantLocal(int j) {
    int i = in_.home[j];
    if (free_cores_[i] > 0) {
      ApplyGrant(i, -1, j);
      return true;
    }
    auto top = CleanDonorTop(i);
    if (!top) return false;
    ApplyGrant(i, top->cand, j);
    return true;
  }

  static void Consider(Candidate& best, double cost, int node, int donor) {
    if (!best.valid || cost < best.cost ||
        (cost == best.cost &&
         (node < best.node || (node == best.node && donor < best.donor)))) {
      best = {cost, node, donor, true};
    }
  }

  /// Unconstrained grant: cheapest (node, donor) pair over the cluster.
  bool GrantAnywhere(int j) {
    const double s = in_.state_bytes[j];
    const int xj = total_[j];
    Candidate best;
    auto evaluate = [&](int node) {
      double alloc =
          MarginalAlloc(s, xj, GetAt(x_[j], node), SlownessPenalty(in_, node, j));
      if (free_cores_[node] > 0) {
        Consider(best, alloc, node, -1);
      } else if (auto top = CleanDonorTop(node)) {
        Consider(best, top->cost + alloc, node, top->cand);
      }
    };
    // Nodes of j's own placement: the only ones where the alloc discount
    // applies, so the heap's floor bound below would undershoot them.
    for (const auto& [node, cores] : x_[j]) evaluate(node);
    // C⁺ floor for any foreign unpenalized node (x_ij = 0, penalty = 0):
    // exact for such nodes, a lower bound everywhere.
    const double alloc_floor = MarginalAlloc(s, xj, 0, 0.0);
    scratch_.clear();
    while (!node_heap_.empty()) {
      NodeEntry e = node_heap_.top();
      if (e.base != base_[e.node]) {  // Stale; a fresh copy exists.
        node_heap_.pop();
        continue;
      }
      if (best.valid) {
        double floor = e.base + alloc_floor;
        if (floor > best.cost ||
            (floor == best.cost && e.node >= best.node)) {
          break;
        }
      }
      node_heap_.pop();
      scratch_.push_back(e);
      evaluate(e.node);
    }
    // Valid entries must stay resident (RefreshNodeBase only re-posts on a
    // change); restore them before the grant mutates any base.
    for (const NodeEntry& e : scratch_) node_heap_.push(e);
    if (!best.valid) return false;
    ApplyGrant(best.node, best.donor, j);
    return true;
  }

  const AssignmentInput& in_;
  const double phi_;
  const int n_, m_;

  std::vector<PlacementVec> x_;  // Working placements, node-sorted.
  std::vector<int> total_;       // X_j.
  std::vector<int> free_cores_;  // Per node.

  std::vector<DonorHeap> donor_heaps_;
  NodeHeap node_heap_;
  std::vector<double> base_;
  std::vector<NodeEntry> scratch_;
};

template <typename SolveOnce>
AssignmentOutput SolveWithPhiDoubling(const AssignmentInput& in,
                                      SolveOnce solve_once) {
  int total_target = std::accumulate(in.target.begin(), in.target.end(), 0);
  int total_capacity =
      std::accumulate(in.node_capacity.begin(), in.node_capacity.end(), 0);
  if (total_target > total_capacity) {
    return AssignmentOutput{};  // Structurally infeasible.
  }
  double phi = in.phi;
  for (int attempt = 0; attempt < 64; ++attempt) {
    AssignmentOutput out = solve_once(in, phi);
    if (out.feasible) return out;
    phi *= 2.0;
  }
  return solve_once(in, kInf);
}

}  // namespace

// ---- SparseAssignment ----

int SparseAssignment::At(int node, int j) const { return GetAt(exec[j], node); }

void SparseAssignment::Add(int node, int j, int delta) {
  AddAt(exec[j], node, delta);
}

int SparseAssignment::Total(int j) const {
  int total = 0;
  for (const auto& [node, cores] : exec[j]) total += cores;
  return total;
}

SparseAssignment SparseAssignment::FromDense(
    const std::vector<std::vector<int>>& x) {
  const int n = static_cast<int>(x.size());
  const int m = n > 0 ? static_cast<int>(x[0].size()) : 0;
  SparseAssignment out(m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (x[i][j] != 0) out.exec[j].push_back({i, x[i][j]});
    }
  }
  return out;
}

std::vector<std::vector<int>> SparseAssignment::ToDense(int num_nodes) const {
  std::vector<std::vector<int>> dense(
      num_nodes, std::vector<int>(exec.size(), 0));
  for (int j = 0; j < static_cast<int>(exec.size()); ++j) {
    for (const auto& [node, cores] : exec[j]) {
      ELASTICUTOR_CHECK(node >= 0 && node < num_nodes);
      dense[node][j] = cores;
    }
  }
  return dense;
}

// ---- Cost / diff ----

double MigrationCostBytes(const AssignmentInput& in,
                          const SparseAssignment& x) {
  const int m = static_cast<int>(in.target.size());
  static const PlacementVec kEmpty;
  double cost = 0.0;
  for (int j = 0; j < m; ++j) {
    const PlacementVec& cur =
        j < in.current.num_executors() ? in.current.exec[j] : kEmpty;
    const PlacementVec& nxt = j < x.num_executors() ? x.exec[j] : kEmpty;
    int old_total = 0, new_total = 0;
    for (const auto& [node, cores] : cur) old_total += cores;
    for (const auto& [node, cores] : nxt) new_total += cores;
    if (old_total == 0 || new_total == 0) continue;
    // Node-ascending merge over the union of touched nodes; everywhere else
    // both shares are zero and contribute nothing.
    size_t a = 0, b = 0;
    while (a < cur.size() || b < nxt.size()) {
      int node_a = a < cur.size() ? cur[a].first
                                  : std::numeric_limits<int>::max();
      int node_b = b < nxt.size() ? nxt[b].first
                                  : std::numeric_limits<int>::max();
      int node = std::min(node_a, node_b);
      int before_cores = node_a == node ? cur[a++].second : 0;
      int after_cores = node_b == node ? nxt[b++].second : 0;
      double before = in.state_bytes[j] * before_cores / old_total;
      double after = in.state_bytes[j] * after_cores / new_total;
      cost += std::max(0.0, before - after);
    }
  }
  return cost;
}

DiffPlan PlanCoreDiff(const SparseAssignment& current,
                      const SparseAssignment& x) {
  DiffPlan plan;
  static const PlacementVec kEmpty;
  const int m = std::max(current.num_executors(), x.num_executors());
  for (int j = 0; j < m; ++j) {
    const PlacementVec& cur =
        j < current.num_executors() ? current.exec[j] : kEmpty;
    const PlacementVec& nxt = j < x.num_executors() ? x.exec[j] : kEmpty;
    size_t a = 0, b = 0;
    while (a < cur.size() || b < nxt.size()) {
      int node_a = a < cur.size() ? cur[a].first
                                  : std::numeric_limits<int>::max();
      int node_b = b < nxt.size() ? nxt[b].first
                                  : std::numeric_limits<int>::max();
      int node = std::min(node_a, node_b);
      int delta = (node_b == node ? nxt[b++].second : 0) -
                  (node_a == node ? cur[a++].second : 0);
      if (delta > 0) {
        for (int k = 0; k < delta; ++k) plan.adds.push_back({node, j});
      } else if (delta < 0) {
        plan.removal_candidates.push_back({node, j});
      }
    }
  }
  // The scheduler issues moves node-major ((node, executor) ascending), the
  // order the historical dense delta scan produced; per-node add order also
  // feeds the TryDrainPendingAdds FIFO.
  auto by_node_then_executor = [](const CoreMove& a, const CoreMove& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.executor < b.executor;
  };
  std::sort(plan.adds.begin(), plan.adds.end(), by_node_then_executor);
  std::sort(plan.removal_candidates.begin(), plan.removal_candidates.end(),
            by_node_then_executor);
  return plan;
}

// ---- Solvers ----

AssignmentOutput SolveAssignmentOnce(const AssignmentInput& in, double phi) {
  return SparseSolver(in, phi).Solve();
}

AssignmentOutput SolveAssignmentOnceDense(const AssignmentInput& in,
                                          double phi) {
  const int n = static_cast<int>(in.node_capacity.size());
  const int m = static_cast<int>(in.target.size());
  ELASTICUTOR_CHECK(static_cast<int>(in.current.exec.size()) == m);

  std::vector<std::vector<int>> x = in.current.ToDense(n);
  std::vector<int> total(m, 0);
  std::vector<int> free_cores(n, 0);
  for (int i = 0; i < n; ++i) {
    int used = 0;
    for (int j = 0; j < m; ++j) used += x[i][j];
    free_cores[i] = in.node_capacity[i] - used;
    ELASTICUTOR_CHECK_MSG(free_cores[i] >= 0, "node over capacity");
  }
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < n; ++i) total[j] += x[i][j];
  }

  auto over_provisioned = [&](int j) { return total[j] > in.target[j]; };
  auto cost_alloc = [&](int i, int j) {
    return MarginalAlloc(in.state_bytes[j], total[j], x[i][j],
                         SlownessPenalty(in, i, j));
  };
  auto cost_dealloc = [&](int i, int j) {
    return MarginalDealloc(in.state_bytes[j], total[j], x[i][j]);
  };

  AssignmentOutput out;
  for (int j : UnderProvisioned(in, total)) {
    while (total[j] < in.target[j]) {
      if (in.data_intensity[j] > phi) {
        // Locality constraint: only cores on the home node.
        int i = in.home[j];
        if (free_cores[i] > 0) {
          --free_cores[i];
        } else {
          int donor = -1;
          double best = kInf;
          for (int cand = 0; cand < m; ++cand) {
            if (cand == j || !over_provisioned(cand) || x[i][cand] <= 0) {
              continue;
            }
            double cost = cost_dealloc(i, cand);
            if (cost < best) {
              best = cost;
              donor = cand;
            }
          }
          if (donor < 0) return out;  // FAIL at this φ.
          --x[i][donor];
          --total[donor];
        }
        ++x[i][j];
        ++total[j];
      } else {
        // Any node: cheapest dealloc+alloc pair (free cores cost only C+).
        int best_node = -1, donor = -1;
        double best = kInf;
        for (int i = 0; i < n; ++i) {
          if (free_cores[i] > 0) {
            double cost = cost_alloc(i, j);
            if (cost < best) {
              best = cost;
              best_node = i;
              donor = -1;
            }
          }
          for (int cand = 0; cand < m; ++cand) {
            if (cand == j || !over_provisioned(cand) || x[i][cand] <= 0) {
              continue;
            }
            double cost = cost_dealloc(i, cand) + cost_alloc(i, j);
            if (cost < best) {
              best = cost;
              best_node = i;
              donor = cand;
            }
          }
        }
        if (best_node < 0) return out;  // FAIL at this φ.
        if (donor >= 0) {
          --x[best_node][donor];
          --total[donor];
        } else {
          --free_cores[best_node];
        }
        ++x[best_node][j];
        ++total[j];
      }
    }
  }

  out.feasible = true;
  out.x = SparseAssignment::FromDense(x);
  out.phi_used = phi;
  out.migration_cost_bytes = MigrationCostBytes(in, out.x);
  return out;
}

AssignmentOutput SolveAssignment(const AssignmentInput& in) {
  return SolveWithPhiDoubling(in, SolveAssignmentOnce);
}

AssignmentOutput SolveAssignmentDense(const AssignmentInput& in) {
  return SolveWithPhiDoubling(in, SolveAssignmentOnceDense);
}

AssignmentOutput NaiveAssignment(const AssignmentInput& in, uint64_t salt) {
  const int n = static_cast<int>(in.node_capacity.size());
  const int m = static_cast<int>(in.target.size());
  AssignmentOutput out;
  out.x = SparseAssignment(m);
  std::vector<int> free_cores = in.node_capacity;
  int cursor = static_cast<int>(salt % static_cast<uint64_t>(n));
  for (int j = 0; j < m; ++j) {
    // First-fit from a rotating cursor, oblivious to home nodes and the
    // existing placement — an executor's only task can end up remote from
    // its receiver/emitter, which is exactly the locality failure the
    // optimized Algorithm 1 avoids.
    int need = in.target[j];
    for (int step = 0; step < n && need > 0; ++step) {
      int i = (cursor + step) % n;
      int take = std::min(need, free_cores[i]);
      if (take > 0) {
        free_cores[i] -= take;
        out.x.Add(i, j, take);
        need -= take;
      }
    }
    cursor = (cursor + 1) % n;
    if (need > 0) return AssignmentOutput{};  // Out of capacity.
  }
  out.feasible = true;
  out.phi_used = 0.0;
  out.migration_cost_bytes = MigrationCostBytes(in, out.x);
  return out;
}

}  // namespace elasticutor
