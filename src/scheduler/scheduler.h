// DynamicScheduler (§4): the global daemon of the Elasticutor framework.
// Every interval it
//   1. snapshots executor metrics and updates EWMA estimates of λ_j, µ_j
//      and per-core data intensity,
//   2. computes the core allocation k with the Jackson/M-M-k greedy
//      (perf_model.h),
//   3. solves the CPU-to-executor assignment (Algorithm 1, assignment.h;
//      or the naive first-fit in naive-EC mode), and
//   4. executes the diff: AddCore immediately where free cores exist,
//      RemoveCore (drain + release) where cores move, chaining dependent
//      additions on the released cores.
//
// Wall-clock time of steps 2-3 is recorded — that is the "scheduling time"
// the paper reports in Table 3.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/rate_meter.h"
#include "elastic/elastic_executor.h"
#include "engine/runtime.h"
#include "scheduler/assignment.h"
#include "scheduler/perf_model.h"

namespace elasticutor {

/// Control-plane wall-clock breakdown: per-phase totals (divide by cycles
/// for averages) plus the full per-cycle series for tail statistics.
struct SchedulerTiming {
  double measure_ms = 0.0;  // Metric snapshots + EWMA updates.
  double targets_ms = 0.0;  // Core allocation, deadband, feasibility shave.
  double solve_ms = 0.0;    // Algorithm 1 (or the naive baseline).
  double diff_ms = 0.0;     // Pause estimate + core-move issuance.
  std::vector<double> cycle_ms;  // Per-cycle total (all four phases).

  int64_t cycles() const { return static_cast<int64_t>(cycle_ms.size()); }
  double Avg(double total_ms) const {
    return cycle_ms.empty() ? 0.0
                            : total_ms / static_cast<double>(cycle_ms.size());
  }
  double MaxCycleMs() const;
  double P99CycleMs() const;
};

class DynamicScheduler {
 public:
  DynamicScheduler(Runtime* rt, const Cluster* cluster, CoreLedger* ledger,
                   std::vector<std::shared_ptr<ElasticExecutor>> executors);

  /// Begins periodic scheduling (config.scheduler.interval_ns).
  void Start();

  /// One full scheduling cycle (measure → allocate → assign → execute).
  void RunOnce();

  // ---- Statistics ----
  int64_t cycles() const { return cycles_; }
  /// Mean wall-clock time of the allocation+assignment computation (ms) —
  /// Table 3's "scheduling time".
  double avg_scheduling_wall_ms() const {
    if (cycles_ == 0) return 0.0;
    return scheduling_wall_ms_total_ / static_cast<double>(cycles_);
  }
  double last_phi_used() const { return last_phi_used_; }
  int64_t core_moves_issued() const { return core_moves_issued_; }
  double last_migration_cost_bytes() const { return last_migration_cost_; }
  /// Estimated routing-pause cost (seconds, summed over the cycle's planned
  /// state movement) under the configured migration strategy — the
  /// reassignment-cost signal of the chunked-migration pause model
  /// (perf_model.h): near-flat for chunked-live, linear in moved state for
  /// sync-blob.
  double last_pause_estimate_s() const { return last_pause_estimate_s_; }
  /// Per-phase wall-clock breakdown (measure / targets / solve / diff) with
  /// max and p99 cycle time. avg_scheduling_wall_ms() remains the Table-3
  /// metric (targets + solve only).
  const SchedulerTiming& timing() const { return timing_; }

 private:
  struct ExecutorState {
    std::shared_ptr<ElasticExecutor> executor;
    // Snapshots for interval diffs.
    int64_t prev_offered = 0;
    int64_t prev_processed = 0;
    int64_t prev_busy_ns = 0;
    int64_t prev_bytes = 0;
    Ewma lambda;
    Ewma mu;
    Ewma intensity;
  };

  void MeasureInterval(SimDuration dt);
  /// Total cores on nodes the fault plane marks schedulable.
  int AvailableCores() const;
  std::vector<int> ComputeTargets();
  void ExecuteDiff(const SparseAssignment& x);
  void TryDrainPendingAdds(NodeId node);

  Runtime* rt_;
  const Cluster* cluster_;
  CoreLedger* ledger_;
  std::vector<ExecutorState> states_;
  // Additions waiting for cores to be released on a node (FIFO per node;
  // a deque so the drain pops the front in O(1)).
  std::unordered_map<NodeId, std::deque<int>> pending_adds_;

  int64_t cycles_ = 0;
  double scheduling_wall_ms_total_ = 0.0;
  double last_phi_used_ = 0.0;
  double last_migration_cost_ = 0.0;
  double last_pause_estimate_s_ = 0.0;
  int64_t core_moves_issued_ = 0;
  SimTime last_run_ = 0;
  SchedulerTiming timing_;
};

}  // namespace elasticutor
