#include "common/rate_meter.h"

#include <cstddef>

namespace elasticutor {

void SlidingWindowMeter::Add(int64_t now_ns, int64_t count) {
  Evict(now_ns);
  if (!samples_.empty() && samples_.back().first == now_ns) {
    samples_.back().second += count;
  } else {
    samples_.emplace_back(now_ns, count);
  }
  in_window_ += count;
  total_ += count;
}

double SlidingWindowMeter::RatePerSec(int64_t now_ns) {
  Evict(now_ns);
  return static_cast<double>(in_window_) * 1e9 /
         static_cast<double>(window_ns_);
}

void SlidingWindowMeter::Evict(int64_t now_ns) {
  int64_t cutoff = now_ns - window_ns_;
  while (!samples_.empty() && samples_.front().first <= cutoff) {
    in_window_ -= samples_.front().second;
    samples_.pop_front();
  }
}

void TimeSeries::Add(int64_t now_ns, double value) {
  size_t bin = static_cast<size_t>(now_ns / bin_ns_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
  bins_[bin] += value;
}

std::vector<std::pair<int64_t, double>> TimeSeries::Bins() const {
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(bins_.size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    out.emplace_back(static_cast<int64_t>(i) * bin_ns_, bins_[i]);
  }
  return out;
}

}  // namespace elasticutor
