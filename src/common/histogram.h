// Log-bucketed latency histogram (HdrHistogram-style). Values are recorded
// in nanoseconds; buckets keep ~1.5% relative resolution across 12 orders of
// magnitude, so p50/p99/p999 queries are O(buckets) with bounded error.
#pragma once

#include <cstdint>
#include <vector>

namespace elasticutor {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void RecordN(int64_t value, int64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]; 0 if empty. Returned value is the
  /// representative midpoint of the bucket containing the quantile.
  int64_t Quantile(double q) const;
  int64_t P50() const { return Quantile(0.50); }
  int64_t P99() const { return Quantile(0.99); }
  int64_t P999() const { return Quantile(0.999); }

  void Reset();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per power of 2.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketIndex(int64_t value);
  static int64_t BucketMidpoint(int index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace elasticutor
