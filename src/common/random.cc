#include "common/random.h"

#include <cmath>

namespace elasticutor {

Rng::Rng(uint64_t seed, uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::NextBounded(uint32_t bound) {
  // Lemire's nearly-divisionless method with rejection.
  uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < bound) {
    uint32_t threshold = static_cast<uint32_t>(-bound) % bound;
    while (low < threshold) {
      m = static_cast<uint64_t>(NextU32()) * bound;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Rng Rng::Fork(uint64_t salt) {
  uint64_t seed = NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  uint64_t stream = NextU64() + salt;
  return Rng(seed, stream);
}

}  // namespace elasticutor
