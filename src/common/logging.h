// Minimal leveled logger. Logging in the hot path of the simulator is
// avoided; this is for harness/bench/driver diagnostics.
#pragma once

#include <sstream>
#include <string>

namespace elasticutor {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace elasticutor

#define ELOG(level)                                                       \
  if (::elasticutor::LogLevel::level < ::elasticutor::GetLogLevel()) {    \
  } else                                                                  \
    ::elasticutor::internal::LogMessage(::elasticutor::LogLevel::level)   \
        .stream()

#define ELOG_DEBUG ELOG(kDebug)
#define ELOG_INFO ELOG(kInfo)
#define ELOG_WARN ELOG(kWarn)
#define ELOG_ERROR ELOG(kError)
