// Status / Result<T>: lightweight error propagation in the style of
// Arrow/RocksDB. Functions that can fail return Status (or Result<T> when
// they produce a value); code that detects a programming error uses
// ELASTICUTOR_CHECK which aborts.
#pragma once

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace elasticutor {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. OK statuses are cheap (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of T or a non-OK Status. Accessing the value of a failed
/// Result aborts.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(runtime/explicit)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace elasticutor

/// Fatal assertion for invariants; active in all build types.
#define ELASTICUTOR_CHECK(expr)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::elasticutor::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                                    \
  } while (0)

#define ELASTICUTOR_CHECK_MSG(expr, msg)                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::elasticutor::internal::CheckFailed(__FILE__, __LINE__, #expr, msg); \
    }                                                                      \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define ELASTICUTOR_RETURN_NOT_OK(expr)       \
  do {                                        \
    ::elasticutor::Status _st = (expr);       \
    if (!_st.ok()) return _st;                \
  } while (0)
