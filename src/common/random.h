// Deterministic pseudo-random number generation (PCG32). Every stochastic
// component takes an explicit Rng so experiments are reproducible from a
// single seed; independent streams are derived with Fork().
#pragma once

#include <cstdint>

namespace elasticutor {

/// PCG32 (O'Neill): small, fast, statistically solid; 64-bit state,
/// 32-bit output.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  uint32_t NextU32();
  /// Uniform 64-bit value.
  uint64_t NextU64();
  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);
  /// Normally distributed value (Box-Muller).
  double NextGaussian(double mean, double stddev);
  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Derives an independent generator; deterministic in (this stream, salt).
  Rng Fork(uint64_t salt);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace elasticutor
