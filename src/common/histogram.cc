#include "common/histogram.h"

#include <algorithm>
#include <bit>

namespace elasticutor {

namespace {
// 63 powers of two, kSubBuckets sub-buckets each.
constexpr int kMaxBuckets = 64 << 6;
}  // namespace

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(v);
  }
  int log2 = 63 - std::countl_zero(v);
  int shift = log2 - kSubBucketBits;
  int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  int index = ((shift + 1) << kSubBucketBits) + sub;
  return std::min(index, kMaxBuckets - 1);
}

int64_t Histogram::BucketMidpoint(int index) {
  int block = index >> kSubBucketBits;
  int sub = index & (kSubBuckets - 1);
  if (block == 0) return sub;
  int shift = block - 1;
  uint64_t base = (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  uint64_t width = 1ULL << shift;
  return static_cast<int64_t>(base + width / 2);
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, int64_t n) {
  if (n <= 0) return;
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  buckets_[BucketIndex(value)] += n;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target =
      static_cast<int64_t>(q * static_cast<double>(count_ - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

}  // namespace elasticutor
