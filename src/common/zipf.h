// Zipf-distributed key sampling. Frequencies follow f(rank) ∝ 1/rank^s
// (the paper uses 10K distinct keys with skew factor s = 0.5). Sampling is
// O(1) via Walker's alias method after an O(n) build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace elasticutor {

/// O(1) sampler over an arbitrary discrete distribution (alias method).
class AliasSampler {
 public:
  /// Builds from unnormalized non-negative weights; at least one weight must
  /// be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Samples an index in [0, size()) with probability weight[i]/sum(weights).
  uint32_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// Zipf frequency vector: weight(i) = 1/(i+1)^skew for i in [0, n).
std::vector<double> ZipfWeights(size_t n, double skew);

/// Zipf sampler over ranks [0, n). Rank 0 is the most frequent.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew)
      : sampler_(ZipfWeights(n, skew)), skew_(skew) {}

  uint32_t Sample(Rng* rng) const { return sampler_.Sample(rng); }
  size_t size() const { return sampler_.size(); }
  double skew() const { return skew_; }

 private:
  AliasSampler sampler_;
  double skew_;
};

}  // namespace elasticutor
