// Hashing used for key→shard and key→executor partitioning. A strong mixer
// matters here: partition balance in every paradigm depends on it.
#pragma once

#include <cstdint>

namespace elasticutor {

/// 64-bit finalizer (splitmix64 / murmur3 fmix64 style).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash of a key under a salt; different salts give independent partitions.
inline uint64_t HashKey(uint64_t key, uint64_t salt = 0) {
  return Mix64(key + 0x9e3779b97f4a7c15ULL * (salt + 1));
}

}  // namespace elasticutor
