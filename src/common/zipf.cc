#include "common/zipf.h"

#include <cmath>

#include "common/status.h"

namespace elasticutor {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  ELASTICUTOR_CHECK_MSG(n > 0, "AliasSampler needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    ELASTICUTOR_CHECK_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  ELASTICUTOR_CHECK_MSG(total > 0.0, "all weights are zero");

  prob_.resize(n);
  alias_.resize(n);
  // Scaled probabilities; average is 1.0.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both piles hold cells with probability ~1.
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  uint32_t column = rng->NextBounded(static_cast<uint32_t>(prob_.size()));
  return rng->NextDouble() < prob_[column] ? column : alias_[column];
}

std::vector<double> ZipfWeights(size_t n, double skew) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  return weights;
}

}  // namespace elasticutor
