// Byte and simulated-time unit helpers. Simulated time is int64 nanoseconds
// everywhere (see sim/time.h); these helpers keep call sites readable.
#pragma once

#include <cstdint>

namespace elasticutor {

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

constexpr int64_t kNanosPerMicro = 1000;
constexpr int64_t kNanosPerMilli = 1000 * kNanosPerMicro;
constexpr int64_t kNanosPerSecond = 1000 * kNanosPerMilli;

constexpr int64_t Micros(int64_t us) { return us * kNanosPerMicro; }
constexpr int64_t Millis(int64_t ms) { return ms * kNanosPerMilli; }
constexpr int64_t Seconds(int64_t s) { return s * kNanosPerSecond; }

/// Fractional conversions for measured/derived quantities.
constexpr double ToMillis(int64_t ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerMilli);
}
constexpr double ToSeconds(int64_t ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSecond);
}
constexpr int64_t MillisF(double ms) {
  return static_cast<int64_t>(ms * static_cast<double>(kNanosPerMilli));
}
constexpr int64_t SecondsF(double s) {
  return static_cast<int64_t>(s * static_cast<double>(kNanosPerSecond));
}

}  // namespace elasticutor
