// Rate measurement utilities used by executors and the scheduler:
//  * SlidingWindowMeter — counts events per fixed-size window over simulated
//    time; gives "instantaneous throughput measured in a sliding time window
//    of 1 second" (paper §5.1, Fig 7).
//  * Ewma — exponentially weighted moving average for λ/µ estimation.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace elasticutor {

/// Counts events in a trailing window of simulated time (nanoseconds).
class SlidingWindowMeter {
 public:
  explicit SlidingWindowMeter(int64_t window_ns) : window_ns_(window_ns) {}

  void Add(int64_t now_ns, int64_t count = 1);

  /// Events per second over the trailing window ending at now_ns.
  double RatePerSec(int64_t now_ns);

  /// Total events ever recorded.
  int64_t total() const { return total_; }

 private:
  void Evict(int64_t now_ns);

  int64_t window_ns_;
  std::deque<std::pair<int64_t, int64_t>> samples_;  // (time, count)
  int64_t in_window_ = 0;
  int64_t total_ = 0;
};

/// EWMA over irregularly sampled values with a configurable smoothing factor.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void Add(double value) {
    if (!initialized_) {
      value_ = value;
      initialized_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return initialized_ ? value_ : 0.0; }
  bool initialized() const { return initialized_; }
  void Reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-interval time series recorder: bins event counts into equal
/// intervals so benches can print throughput-vs-time curves.
class TimeSeries {
 public:
  explicit TimeSeries(int64_t bin_ns) : bin_ns_(bin_ns) {}

  void Add(int64_t now_ns, double value = 1.0);

  /// (bin start time ns, sum of values in bin), in time order.
  std::vector<std::pair<int64_t, double>> Bins() const;

  int64_t bin_ns() const { return bin_ns_; }

 private:
  int64_t bin_ns_;
  std::vector<double> bins_;
};

}  // namespace elasticutor
