// Single-threaded deterministic discrete-event simulator. All components of
// the simulated cluster (NICs, tasks, schedulers, spouts) schedule callbacks
// here; Run() drives simulated time forward.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace elasticutor {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules fn at absolute time `at` (must be >= now).
  EventId At(SimTime at, EventFn fn);

  /// Schedules fn after `delay` ns (clamped at >= 0).
  EventId After(SimDuration delay, EventFn fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// already cancelled.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs until the event queue is drained or `until` is reached, whichever
  /// comes first. Events exactly at `until` are executed. Returns the number
  /// of events executed.
  uint64_t RunUntil(SimTime until);

  /// Drains all events (use with care: periodic processes never drain).
  uint64_t RunAll() { return RunUntil(kSimTimeMax); }

  /// Registers a periodic callback firing every `period` ns starting at
  /// `start`. The callback may return false to stop recurring.
  void Periodic(SimTime start, SimDuration period,
                std::function<bool(SimTime)> fn);

  uint64_t events_executed() const { return events_executed_; }

 private:
  struct PeriodicTask {
    std::function<bool(SimTime)> fn;
    SimDuration period = 0;
  };

  void PeriodicTick(PeriodicTask* task);

  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  std::vector<std::unique_ptr<PeriodicTask>> periodic_tasks_;
};

}  // namespace elasticutor
