// EventFn — the scheduler's callback type: a move-only, type-erased
// `void()` callable with inline (small-buffer) storage.
//
// The discrete-event hot path schedules two callbacks per routed tuple (the
// network delivery and the processing completion), each capturing a full
// 64-byte Tuple. With std::function those captures exceed libstdc++'s
// 16-byte SBO and every scheduled event costs a heap allocation. EventFn
// reserves kInlineBytes of inline storage so all steady-state closures are
// allocation-free; callables that do not fit fall back to the heap and are
// counted in a process-wide counter (heap_allocations()), which benches and
// tests assert to be flat in steady state — a deterministic, CI-gateable
// stand-in for wall-clock.
//
// Move-only on purpose: the event queue is the sole owner of a scheduled
// callback, and copyability is what forces std::function to allocate
// sharable state. Callers that need to run one continuation from several
// places wrap it in a shared_ptr explicitly (see ElasticExecutor::
// RemoveCore) — the cost is then visible at the call site.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace elasticutor {

class EventFn {
 public:
  /// Inline capacity. Sized for the largest steady-state closure — a Tuple
  /// (64 B) + a shared_ptr (16 B) + two raw pointers — plus the Network
  /// delivery wrapper's extra pointer, so one level of concrete-type
  /// wrapping (Network::Send) still fits inline.
  static constexpr size_t kInlineBytes = 104;
  static constexpr size_t kStorageAlign = 16;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    constexpr bool kFits = sizeof(D) <= kInlineBytes &&
                           alignof(D) <= kStorageAlign &&
                           std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFits) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) {
    Destroy();
    ops_ = nullptr;
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Destroy(); }

  void operator()() {
    ELASTICUTOR_CHECK_MSG(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the wrapped callable lives on the heap (did not fit inline).
  bool on_heap() const { return ops_ != nullptr && ops_->heap; }

  /// Process-wide count of inline-storage misses (heap fallbacks) since
  /// start. Benches diff it across a measurement window: in steady state it
  /// must not grow with traffic. Atomic because EventFns are constructed on
  /// every thread of the native backend (relaxed: it is a statistic, not a
  /// synchronization point).
  static int64_t heap_allocations() {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*move)(void* dst, void* src);  // Move-construct dst, destroy src.
    void (*destroy)(void* self);
    bool heap;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* self) { (*static_cast<D*>(self))(); },
      /*move=*/
      [](void* dst, void* src) {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      /*destroy=*/[](void* self) { static_cast<D*>(self)->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* self) { (**static_cast<D**>(self))(); },
      /*move=*/
      [](void* dst, void* src) {  // Pointer transfer; no allocation.
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      /*destroy=*/[](void* self) { delete *static_cast<D**>(self); },
      /*heap=*/true,
  };

  void MoveFrom(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  inline static std::atomic<int64_t> heap_allocs_{0};

  alignas(kStorageAlign) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace elasticutor
