#include "sim/event_queue.h"

#include <algorithm>

#include "common/status.h"

namespace elasticutor {

EventId EventQueue::Push(SimTime time, EventFn fn) {
  EventId id = next_id_++;
  heap_.push_back(Node{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), NodeGreater{});
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;  // Already cancelled (and not yet skipped).
  }
  // Ids of executed events are not tracked; membership in the heap is the
  // only liveness signal. Cancel is rare, so the linear scan is fine.
  auto live = std::find_if(heap_.begin(), heap_.end(),
                           [id](const Node& n) { return n.id == id; });
  if (live == heap_.end()) return false;
  cancelled_.push_back(id);
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !cancelled_.empty()) {
    EventId top = heap_.front().id;
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), NodeGreater{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

EventQueue::Entry EventQueue::Pop() {
  SkipCancelled();
  ELASTICUTOR_CHECK_MSG(!heap_.empty(), "Pop on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), NodeGreater{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  return Entry{node.time, node.id, std::move(node.fn)};
}

}  // namespace elasticutor
