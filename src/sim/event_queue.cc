#include "sim/event_queue.h"

#include <algorithm>

#include "common/status.h"

namespace elasticutor {

EventId EventQueue::Push(SimTime time, EventFn fn) {
  EventId id = next_id_++;
  heap_.push_back(Node{time, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), NodeGreater{});
  return id;
}

void EventQueue::Cancel(EventId id) { cancelled_.push_back(id); }

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !cancelled_.empty()) {
    EventId top = heap_.front().id;
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), NodeGreater{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

EventQueue::Entry EventQueue::Pop() {
  SkipCancelled();
  ELASTICUTOR_CHECK_MSG(!heap_.empty(), "Pop on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), NodeGreater{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  return Entry{node.time, node.id, std::move(node.fn)};
}

}  // namespace elasticutor
