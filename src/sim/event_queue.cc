#include "sim/event_queue.h"

#include <utility>

#include "common/status.h"

namespace elasticutor {

EventId EventQueue::Push(SimTime time, EventFn fn) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(HeapEntry{time, next_seq_++, slot, s.gen});
  SiftUp(heap_.size() - 1);
  ++live_;
  return MakeId(slot, s.gen);
}

EventFn EventQueue::TakeAndFree(uint32_t slot) {
  Slot& s = slots_[slot];
  EventFn fn = std::move(s.fn);
  s.fn = nullptr;
  ++s.gen;  // Outstanding ids (and stale heap entries) stop matching.
  free_slots_.push_back(slot);
  --live_;
  return fn;
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // Already executed or cancelled.
  }
  TakeAndFree(slot);  // The callback dies now; the heap entry goes stale.
  return true;
}

void EventQueue::SiftUp(size_t i) const {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!Before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::SiftDown(size_t i) const {
  const size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    size_t first = i * kArity + 1;
    if (first >= n) break;
    size_t best = first;
    size_t last = first + kArity < n ? first + kArity : n;
    for (size_t c = first + 1; c < last; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void EventQueue::RemoveTop() const {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::SkipStale() const {
  while (!heap_.empty() && !Live(heap_.front())) RemoveTop();
}

bool EventQueue::empty() const {
  SkipStale();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() const {
  SkipStale();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

EventQueue::Entry EventQueue::Pop() {
  SkipStale();
  ELASTICUTOR_CHECK_MSG(!heap_.empty(), "Pop on empty event queue");
  HeapEntry top = heap_.front();
  RemoveTop();
  EventId id = MakeId(top.slot, top.gen);
  return Entry{top.time, id, TakeAndFree(top.slot)};
}

}  // namespace elasticutor
