// Simulated time. One type alias keeps intent clear at call sites; all
// simulated timestamps and durations are int64 nanoseconds.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace elasticutor {

using SimTime = int64_t;      // Absolute simulated time, ns since start.
using SimDuration = int64_t;  // Simulated duration, ns.

constexpr SimTime kSimTimeMax = INT64_MAX;

}  // namespace elasticutor
