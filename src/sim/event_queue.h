// Pending-event set of the discrete-event simulator: a binary min-heap
// ordered by (time, sequence). The sequence number makes simultaneous events
// fire in schedule order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace elasticutor {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  /// Adds an event; returns an id usable with Cancel().
  EventId Push(SimTime time, EventFn fn);

  /// Lazily cancels a pending event. Cancelled events are skipped on pop.
  /// Returns false if the id was already executed/cancelled (ids of executed
  /// events are not tracked, so cancelling one is a no-op that reports
  /// failure); returns true when a live pending event was cancelled.
  bool Cancel(EventId id);

  bool empty();

  /// Time of the earliest live event; kSimTimeMax if empty.
  SimTime PeekTime();

  /// Removes and returns the earliest live event.
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Entry Pop();

  size_t size_with_cancelled() const { return heap_.size(); }

 private:
  struct Node {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  struct NodeGreater {
    bool operator()(const Node& a, const Node& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void SkipCancelled();

  std::vector<Node> heap_;
  std::vector<EventId> cancelled_;  // Sorted lazily; usually tiny.
  EventId next_id_ = 1;
};

}  // namespace elasticutor
