// Pending-event set of the discrete-event simulator, laid out as an INDEX
// HEAP: the 4-ary min-heap sifts small {time, seq, slot} entries while the
// fat EventFn callbacks sit still in a slab recycled through a free list.
// Push/pop therefore move 24-byte records instead of 100+-byte nodes, and
// the slab reaches a steady-state size after warm-up (no per-event
// allocation).
//
// Ordering is (time, seq) with seq the monotone push sequence, so
// simultaneous events fire in schedule order — runs stay deterministic.
//
// Event ids encode {slot, generation}: Cancel() is an O(1) liveness check
// (does the slot's current generation still match?) followed by an O(1)
// slot free; the heap entry goes stale in place and is skipped when it
// surfaces. Ids of executed events are never reported live again because
// freeing a slot bumps its generation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"

namespace elasticutor {

using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  /// Adds an event; returns an id usable with Cancel().
  EventId Push(SimTime time, EventFn fn);

  /// Cancels a pending event in O(1): the callback is destroyed and its
  /// slot recycled immediately; the heap entry is skipped lazily. Returns
  /// false if the id was already executed or cancelled, true when a live
  /// pending event was cancelled.
  bool Cancel(EventId id);

  bool empty() const;

  /// Time of the earliest live event; kSimTimeMax if empty.
  SimTime PeekTime() const;

  /// Removes and returns the earliest live event.
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Entry Pop();

  /// Heap entries including stale (cancelled-but-not-yet-surfaced) ones.
  size_t size_with_cancelled() const { return heap_.size(); }
  /// Live (pending, uncancelled) events.
  size_t live_size() const { return live_; }

 private:
  // 4-ary layout: shallower than binary (fewer cache lines touched per
  // sift) and the 4 children of node i share one cache line at 24 B/entry.
  static constexpr size_t kArity = 4;

  struct HeapEntry {
    SimTime time;
    uint64_t seq;   // Monotone push order; tie-break for equal times.
    uint32_t slot;  // Index into slots_.
    uint32_t gen;   // Generation the id was issued under.
  };

  struct Slot {
    EventFn fn;
    uint32_t gen = 1;  // Bumped on free; id is live iff generations match.
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool Before(const HeapEntry& a, const HeapEntry& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  bool Live(const HeapEntry& e) const { return slots_[e.slot].gen == e.gen; }

  void SiftUp(size_t i) const;
  void SiftDown(size_t i) const;
  /// Drops stale entries off the top. Slots were already freed by Cancel,
  /// so this touches only the (mutable) heap — empty()/PeekTime() stay
  /// logically const.
  void SkipStale() const;
  void RemoveTop() const;

  EventFn TakeAndFree(uint32_t slot);

  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 1;
  size_t live_ = 0;
};

}  // namespace elasticutor
