#include "sim/simulator.h"

#include <memory>

#include "common/status.h"

namespace elasticutor {

EventId Simulator::At(SimTime at, EventFn fn) {
  ELASTICUTOR_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.Push(at, std::move(fn));
}

EventId Simulator::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return queue_.Push(now_ + delay, std::move(fn));
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.PeekTime() > until) break;
    EventQueue::Entry entry = queue_.Pop();
    now_ = entry.time;
    entry.fn();
    ++executed;
    ++events_executed_;
  }
  if (now_ < until && until != kSimTimeMax) now_ = until;
  return executed;
}

void Simulator::Periodic(SimTime start, SimDuration period,
                         std::function<bool(SimTime)> fn) {
  ELASTICUTOR_CHECK_MSG(period > 0, "periodic period must be positive");
  // The simulator owns periodic tasks; each tick closure holds only a raw
  // pointer (16 bytes — always inline in EventFn). Tasks live until the
  // simulator dies.
  auto task = std::make_unique<PeriodicTask>();
  task->fn = std::move(fn);
  task->period = period;
  PeriodicTask* raw = task.get();
  periodic_tasks_.push_back(std::move(task));
  At(start, [this, raw]() { PeriodicTick(raw); });
}

void Simulator::PeriodicTick(PeriodicTask* task) {
  if (task->fn(now_)) {
    After(task->period, [this, task]() { PeriodicTick(task); });
  }
}

}  // namespace elasticutor
