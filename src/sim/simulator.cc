#include "sim/simulator.h"

#include <memory>

#include "common/status.h"

namespace elasticutor {

EventId Simulator::At(SimTime at, EventFn fn) {
  ELASTICUTOR_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.Push(at, std::move(fn));
}

EventId Simulator::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return queue_.Push(now_ + delay, std::move(fn));
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.PeekTime() > until) break;
    EventQueue::Entry entry = queue_.Pop();
    now_ = entry.time;
    entry.fn();
    ++executed;
    ++events_executed_;
  }
  if (now_ < until && until != kSimTimeMax) now_ = until;
  return executed;
}

void Simulator::Periodic(SimTime start, SimDuration period,
                         std::function<bool(SimTime)> fn) {
  ELASTICUTOR_CHECK_MSG(period > 0, "periodic period must be positive");
  // The simulator owns periodic tasks; the tick closure holds only a raw
  // pointer (no reference cycle). Tasks live until the simulator dies.
  auto task = std::make_shared<PeriodicTask>();
  task->fn = std::move(fn);
  task->period = period;
  Simulator* sim = this;
  PeriodicTask* raw = task.get();
  task->tick = [sim, raw]() {
    if (raw->fn(sim->now())) {
      sim->After(raw->period, raw->tick);
    }
  };
  periodic_tasks_.push_back(std::move(task));
  At(start, raw->tick);
}

}  // namespace elasticutor
