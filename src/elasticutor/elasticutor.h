// Umbrella header: the public API of the Elasticutor reproduction.
//
// Typical usage:
//
//   #include "elasticutor/elasticutor.h"
//   using namespace elasticutor;
//
//   MicroOptions options;
//   options.shuffles_per_minute = 2.0;
//   auto workload = BuildMicroWorkload(options, /*seed=*/42).value();
//
//   EngineConfig config;
//   config.paradigm = Paradigm::kElastic;
//   Engine engine(workload.topology, config);
//   ELASTICUTOR_CHECK(engine.Setup().ok());
//   workload.InstallDynamics(&engine);
//   engine.Start();
//   engine.RunFor(Seconds(5));             // Warm-up.
//   engine.ResetMetricsAfterWarmup();
//   engine.RunFor(Seconds(20));            // Measure.
//   std::cout << engine.MeasuredThroughput() << " tuples/s\n";
#pragma once

#include "cluster/cluster.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/rate_meter.h"
#include "common/status.h"
#include "common/units.h"
#include "common/zipf.h"
#include "elastic/elastic_executor.h"
#include "elastic/load_balancer.h"
#include "engine/engine.h"
#include "engine/engine_config.h"
#include "engine/operator.h"
#include "engine/topology.h"
#include "exec/execution_backend.h"
#include "exec/native_backend.h"
#include "exec/native_runtime.h"
#include "exec/sim_backend.h"
#include "net/network.h"
#include "rc/rc_controller.h"
#include "scenario/library.h"
#include "scenario/recovery.h"
#include "scenario/scenario.h"
#include "scenario/scenario_driver.h"
#include "scheduler/assignment.h"
#include "scheduler/perf_model.h"
#include "scheduler/scheduler.h"
#include "state/migration_engine.h"
#include "state/state_backend.h"
#include "state/state_store.h"
#include "workload/keyspace.h"
#include "workload/micro.h"
#include "workload/order_book.h"
#include "workload/sse.h"
#include "workload/sse_trace.h"
