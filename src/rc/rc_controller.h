// Resource-centric baseline (§2.2, evaluated throughout §5): elasticity via
// dynamic operator-level key repartitioning. For a fair comparison — as in
// the paper — RC shares Elasticutor's performance model (perf_model.h),
// load-balancing heuristic (load_balancer.h) and intra-process state sharing
// (same-node shard moves are free).
//
// What RC cannot share is Elasticutor's independence properties: every shard
// move is an operator-level reassignment needing global synchronization
// (§1): (a) pause all upstream executors, (b) drain all in-flight tuples of
// the operator, (c) migrate the shard state, (d) update the routing tables
// of all upstream executors. Moves execute sequentially, each paying the
// full pause/drain/update cost — this is why RC's transient lasts 10-20 s
// (Fig 7) and why its per-shard synchronization time is 2-3 orders of
// magnitude above Elasticutor's (Fig 8/9a).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rate_meter.h"
#include "elastic/load_balancer.h"
#include "engine/runtime.h"
#include "engine/single_task_executor.h"
#include "scheduler/perf_model.h"

namespace elasticutor {

class RcController {
 public:
  RcController(Runtime* rt, const Cluster* cluster, CoreLedger* ledger,
               std::vector<OperatorId> managed_ops);

  void Start();

  /// One controller cycle: refresh per-operator demand estimates, then — if
  /// no repartition is running — trigger at most one repartition (rescale or
  /// rebalance) for the most imbalanced/mis-provisioned operator.
  void RunOnce();

  bool repartition_in_progress() const { return active_ != nullptr; }
  int64_t repartitions_started() const { return repartitions_started_; }
  int64_t shard_moves_done() const { return shard_moves_done_; }

  /// Immediately repartitions `op` toward balance (test/bench hook);
  /// `new_count` of 0 keeps the executor count.
  Status TriggerRepartition(OperatorId op, int new_count = 0);

  /// Test/bench hook: repartition with exactly one shard move (shard ->
  /// executor `to`). Pays the full synchronization protocol of one
  /// operator-level reassignment — the Fig 8/9 probe.
  Status ProbeMoveShard(OperatorId op, ShardId shard, ExecutorIndex to);

 private:
  struct OpState {
    OperatorId op;
    int64_t prev_arrivals = 0;
    int64_t prev_processed = 0;
    int64_t prev_busy_ns = 0;
    Ewma lambda;
    Ewma mu;
    // Offered load per shard over the last interval (diff of the routing
    // tables' counters); what repartitioning balances on.
    std::vector<int64_t> prev_routed;
    std::vector<double> interval_load;
  };

  /// One in-flight repartition: a single global synchronization barrier
  /// covering a batch of shard moves — pause all upstream executors, drain
  /// all in-flight tuples, migrate the moved shards' state in parallel,
  /// update every upstream routing table, resume. (The Fig 8/9 probes
  /// trigger single-move batches, whose cost is the full barrier.)
  struct Repartition {
    OperatorId op = -1;
    std::vector<balance::Move> moves;
    int final_count = 0;              // Executor count after completion.
    SimTime start = 0;
    SimTime drain_done = 0;
    int pending_migrations = 0;
    // Per-move migration timing (filled as transfers complete).
    std::vector<SimDuration> migration_ns;
    std::vector<int64_t> migrated_bytes;
    std::vector<bool> inter_node;
  };

  std::shared_ptr<SingleTaskExecutor> exec(OperatorId op,
                                           ExecutorIndex index) const;
  /// Per-executor capacities (1/cpu_factor of the home node) from the fault
  /// plane — the read path that makes repartitioning straggler-aware.
  std::vector<double> ExecutorCapacities(OperatorId op) const;
  void MeasureInterval(SimDuration dt);
  Status StartRepartition(OperatorId op, int new_count);
  void DrainPoll();
  void MigrateBatch();
  void UpdateRoutingAndResume();
  void FinishRepartition();
  SimDuration SyncCoordinationDelay(OperatorId op) const;

  Runtime* rt_;
  const Cluster* cluster_;
  CoreLedger* ledger_;
  std::vector<OpState> ops_;
  std::unique_ptr<Repartition> active_;

  int64_t repartitions_started_ = 0;
  int64_t shard_moves_done_ = 0;
  SimTime last_run_ = 0;
};

}  // namespace elasticutor
