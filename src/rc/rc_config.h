// Resource-centric (RC) baseline configuration. RC follows the paper's
// description of prior work (Flux-style operator-level key repartitioning
// with global synchronization), implemented — as in the paper's comparison —
// with the same performance model, load-balancing heuristic, and
// intra-process state sharing as Elasticutor.
#pragma once

#include "common/units.h"
#include "sim/time.h"

namespace elasticutor {

struct RcConfig {
  /// Master switch (benches probing single repartitions disable it).
  bool enabled = true;

  /// How often the RC controller checks balance / provisioning.
  SimDuration interval_ns = Seconds(1);

  /// Repartition when max/avg executor load exceeds this.
  double imbalance_threshold = 1.2;

  /// Coordination cost the controller pays per upstream executor in each
  /// synchronization phase (pause and routing-update). Models the
  /// ZooKeeper/nimbus-style round trips of operator-level repartitioning;
  /// this is what makes RC synchronization grow with the number of upstream
  /// executors (Fig 9a).
  SimDuration coord_per_upstream_ns = Millis(4);

  /// Latency of a single pause/resume control round trip.
  SimDuration control_rtt_ns = Millis(1);

  /// Whether the controller may also change the number of executors per
  /// operator (operator scaling) using the shared performance model.
  bool enable_rescale = true;

  /// Capacity-aware repartitioning: weight the shared balancing heuristic
  /// by per-executor capacities derived from the fault plane's node CPU
  /// factors, so key repartitioning dilutes load away from straggler nodes
  /// (RC's executors cannot move, so dilution is its only reaction). Off =
  /// the homogeneous baseline (kept for ablation).
  bool capacity_aware = true;
};

}  // namespace elasticutor
