#include "rc/rc_controller.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "state/migration_engine.h"

namespace elasticutor {

RcController::RcController(Runtime* rt, const Cluster* cluster,
                           CoreLedger* ledger,
                           std::vector<OperatorId> managed_ops)
    : rt_(rt), cluster_(cluster), ledger_(ledger) {
  for (OperatorId op : managed_ops) {
    OpState state;
    state.op = op;
    state.lambda = Ewma(0.5);
    state.mu = Ewma(0.5);
    const OperatorSpec& spec = rt_->topology().spec(op);
    double cost_ns =
        static_cast<double>(std::max<SimDuration>(spec.mean_cost_ns, 1));
    state.mu.Add(1e9 / cost_ns);
    ops_.push_back(std::move(state));
  }
}

std::shared_ptr<SingleTaskExecutor> RcController::exec(
    OperatorId op, ExecutorIndex index) const {
  return std::static_pointer_cast<SingleTaskExecutor>(
      rt_->executor(op, index));
}

std::vector<double> RcController::ExecutorCapacities(OperatorId op) const {
  std::vector<double> caps(rt_->executors(op).size(), 1.0);
  for (size_t e = 0; e < caps.size(); ++e) {
    NodeId node = exec(op, static_cast<ExecutorIndex>(e))->home_node();
    caps[e] = CoreSpeed(rt_->faults()->cpu_factor(node));
  }
  return caps;
}

void RcController::Start() {
  SimDuration interval = rt_->config().rc.interval_ns;
  last_run_ = rt_->exec()->now();
  rt_->exec()->Periodic(rt_->exec()->now() + interval, interval,
                       [this](SimTime) {
                         RunOnce();
                         return true;
                       });
}

void RcController::MeasureInterval(SimDuration dt) {
  double dt_s = std::max(ToSeconds(dt), 1e-6);
  // µ estimation reads the backend's unified telemetry (exec/telemetry.h)
  // rather than walking ExecutorMetrics: same numbers under the sim
  // adapter, but the controller no longer assumes a simulated executor
  // behind each worker row. Arrivals/queue depths stay on the executor walk
  // (instantaneous queue state is not part of the snapshot).
  const exec::TelemetrySnapshot snap = rt_->exec()->SampleTelemetry();
  std::map<OperatorId, std::pair<int64_t, int64_t>> proc_busy;
  for (const auto& w : snap.workers) {
    proc_busy[w.op].first += w.processed;
    proc_busy[w.op].second += w.busy_ns;
  }
  for (auto& s : ops_) {
    // Per-shard offered load over this interval.
    const auto& routed = rt_->partition(s.op)->offered();
    if (s.prev_routed.size() != routed.size()) {
      s.prev_routed.assign(routed.size(), 0);
    }
    s.interval_load.assign(routed.size(), 0.0);
    for (size_t i = 0; i < routed.size(); ++i) {
      int64_t delta = std::max<int64_t>(0, routed[i] - s.prev_routed[i]);
      s.interval_load[i] = static_cast<double>(delta);
      s.prev_routed[i] = routed[i];
    }

    int64_t arrivals = 0, queued = 0;
    for (const auto& ex : rt_->executors(s.op)) {
      arrivals += ex->metrics().arrivals;
      queued += ex->queued();
    }
    const auto pb = proc_busy.find(s.op);
    const int64_t processed = pb != proc_busy.end() ? pb->second.first : 0;
    const int64_t busy = pb != proc_busy.end() ? pb->second.second : 0;
    int64_t d_arr = std::max<int64_t>(0, arrivals - s.prev_arrivals);
    int64_t d_proc = std::max<int64_t>(0, processed - s.prev_processed);
    int64_t d_busy = std::max<int64_t>(0, busy - s.prev_busy_ns);
    s.prev_arrivals = arrivals;
    s.prev_processed = processed;
    s.prev_busy_ns = busy;
    s.lambda.Add(static_cast<double>(d_arr) / dt_s +
                 static_cast<double>(queued) / dt_s);
    if (d_proc > 0 && d_busy > 0) {
      s.mu.Add(static_cast<double>(d_proc) / ToSeconds(d_busy));
    }
  }
}

void RcController::RunOnce() {
  SimTime now = rt_->exec()->now();
  SimDuration dt = now - last_run_;
  last_run_ = now;
  if (dt <= 0) dt = rt_->config().rc.interval_ns;
  MeasureInterval(dt);
  if (active_) return;  // Global serialization: one repartition at a time.

  const RcConfig& cfg = rt_->config().rc;

  // Operator scaling via the shared performance model.
  std::vector<int> targets;
  if (cfg.enable_rescale && ops_.size() >= 1) {
    std::vector<ExecutorDemand> demands(ops_.size());
    for (size_t i = 0; i < ops_.size(); ++i) {
      demands[i].lambda = ops_[i].lambda.value();
      demands[i].mu = std::max(ops_[i].mu.value(), 1e-6);
    }
    AllocationResult alloc = AllocateCores(
        demands, cluster_->total_cores(),
        ToSeconds(rt_->config().scheduler.latency_target_ns), true);
    targets = alloc.cores;
  }

  // Pick the operator most in need: first any rescale beyond hysteresis,
  // shrinks first (they free cores), otherwise the worst imbalance over θ.
  OperatorId chosen = -1;
  int chosen_count = 0;
  for (size_t i = 0; i < ops_.size(); ++i) {
    int current = static_cast<int>(rt_->executors(ops_[i].op).size());
    if (targets.empty()) break;
    int gap = targets[i] - current;
    int hysteresis = std::max(2, current / 5);
    if (gap <= -hysteresis) {
      chosen = ops_[i].op;
      chosen_count = targets[i];
      break;
    }
    if (gap >= hysteresis && chosen < 0) {
      chosen = ops_[i].op;
      chosen_count = std::min(targets[i], current + ledger_->TotalFree());
      if (chosen_count == current) chosen = -1;
    }
  }
  if (chosen < 0) {
    double worst = cfg.imbalance_threshold;
    for (auto& s : ops_) {
      // Per-executor offered load from the interval's shard loads,
      // normalized by fault-plane-derived executor capacities: a straggler
      // node's executors look overloaded even when raw shares are equal.
      const auto& map = rt_->partition(s.op)->map();
      std::vector<double> loads(rt_->executors(s.op).size(), 0.0);
      for (size_t shard = 0; shard < s.interval_load.size(); ++shard) {
        loads[map[shard]] += s.interval_load[shard];
      }
      std::vector<double> caps = ExecutorCapacities(s.op);
      double delta = balance::ImbalanceFactor(
          loads, cfg.capacity_aware ? &caps : nullptr);
      if (delta > worst) {
        worst = delta;
        chosen = s.op;
        chosen_count = static_cast<int>(loads.size());
      }
    }
  }
  if (chosen >= 0) {
    Status st = StartRepartition(chosen, chosen_count);
    if (!st.ok()) {
      ELOG_WARN << "RC repartition failed to start: " << st.ToString();
    }
  }
}

Status RcController::TriggerRepartition(OperatorId op, int new_count) {
  if (active_) return Status::FailedPrecondition("repartition in progress");
  if (new_count == 0) {
    new_count = static_cast<int>(rt_->executors(op).size());
  }
  return StartRepartition(op, new_count);
}

Status RcController::ProbeMoveShard(OperatorId op, ShardId shard,
                                    ExecutorIndex to) {
  if (active_) return Status::FailedPrecondition("repartition in progress");
  OperatorPartition* part = rt_->partition(op);
  if (shard < 0 || shard >= part->num_shards()) {
    return Status::InvalidArgument("shard out of range");
  }
  int from = part->ExecutorOfShard(shard);
  if (from == to) return Status::InvalidArgument("shard already there");

  auto repart = std::make_unique<Repartition>();
  repart->op = op;
  repart->moves = {balance::Move{shard, from, to}};
  repart->final_count = static_cast<int>(rt_->executors(op).size());
  repart->migration_ns.assign(1, 0);
  repart->migrated_bytes.assign(1, 0);
  repart->inter_node.assign(1, false);
  active_ = std::move(repart);
  ++repartitions_started_;

  rt_->partition(op)->set_paused(true);
  active_->start = rt_->exec()->now();
  rt_->exec()->After(SyncCoordinationDelay(op), [this]() { DrainPoll(); });
  return Status::OK();
}

Status RcController::StartRepartition(OperatorId op, int new_count) {
  OperatorPartition* part = rt_->partition(op);
  const RcConfig& cfg = rt_->config().rc;
  const int old_count = static_cast<int>(rt_->executors(op).size());
  new_count = std::max(1, new_count);

  // Per-shard offered loads from the last measured interval (uniform
  // epsilon so unobserved shards still balance by cardinality).
  const int num_shards = part->num_shards();
  std::vector<double> shard_load(num_shards, 1e-3);
  for (const auto& s : ops_) {
    if (s.op != op) continue;
    for (size_t shard = 0; shard < s.interval_load.size(); ++shard) {
      shard_load[shard] += s.interval_load[shard];
    }
  }

  // Pick nodes for executors beyond old_count before planning, so the
  // planner sees their capacities. Placement prefers the fastest node with
  // a free core (fault-plane CPU factor): scale-out avoids stragglers.
  std::vector<NodeId> grow_nodes;
  {
    std::vector<int> free(cluster_->num_nodes(), 0);
    for (int i = 0; i < cluster_->num_nodes(); ++i) {
      free[i] = ledger_->FreeOn(i);
    }
    for (int e = old_count; e < new_count; ++e) {
      NodeId node = -1;
      for (int i = 0; i < cluster_->num_nodes(); ++i) {
        NodeId candidate = (e + i) % cluster_->num_nodes();
        if (free[candidate] <= 0) continue;
        if (node < 0 ||
            (cfg.capacity_aware &&
             rt_->faults()->cpu_factor(candidate) <
                 rt_->faults()->cpu_factor(node))) {
          node = candidate;
        }
        if (!cfg.capacity_aware) break;  // Baseline: first fit.
      }
      if (node < 0) {
        return Status::ResourceExhausted("no free core for new RC executor");
      }
      --free[node];
      grow_nodes.push_back(node);
    }
  }

  // Per-slot capacities from the fault plane: an executor pinned to a
  // straggler node serves at 1/cpu_factor of nominal speed.
  int slots = std::max(old_count, new_count);
  std::vector<double> capacity = ExecutorCapacities(op);
  capacity.resize(slots, 1.0);
  for (int e = old_count; e < slots; ++e) {
    NodeId node = grow_nodes[e - old_count];
    capacity[e] = CoreSpeed(rt_->faults()->cpu_factor(node));
  }
  const std::vector<double>* caps = cfg.capacity_aware ? &capacity : nullptr;

  // Plan the new map: evacuate executors beyond new_count, then rebalance.
  std::vector<int> assignment = part->map();
  std::vector<double> slot_load(slots, 0.0);
  for (int s = 0; s < num_shards; ++s) {
    slot_load[assignment[s]] += shard_load[s];
  }

  if (new_count < old_count) {
    std::vector<bool> allowed(slots, false);
    for (int e = 0; e < new_count; ++e) allowed[e] = true;
    for (int victim = new_count; victim < old_count; ++victim) {
      std::vector<int> owned;
      for (int s = 0; s < num_shards; ++s) {
        if (assignment[s] == victim) owned.push_back(s);
      }
      auto evac = balance::PlanEvacuation(owned, shard_load, &slot_load,
                                          victim, allowed, caps);
      if (!evac.ok()) return evac.status();
      for (const auto& mv : *evac) assignment[mv.shard] = mv.to;
    }
  }
  std::vector<double> plan_capacity(capacity.begin(),
                                    capacity.begin() + new_count);
  balance::PlanMoves(shard_load, &assignment, new_count,
                     cfg.imbalance_threshold,
                     /*max_moves=*/256, /*frozen=*/nullptr,
                     caps != nullptr ? &plan_capacity : nullptr);
  // One sequential reassignment per shard whose final owner changed.
  std::vector<balance::Move> moves;
  for (int s = 0; s < num_shards; ++s) {
    if (assignment[s] != part->map()[s]) {
      moves.push_back(balance::Move{s, part->map()[s], assignment[s]});
    }
  }
  if (moves.empty() && new_count == old_count) {
    return Status::OK();  // Already balanced; nothing to do.
  }

  // Grow the executor set up front: new executors join with no shards, so
  // routing cannot reach them until the per-move map updates land.
  auto executors = rt_->executors(op);
  for (int e = old_count; e < new_count; ++e) {
    NodeId node = grow_nodes[e - old_count];
    ELASTICUTOR_CHECK(ledger_->Acquire(node, MakeExecutorId(op, e)) >= 0);
    auto ex = std::make_shared<SingleTaskExecutor>(rt_, op, e, node);
    executors.push_back(ex);
  }

  auto repart = std::make_unique<Repartition>();
  repart->op = op;
  repart->moves = std::move(moves);
  repart->final_count = new_count;
  size_t n_moves = repart->moves.size();
  repart->migration_ns.assign(n_moves, 0);
  repart->migrated_bytes.assign(n_moves, 0);
  repart->inter_node.assign(n_moves, false);
  rt_->SetExecutors(op, std::move(executors));

  active_ = std::move(repart);
  ++repartitions_started_;

  // (a) Pause all upstream executors of the operator.
  rt_->partition(active_->op)->set_paused(true);
  active_->start = rt_->exec()->now();
  rt_->exec()->After(SyncCoordinationDelay(active_->op),
                    [this]() { DrainPoll(); });
  return Status::OK();
}

SimDuration RcController::SyncCoordinationDelay(OperatorId op) const {
  const RcConfig& cfg = rt_->config().rc;
  int64_t upstream_executors = 0;
  for (OperatorId up : rt_->topology().upstream(op)) {
    upstream_executors += static_cast<int64_t>(rt_->executors(up).size());
  }
  return cfg.control_rtt_ns + upstream_executors * cfg.coord_per_upstream_ns;
}

void RcController::DrainPoll() {
  // (b) Wait for all in-flight tuples of the operator to be processed.
  OperatorId op = active_->op;
  bool drained = rt_->inflight(op) == 0;
  if (drained) {
    for (const auto& ex : rt_->executors(op)) {
      auto ste = std::static_pointer_cast<SingleTaskExecutor>(ex);
      if (!ste->idle()) {
        drained = false;
        break;
      }
    }
  }
  if (!drained) {
    rt_->exec()->After(Millis(1), [this]() { DrainPoll(); });
    return;
  }
  active_->drain_done = rt_->exec()->now();
  MigrateBatch();
}

void RcController::MigrateBatch() {
  // (c) Migrate the state of every moved shard through the shared
  // MigrationEngine, transfers in parallel (serialized per NIC by the
  // network model). The operator is globally paused, so RC is inherently a
  // sync-blob migrator; same-node handoffs are free (intra-process state
  // sharing, §3.2 — RC gets the same mechanism for fairness).
  OperatorId op = active_->op;
  if (active_->moves.empty()) {
    UpdateRoutingAndResume();
    return;
  }
  active_->pending_migrations = static_cast<int>(active_->moves.size());
  for (size_t i = 0; i < active_->moves.size(); ++i) {
    const balance::Move& mv = active_->moves[i];
    auto from = exec(op, mv.from);
    auto to = exec(op, mv.to);
    active_->inter_node[i] = from->home_node() != to->home_node();
    rt_->migration()->MigrateSync(
        from->state_store(), to->state_store(), mv.shard, from->home_node(),
        to->home_node(), /*local_copy_bytes_per_sec=*/0.0,
        [this, i](const MigrationStats& stats) {
          active_->migration_ns[i] = stats.finalize_ns;
          active_->migrated_bytes[i] = stats.moved_bytes;
          if (--active_->pending_migrations == 0) UpdateRoutingAndResume();
        });
  }
}

void RcController::UpdateRoutingAndResume() {
  // (d) Update the routing tables of all upstream executors, then resume.
  SimDuration update_delay = SyncCoordinationDelay(active_->op);
  rt_->exec()->After(update_delay, [this, update_delay]() {
    OperatorPartition* part = rt_->partition(active_->op);
    std::vector<int> map = part->map();
    for (const balance::Move& mv : active_->moves) {
      map[mv.shard] = mv.to;
    }
    int count = static_cast<int>(rt_->executors(active_->op).size());
    ELASTICUTOR_CHECK(part->SetMap(std::move(map), count).ok());

    // One ElasticityOp per moved shard: each experienced the full global
    // synchronization plus its own state-transfer time. Everything happens
    // inside the global pause — there is no live pre-copy phase in RC.
    SimDuration sync = (active_->drain_done - active_->start) + update_delay;
    for (size_t i = 0; i < active_->moves.size(); ++i) {
      ElasticityOp op;
      op.inter_node = active_->inter_node[i];
      op.sync_ns = sync;
      op.precopy_ns = 0;
      op.migration_ns = active_->migration_ns[i];
      op.pause_ns = sync + active_->migration_ns[i];
      op.moved_bytes = active_->migrated_bytes[i];
      op.delta_bytes = active_->migrated_bytes[i];
      rt_->metrics()->OnElasticityOp(op);
      ++shard_moves_done_;
    }
    part->set_paused(false);
    FinishRepartition();
  });
}

void RcController::FinishRepartition() {
  OperatorId op = active_->op;
  // Drop executors beyond the final count and release their cores. Their
  // shards were all evacuated by the planned moves.
  auto executors = rt_->executors(op);
  if (static_cast<int>(executors.size()) > active_->final_count) {
    for (int e = active_->final_count;
         e < static_cast<int>(executors.size()); ++e) {
      auto ste = std::static_pointer_cast<SingleTaskExecutor>(executors[e]);
      ELASTICUTOR_CHECK_MSG(ste->state_store()->num_shards() == 0,
                            "removed RC executor still holds shards");
      int core =
          ledger_->ReleaseOneOf(ste->home_node(), MakeExecutorId(op, e));
      ELASTICUTOR_CHECK(core >= 0);
    }
    executors.resize(active_->final_count);
    std::vector<int> map = rt_->partition(op)->map();
    ELASTICUTOR_CHECK(
        rt_->partition(op)->SetMap(std::move(map), active_->final_count).ok());
    rt_->SetExecutors(op, std::move(executors));
  }
  // Reset shard statistics for the next epoch.
  for (const auto& ex : rt_->executors(op)) {
    std::static_pointer_cast<SingleTaskExecutor>(ex)->ResetShardLoad();
  }
  active_.reset();
}

}  // namespace elasticutor
