// Resource-control plane, measurement half: TelemetrySnapshot is the one
// introspection surface of an execution backend. It replaces three ad-hoc
// surfaces that grew independently (NativeRuntime's aggregate accessors,
// EngineMetrics' busy counters, ElasticExecutor::TaskSpeedOn) with a single
// structured sample a balancer or controller can consume without knowing
// which backend produced it.
//
// The load signal is *measured wall-busy time*, not processed counts: the
// paper's executor-level load model (§4) weighs tasks by the CPU they
// consume, and two shards with equal tuple counts can differ by orders of
// magnitude in per-tuple cost. Natively, busy time is accumulated
// thread-locally from cycle-counter deltas around each tuple (see CycleClock
// below) and published to per-worker/per-shard atomics at batch boundaries,
// so SampleTelemetry() is a lock-free read of monotone counters — safe to
// call from the driver thread while the dataflow runs.
//
// Liveness contract:
//  * Everything in the snapshot is LIVE: valid while threads run, fresh to
//    within one micro-batch (workers publish at batch boundaries).
//  * Post-drain exactness: after WaitDrained() returns, the snapshot equals
//    the joined threads' final counters exactly.
//  * Sink latency histograms are the exception: they are merged into
//    EngineMetrics only after WaitDrained() (per-worker histograms are not
//    mergeable lock-free); use Engine::LatencyHistogram() post-drain.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/ids.h"
#include "sim/time.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace elasticutor {

/// Mirrors state/state_store.h (identical alias; redeclaration is legal) so
/// this header stays free of the state layer.
using ShardId = int32_t;

namespace exec {

/// Cheap monotone per-thread timestamp source for per-tuple busy windows:
/// rdtsc on x86-64, the virtual counter on aarch64, steady_clock elsewhere.
/// Ticks are converted to ns through a once-per-process calibration against
/// steady_clock. Assumes an invariant/constant-rate counter (true on every
/// x86-64 part of the last decade and guaranteed by the ARMv8 architecture);
/// the worst failure mode of a drifting counter is a skewed load *ratio*,
/// which the balancer tolerates by design.
struct CycleClock {
  static inline uint64_t Now() {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#elif defined(__aarch64__)
    uint64_t ticks;
    asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
    return ticks;
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  /// Nanoseconds per tick, calibrated once (first call spins ~2 ms).
  static double NsPerTick() {
    static const double ns_per_tick = Calibrate();
    return ns_per_tick;
  }

  static int64_t ToNs(int64_t ticks) {
    return static_cast<int64_t>(static_cast<double>(ticks) * NsPerTick());
  }

 private:
  static double Calibrate() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__aarch64__)
    const auto wall0 = std::chrono::steady_clock::now();
    const uint64_t tick0 = Now();
    // Spin (not sleep): a descheduled calibration window under-reports the
    // tick rate. 2 ms bounds the error at well under 1%.
    for (;;) {
      const auto wall1 = std::chrono::steady_clock::now();
      if (wall1 - wall0 >= std::chrono::milliseconds(2)) {
        const uint64_t tick1 = Now();
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            wall1 - wall0)
                            .count();
        if (tick1 > tick0) {
          return static_cast<double>(ns) / static_cast<double>(tick1 - tick0);
        }
        return 1.0;  // Counter stuck (virtualized oddity): treat ticks as ns.
      }
    }
#else
    return 1.0;  // steady_clock fallback already counts ns.
#endif
  }
};

/// One worker thread (or simulated executor) of a non-source operator.
struct WorkerTelemetry {
  OperatorId op = -1;
  int index = -1;
  /// Measured wall-busy ns: time spent inside operator logic, excluding
  /// channel waits and control-plane work. Sim: ExecutorMetrics::busy_ns.
  int64_t busy_ns = 0;
  int64_t processed = 0;
  int64_t sink_tuples = 0;
  /// Relative measured service rate in [0, 1] (1 = fastest worker of the
  /// operator), EWMA-smoothed; what the balancer feeds PlanMoves as
  /// capacity. 0 while unmeasured (treated as nominal by consumers).
  double speed = 0.0;
  /// CPU the thread is pinned to (-1 = unpinned / sim).
  int pinned_cpu = -1;
  /// Lifecycle: a retiring worker is being evacuated by ShrinkWorkers and
  /// accepts no new shards; an exited worker's thread is gone.
  bool retiring = false;
  bool exited = false;
};

/// One shard of an elastic operator (empty for the static paradigm / sim).
struct ShardTelemetry {
  OperatorId op = -1;
  ShardId shard = -1;
  int owner = -1;
  int64_t busy_ns = 0;
  int64_t processed = 0;
};

/// One source executor slot.
struct SourceTelemetry {
  OperatorId op = -1;
  int index = -1;
  int64_t emitted = 0;
  int pinned_cpu = -1;
};

/// A point-in-time sample of the whole execution. All counters are
/// cumulative since Start(); consumers diff successive samples for rates.
struct TelemetrySnapshot {
  SimTime sampled_at = 0;
  std::vector<WorkerTelemetry> workers;
  std::vector<ShardTelemetry> shards;
  std::vector<SourceTelemetry> sources;

  // Aggregates (sums of the above, precomputed for convenience).
  int64_t total_processed = 0;
  int64_t sink_count = 0;
  int64_t source_emitted = 0;
  int64_t total_busy_ns = 0;
  int64_t reassignments_done = 0;
  int64_t migrations_in_flight = 0;
};

/// Implemented by whatever can be measured: NativeRuntime (lock-free counter
/// reads) and the engine's simulator adapter (ExecutorMetrics walk). Bound
/// to the backend via ExecutionBackend::BindResourcePlane.
class TelemetrySource {
 public:
  virtual ~TelemetrySource() = default;
  virtual TelemetrySnapshot SampleTelemetry() const = 0;
};

}  // namespace exec
}  // namespace elasticutor
