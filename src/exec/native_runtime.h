// NativeRuntime — real multithreaded execution of a (static) dataflow
// topology, paired with NativeBackend. Where the simulator models executors
// as event-driven callbacks on one thread, here every executor slot is an OS
// thread:
//
//   source threads ──batches──▶ worker threads ──batches──▶ ... ──▶ sinks
//
// * One thread per source executor and per worker slot of each non-source
//   operator (NativeRuntimeOptions::workers_per_operator).
// * Tuples travel in pooled micro-batches (exec/batch_pool.h) over bounded
//   MPSC channels (exec/mpsc_channel.h) — the native incarnation of the
//   simulated data path's channel micro-batching; bounded channels give the
//   same back-pressure-to-the-sources behavior as the simulator's admission
//   reservations.
// * Keys route through the same OperatorPartition hash as the simulator, and
//   per-tuple semantics go through the same ApplyOperatorLogic, so per-key
//   results are identical to a sim run over the same tuple multiset (the
//   native_equivalence tests pin this down).
// * Shutdown is topological: a finishing producer closes its slot on every
//   downstream channel; a worker exits when all its producers closed and its
//   channel drained, then closes downstream in turn. No poison pills, no
//   sentinel tuples.
// * Elasticity (shard reassignment, RC repartitioning, dynamic scheduling)
//   is sim-only; Setup() rejects everything but the static paradigm.
//
// Threading contract: worker state (stores, rngs, counters) is strictly
// thread-local while running; cross-thread communication happens only
// through the channels. Aggregate accessors (total_processed() etc.) are
// valid after WaitDrained() returned — they read joined threads' counters.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/topology.h"
#include "exec/batch_pool.h"
#include "exec/mpsc_channel.h"
#include "exec/native_backend.h"
#include "state/state_store.h"

namespace elasticutor {
namespace exec {

class NativeRuntime {
 public:
  NativeRuntime(const Topology* topology, const EngineConfig* config,
                NativeBackend* backend, EngineMetrics* metrics);
  ~NativeRuntime();

  NativeRuntime(const NativeRuntime&) = delete;
  NativeRuntime& operator=(const NativeRuntime&) = delete;

  /// Builds partitions, channels, stores and per-slot rngs (mirroring the
  /// simulator's deterministic fork order). Rejects non-static paradigms and
  /// non-saturation sources.
  Status Setup();

  /// Launches all threads. Sources run until their SourceSpec::max_tuples
  /// budget is exhausted (0 = until StopSources).
  void Start();

  /// Asks sources to stop after their current tuple; the dataflow then
  /// drains and shuts down topologically.
  void StopSources();

  /// Blocks until every thread has exited, then merges per-worker counters
  /// into EngineMetrics. Idempotent.
  void WaitDrained();

  // ---- Aggregates (valid after WaitDrained) ----
  int64_t total_processed() const;
  int64_t sink_count() const;
  int64_t source_emitted() const;
  int64_t processed(OperatorId op) const;
  /// Channel-contention counters summed over all worker inputs.
  int64_t push_blocks() const;
  int64_t pop_waits() const;
  int64_t batches_pushed() const;
  /// Batches ever heap-allocated by the pool (flat in steady state).
  int64_t batches_allocated() const { return pool_.allocated(); }

  int num_workers(OperatorId op) const;
  /// Per-worker state store (equivalence tests read per-key aggregates).
  ProcessStateStore* worker_store(OperatorId op, int worker);

 private:
  friend class NativeEmitContext;

  /// One output route of a producer thread: the partial batches it is
  /// accumulating toward each worker of one downstream operator. Owned and
  /// touched only by the producer's own thread.
  struct ProducerPort {
    OperatorId to_op = -1;
    OperatorPartition* part = nullptr;
    std::vector<MpscChannel*> channels;          // One per dest worker.
    std::vector<TupleBatchStorage*> pending;     // Partial batch per worker.
  };

  struct Worker {
    OperatorId op = -1;
    int index = 0;
    std::unique_ptr<MpscChannel> input;
    ProcessStateStore store;
    Rng rng{0, 0};
    std::vector<ProducerPort> ports;  // One per downstream operator.
    int64_t processed = 0;
    int64_t sink_tuples = 0;
    std::thread thread;
  };

  struct Source {
    OperatorId op = -1;
    int index = 0;
    Rng rng{0, 0};
    std::vector<ProducerPort> ports;
    int64_t generated = 0;
    std::thread thread;
  };

  void WorkerLoop(Worker* w);
  void SourceLoop(Source* s);

  /// Routes one tuple into the port's partial batch for its destination
  /// worker, pushing the batch when full. Returns false iff the channel was
  /// aborted (emergency teardown).
  bool EmitTo(ProducerPort* port, const Tuple& t);
  /// Pushes every non-empty partial batch (producer idle or finishing).
  void FlushPorts(std::vector<ProducerPort>* ports);
  /// FlushPorts + CloseProducer on every downstream channel (thread exit).
  void ClosePorts(std::vector<ProducerPort>* ports);
  /// Wires the producer's ports toward every downstream operator of `op`.
  void BuildPorts(OperatorId op, std::vector<ProducerPort>* ports);

  int WorkerCount(OperatorId op) const;

  const Topology* topology_;
  const EngineConfig* config_;
  NativeBackend* backend_;
  EngineMetrics* metrics_;

  BatchPool pool_;
  size_t batch_tuples_ = 64;

  std::vector<std::unique_ptr<OperatorPartition>> partitions_;  // Per op.
  std::vector<std::vector<std::unique_ptr<Worker>>> workers_;   // Per op.
  std::vector<std::unique_ptr<Source>> sources_;

  std::atomic<bool> stop_sources_{false};
  bool setup_done_ = false;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace exec
}  // namespace elasticutor
