// NativeRuntime — real multithreaded execution of a dataflow topology,
// paired with NativeBackend. Where the simulator models executors as
// event-driven callbacks on one thread, here every executor slot is an OS
// thread:
//
//   source threads ──batches──▶ worker threads ──batches──▶ ... ──▶ sinks
//
// * One thread per source executor and per worker slot of each non-source
//   operator (NativeOptions::workers_per_operator).
// * Tuples travel in pooled micro-batches (exec/batch_pool.h) over bounded
//   MPSC channels (exec/mpsc_channel.h) — the native incarnation of the
//   simulated data path's channel micro-batching; bounded channels give the
//   same back-pressure-to-the-sources behavior as the simulator's admission
//   reservations.
// * Keys route through the same OperatorPartition hash as the simulator, and
//   per-tuple semantics go through the same ApplyOperatorLogic, so per-key
//   results are identical to a sim run over the same tuple multiset (the
//   native_equivalence tests pin this down).
// * Shutdown is topological: a finishing producer closes its slot on every
//   downstream channel; a worker exits when all its producers closed and its
//   channel drained, then closes downstream in turn. No poison pills, no
//   sentinel tuples.
// * Sources run in saturation mode (emit as fast as back-pressure allows)
//   or trace mode (Poisson arrivals paced on the backend's timer wheel,
//   mirroring the simulator spout's draw order so streams stay
//   bit-identical).
//
// Elastic paradigm (paper §3.3 on real threads). Each non-source operator
// carries a per-shard routing table of atomics (`ElasticOp::owner`);
// producers route every tuple by shard owner. ReassignShard(op, shard, to)
// drives the consistent-reassignment protocol across the worker threads:
//
//   1. kRequested   — the move is posted on the control board; the source
//                     worker is kicked awake.
//   2. kPrecopying  — the source worker starts MigrationEngine::Begin on
//                     its own store: under kChunkedLive the pre-copy chunks
//                     are paced by the backend's timer wheel
//                     (native.migration_copy_bytes_per_sec) while the
//                     worker keeps processing the shard; a DirtyTracker
//                     records what changes meanwhile.
//   3. kLabeling    — pre-copy done: `owner[shard]` flips to the
//                     destination (release store) and `held[shard]` is
//                     raised; a labeling command is published and every
//                     producer that feeds this operator pushes one label
//                     marker into the *old* owner's channel, behind
//                     everything it already routed there (the in-channel
//                     barrier; see exec/label_barrier.h). New tuples route
//                     to the destination, which buffers ("holds") them
//                     because the shard's state is still in flight.
//   4. kDrained     — the old owner popped the last expected label: every
//                     pre-flip tuple of the shard has been processed.
//   5. kFinalizing  — MigrationEngine::Finalize ships the dirty delta into
//                     a staging store (paced on the timer wheel when a copy
//                     rate is set).
//   6. kReady       — the destination worker is kicked, installs the shard
//                     into its own store, replays the held tuples in
//                     arrival order, and lowers `held`. No tuple is lost,
//                     duplicated, or reordered within its (producer, key)
//                     stream — native_elastic_stress_test pins this down
//                     under TSan.
//
// Memory-ordering contract of the routing flip: the publisher raises
// `held` (relaxed) before flipping `owner` (release); producers load
// `owner` (acquire) and the destination loads `held` (acquire) before
// consulting `owner`. A producer that observes the new owner therefore
// routes to a worker that is guaranteed to observe `held` for any tuple it
// receives from that producer (the channel's internal mutex provides the
// edge between producer and consumer), so the destination can never
// process a post-flip tuple before the state arrives. The old owner keeps
// processing the shard while `owner != my_index` tuples drain — the hold
// test is `held && owner == my_index`, destination-only on purpose.
//
// Resource-control plane (exec/telemetry.h + exec/worker_pool.h; the
// runtime implements both and Engine binds them to the backend):
//
// * Measurement. Every worker accumulates *measured wall-busy* cycle-clock
//   deltas around each tuple, thread-locally, and publishes them (plus
//   processed/sink counts) to per-worker atomics at batch boundaries and to
//   a per-shard atomic per tuple. SampleTelemetry() is therefore a
//   lock-free-read snapshot that is live-safe and exact after
//   WaitDrained(). The balance tick feeds the per-shard busy deltas and
//   per-worker measured speeds (EWMA of processed/busy, normalized to the
//   fastest worker) into the capacity-aware balance::PlanMoves — a worker
//   pinned to a busy core sheds shards even when raw tuple counts look
//   even (set native.balance.use_wall_busy=false for the old
//   processed-count diff).
//
// * Actuation. GrowWorkers(op, n) adds threads at runtime: each new worker
//   takes a pre-reserved slot (native.max_workers_per_operator), registers
//   as a producer on every downstream channel (MpscChannel::AddProducer)
//   and becomes a routing destination the moment the slot count's release
//   store lands; producers discover the new channels lazily (EmitTo
//   re-syncs its ports when it sees an out-of-range worker index, and
//   every locked control sweep re-syncs). ShrinkWorkers(op, n) is the
//   native RemoveCore: victims are flagged `retiring` (never again a
//   migration destination), a retirement pump evacuates their shards
//   through the ordinary labeling-barrier protocol above, and the thread
//   exits only when it owns no shard and no in-flight migration references
//   it — evacuation-before-exit, so zero tuples are lost or reordered.
//
// * Placement. With native.pinning.enabled each thread is pinned
//   round-robin over the online CPU list (package-major when numa_aware,
//   so an operator's workers — and the shards they own — fill one socket
//   before spilling); the retirement pump prefers same-package
//   destinations. Pinning is a hint: a failed pin runs unpinned.
//
// Threading contract: worker state (stores, rngs, counters) is strictly
// thread-local while running; cross-thread communication happens only
// through the channels and the control board (ctrl_mu_ + atomics above).
// Introspection surfaces:
//  * SampleTelemetry() — live (fresh to one micro-batch) and exact after
//    WaitDrained(); the canonical surface.
//  * The legacy aggregate accessors (total_processed() etc.) are thin
//    deprecated forwarders kept for one release: valid only after
//    WaitDrained() returned (they read joined threads' plain counters).
//  * reassignments_done(), shard_owner(), migrations_in_flight(),
//    num_workers() are live-safe.
//  * Sink latency histograms merge into EngineMetrics at WaitDrained()
//    (Engine::LatencyHistogram() is post-drain on this backend).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/topology.h"
#include "exec/batch_pool.h"
#include "exec/label_barrier.h"
#include "exec/mpsc_channel.h"
#include "exec/native_backend.h"
#include "exec/telemetry.h"
#include "exec/worker_pool.h"
#include "state/migration_engine.h"
#include "state/state_store.h"

namespace elasticutor {
namespace exec {

class NativeRuntime : public TelemetrySource, public WorkerPool {
 public:
  /// `migration` may be null for the static paradigm; the elastic paradigm
  /// requires it (checked in Setup).
  NativeRuntime(const Topology* topology, const EngineConfig* config,
                NativeBackend* backend, MigrationEngine* migration,
                EngineMetrics* metrics);
  ~NativeRuntime() override;

  NativeRuntime(const NativeRuntime&) = delete;
  NativeRuntime& operator=(const NativeRuntime&) = delete;

  /// Builds partitions, channels, stores and per-slot rngs (mirroring the
  /// simulator's deterministic fork order). Supports the static and elastic
  /// paradigms; rejects resource-centric (simulator-only).
  Status Setup();

  /// Launches all threads (and the periodic balance tick when
  /// native.balance.period_ns is set), pinning them when
  /// native.pinning.enabled. Sources run until their SourceSpec::max_tuples
  /// budget is exhausted (0 = until StopSources).
  void Start();

  /// Asks sources to stop after their current tuple; the dataflow then
  /// drains and shuts down topologically.
  void StopSources();

  /// Blocks until every thread has exited, then merges per-worker counters
  /// and sink-latency histograms into EngineMetrics. While elastic
  /// migrations or trace sources need the timer wheel, pumps the backend so
  /// timers keep firing. Idempotent.
  void WaitDrained();

  // ---- Resource-control plane ----
  /// Live point-in-time sample (see the liveness contract above and in
  /// exec/telemetry.h). Lock-free counter reads plus one ctrl_mu_ hold for
  /// the lifecycle flags and measured speeds.
  TelemetrySnapshot SampleTelemetry() const override;

  /// Adds `n` worker threads to `op` at runtime (elastic paradigm, after
  /// Start, while some producer is still open, within the operator's slot
  /// reservation). The new workers start shard-less; the balancer or the
  /// caller moves load onto them.
  Status GrowWorkers(OperatorId op, int n) override;

  /// Retires the `n` highest-index active workers of `op` by evacuating
  /// every shard they own over the labeling-barrier protocol; each victim
  /// thread exits only after its last shard's drain finalized (the native
  /// RemoveCore). Asynchronous: returns once the evacuation is underway.
  Status ShrinkWorkers(OperatorId op, int n) override;

  // ---- Elasticity (driver thread; elastic paradigm only) ----
  /// Initiates the consistent live reassignment of `shard` of operator
  /// `op` to worker thread `to_worker`. Asynchronous: returns once the move
  /// is posted (kRequested). No-op OK when the shard already lives there;
  /// fails while another move of the same shard is in flight, and when the
  /// destination is retiring. Callable any time between Start() and
  /// WaitDrained() — a shard whose worker threads already exited moves
  /// synchronously.
  Status ReassignShard(OperatorId op, ShardId shard, int to_worker);

  /// Current owner worker of a shard (acquire load; callable while live).
  int shard_owner(OperatorId op, ShardId shard) const;
  /// Completed reassignments (callable while live).
  int64_t reassignments_done() const;
  /// Moves currently in flight (callable while live).
  int64_t migrations_in_flight() const;
  /// Routing-pause durations (flip -> shard installed) of every completed
  /// migration, in ns.
  std::vector<SimDuration> migration_pauses() const;
  /// Label markers pushed by producers over the runtime's lifetime.
  int64_t labels_routed() const;

  // ---- Aggregates: deprecated forwarders (valid after WaitDrained) ----
  // Prefer SampleTelemetry(): same numbers, one surface, live-safe. These
  // read the joined threads' plain counters and are kept for one release.
  int64_t total_processed() const;
  int64_t sink_count() const;
  int64_t source_emitted() const;
  int64_t processed(OperatorId op) const;
  /// Out-of-order (origin, key) deliveries observed by the concurrent
  /// order validator (validate_key_order; always 0 unless the routing
  /// protocol is broken).
  int64_t order_violations() const;
  /// Channel-contention counters summed over all worker inputs.
  int64_t push_blocks() const;
  int64_t pop_waits() const;
  int64_t batches_pushed() const;
  /// Batches ever heap-allocated by the pool (flat in steady state).
  int64_t batches_allocated() const { return pool_.allocated(); }

  /// Live worker-slot count (grown slots included). WorkerPool override.
  int num_workers(OperatorId op) const override;
  int num_shards(OperatorId op) const;
  /// Shard a key hashes to (the same two-tier mapping producers use;
  /// benches derive skew sets from it).
  ShardId shard_of_key(OperatorId op, uint64_t key) const;
  /// Worker currently routing the shard, on either paradigm: the live
  /// owner atomic under elastic, the fixed partition map under static.
  int worker_of_shard(OperatorId op, ShardId shard) const;
  /// Per-worker state store (equivalence tests read per-key aggregates).
  ProcessStateStore* worker_store(OperatorId op, int worker);

 private:
  friend class NativeEmitContext;

  /// One output route of a producer thread: the partial batches it is
  /// accumulating toward each worker of one downstream operator. Owned and
  /// touched only by the producer's own thread; grown destination workers
  /// are appended by SyncProducerPorts under ctrl_mu_ (called only from
  /// the producer's own thread).
  struct ProducerPort {
    OperatorId to_op = -1;
    OperatorPartition* part = nullptr;
    std::vector<MpscChannel*> channels;          // One per dest worker.
    std::vector<TupleBatchStorage*> pending;     // Partial batch per worker.
  };

  /// State common to both producer kinds (sources and workers): output
  /// ports, the cursor into the control board's label-command log, and the
  /// order-validation emission counters. All thread-local to the producer.
  struct Producer {
    std::vector<ProducerPort> ports;  // One per downstream operator.
    uint32_t origin = 0;              // Validation stamp (unique per slot).
    size_t cmd_cursor = 0;            // label_cmds_ consumed so far.
    uint64_t seen_version = 0;        // ctrl_version_ at the last poll.
    /// Per-(dest op, key) emission sequence (validate_key_order only).
    std::map<std::pair<OperatorId, uint64_t>, uint64_t> emit_seq;
  };

  /// Consumer-side order-validation state: last sequence per (origin, key),
  /// kept per shard so it can travel with the shard on migration.
  using ShardOrderState = std::map<std::pair<uint32_t, uint64_t>, uint64_t>;

  struct Worker : Producer {
    OperatorId op = -1;
    int index = 0;
    std::unique_ptr<MpscChannel> input;
    ProcessStateStore store;
    Rng rng{0, 0};
    bool is_sink = false;
    int64_t processed = 0;
    int64_t sink_tuples = 0;
    int64_t order_violations = 0;
    /// Measured wall-busy cycle ticks inside operator logic (thread-local;
    /// see exec/telemetry.h CycleClock).
    int64_t busy_ticks = 0;
    /// Sink-side tuple latency (created_at -> sink), merged into
    /// EngineMetrics after the thread joined.
    Histogram latency;
    /// Live telemetry: published by the worker's own thread at batch
    /// boundaries (relaxed stores of the plain counters above), read
    /// lock-free by SampleTelemetry and the balance tick.
    std::atomic<int64_t> pub_processed{0};
    std::atomic<int64_t> pub_sink{0};
    std::atomic<int64_t> pub_busy_ns{0};
    /// ShrinkWorkers marked this worker for retirement (set under ctrl_mu_,
    /// read lock-free as the worker's fast exit gate). Sticky: a retired
    /// worker is never again a valid migration destination.
    std::atomic<bool> retiring{false};
    /// CPU this thread was pinned to (-1 = unpinned).
    int pinned_cpu = -1;
    /// Post-flip tuples of shards whose state has not arrived yet, in
    /// arrival order (replayed at install).
    std::unordered_map<ShardId, std::vector<Tuple>> hold;
    std::unordered_map<ShardId, ShardOrderState> order_state;
    /// Shutdown handshake, guarded by ctrl_mu_. `departing` is set
    /// atomically with the epilogue's final no-pending-migrations check
    /// (ReassignShard rejects a departing endpoint — the worker will never
    /// poll again); `exited` is set once the ports are closed, after which
    /// the driver may touch the worker's store/ports directly.
    bool departing = false;
    bool exited = false;
    std::thread thread;
  };

  struct Source : Producer {
    OperatorId op = -1;
    int index = 0;
    Rng rng{0, 0};
    int64_t generated = 0;
    std::atomic<int64_t> pub_generated{0};  // Live telemetry.
    int pinned_cpu = -1;
    // Trace-mode pacing: the backend timer sets `fired`, the source thread
    // waits on the condvar (with a poll fallback so StopSources is prompt).
    std::mutex pace_mu;
    std::condition_variable pace_cv;
    bool pace_fired = false;
    std::thread thread;
  };

  /// Per-operator elastic routing state. The atomics are the hot-path
  /// routing table; everything else about a move lives in `migrations_`
  /// under ctrl_mu_.
  struct ElasticOp {
    std::vector<std::atomic<int32_t>> owner;    // Shard -> worker index.
    std::vector<std::atomic<uint8_t>> held;     // Shard state in flight.
    std::vector<std::atomic<int64_t>> processed;   // Per-shard tuple counts.
    std::vector<std::atomic<int64_t>> busy_ticks;  // Per-shard wall-busy.
    // Driver-local balance snapshots (sized to the slot reservation).
    std::vector<int64_t> balance_prev;       // Last processed sample.
    std::vector<int64_t> balance_prev_busy;  // Last busy-ns sample.
    /// Measured relative per-worker speed EWMA in [0, 1] (1 = fastest;
    /// 0 = never observed, treated as nominal). Guarded by ctrl_mu_.
    std::vector<double> speed_ewma;
    std::vector<int64_t> prev_worker_busy;   // Speed-EWMA deltas.
    std::vector<int64_t> prev_worker_proc;
    int open_producers = 0;                  // Guarded by ctrl_mu_.
  };

  enum class MigPhase {
    kRequested,   // Posted; waiting for the source worker to notice.
    kPrecopying,  // MigrationEngine::Begin running, chunks in flight.
    kLabeling,    // Routing flipped; waiting for label markers to drain.
    kDrained,     // Barrier complete; source worker must finalize.
    kFinalizing,  // Delta shipping into the staging store.
    kReady        // Staged; waiting for the destination to install.
  };

  /// One in-flight reassignment, keyed by label id in `migrations_`.
  /// Guarded by ctrl_mu_ except where a phase hands exclusive access to one
  /// thread (e.g. only the source worker touches `handle` after kRequested).
  struct Migration {
    int64_t label_id = -1;
    OperatorId op = -1;
    ShardId shard = -1;
    int from = -1;
    int to = -1;
    MigPhase phase = MigPhase::kRequested;
    /// Whether the flip armed a labeling barrier (some producer was still
    /// open). When false the old owner's channel backlog IS the drain:
    /// finalization must wait until that channel is exhausted (the worker's
    /// epilogue), not run the moment the phase reads kDrained.
    bool barrier_armed = false;
    MigrationEngine::Handle handle;
    /// Staging store the delta ships into (stable address; the destination
    /// extracts from here at install).
    ProcessStateStore staging;
    ShardOrderState order_state;  // Travels with the shard (validation).
    SimTime requested_at = 0;
    SimTime flip_at = 0;  // Routing flipped (pause starts).
  };

  /// A labeling command on the control board: every producer with a port
  /// toward `op` owes one label marker into `from_worker`'s channel.
  struct LabelCmd {
    OperatorId op = -1;
    int from_worker = -1;
    int64_t label_id = -1;
  };

  void WorkerLoop(Worker* w);
  void SourceLoop(Source* s);
  void ProcessTuple(Worker* w, const OperatorSpec& spec, const Tuple& t);
  void CheckArrivalOrder(Worker* w, ShardId shard, const Tuple& t);
  /// Relaxed stores of the worker's plain counters into its pub_* atomics
  /// (called at batch boundaries and after held-tuple replays).
  void PublishWorkerCounters(Worker* w);

  // ---- Elastic control plane ----
  /// Producer-side control poll: push label markers for commands published
  /// since the last poll (both sources and workers).
  void PollProducer(Producer* p);
  /// Worker-side control poll: label duties plus this worker's migration
  /// duties (start pre-copy / finalize / install).
  void PollWorkerControl(Worker* w);
  /// Flushes the partial batch toward `from`, then pushes a label marker
  /// behind it.
  void PushLabel(ProducerPort* port, int from, int64_t label_id);
  /// Source worker: MigrationEngine::Begin on its own store.
  void StartPrecopy(Worker* w, int64_t label_id);
  /// Pre-copy complete (worker thread or driver timer): flip routing, arm
  /// the barrier, publish the labeling command, kick everyone.
  void BeginLabeling(int64_t label_id);
  /// A label marker popped from `w`'s channel.
  void OnLabel(Worker* w, int64_t label_id);
  /// Barrier complete on the source worker: flush downstream (pre-flip
  /// emissions must precede post-flip ones), ship the delta.
  void DrainComplete(Worker* w, int64_t label_id);
  /// Finalize landed (worker thread or driver timer): stage ready, wake the
  /// destination.
  void MigrationReady(int64_t label_id);
  /// Destination worker: install the shard, replay held tuples.
  void InstallMigratedShard(Worker* w, int64_t label_id);
  /// Worker shutdown: wait until no in-flight migration references this
  /// worker (its duties may still be pending while its channel is drained).
  void WorkerEpilogue(Worker* w);
  /// Driver balance tick: per-shard measured wall-busy deltas (or
  /// processed-count deltas when use_wall_busy is off) + per-worker
  /// measured capacities -> capacity-aware PlanMoves -> ReassignShard.
  void BalanceTick();
  /// Updates the per-worker speed EWMAs of one operator from the published
  /// busy/processed counters. Caller holds ctrl_mu_.
  void UpdateWorkerSpeeds(OperatorId op, ElasticOp* eo);
  /// Retirement pump (backend timer, 1 ms): replans the evacuation of every
  /// retiring worker's remaining shards (stragglers appear when an
  /// in-flight move lands on a victim after the shrink). Returns true while
  /// any retiring worker has not exited.
  bool PumpRetirement();
  /// The retiring worker's exit test: owns no shard, holds no tuples, and
  /// no in-flight migration references it (the channel then provably
  /// contains nothing the protocol still needs — see ShrinkWorkers).
  bool RetireReady(Worker* w);
  /// True while WaitDrained must keep pumping the timer wheel for
  /// driver-driven migrations (moves requested after every worker exited).
  bool MigrationsPending() const;

  /// Routes one tuple into the port's partial batch for its destination
  /// worker, pushing the batch when full. Returns false iff the channel was
  /// aborted (emergency teardown). Re-syncs the producer's ports when the
  /// routing table names a grown worker this producer has not seen yet.
  bool EmitTo(Producer* p, ProducerPort* port, const Tuple& t);
  /// Pushes every non-empty partial batch (producer idle or finishing).
  void FlushPorts(std::vector<ProducerPort>* ports);
  /// Producer exit: outstanding label duties, final flush, CloseProducer on
  /// every downstream channel. Decrements open_producers under the same
  /// lock that sweeps the duties, so label barriers armed later never count
  /// this producer.
  void CloseProducerPorts(Producer* p);
  /// Wires the producer's ports toward every downstream operator of `op`.
  void BuildPorts(OperatorId op, std::vector<ProducerPort>* ports);
  /// Appends channels of workers grown since the ports were built. Caller
  /// holds ctrl_mu_ (or is single-threaded Setup); must run in every locked
  /// control sweep so a producer's port vector always covers every worker
  /// a label command can name.
  void SyncProducerPorts(Producer* p);
  /// Collects the label duties published since the producer's last sweep.
  /// Caller holds ctrl_mu_; the pushes happen outside it (a Push may block
  /// on a full channel whose consumer is itself acquiring ctrl_mu_).
  struct LabelDuty {
    ProducerPort* port;
    int from;
    int64_t label_id;
  };
  void CollectLabelDuties(Producer* p, std::vector<LabelDuty>* duties);
  /// Trace pacing: sleeps until backend time `target` via a backend timer
  /// (falls back to 1 ms polling). False when stopped meanwhile.
  bool SourceWaitUntil(Source* s, SimTime target);

  int WorkerCount(OperatorId op) const;
  /// Worker-slot reservation of `op` (>= the initial worker count).
  int MaxSlots(OperatorId op) const;
  /// Live worker of `op` at `index` (< num_workers(op)).
  Worker* worker_at(OperatorId op, int index) const {
    return workers_[op][index].get();
  }
  /// Applies `f` to every live worker (acquire-loads the slot counts, so
  /// grown workers are covered from the moment they are visible).
  template <typename F>
  void ForEachWorker(F&& f) const {
    for (OperatorId op = 0; op < static_cast<OperatorId>(workers_.size());
         ++op) {
      const int count = worker_count_[op].load(std::memory_order_acquire);
      for (int i = 0; i < count; ++i) f(workers_[op][i].get());
    }
  }
  /// Next CPU of the pinning plan (-1 when pinning is off). Caller holds
  /// ctrl_mu_ or is in single-threaded Start.
  int NextPinCpu();
  /// Package of a pinned CPU (-1 unknown / unpinned).
  int PackageOf(int cpu) const;

  const Topology* topology_;
  const EngineConfig* config_;
  NativeBackend* backend_;
  MigrationEngine* migration_;
  EngineMetrics* metrics_;

  BatchPool pool_;
  size_t batch_tuples_ = 64;
  bool elastic_ = false;
  bool validate_ = false;
  /// Timer wheel participates in the dataflow (elastic migrations or trace
  /// sources): WaitDrained must pump the backend instead of joining cold.
  bool has_timed_work_ = false;

  std::vector<std::unique_ptr<OperatorPartition>> partitions_;  // Per op.
  /// Worker slots, per op. Sized to MaxSlots(op) at Setup and never
  /// reallocated: slot i is written once (Setup or GrowWorkers, before the
  /// count's release store) and read only at indices below the acquired
  /// count — the fixed array is what makes runtime growth race-free
  /// against the lock-free readers (EmitTo's routing, the kick-all loop).
  std::vector<std::vector<std::unique_ptr<Worker>>> workers_;
  /// Live worker count per op (release store after the slot is filled).
  std::vector<std::atomic<int>> worker_count_;
  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::unique_ptr<ElasticOp>> elastic_ops_;         // Per op.

  // ---- Control board (elastic): guarded by ctrl_mu_ ----
  mutable std::mutex ctrl_mu_;
  std::condition_variable ctrl_cv_;
  /// Bumped (under ctrl_mu_) on every board mutation producers or workers
  /// must notice; the producers' fast-path gate is one acquire load.
  std::atomic<uint64_t> ctrl_version_{0};
  std::vector<LabelCmd> label_cmds_;  // Append-only command log.
  std::map<int64_t, std::unique_ptr<Migration>> migrations_;
  std::set<std::pair<OperatorId, ShardId>> in_transition_;
  LabelBarrier barrier_;
  int64_t next_label_id_ = 0;
  int64_t reassignments_done_ = 0;
  int64_t labels_routed_ = 0;
  std::vector<SimDuration> pause_ns_;
  bool teardown_ = false;
  /// Origin stamps continue Setup's numbering for grown workers.
  uint32_t next_origin_ = 1;
  /// Retirement pump armed (one periodic timer serves all operators).
  bool retire_pump_armed_ = false;
  /// Pinning plan: online CPUs in assignment order (package-major when
  /// numa_aware) and the round-robin cursor.
  std::vector<int> pin_cpus_;
  std::vector<int> pin_packages_;  // Parallel to pin_cpus_.
  size_t next_pin_ = 0;

  std::atomic<int> live_threads_{0};
  std::atomic<bool> stop_sources_{false};
  bool setup_done_ = false;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace exec
}  // namespace elasticutor
