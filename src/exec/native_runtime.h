// NativeRuntime — real multithreaded execution of a dataflow topology,
// paired with NativeBackend. Where the simulator models executors as
// event-driven callbacks on one thread, here every executor slot is an OS
// thread:
//
//   source threads ──batches──▶ worker threads ──batches──▶ ... ──▶ sinks
//
// * One thread per source executor and per worker slot of each non-source
//   operator (NativeRuntimeOptions::workers_per_operator).
// * Tuples travel in pooled micro-batches (exec/batch_pool.h) over bounded
//   MPSC channels (exec/mpsc_channel.h) — the native incarnation of the
//   simulated data path's channel micro-batching; bounded channels give the
//   same back-pressure-to-the-sources behavior as the simulator's admission
//   reservations.
// * Keys route through the same OperatorPartition hash as the simulator, and
//   per-tuple semantics go through the same ApplyOperatorLogic, so per-key
//   results are identical to a sim run over the same tuple multiset (the
//   native_equivalence tests pin this down).
// * Shutdown is topological: a finishing producer closes its slot on every
//   downstream channel; a worker exits when all its producers closed and its
//   channel drained, then closes downstream in turn. No poison pills, no
//   sentinel tuples.
// * Sources run in saturation mode (emit as fast as back-pressure allows)
//   or trace mode (Poisson arrivals paced on the backend's timer wheel,
//   mirroring the simulator spout's draw order so streams stay
//   bit-identical).
//
// Elastic paradigm (paper §3.3 on real threads). Each non-source operator
// carries a per-shard routing table of atomics (`ElasticOp::owner`);
// producers route every tuple by shard owner. ReassignShard(op, shard, to)
// drives the consistent-reassignment protocol across the worker threads:
//
//   1. kRequested   — the move is posted on the control board; the source
//                     worker is kicked awake.
//   2. kPrecopying  — the source worker starts MigrationEngine::Begin on
//                     its own store: under kChunkedLive the pre-copy chunks
//                     are paced by the backend's timer wheel
//                     (native.migration_copy_bytes_per_sec) while the
//                     worker keeps processing the shard; a DirtyTracker
//                     records what changes meanwhile.
//   3. kLabeling    — pre-copy done: `owner[shard]` flips to the
//                     destination (release store) and `held[shard]` is
//                     raised; a labeling command is published and every
//                     producer that feeds this operator pushes one label
//                     marker into the *old* owner's channel, behind
//                     everything it already routed there (the in-channel
//                     barrier; see exec/label_barrier.h). New tuples route
//                     to the destination, which buffers ("holds") them
//                     because the shard's state is still in flight.
//   4. kDrained     — the old owner popped the last expected label: every
//                     pre-flip tuple of the shard has been processed.
//   5. kFinalizing  — MigrationEngine::Finalize ships the dirty delta into
//                     a staging store (paced on the timer wheel when a copy
//                     rate is set).
//   6. kReady       — the destination worker is kicked, installs the shard
//                     into its own store, replays the held tuples in
//                     arrival order, and lowers `held`. No tuple is lost,
//                     duplicated, or reordered within its (producer, key)
//                     stream — native_elastic_stress_test pins this down
//                     under TSan.
//
// Memory-ordering contract of the routing flip: the publisher raises
// `held` (relaxed) before flipping `owner` (release); producers load
// `owner` (acquire) and the destination loads `held` (acquire) before
// consulting `owner`. A producer that observes the new owner therefore
// routes to a worker that is guaranteed to observe `held` for any tuple it
// receives from that producer (the channel's internal mutex provides the
// edge between producer and consumer), so the destination can never
// process a post-flip tuple before the state arrives. The old owner keeps
// processing the shard while `owner != my_index` tuples drain — the hold
// test is `held && owner == my_index`, destination-only on purpose.
//
// Threading contract: worker state (stores, rngs, counters) is strictly
// thread-local while running; cross-thread communication happens only
// through the channels and the control board (ctrl_mu_ + atomics above).
// Aggregate accessors (total_processed() etc.) are valid after
// WaitDrained() returned — they read joined threads' counters; the few
// accessors documented as live (reassignments_done(), shard_owner()) are
// safe while running.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/topology.h"
#include "exec/batch_pool.h"
#include "exec/label_barrier.h"
#include "exec/mpsc_channel.h"
#include "exec/native_backend.h"
#include "state/migration_engine.h"
#include "state/state_store.h"

namespace elasticutor {
namespace exec {

class NativeRuntime {
 public:
  /// `migration` may be null for the static paradigm; the elastic paradigm
  /// requires it (checked in Setup).
  NativeRuntime(const Topology* topology, const EngineConfig* config,
                NativeBackend* backend, MigrationEngine* migration,
                EngineMetrics* metrics);
  ~NativeRuntime();

  NativeRuntime(const NativeRuntime&) = delete;
  NativeRuntime& operator=(const NativeRuntime&) = delete;

  /// Builds partitions, channels, stores and per-slot rngs (mirroring the
  /// simulator's deterministic fork order). Supports the static and elastic
  /// paradigms; rejects resource-centric (simulator-only).
  Status Setup();

  /// Launches all threads (and the periodic balance tick when
  /// native.balance_period_ns is set). Sources run until their
  /// SourceSpec::max_tuples budget is exhausted (0 = until StopSources).
  void Start();

  /// Asks sources to stop after their current tuple; the dataflow then
  /// drains and shuts down topologically.
  void StopSources();

  /// Blocks until every thread has exited, then merges per-worker counters
  /// into EngineMetrics. While elastic migrations or trace sources need the
  /// timer wheel, pumps the backend so timers keep firing. Idempotent.
  void WaitDrained();

  // ---- Elasticity (driver thread; elastic paradigm only) ----
  /// Initiates the consistent live reassignment of `shard` of operator
  /// `op` to worker thread `to_worker`. Asynchronous: returns once the move
  /// is posted (kRequested). No-op OK when the shard already lives there;
  /// fails while another move of the same shard is in flight. Callable any
  /// time between Start() and WaitDrained() — a shard whose worker threads
  /// already exited moves synchronously.
  Status ReassignShard(OperatorId op, ShardId shard, int to_worker);

  /// Current owner worker of a shard (acquire load; callable while live).
  int shard_owner(OperatorId op, ShardId shard) const;
  /// Completed reassignments (callable while live).
  int64_t reassignments_done() const;
  /// Moves currently in flight (callable while live).
  int64_t migrations_in_flight() const;
  /// Routing-pause durations (flip -> shard installed) of every completed
  /// migration, in ns.
  std::vector<SimDuration> migration_pauses() const;
  /// Label markers pushed by producers over the runtime's lifetime.
  int64_t labels_routed() const;

  // ---- Aggregates (valid after WaitDrained) ----
  int64_t total_processed() const;
  int64_t sink_count() const;
  int64_t source_emitted() const;
  int64_t processed(OperatorId op) const;
  /// Out-of-order (origin, key) deliveries observed by the concurrent
  /// order validator (validate_key_order; always 0 unless the routing
  /// protocol is broken).
  int64_t order_violations() const;
  /// Channel-contention counters summed over all worker inputs.
  int64_t push_blocks() const;
  int64_t pop_waits() const;
  int64_t batches_pushed() const;
  /// Batches ever heap-allocated by the pool (flat in steady state).
  int64_t batches_allocated() const { return pool_.allocated(); }

  int num_workers(OperatorId op) const;
  int num_shards(OperatorId op) const;
  /// Per-worker state store (equivalence tests read per-key aggregates).
  ProcessStateStore* worker_store(OperatorId op, int worker);

 private:
  friend class NativeEmitContext;

  /// One output route of a producer thread: the partial batches it is
  /// accumulating toward each worker of one downstream operator. Owned and
  /// touched only by the producer's own thread.
  struct ProducerPort {
    OperatorId to_op = -1;
    OperatorPartition* part = nullptr;
    std::vector<MpscChannel*> channels;          // One per dest worker.
    std::vector<TupleBatchStorage*> pending;     // Partial batch per worker.
  };

  /// State common to both producer kinds (sources and workers): output
  /// ports, the cursor into the control board's label-command log, and the
  /// order-validation emission counters. All thread-local to the producer.
  struct Producer {
    std::vector<ProducerPort> ports;  // One per downstream operator.
    uint32_t origin = 0;              // Validation stamp (unique per slot).
    size_t cmd_cursor = 0;            // label_cmds_ consumed so far.
    uint64_t seen_version = 0;        // ctrl_version_ at the last poll.
    /// Per-(dest op, key) emission sequence (validate_key_order only).
    std::map<std::pair<OperatorId, uint64_t>, uint64_t> emit_seq;
  };

  /// Consumer-side order-validation state: last sequence per (origin, key),
  /// kept per shard so it can travel with the shard on migration.
  using ShardOrderState = std::map<std::pair<uint32_t, uint64_t>, uint64_t>;

  struct Worker : Producer {
    OperatorId op = -1;
    int index = 0;
    std::unique_ptr<MpscChannel> input;
    ProcessStateStore store;
    Rng rng{0, 0};
    bool is_sink = false;
    int64_t processed = 0;
    int64_t sink_tuples = 0;
    int64_t order_violations = 0;
    /// Post-flip tuples of shards whose state has not arrived yet, in
    /// arrival order (replayed at install).
    std::unordered_map<ShardId, std::vector<Tuple>> hold;
    std::unordered_map<ShardId, ShardOrderState> order_state;
    /// Shutdown handshake, guarded by ctrl_mu_. `departing` is set
    /// atomically with the epilogue's final no-pending-migrations check
    /// (ReassignShard rejects a departing endpoint — the worker will never
    /// poll again); `exited` is set once the ports are closed, after which
    /// the driver may touch the worker's store/ports directly.
    bool departing = false;
    bool exited = false;
    std::thread thread;
  };

  struct Source : Producer {
    OperatorId op = -1;
    int index = 0;
    Rng rng{0, 0};
    int64_t generated = 0;
    // Trace-mode pacing: the backend timer sets `fired`, the source thread
    // waits on the condvar (with a poll fallback so StopSources is prompt).
    std::mutex pace_mu;
    std::condition_variable pace_cv;
    bool pace_fired = false;
    std::thread thread;
  };

  /// Per-operator elastic routing state. The atomics are the hot-path
  /// routing table; everything else about a move lives in `migrations_`
  /// under ctrl_mu_.
  struct ElasticOp {
    std::vector<std::atomic<int32_t>> owner;    // Shard -> worker index.
    std::vector<std::atomic<uint8_t>> held;     // Shard state in flight.
    std::vector<std::atomic<int64_t>> processed;  // Balancer load signal.
    std::vector<int64_t> balance_prev;          // Driver-local snapshots.
    int open_producers = 0;                     // Guarded by ctrl_mu_.
  };

  enum class MigPhase {
    kRequested,   // Posted; waiting for the source worker to notice.
    kPrecopying,  // MigrationEngine::Begin running, chunks in flight.
    kLabeling,    // Routing flipped; waiting for label markers to drain.
    kDrained,     // Barrier complete; source worker must finalize.
    kFinalizing,  // Delta shipping into the staging store.
    kReady        // Staged; waiting for the destination to install.
  };

  /// One in-flight reassignment, keyed by label id in `migrations_`.
  /// Guarded by ctrl_mu_ except where a phase hands exclusive access to one
  /// thread (e.g. only the source worker touches `handle` after kRequested).
  struct Migration {
    int64_t label_id = -1;
    OperatorId op = -1;
    ShardId shard = -1;
    int from = -1;
    int to = -1;
    MigPhase phase = MigPhase::kRequested;
    /// Whether the flip armed a labeling barrier (some producer was still
    /// open). When false the old owner's channel backlog IS the drain:
    /// finalization must wait until that channel is exhausted (the worker's
    /// epilogue), not run the moment the phase reads kDrained.
    bool barrier_armed = false;
    MigrationEngine::Handle handle;
    /// Staging store the delta ships into (stable address; the destination
    /// extracts from here at install).
    ProcessStateStore staging;
    ShardOrderState order_state;  // Travels with the shard (validation).
    SimTime requested_at = 0;
    SimTime flip_at = 0;  // Routing flipped (pause starts).
  };

  /// A labeling command on the control board: every producer with a port
  /// toward `op` owes one label marker into `from_worker`'s channel.
  struct LabelCmd {
    OperatorId op = -1;
    int from_worker = -1;
    int64_t label_id = -1;
  };

  void WorkerLoop(Worker* w);
  void SourceLoop(Source* s);
  void ProcessTuple(Worker* w, const OperatorSpec& spec, const Tuple& t);
  void CheckArrivalOrder(Worker* w, ShardId shard, const Tuple& t);

  // ---- Elastic control plane ----
  /// Producer-side control poll: push label markers for commands published
  /// since the last poll (both sources and workers).
  void PollProducer(Producer* p);
  /// Worker-side control poll: label duties plus this worker's migration
  /// duties (start pre-copy / finalize / install).
  void PollWorkerControl(Worker* w);
  /// Flushes the partial batch toward `from`, then pushes a label marker
  /// behind it.
  void PushLabel(ProducerPort* port, int from, int64_t label_id);
  /// Source worker: MigrationEngine::Begin on its own store.
  void StartPrecopy(Worker* w, int64_t label_id);
  /// Pre-copy complete (worker thread or driver timer): flip routing, arm
  /// the barrier, publish the labeling command, kick everyone.
  void BeginLabeling(int64_t label_id);
  /// A label marker popped from `w`'s channel.
  void OnLabel(Worker* w, int64_t label_id);
  /// Barrier complete on the source worker: flush downstream (pre-flip
  /// emissions must precede post-flip ones), ship the delta.
  void DrainComplete(Worker* w, int64_t label_id);
  /// Finalize landed (worker thread or driver timer): stage ready, wake the
  /// destination.
  void MigrationReady(int64_t label_id);
  /// Destination worker: install the shard, replay held tuples.
  void InstallMigratedShard(Worker* w, int64_t label_id);
  /// Worker shutdown: wait until no in-flight migration references this
  /// worker (its duties may still be pending while its channel is drained).
  void WorkerEpilogue(Worker* w);
  /// Driver balance tick: per-shard processed deltas -> PlanMoves ->
  /// ReassignShard.
  void BalanceTick();
  /// True while WaitDrained must keep pumping the timer wheel for
  /// driver-driven migrations (moves requested after every worker exited).
  bool MigrationsPending() const;

  /// Routes one tuple into the port's partial batch for its destination
  /// worker, pushing the batch when full. Returns false iff the channel was
  /// aborted (emergency teardown).
  bool EmitTo(Producer* p, ProducerPort* port, const Tuple& t);
  /// Pushes every non-empty partial batch (producer idle or finishing).
  void FlushPorts(std::vector<ProducerPort>* ports);
  /// Producer exit: outstanding label duties, final flush, CloseProducer on
  /// every downstream channel. Decrements open_producers under the same
  /// lock that sweeps the duties, so label barriers armed later never count
  /// this producer.
  void CloseProducerPorts(Producer* p);
  /// Wires the producer's ports toward every downstream operator of `op`.
  void BuildPorts(OperatorId op, std::vector<ProducerPort>* ports);
  /// Collects the label duties published since the producer's last sweep.
  /// Caller holds ctrl_mu_; the pushes happen outside it (a Push may block
  /// on a full channel whose consumer is itself acquiring ctrl_mu_).
  struct LabelDuty {
    ProducerPort* port;
    int from;
    int64_t label_id;
  };
  void CollectLabelDuties(Producer* p, std::vector<LabelDuty>* duties);
  /// Trace pacing: sleeps until backend time `target` via a backend timer
  /// (falls back to 1 ms polling). False when stopped meanwhile.
  bool SourceWaitUntil(Source* s, SimTime target);

  int WorkerCount(OperatorId op) const;

  const Topology* topology_;
  const EngineConfig* config_;
  NativeBackend* backend_;
  MigrationEngine* migration_;
  EngineMetrics* metrics_;

  BatchPool pool_;
  size_t batch_tuples_ = 64;
  bool elastic_ = false;
  bool validate_ = false;
  /// Timer wheel participates in the dataflow (elastic migrations or trace
  /// sources): WaitDrained must pump the backend instead of joining cold.
  bool has_timed_work_ = false;

  std::vector<std::unique_ptr<OperatorPartition>> partitions_;  // Per op.
  std::vector<std::vector<std::unique_ptr<Worker>>> workers_;   // Per op.
  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::unique_ptr<ElasticOp>> elastic_ops_;         // Per op.

  // ---- Control board (elastic): guarded by ctrl_mu_ ----
  mutable std::mutex ctrl_mu_;
  std::condition_variable ctrl_cv_;
  /// Bumped (under ctrl_mu_) on every board mutation producers or workers
  /// must notice; the producers' fast-path gate is one acquire load.
  std::atomic<uint64_t> ctrl_version_{0};
  std::vector<LabelCmd> label_cmds_;  // Append-only command log.
  std::map<int64_t, std::unique_ptr<Migration>> migrations_;
  std::set<std::pair<OperatorId, ShardId>> in_transition_;
  LabelBarrier barrier_;
  int64_t next_label_id_ = 0;
  int64_t reassignments_done_ = 0;
  int64_t labels_routed_ = 0;
  std::vector<SimDuration> pause_ns_;
  bool teardown_ = false;

  std::atomic<int> live_threads_{0};
  std::atomic<bool> stop_sources_{false};
  bool setup_done_ = false;
  bool started_ = false;
  bool drained_ = false;
};

}  // namespace exec
}  // namespace elasticutor
