// NativeBackend — the ExecutionBackend of the native multithreaded runtime:
// a monotonic-clock time source plus a thread-safe deferred-call queue.
//
// Virtual time IS wall time: now() returns nanoseconds of std::chrono::
// steady_clock elapsed since backend construction, so engine-level code that
// times out, samples rates or stamps tuples behaves sensibly on real
// hardware without translation.
//
// Deferred calls (At/After/Periodic) may be scheduled from any thread; they
// fire on the DRIVER thread — the thread inside RunUntil — one at a time,
// never concurrently with each other. RunUntil(t) sleeps on a condition
// variable until the next due call or the deadline, firing due calls as
// wall time passes them; Stop() wakes the driver early. This mirrors the
// simulator's single-threaded callback discipline, so control-plane code
// written for SimBackend needs no locking when it runs here — only the
// data plane (NativeRuntime's executor threads) is concurrent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/execution_backend.h"

namespace elasticutor {
namespace exec {

class NativeBackend final : public ExecutionBackend {
 public:
  NativeBackend();
  ~NativeBackend() override;

  BackendKind kind() const override { return BackendKind::kNative; }

  /// Monotonic ns since construction. Callable from any thread.
  SimTime now() const override;

  EventId At(SimTime at, EventFn fn) override;
  EventId After(SimDuration delay, EventFn fn) override;
  bool Cancel(EventId id) override;
  void Periodic(SimTime start, SimDuration period,
                std::function<bool(SimTime)> fn) override;

  /// Blocks the calling thread until wall time reaches `until`, firing due
  /// deferred calls on this thread. kSimTimeMax runs until Stop().
  uint64_t RunUntil(SimTime until) override;

  /// Wakes a RunUntil in progress; it returns promptly without firing
  /// further calls.
  void Stop() override;

  uint64_t events_executed() const override;

 private:
  struct PeriodicTask {
    std::function<bool(SimTime)> fn;
    SimDuration period = 0;
  };
  struct Timer {
    EventFn fn;
    uint64_t id = 0;
  };

  EventId ScheduleLocked(SimTime at, EventFn fn);
  void PeriodicTick(PeriodicTask* task, SimTime fired_at);

  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  // (due time, seq) -> timer: fires in (time, schedule-order), like the
  // simulator's (time, seq) ordering.
  std::map<std::pair<SimTime, uint64_t>, Timer> timers_;
  std::map<uint64_t, std::pair<SimTime, uint64_t>> id_index_;
  std::vector<std::unique_ptr<PeriodicTask>> periodic_tasks_;
  uint64_t next_seq_ = 1;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace exec
}  // namespace elasticutor
