// SimBackend — the default ExecutionBackend: a 1:1 wrapper over the
// single-threaded discrete-event Simulator. Every call forwards directly, so
// engines running on this backend are byte-for-byte identical to the
// pre-seam engine (same event ordering, ids, and events_executed counts);
// the determinism regressions in tests/batching_test.cc pin this down.
//
// This header is one of the two places allowed to include sim/simulator.h
// (the other being src/sim/ itself): the simulator type stops leaking into
// the engine stack at this seam.
#pragma once

#include <memory>

#include "exec/execution_backend.h"
#include "sim/simulator.h"

namespace elasticutor {
namespace exec {

class SimBackend final : public ExecutionBackend {
 public:
  SimBackend() : sim_(std::make_unique<Simulator>()) {}

  BackendKind kind() const override { return BackendKind::kSim; }

  SimTime now() const override { return sim_->now(); }

  EventId At(SimTime at, EventFn fn) override {
    return sim_->At(at, std::move(fn));
  }

  EventId After(SimDuration delay, EventFn fn) override {
    return sim_->After(delay, std::move(fn));
  }

  bool Cancel(EventId id) override { return sim_->Cancel(id); }

  void Periodic(SimTime start, SimDuration period,
                std::function<bool(SimTime)> fn) override {
    sim_->Periodic(start, period, std::move(fn));
  }

  uint64_t RunUntil(SimTime until) override { return sim_->RunUntil(until); }

  /// Drains all events (tests; periodic processes never drain).
  uint64_t RunAll() { return sim_->RunAll(); }

  uint64_t events_executed() const override {
    return sim_->events_executed();
  }

 private:
  std::unique_ptr<Simulator> sim_;
};

}  // namespace exec
}  // namespace elasticutor
