#include "exec/native_backend.h"

#include <utility>

#include "common/status.h"

namespace elasticutor {
namespace exec {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kNative:
      return "native";
  }
  return "unknown";
}

NativeBackend::NativeBackend() : epoch_(std::chrono::steady_clock::now()) {}

NativeBackend::~NativeBackend() = default;

SimTime NativeBackend::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

EventId NativeBackend::ScheduleLocked(SimTime at, EventFn fn) {
  const uint64_t id = next_id_++;
  const auto key = std::make_pair(at, next_seq_++);
  Timer timer;
  timer.fn = std::move(fn);
  timer.id = id;
  const bool was_front = timers_.empty() || key < timers_.begin()->first;
  timers_.emplace(key, std::move(timer));
  id_index_.emplace(id, key);
  if (was_front) wake_.notify_all();  // Driver may be sleeping past `at`.
  return id;
}

EventId NativeBackend::At(SimTime at, EventFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  return ScheduleLocked(at, std::move(fn));
}

EventId NativeBackend::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  const SimTime at = now() + delay;
  std::lock_guard<std::mutex> lock(mu_);
  return ScheduleLocked(at, std::move(fn));
}

bool NativeBackend::Cancel(EventId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = id_index_.find(id);
  if (it == id_index_.end()) return false;
  timers_.erase(it->second);
  id_index_.erase(it);
  return true;
}

void NativeBackend::Periodic(SimTime start, SimDuration period,
                             std::function<bool(SimTime)> fn) {
  ELASTICUTOR_CHECK_MSG(period > 0, "periodic period must be positive");
  auto task = std::make_unique<PeriodicTask>();
  task->fn = std::move(fn);
  task->period = period;
  PeriodicTask* raw = task.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    periodic_tasks_.push_back(std::move(task));
    ScheduleLocked(start, [this, raw]() { PeriodicTick(raw, now()); });
  }
}

void NativeBackend::PeriodicTick(PeriodicTask* task, SimTime fired_at) {
  if (task->fn(fired_at)) {
    After(task->period, [this, task]() { PeriodicTick(task, now()); });
  }
}

uint64_t NativeBackend::RunUntil(SimTime until) {
  uint64_t executed = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_requested_) {
      stop_requested_ = false;
      break;
    }
    const SimTime wall = now();
    if (!timers_.empty() && timers_.begin()->first.first <= wall) {
      // Due: fire outside the lock so the callback may (re)schedule.
      auto it = timers_.begin();
      EventFn fn = std::move(it->second.fn);
      id_index_.erase(it->second.id);
      timers_.erase(it);
      ++events_executed_;
      lock.unlock();
      fn();
      ++executed;
      lock.lock();
      continue;
    }
    if (wall >= until) break;
    // Sleep until the deadline, the next timer, or a wake (Stop / an
    // earlier timer being scheduled from another thread).
    SimTime wake_at = until;
    if (!timers_.empty() && timers_.begin()->first.first < wake_at) {
      wake_at = timers_.begin()->first.first;
    }
    if (wake_at == kSimTimeMax) {
      wake_.wait(lock);
    } else {
      wake_.wait_for(lock, std::chrono::nanoseconds(wake_at - wall));
    }
  }
  return executed;
}

void NativeBackend::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  wake_.notify_all();
}

uint64_t NativeBackend::events_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_executed_;
}

}  // namespace exec
}  // namespace elasticutor
