// ExecutionBackend — the seam between the engine stack and whatever actually
// executes it. Everything above this interface (runtime, network model,
// migration engine, controllers, workloads) schedules deferred calls against
// a virtual clock and never names a concrete runtime; everything below it is
// one of two implementations:
//
//  * SimBackend (exec/sim_backend.h) — wraps the single-threaded
//    discrete-event simulator. The default: byte-for-byte deterministic, all
//    tests and figure benches run here. Virtual time advances only when
//    events fire.
//
//  * NativeBackend (exec/native_backend.h) — a monotonic-clock time source
//    plus a thread-safe timer queue. Paired with NativeRuntime
//    (exec/native_runtime.h), which runs executor slots on real OS threads
//    with bounded MPSC channels between them. Virtual time IS wall time
//    (ns since backend construction).
//
// The interface is exactly the scheduling surface the engine stack used to
// take from Simulator*: virtual clock (now), deferred calls (At/After/
// Cancel/Periodic), and the run/stop lifecycle (RunUntil/Stop). EventFn is
// the callback currency on both sides, so the inline-storage/no-allocation
// property of the hot path is backend-independent.
//
// Determinism contract: under SimBackend every call forwards 1:1 to the
// simulator the engine used to own — same event ordering, same event ids,
// same events_executed() — so results are byte-identical to the
// pre-seam engine. Under NativeBackend, deferred calls run on the driver
// thread (the thread inside RunUntil), never concurrently with each other;
// At/After/Cancel may be called from any thread.
// Resource-control plane: beyond scheduling, the backend is the seam through
// which controllers *measure* and *actuate* the execution
// (exec/telemetry.h, exec/worker_pool.h). The concrete runtime registers
// itself via BindResourcePlane; SampleTelemetry()/worker_pool() are then
// backend-independent — the balancer consumes wall-busy load the same way
// whether a simulator or a thread pool produced it.
#pragma once

#include <functional>

#include "exec/telemetry.h"
#include "sim/event_fn.h"
#include "sim/time.h"

namespace elasticutor {

using EventId = uint64_t;

namespace exec {

enum class BackendKind {
  kSim = 0,     // Deterministic discrete-event simulation (default).
  kNative = 1,  // Real OS threads + monotonic clock (throughput benches).
};

const char* BackendKindName(BackendKind kind);

class WorkerPool;  // exec/worker_pool.h

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  ExecutionBackend() = default;
  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  virtual BackendKind kind() const = 0;

  // ---- Virtual clock ----
  /// Current virtual time in ns. Sim: event time. Native: monotonic wall
  /// time since backend construction (callable from any thread).
  virtual SimTime now() const = 0;

  // ---- Deferred-call scheduling ----
  /// Schedules fn at absolute virtual time `at` (>= now). Sim: must be
  /// called from the event loop thread. Native: callable from any thread;
  /// the call fires on the driver thread during RunUntil.
  virtual EventId At(SimTime at, EventFn fn) = 0;

  /// Schedules fn after `delay` ns (clamped at >= 0).
  virtual EventId After(SimDuration delay, EventFn fn) = 0;

  /// Cancels a pending deferred call; returns false if it already fired or
  /// was already cancelled.
  virtual bool Cancel(EventId id) = 0;

  /// Registers a periodic callback firing every `period` ns starting at
  /// `start`. The callback may return false to stop recurring.
  virtual void Periodic(SimTime start, SimDuration period,
                        std::function<bool(SimTime)> fn) = 0;

  // ---- Run/stop lifecycle ----
  /// Drives execution until virtual time `until`. Sim: runs the event loop.
  /// Native: blocks the calling (driver) thread until wall time reaches
  /// `until`, firing due deferred calls on this thread; worker threads keep
  /// running throughout. Returns the number of deferred calls executed.
  virtual uint64_t RunUntil(SimTime until) = 0;

  /// Requests an early exit from a RunUntil in progress (native: wakes the
  /// driver). Sim: no-op (RunUntil returns when the queue drains).
  virtual void Stop() {}

  /// Deferred calls executed since construction (perf counters).
  virtual uint64_t events_executed() const = 0;

  // ---- Resource-control plane ----
  /// Registers the measurement and actuation surfaces of the concrete
  /// execution (Engine calls this during Setup: the native runtime binds
  /// itself for both; the sim binds the engine's ExecutorMetrics adapter
  /// and no pool — AddCore/RemoveCore is the simulated actuation path).
  /// Either pointer may be null; the backend does not own them.
  void BindResourcePlane(TelemetrySource* telemetry, WorkerPool* pool) {
    telemetry_ = telemetry;
    worker_pool_ = pool;
  }

  /// A point-in-time sample of the execution (exec/telemetry.h documents
  /// the liveness contract). Empty snapshot when nothing is bound yet.
  TelemetrySnapshot SampleTelemetry() const {
    return telemetry_ != nullptr ? telemetry_->SampleTelemetry()
                                 : TelemetrySnapshot{};
  }

  /// Runtime worker scaling (exec/worker_pool.h); null when the backend
  /// cannot actuate thread counts (kSim).
  WorkerPool* worker_pool() const { return worker_pool_; }

 private:
  TelemetrySource* telemetry_ = nullptr;
  WorkerPool* worker_pool_ = nullptr;
};

}  // namespace exec
}  // namespace elasticutor
