#include "exec/cpu_affinity.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace elasticutor {
namespace exec {

namespace {

int OnlineCpuCount() {
#if defined(__linux__)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<int>(n);
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int PackageOf(int cpu) {
#if defined(__linux__)
  char path[128];
  std::snprintf(path, sizeof(path),
                "/sys/devices/system/cpu/cpu%d/topology/physical_package_id",
                cpu);
  if (FILE* f = std::fopen(path, "r")) {
    int package = 0;
    const bool ok = std::fscanf(f, "%d", &package) == 1;
    std::fclose(f);
    if (ok && package >= 0) return package;
  }
#endif
  (void)cpu;
  return 0;
}

}  // namespace

CpuTopology CpuTopology::Detect(bool numa_aware) {
  CpuTopology topo;
  const int n = OnlineCpuCount();
  topo.cpus.reserve(n);
  for (int c = 0; c < n; ++c) {
    topo.cpus.push_back({c, numa_aware ? PackageOf(c) : 0});
  }
  if (numa_aware) {
    std::stable_sort(topo.cpus.begin(), topo.cpus.end(),
                     [](const Cpu& a, const Cpu& b) {
                       return a.package != b.package ? a.package < b.package
                                                     : a.cpu < b.cpu;
                     });
  }
  return topo;
}

bool PinningSupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool PinThreadToCpu(std::thread* t, int cpu) {
#if defined(__linux__)
  if (t == nullptr || !t->joinable() || cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(t->native_handle(), sizeof(set), &set) == 0;
#else
  (void)t;
  (void)cpu;
  return false;
#endif
}

}  // namespace exec
}  // namespace elasticutor
