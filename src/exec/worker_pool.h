// Resource-control plane, actuation half: WorkerPool lets a controller
// resize an operator's worker set at runtime — the native analog of
// ElasticExecutor::AddCore/RemoveCore.
//
//  * GrowWorkers(op, n): n new threads join the operator's pool immediately
//    and become valid ReassignShard destinations (they start empty; the
//    balancer, or the caller, moves load onto them).
//  * ShrinkWorkers(op, n): the n highest-index active workers are marked
//    retiring. Every shard they own is evacuated through the ordinary
//    labeling-barrier migration protocol; a retiring thread exits only once
//    its last shard's drain has finalized and no in-flight migration
//    references it (evacuation-before-exit). Retiring workers are rejected
//    as migration destinations from the moment the call returns, so the
//    balancer can never re-fill a draining thread. The call is
//    asynchronous: it returns once the evacuation is underway.
//
// Only the native backend actuates; the simulator's analog is
// AddCore/RemoveCore on the elastic executors (per-core, not per-thread),
// so ExecutionBackend::worker_pool() returns null under kSim.
#pragma once

#include "common/status.h"
#include "engine/ids.h"

namespace elasticutor {
namespace exec {

class WorkerPool {
 public:
  virtual ~WorkerPool() = default;

  /// Adds `n` worker threads to operator `op`. Fails when the paradigm is
  /// static (no live routing to the new workers), before Start(), when the
  /// operator's slot reservation (max_workers_per_operator) is exhausted,
  /// or when every producer already closed (nothing left to route).
  virtual Status GrowWorkers(OperatorId op, int n) = 0;

  /// Retires the `n` highest-index active workers of `op` via shard
  /// evacuation. Fails when fewer than n+1 active workers remain (the pool
  /// never shrinks to zero), or under the static paradigm.
  virtual Status ShrinkWorkers(OperatorId op, int n) = 0;

  /// Live worker-slot count of `op` (grown slots included; retiring workers
  /// still count until their threads exit).
  virtual int num_workers(OperatorId op) const = 0;
};

}  // namespace exec
}  // namespace elasticutor
