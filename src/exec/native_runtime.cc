#include "exec/native_runtime.h"

#include <algorithm>
#include <chrono>

#include "elastic/load_balancer.h"
#include "engine/single_task_executor.h"  // ApplyOperatorLogic.
#include "exec/cpu_affinity.h"

namespace elasticutor {
namespace exec {

namespace {
/// Speed-EWMA tuning (mirrors ElasticExecutor::RefreshTaskSpeeds): ignore
/// windows with less than this much measured busy time (too noisy), blend
/// observations at kSpeedAlpha, and drift an unobserved worker's speed back
/// toward nominal (idleness is not slowness).
constexpr int64_t kSpeedMinBusyNs = 200'000;
constexpr double kSpeedAlpha = 0.4;
constexpr double kSpeedRecovery = 0.2;
}  // namespace

/// EmitContext of a native producer: routes each emission into the partial
/// batches of the thread's ports. Lives on the producer's stack for one
/// tuple; no allocation, no locking beyond the channel push. (Friend of
/// NativeRuntime — not in an anonymous namespace on purpose.)
class NativeEmitContext final : public EmitContext {
 public:
  NativeEmitContext(NativeRuntime* rt, NativeRuntime::Producer* producer,
                    SimTime created_at)
      : rt_(rt), producer_(producer), created_at_(created_at) {}

  void Emit(uint64_t key, int32_t size_bytes,
            const TuplePayload& payload) override {
    Tuple out;
    out.key = key;
    out.size_bytes = size_bytes;
    out.created_at = created_at_;
    out.payload = payload;
    for (auto& port : producer_->ports) rt_->EmitTo(producer_, &port, out);
  }

 private:
  NativeRuntime* rt_;
  NativeRuntime::Producer* producer_;
  SimTime created_at_;
};

NativeRuntime::NativeRuntime(const Topology* topology,
                             const EngineConfig* config,
                             NativeBackend* backend,
                             MigrationEngine* migration,
                             EngineMetrics* metrics)
    : topology_(topology),
      config_(config),
      backend_(backend),
      migration_(migration),
      metrics_(metrics) {}

NativeRuntime::~NativeRuntime() {
  if (started_ && !drained_) {
    // Emergency teardown: unblock every thread and join. Migrations still
    // in flight are abandoned (teardown_ releases epilogue waiters).
    stop_sources_.store(true, std::memory_order_relaxed);
    if (elastic_) {
      std::lock_guard<std::mutex> lock(ctrl_mu_);
      teardown_ = true;
    }
    ctrl_cv_.notify_all();
    ForEachWorker([](Worker* w) { w->input->Abort(); });
    WaitDrained();
  }
}

int NativeRuntime::WorkerCount(OperatorId op) const {
  if (config_->native.workers_per_operator > 0) {
    return config_->native.workers_per_operator;
  }
  const OperatorSpec& spec = topology_->spec(op);
  return std::max(1, spec.static_executors);
}

int NativeRuntime::MaxSlots(OperatorId op) const {
  const int count = WorkerCount(op);
  if (!elastic_) return count;  // Growth needs the elastic routing table.
  if (config_->native.max_workers_per_operator > 0) {
    return std::max(config_->native.max_workers_per_operator, count);
  }
  return std::max(2 * count, 16);
}

Status NativeRuntime::Setup() {
  if (setup_done_) return Status::FailedPrecondition("Setup called twice");
  if (config_->paradigm == Paradigm::kResourceCentric) {
    return Status::InvalidArgument(
        "the native backend runs the static and elastic paradigms; "
        "resource-centric key repartitioning is simulator-only — see "
        "docs/architecture.md");
  }
  elastic_ = config_->paradigm == Paradigm::kElastic;
  validate_ = config_->validate_key_order;
  if (elastic_ && migration_ == nullptr) {
    return Status::InvalidArgument(
        "elastic paradigm requires a MigrationEngine (Engine wires one)");
  }
  batch_tuples_ = static_cast<size_t>(
      std::max(1, config_->native.data_path.batch_tuples));
  const size_t channel_cap = static_cast<size_t>(
      std::max(1, config_->native.data_path.channel_capacity_batches));

  const int n = topology_->num_operators();
  partitions_.resize(n);
  workers_.resize(n);
  worker_count_ = std::vector<std::atomic<int>>(n);
  for (int i = 0; i < n; ++i) {
    worker_count_[i].store(0, std::memory_order_relaxed);
  }
  elastic_ops_.resize(n);

  // Pass 1: partitions, workers and their input channels (no ports yet —
  // ports need every destination channel to exist). Worker slots are
  // reserved up to MaxSlots so GrowWorkers can fill them later without
  // ever reallocating the array the lock-free readers walk.
  bool has_trace = false;
  for (OperatorId op : topology_->topo_order()) {
    const OperatorSpec& spec = topology_->spec(op);
    if (spec.is_source) {
      if (spec.source.mode == SourceSpec::Mode::kTrace) {
        if (!spec.source.rate_fn) {
          return Status::InvalidArgument("trace-mode source '" + spec.name +
                                         "' needs a rate_fn");
        }
        has_trace = true;
      }
      if (topology_->downstream(op).size() != 1) {
        return Status::InvalidArgument("source '" + spec.name +
                                       "' must have exactly one downstream "
                                       "operator");
      }
      continue;
    }
    const int count = WorkerCount(op);
    const int max_slots = MaxSlots(op);
    auto partition = std::make_unique<OperatorPartition>(
        spec.total_shards(), count, /*salt=*/op);
    // Producers on this operator's channels: every upstream slot.
    int producers = 0;
    for (OperatorId up : topology_->upstream(op)) {
      const OperatorSpec& up_spec = topology_->spec(up);
      producers +=
          up_spec.is_source ? up_spec.num_executors : WorkerCount(up);
    }
    workers_[op].resize(max_slots);
    for (int i = 0; i < count; ++i) {
      auto w = std::make_unique<Worker>();
      w->op = op;
      w->index = i;
      w->is_sink = topology_->is_sink(op);
      w->input = std::make_unique<MpscChannel>(channel_cap, producers);
      workers_[op][i] = std::move(w);
    }
    worker_count_[op].store(count, std::memory_order_relaxed);
    OperatorPartition* part = partition.get();
    for (int s = 0; s < part->num_shards(); ++s) {
      Worker* owner = workers_[op][part->ExecutorOfShard(s)].get();
      ELASTICUTOR_RETURN_NOT_OK(
          owner->store.CreateShard(s, spec.shard_state_bytes));
    }
    if (elastic_) {
      auto eo = std::make_unique<ElasticOp>();
      const int num_shards = part->num_shards();
      eo->owner = std::vector<std::atomic<int32_t>>(num_shards);
      eo->held = std::vector<std::atomic<uint8_t>>(num_shards);
      eo->processed = std::vector<std::atomic<int64_t>>(num_shards);
      eo->busy_ticks = std::vector<std::atomic<int64_t>>(num_shards);
      eo->balance_prev.assign(num_shards, 0);
      eo->balance_prev_busy.assign(num_shards, 0);
      for (int s = 0; s < num_shards; ++s) {
        eo->owner[s].store(part->ExecutorOfShard(s),
                           std::memory_order_relaxed);
        eo->held[s].store(0, std::memory_order_relaxed);
        eo->processed[s].store(0, std::memory_order_relaxed);
        eo->busy_ticks[s].store(0, std::memory_order_relaxed);
      }
      eo->speed_ewma.assign(max_slots, 0.0);
      eo->prev_worker_busy.assign(max_slots, 0);
      eo->prev_worker_proc.assign(max_slots, 0);
      eo->open_producers = producers;
      elastic_ops_[op] = std::move(eo);
    }
    partitions_[op] = std::move(partition);
  }
  has_timed_work_ = elastic_ || has_trace;

  // Pass 2: rngs (mirroring the simulator's fork order exactly: topo order,
  // executors in index order — so source streams are bit-identical to a sim
  // run at the same seed), producer ports and origin stamps (unique per
  // producer slot; the concurrent order validator keys sequences on them).
  Rng root(config_->seed, 0x5eed5eed);
  for (OperatorId op : topology_->topo_order()) {
    const OperatorSpec& spec = topology_->spec(op);
    if (spec.is_source) {
      for (int e = 0; e < spec.num_executors; ++e) {
        auto s = std::make_unique<Source>();
        s->op = op;
        s->index = e;
        s->origin = next_origin_++;
        s->rng = root.Fork(0x500 + MakeExecutorId(op, e));
        BuildPorts(op, &s->ports);
        sources_.push_back(std::move(s));
      }
      continue;
    }
    const int count = worker_count_[op].load(std::memory_order_relaxed);
    for (int i = 0; i < count; ++i) {
      Worker* w = workers_[op][i].get();
      w->origin = next_origin_++;
      w->rng = root.Fork(MakeExecutorId(op, w->index));
      BuildPorts(op, &w->ports);
    }
  }
  setup_done_ = true;
  return Status::OK();
}

void NativeRuntime::BuildPorts(OperatorId op,
                               std::vector<ProducerPort>* ports) {
  for (OperatorId to : topology_->downstream(op)) {
    ProducerPort port;
    port.to_op = to;
    port.part = partitions_[to].get();
    const int count = worker_count_[to].load(std::memory_order_acquire);
    for (int i = 0; i < count; ++i) {
      port.channels.push_back(workers_[to][i]->input.get());
    }
    port.pending.assign(port.channels.size(), nullptr);
    ports->push_back(std::move(port));
  }
}

void NativeRuntime::SyncProducerPorts(Producer* p) {
  for (auto& port : p->ports) {
    const int count =
        worker_count_[port.to_op].load(std::memory_order_relaxed);
    for (int i = static_cast<int>(port.channels.size()); i < count; ++i) {
      port.channels.push_back(workers_[port.to_op][i]->input.get());
      port.pending.push_back(nullptr);
    }
  }
}

int NativeRuntime::NextPinCpu() {
  if (pin_cpus_.empty()) return -1;
  const int cpu = pin_cpus_[next_pin_ % pin_cpus_.size()];
  ++next_pin_;
  return cpu;
}

int NativeRuntime::PackageOf(int cpu) const {
  for (size_t i = 0; i < pin_cpus_.size(); ++i) {
    if (pin_cpus_[i] == cpu) return pin_packages_[i];
  }
  return -1;
}

void NativeRuntime::Start() {
  ELASTICUTOR_CHECK_MSG(setup_done_, "Start before Setup");
  ELASTICUTOR_CHECK_MSG(!started_, "Start called twice");
  started_ = true;
  if (config_->native.pinning.enabled) {
    const CpuTopology topo =
        CpuTopology::Detect(config_->native.pinning.numa_aware);
    for (const auto& c : topo.cpus) {
      pin_cpus_.push_back(c.cpu);
      pin_packages_.push_back(c.package);
    }
  }
  int threads = static_cast<int>(sources_.size());
  ForEachWorker([&threads](Worker*) { ++threads; });
  live_threads_.store(threads, std::memory_order_release);
  // Workers first so channels have their consumers before sources flood.
  // Pin in creation order: with a package-major CPU list one operator's
  // workers land on one socket before spilling to the next.
  ForEachWorker([this](Worker* w) {
    w->thread = std::thread([this, w] { WorkerLoop(w); });
    w->pinned_cpu = NextPinCpu();
    if (w->pinned_cpu >= 0 && !PinThreadToCpu(&w->thread, w->pinned_cpu)) {
      w->pinned_cpu = -1;  // Hint failed (cgroup mask etc.): run unpinned.
    }
  });
  for (auto& s : sources_) {
    s->thread = std::thread([this, src = s.get()] { SourceLoop(src); });
    s->pinned_cpu = NextPinCpu();
    if (s->pinned_cpu >= 0 && !PinThreadToCpu(&s->thread, s->pinned_cpu)) {
      s->pinned_cpu = -1;
    }
  }
  if (elastic_ && config_->native.balance.period_ns > 0) {
    const SimDuration period = config_->native.balance.period_ns;
    backend_->Periodic(backend_->now() + period, period, [this](SimTime) {
      if (drained_ || live_threads_.load(std::memory_order_acquire) == 0) {
        return false;
      }
      BalanceTick();
      return true;
    });
  }
}

void NativeRuntime::StopSources() {
  stop_sources_.store(true, std::memory_order_relaxed);
}

void NativeRuntime::WaitDrained() {
  if (!started_ || drained_) return;
  if (has_timed_work_) {
    // Elastic migrations, trace sources and the retirement pump are driven
    // by the backend's timer wheel, and timers only fire inside RunUntil —
    // pump it until every thread is gone AND no migration is still in
    // flight. The second condition matters for moves requested after the
    // dataflow drained: with every worker exited those are driver-driven,
    // and their paced pre-copy chunks and labeling callback only fire
    // here. (Each RunUntil call sleeps through one 1 ms window, so this is
    // a condvar-paced wait, not a spin.)
    while (live_threads_.load(std::memory_order_acquire) > 0 ||
           MigrationsPending()) {
      backend_->RunUntil(backend_->now() + Millis(1));
    }
  }
  for (auto& s : sources_) {
    if (s->thread.joinable()) s->thread.join();
  }
  ForEachWorker([](Worker* w) {
    if (w->thread.joinable()) w->thread.join();
  });
  drained_ = true;
  // Single-threaded from here: merge per-worker counters and sink-latency
  // histograms into the engine metrics (EngineMetrics itself is not
  // touched by running threads).
  metrics_->MergeSinkCount(sink_count());
  ForEachWorker([this](Worker* w) {
    if (w->is_sink) metrics_->MergeLatency(w->latency);
  });
}

bool NativeRuntime::EmitTo(Producer* p, ProducerPort* port, const Tuple& t) {
  size_t wi;
  if (elastic_) {
    // Two-tier routing (paper §3.2): key -> shard by hash, shard -> worker
    // through the live routing table. The acquire pairs with the release
    // store in BeginLabeling: a producer that sees the new owner routes to
    // a worker guaranteed to see `held` raised.
    const ShardId shard = port->part->ShardOf(t.key);
    wi = static_cast<size_t>(elastic_ops_[port->to_op]->owner[shard].load(
        std::memory_order_acquire));
  } else {
    wi = static_cast<size_t>(port->part->ExecutorOfKey(t.key));
  }
  if (wi >= port->pending.size()) {
    // The routing table names a grown worker this producer has not seen
    // yet: sync the port vectors to the live slot count (rare — once per
    // producer per growth event).
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    SyncProducerPorts(p);
  }
  TupleBatchStorage*& batch = port->pending[wi];
  if (batch == nullptr) batch = pool_.Acquire();
  batch->tuples.push_back(t);
  if (validate_) {
    Tuple& stamped = batch->tuples.back();
    stamped.origin = p->origin;
    stamped.arrival_seq = ++p->emit_seq[{port->to_op, t.key}];
  }
  if (batch->tuples.size() < batch_tuples_) return true;
  TupleBatchStorage* full = batch;
  batch = nullptr;
  if (!port->channels[wi]->Push(full)) {
    pool_.Release(full);
    return false;  // Aborted (emergency teardown).
  }
  return true;
}

void NativeRuntime::FlushPorts(std::vector<ProducerPort>* ports) {
  for (auto& port : *ports) {
    for (size_t wi = 0; wi < port.pending.size(); ++wi) {
      TupleBatchStorage* batch = port.pending[wi];
      if (batch == nullptr || batch->tuples.empty()) continue;
      port.pending[wi] = nullptr;
      if (!port.channels[wi]->Push(batch)) pool_.Release(batch);
    }
  }
}

void NativeRuntime::CloseProducerPorts(Producer* p) {
  // Data leaves first: a barrier armed after the retirement below does not
  // count this producer, so no batch of ours may enter a channel after
  // that point — a straggler flushed later could ride in behind another
  // producer's marker and reach the old owner post-extraction.
  FlushPorts(&p->ports);
  if (elastic_) {
    // Final duty sweep + producer retirement, atomically: the decrement
    // happens under the same lock hold as the sweep, so any labeling
    // command published later arms its barrier without this producer —
    // and the retirement precedes CloseProducer below, so a barrier that
    // did count us gets its marker before the channel closes. The port
    // sync under the same hold pairs with GrowWorkers: a channel created
    // before our retirement counted us, so we must close it; one created
    // after did not, and won't appear in our ports.
    std::vector<LabelDuty> duties;
    {
      std::lock_guard<std::mutex> lock(ctrl_mu_);
      SyncProducerPorts(p);
      CollectLabelDuties(p, &duties);
      for (auto& port : p->ports) {
        --elastic_ops_[port.to_op]->open_producers;
      }
      p->seen_version = ctrl_version_.load(std::memory_order_relaxed);
    }
    for (auto& d : duties) PushLabel(d.port, d.from, d.label_id);
  }
  for (auto& port : p->ports) {
    for (MpscChannel* ch : port.channels) ch->CloseProducer();
  }
}

bool NativeRuntime::SourceWaitUntil(Source* s, SimTime target) {
  if (backend_->now() >= target) {
    return !stop_sources_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(s->pace_mu);
    s->pace_fired = false;
  }
  const EventId timer = backend_->At(target, [s] {
    {
      std::lock_guard<std::mutex> lock(s->pace_mu);
      s->pace_fired = true;
    }
    s->pace_cv.notify_all();
  });
  bool fired = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(s->pace_mu);
      s->pace_cv.wait_for(lock, std::chrono::milliseconds(1),
                          [s] { return s->pace_fired; });
      fired = s->pace_fired;
    }
    if (fired || stop_sources_.load(std::memory_order_relaxed) ||
        backend_->now() >= target) {
      break;
    }
    // Poll tick: stay responsive to label duties while paced (a trace
    // source between arrivals must not stall a migration's barrier).
    if (elastic_) PollProducer(s);
  }
  if (!fired) backend_->Cancel(timer);  // Best-effort; stale fires are no-ops.
  return !stop_sources_.load(std::memory_order_relaxed);
}

void NativeRuntime::SourceLoop(Source* s) {
  const OperatorSpec& spec = topology_->spec(s->op);
  const SourceSpec& src = spec.source;
  const int64_t budget = src.max_tuples;  // 0 = until StopSources.
  const bool trace = src.mode == SourceSpec::Mode::kTrace;
  const double executors = static_cast<double>(spec.num_executors);
  while (budget == 0 || s->generated < budget) {
    if (stop_sources_.load(std::memory_order_relaxed)) break;
    if (elastic_) PollProducer(s);
    if (trace) {
      // Mirror the simulator spout's draw order exactly — gap draw, then
      // factory draw, from the same rng — so the tuple stream is
      // bit-identical to a sim run at the same seed.
      const double rate = src.rate_fn(backend_->now()) / executors;
      const SimDuration gap =
          rate <= 1e-9 ? Millis(100)
                       : static_cast<SimDuration>(
                             s->rng.NextExponential(1e9 / rate));
      if (!SourceWaitUntil(s, backend_->now() + gap)) break;
    }
    Tuple t = src.factory(&s->rng, backend_->now());
    t.created_at = backend_->now();
    ++s->generated;
    s->pub_generated.store(s->generated, std::memory_order_relaxed);
    bool ok = true;
    for (auto& port : s->ports) ok = EmitTo(s, &port, t) && ok;
    if (!ok) break;  // Channels aborted.
    // Trace arrivals are paced (ms-scale gaps): deliver each one promptly
    // instead of letting it age in a partial batch.
    if (trace) FlushPorts(&s->ports);
  }
  CloseProducerPorts(s);
  live_threads_.fetch_sub(1, std::memory_order_release);
}

void NativeRuntime::CheckArrivalOrder(Worker* w, ShardId shard,
                                      const Tuple& t) {
  // Per-(origin, key) sequences must be consecutive: a gap is a lost or
  // reordered tuple, a repeat is a duplicate. The per-shard map travels
  // with the shard on migration, so sequences stay continuous across a
  // move (the property the labeling protocol exists to provide).
  uint64_t& last = w->order_state[shard][{t.origin, t.key}];
  if (t.arrival_seq != last + 1) ++w->order_violations;
  last = t.arrival_seq;
}

void NativeRuntime::ProcessTuple(Worker* w, const OperatorSpec& spec,
                                 const Tuple& t) {
  const ShardId shard = partitions_[w->op]->ShardOf(t.key);
  ElasticOp* eo = nullptr;
  if (elastic_) {
    eo = elastic_ops_[w->op].get();
    // Hold only as the *destination* of an in-flight move (held raised and
    // the routing already points here). The old owner keeps processing the
    // shard's pre-flip backlog while held is raised — that drain is what
    // the labeling barrier waits for.
    if (eo->held[shard].load(std::memory_order_acquire) != 0 &&
        eo->owner[shard].load(std::memory_order_relaxed) ==
            static_cast<int32_t>(w->index)) {
      w->hold[shard].push_back(t);
      return;
    }
    eo->processed[shard].fetch_add(1, std::memory_order_relaxed);
  }
  // Wall-busy window around the operator logic only: channel waits and
  // control-plane work are idle time, not load (the balancer's signal
  // must reflect what the shard costs, not what the thread endured).
  const uint64_t busy_start = CycleClock::Now();
  if (validate_) CheckArrivalOrder(w, shard, t);
  NativeEmitContext emit(this, w, t.created_at);
  ApplyOperatorLogic(*topology_, spec, w->op, t, &w->store, shard, &emit,
                     &w->rng);
  const int64_t ticks =
      static_cast<int64_t>(CycleClock::Now() - busy_start);
  w->busy_ticks += ticks;
  if (eo != nullptr) {
    eo->busy_ticks[shard].fetch_add(ticks, std::memory_order_relaxed);
  }
  ++w->processed;
  if (w->is_sink) {
    ++w->sink_tuples;
    w->latency.Record(backend_->now() - t.created_at);
  }
}

void NativeRuntime::PublishWorkerCounters(Worker* w) {
  w->pub_processed.store(w->processed, std::memory_order_relaxed);
  w->pub_sink.store(w->sink_tuples, std::memory_order_relaxed);
  w->pub_busy_ns.store(CycleClock::ToNs(w->busy_ticks),
                       std::memory_order_relaxed);
}

void NativeRuntime::WorkerLoop(Worker* w) {
  const OperatorSpec& spec = topology_->spec(w->op);
  for (;;) {
    if (elastic_) {
      PollWorkerControl(w);
      if (w->retiring.load(std::memory_order_relaxed) && RetireReady(w)) {
        // Evacuated and unreferenced: the channel provably holds nothing
        // the protocol still needs (every marker targets a migration that
        // would reference us; every tuple targets a shard we would own).
        break;
      }
    }
    TupleBatchStorage* batch = w->input->TryPop();
    if (batch == nullptr) {
      // Input momentarily idle: don't sit on partial output batches while
      // blocking — downstream would starve behind our buffering.
      FlushPorts(&w->ports);
      PublishWorkerCounters(w);
      batch = w->input->Pop();
      if (batch == nullptr) {
        if (w->input->exhausted()) break;  // Producers closed, ring drained.
        continue;  // Kicked awake: revisit the control board.
      }
    }
    if (batch->label_id >= 0) {
      const int64_t label_id = batch->label_id;
      pool_.Release(batch);
      OnLabel(w, label_id);
      continue;
    }
    for (const Tuple& t : batch->tuples) ProcessTuple(w, spec, t);
    pool_.Release(batch);
    PublishWorkerCounters(w);
  }
  if (elastic_) WorkerEpilogue(w);
  CloseProducerPorts(w);
  PublishWorkerCounters(w);
  if (elastic_) {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    w->exited = true;
  }
  ctrl_cv_.notify_all();
  live_threads_.fetch_sub(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Elastic control plane.
// ---------------------------------------------------------------------------

void NativeRuntime::CollectLabelDuties(Producer* p,
                                       std::vector<LabelDuty>* duties) {
  for (; p->cmd_cursor < label_cmds_.size(); ++p->cmd_cursor) {
    const LabelCmd& cmd = label_cmds_[p->cmd_cursor];
    for (auto& port : p->ports) {
      if (port.to_op == cmd.op) {
        duties->push_back({&port, cmd.from_worker, cmd.label_id});
        ++labels_routed_;
        break;
      }
    }
  }
}

void NativeRuntime::PushLabel(ProducerPort* port, int from,
                              int64_t label_id) {
  // Flush the partial batch toward the old owner first: the marker must
  // ride *behind* every tuple this producer already routed there.
  TupleBatchStorage*& pending = port->pending[from];
  if (pending != nullptr && !pending->tuples.empty()) {
    TupleBatchStorage* batch = pending;
    pending = nullptr;
    if (!port->channels[from]->Push(batch)) pool_.Release(batch);
  }
  TupleBatchStorage* marker = pool_.Acquire();
  marker->label_id = label_id;
  if (!port->channels[from]->Push(marker)) pool_.Release(marker);
}

void NativeRuntime::PollProducer(Producer* p) {
  if (ctrl_version_.load(std::memory_order_acquire) == p->seen_version) {
    return;  // Fast path: one acquire load per batch while nothing moves.
  }
  std::vector<LabelDuty> duties;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    SyncProducerPorts(p);
    CollectLabelDuties(p, &duties);
    p->seen_version = ctrl_version_.load(std::memory_order_relaxed);
  }
  // Pushes happen outside ctrl_mu_: a Push may block on a full channel
  // whose consumer is itself waiting to acquire ctrl_mu_.
  for (auto& d : duties) PushLabel(d.port, d.from, d.label_id);
}

void NativeRuntime::PollWorkerControl(Worker* w) {
  if (ctrl_version_.load(std::memory_order_acquire) == w->seen_version) {
    return;
  }
  std::vector<LabelDuty> duties;
  std::vector<int64_t> precopies;
  std::vector<int64_t> drains;
  std::vector<int64_t> installs;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    SyncProducerPorts(w);
    CollectLabelDuties(w, &duties);
    for (auto& [id, m] : migrations_) {
      if (m->op != w->op) continue;
      if (m->from == w->index && m->phase == MigPhase::kRequested) {
        m->phase = MigPhase::kPrecopying;  // Claimed; nobody else starts it.
        precopies.push_back(id);
      } else if (m->from == w->index && m->phase == MigPhase::kDrained &&
                 m->barrier_armed) {
        // Unarmed drains wait for the epilogue: the channel backlog is the
        // drain, and this worker is still consuming it.
        drains.push_back(id);
      } else if (m->to == w->index && m->phase == MigPhase::kReady) {
        installs.push_back(id);
      }
    }
    w->seen_version = ctrl_version_.load(std::memory_order_relaxed);
  }
  for (auto& d : duties) PushLabel(d.port, d.from, d.label_id);
  for (int64_t id : precopies) StartPrecopy(w, id);
  for (int64_t id : drains) DrainComplete(w, id);
  for (int64_t id : installs) InstallMigratedShard(w, id);
}

Status NativeRuntime::ReassignShard(OperatorId op, ShardId shard,
                                    int to_worker) {
  if (!elastic_) {
    return Status::FailedPrecondition(
        "ReassignShard requires the elastic paradigm");
  }
  if (!started_) {
    return Status::FailedPrecondition("ReassignShard before Start");
  }
  if (op < 0 || op >= static_cast<OperatorId>(partitions_.size()) ||
      partitions_[op] == nullptr) {
    return Status::InvalidArgument("not a worker operator");
  }
  if (shard < 0 || shard >= partitions_[op]->num_shards()) {
    return Status::InvalidArgument("shard out of range");
  }
  if (to_worker < 0 || to_worker >= num_workers(op)) {
    return Status::InvalidArgument("destination worker out of range");
  }
  Worker* src = nullptr;
  int64_t label_id = -1;
  bool drive_inline = false;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    if (teardown_) return Status::FailedPrecondition("tearing down");
    if (in_transition_.count({op, shard}) > 0) {
      return Status::FailedPrecondition("shard already in transition");
    }
    ElasticOp* eo = elastic_ops_[op].get();
    const int from = eo->owner[shard].load(std::memory_order_relaxed);
    if (from == to_worker) return Status::OK();  // Already there.
    src = worker_at(op, from);
    Worker* dst = worker_at(op, to_worker);
    if (dst->retiring.load(std::memory_order_relaxed)) {
      // Sticky: a retiring/retired worker is being (or has been) evacuated
      // and must never accept a shard again — the balancer and the
      // retirement pump both rely on this rejection.
      return Status::FailedPrecondition("destination worker is retiring");
    }
    if ((src->departing && !src->exited) ||
        (dst->departing && !dst->exited)) {
      // Narrow shutdown window: the endpoint committed to exit but its
      // ports aren't closed yet, so neither the live protocol (it will
      // never poll again) nor the driver-driven path (its ports are still
      // hot) can run. The caller just lost the race with drain-down.
      return Status::FailedPrecondition("endpoint worker is draining");
    }
    auto m = std::make_unique<Migration>();
    label_id = next_label_id_++;
    m->label_id = label_id;
    m->op = op;
    m->shard = shard;
    m->from = from;
    m->to = to_worker;
    m->requested_at = backend_->now();
    drive_inline = src->exited;
    if (drive_inline) m->phase = MigPhase::kPrecopying;
    in_transition_.insert({op, shard});
    migrations_.emplace(label_id, std::move(m));
    ctrl_version_.fetch_add(1, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
  if (drive_inline) {
    // The old owner's thread is gone (post-drain reshuffle): its store is
    // quiescent and its producers all closed, so the caller's thread can
    // run the source-side duties directly — the protocol degenerates to a
    // synchronous handoff (or a paced one driven by the timer wheel).
    StartPrecopy(src, label_id);
  } else {
    src->input->Kick();  // An idle owner must wake up to claim the move.
  }
  return Status::OK();
}

Status NativeRuntime::GrowWorkers(OperatorId op, int n) {
  if (!elastic_) {
    return Status::FailedPrecondition(
        "GrowWorkers requires the elastic paradigm (static routing cannot "
        "address workers that did not exist at Setup)");
  }
  if (!started_) return Status::FailedPrecondition("GrowWorkers before Start");
  if (op < 0 || op >= static_cast<OperatorId>(partitions_.size()) ||
      partitions_[op] == nullptr) {
    return Status::InvalidArgument("not a worker operator");
  }
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  const size_t channel_cap = static_cast<size_t>(
      std::max(1, config_->native.data_path.channel_capacity_batches));
  std::vector<Worker*> grown;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    if (teardown_) return Status::FailedPrecondition("tearing down");
    ElasticOp* eo = elastic_ops_[op].get();
    if (eo->open_producers <= 0) {
      return Status::FailedPrecondition(
          "every producer of the operator already closed (nothing left to "
          "route to a new worker)");
    }
    const int count = worker_count_[op].load(std::memory_order_relaxed);
    if (count + n > static_cast<int>(workers_[op].size())) {
      return Status::FailedPrecondition(
          "worker-slot reservation exhausted (raise "
          "native.max_workers_per_operator)");
    }
    for (int k = 0; k < n; ++k) {
      auto w = std::make_unique<Worker>();
      w->op = op;
      w->index = count + k;
      w->is_sink = topology_->is_sink(op);
      // The channel counts exactly the producers currently open toward
      // this operator: each of them syncs its ports under ctrl_mu_ before
      // its retirement sweep, so each will CloseProducer on it exactly
      // once; producers that already closed never learn of the channel.
      w->input = std::make_unique<MpscChannel>(channel_cap,
                                               eo->open_producers);
      w->origin = next_origin_++;
      // Deterministic in (seed, op, index) regardless of when the growth
      // happens — unlike Setup's sequential root forks, which encode
      // creation order. The 0x97 prefix keeps the stream ids disjoint
      // from Setup's fork salts.
      w->rng = Rng(config_->seed,
                   0x9700000000000000ull +
                       static_cast<uint64_t>(MakeExecutorId(op, w->index)));
      w->cmd_cursor = label_cmds_.size();  // Owes no past label duties.
      w->seen_version = ctrl_version_.load(std::memory_order_relaxed);
      BuildPorts(op, &w->ports);
      // Register as a producer on every downstream channel. Safe while
      // some worker of this op is still active (guaranteed: workers only
      // close after their producers did, and open_producers > 0 above).
      for (auto& port : w->ports) {
        for (MpscChannel* ch : port.channels) ch->AddProducer();
        ++elastic_ops_[port.to_op]->open_producers;
      }
      w->pinned_cpu = NextPinCpu();
      Worker* raw = w.get();
      workers_[op][count + k] = std::move(w);
      live_threads_.fetch_add(1, std::memory_order_relaxed);
      // The release store makes the filled slot (and its channel) visible
      // to every acquire-side reader: EmitTo's routing, the kick-all loop,
      // BuildPorts/SyncProducerPorts of other producers.
      worker_count_[op].store(count + k + 1, std::memory_order_release);
      grown.push_back(raw);
    }
    ctrl_version_.fetch_add(1, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
  for (Worker* w : grown) {
    w->thread = std::thread([this, w] { WorkerLoop(w); });
    if (w->pinned_cpu >= 0 && !PinThreadToCpu(&w->thread, w->pinned_cpu)) {
      w->pinned_cpu = -1;
    }
  }
  return Status::OK();
}

Status NativeRuntime::ShrinkWorkers(OperatorId op, int n) {
  if (!elastic_) {
    return Status::FailedPrecondition(
        "ShrinkWorkers requires the elastic paradigm (static workers own "
        "their partition for the run)");
  }
  if (!started_) {
    return Status::FailedPrecondition("ShrinkWorkers before Start");
  }
  if (op < 0 || op >= static_cast<OperatorId>(partitions_.size()) ||
      partitions_[op] == nullptr) {
    return Status::InvalidArgument("not a worker operator");
  }
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  bool arm_pump = false;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    if (teardown_) return Status::FailedPrecondition("tearing down");
    const int count = worker_count_[op].load(std::memory_order_relaxed);
    std::vector<Worker*> active;
    for (int i = 0; i < count; ++i) {
      Worker* w = worker_at(op, i);
      if (!w->retiring.load(std::memory_order_relaxed) && !w->exited) {
        active.push_back(w);
      }
    }
    if (static_cast<int>(active.size()) <= n) {
      return Status::FailedPrecondition(
          "shrink would leave no active worker (the pool never drops to "
          "zero)");
    }
    // Highest-index actives first: mirrors how growth appends, so repeated
    // grow/shrink cycles reuse the low slots.
    for (int k = 0; k < n; ++k) {
      active[active.size() - 1 - k]->retiring.store(
          true, std::memory_order_relaxed);
    }
    if (!retire_pump_armed_) {
      retire_pump_armed_ = true;
      arm_pump = true;
    }
    ctrl_version_.fetch_add(1, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
  // Kick every worker of the operator: victims wake to notice retirement,
  // the rest wake to claim evacuation duties.
  const int count = worker_count_[op].load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) worker_at(op, i)->input->Kick();
  (void)PumpRetirement();  // First evacuation pass, synchronously.
  if (arm_pump) {
    // 1 ms replan cadence until every victim exited: stragglers appear
    // when an in-flight move lands a shard on a victim post-mark, or an
    // evacuation move lost a race with another migration of the shard.
    backend_->Periodic(backend_->now() + Millis(1), Millis(1),
                       [this](SimTime) {
                         if (PumpRetirement()) return true;
                         std::lock_guard<std::mutex> lock(ctrl_mu_);
                         retire_pump_armed_ = false;
                         return false;
                       });
  }
  return Status::OK();
}

bool NativeRuntime::PumpRetirement() {
  struct Planned {
    OperatorId op;
    ShardId shard;
    int to;
  };
  std::vector<Planned> planned;
  std::vector<MpscChannel*> kicks;
  bool any_retiring = false;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    if (teardown_) return false;
    for (OperatorId op = 0;
         op < static_cast<OperatorId>(elastic_ops_.size()); ++op) {
      ElasticOp* eo = elastic_ops_[op].get();
      if (eo == nullptr) continue;
      const int count = worker_count_[op].load(std::memory_order_relaxed);
      std::vector<bool> allowed(count, false);
      std::vector<double> slot_load(count, 0.0);
      std::vector<double> capacity(count, 1.0);
      std::vector<Worker*> victims;
      for (int i = 0; i < count; ++i) {
        Worker* w = worker_at(op, i);
        if (w->retiring.load(std::memory_order_relaxed)) {
          if (!w->exited) victims.push_back(w);
          continue;
        }
        if (w->exited) continue;
        allowed[i] = true;
        // Cumulative busy as the tie-breaking running load: relative
        // weights are all the FFD assignment needs.
        slot_load[i] =
            static_cast<double>(w->pub_busy_ns.load(std::memory_order_relaxed));
        if (eo->speed_ewma[i] > 0.0) capacity[i] = eo->speed_ewma[i];
      }
      if (victims.empty()) continue;
      any_retiring = true;
      const int num_shards = static_cast<int>(eo->owner.size());
      std::vector<double> shard_load(num_shards, 0.0);
      for (int s = 0; s < num_shards; ++s) {
        shard_load[s] = 1.0 + static_cast<double>(CycleClock::ToNs(
                                  eo->busy_ticks[s].load(
                                      std::memory_order_relaxed)));
      }
      for (Worker* victim : victims) {
        kicks.push_back(victim->input.get());
        std::vector<int> shards;
        for (int s = 0; s < num_shards; ++s) {
          if (eo->owner[s].load(std::memory_order_relaxed) ==
                  victim->index &&
              in_transition_.count({op, s}) == 0) {
            shards.push_back(s);
          }
        }
        if (shards.empty()) continue;
        // NUMA preference: evacuate onto the victim's own package when any
        // active worker lives there (keeps the shard's consumers near its
        // producers' memory); fall back to the full active set.
        std::vector<bool> dest = allowed;
        const int victim_pkg = PackageOf(victim->pinned_cpu);
        if (victim_pkg >= 0) {
          std::vector<bool> same(count, false);
          bool any_same = false;
          for (int i = 0; i < count; ++i) {
            if (allowed[i] &&
                PackageOf(worker_at(op, i)->pinned_cpu) == victim_pkg) {
              same[i] = true;
              any_same = true;
            }
          }
          if (any_same) dest = std::move(same);
        }
        auto moves = balance::PlanEvacuation(shards, shard_load, &slot_load,
                                             victim->index, dest, &capacity);
        if (!moves.ok()) continue;  // No destination this round; retry.
        for (const auto& mv : moves.value()) {
          planned.push_back({op, mv.shard, mv.to});
        }
      }
    }
  }
  for (const auto& mv : planned) {
    // Losing a race (shard became in-transition meanwhile) just skips a
    // round; the pump replans from live ownership next tick.
    (void)ReassignShard(mv.op, mv.shard, mv.to);
  }
  // Victims may be idle-blocked: every pump wakes them to re-run the
  // retire-ready test.
  for (MpscChannel* ch : kicks) ch->Kick();
  return any_retiring;
}

bool NativeRuntime::RetireReady(Worker* w) {
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  if (teardown_) return true;
  if (!w->hold.empty()) return false;
  ElasticOp* eo = elastic_ops_[w->op].get();
  const int num_shards = static_cast<int>(eo->owner.size());
  for (int s = 0; s < num_shards; ++s) {
    if (eo->owner[s].load(std::memory_order_relaxed) == w->index) {
      return false;
    }
  }
  for (auto& [id, m] : migrations_) {
    if (m->op == w->op && (m->from == w->index || m->to == w->index)) {
      return false;
    }
  }
  return true;
}

void NativeRuntime::StartPrecopy(Worker* w, int64_t label_id) {
  ShardId shard = -1;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end()) return;
    shard = it->second->shard;
  }
  // Same-process move: both "nodes" are 0, so the transfer cost model uses
  // the local copy rate (0 = free handoff, pre-copy completes
  // synchronously; >0 = chunks paced on the backend's timer wheel while
  // this worker keeps processing the shard).
  MigrationEngine::Handle handle = migration_->Begin(
      &w->store, shard, /*from=*/0, /*to=*/0,
      config_->state.migration.strategy,
      config_->native.migration_copy_bytes_per_sec,
      [this, label_id] { BeginLabeling(label_id); });
  bool finalize_now = false;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end()) return;
    Migration* m = it->second.get();
    m->handle = std::move(handle);
    // BeginLabeling may have run synchronously inside Begin (free handoff)
    // and found the drain already satisfied; it could not finalize without
    // the handle, so the baton comes back here. An unarmed drain on a live
    // worker is NOT satisfied yet — its channel backlog stands in for the
    // barrier and the epilogue finalizes once that backlog is consumed.
    finalize_now =
        m->phase == MigPhase::kDrained && (m->barrier_armed || w->exited);
  }
  if (finalize_now) DrainComplete(w, label_id);
}

void NativeRuntime::BeginLabeling(int64_t label_id) {
  Worker* exited_src = nullptr;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end()) return;
    Migration* m = it->second.get();
    ElasticOp* eo = elastic_ops_[m->op].get();
    // The flip: raise held first (relaxed), then publish the new owner
    // with release. Producers acquire-load the owner; the channel mutex
    // then carries the edge to the destination, whose acquire-load of
    // held therefore cannot miss it for any tuple routed post-flip.
    m->flip_at = backend_->now();
    eo->held[m->shard].store(1, std::memory_order_relaxed);
    eo->owner[m->shard].store(m->to, std::memory_order_release);
    m->barrier_armed = barrier_.Arm(label_id, eo->open_producers);
    if (m->barrier_armed) {
      m->phase = MigPhase::kLabeling;
      label_cmds_.push_back({m->op, m->from, label_id});
    } else {
      // No open producers: the backlog is whatever already sits in the old
      // owner's channel. If that thread exited the drain is vacuous and
      // runs here; otherwise finalization waits for the worker's epilogue
      // (channel exhausted), so the backlog is consumed before the shard
      // is extracted.
      m->phase = MigPhase::kDrained;
      Worker* src = worker_at(m->op, m->from);
      if (src->exited) exited_src = src;
    }
    ctrl_version_.fetch_add(1, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
  // Every worker is a potential label debtor (it may feed the migrating
  // operator) and the old owner may be idle-blocked: kick them all awake.
  // ForEachWorker acquire-loads the slot counts, so workers grown after
  // this command was published are covered (they owe no duty for it —
  // their cmd_cursor starts past it — but the wake-up is harmless).
  ForEachWorker([](Worker* w) { w->input->Kick(); });
  if (exited_src != nullptr) DrainComplete(exited_src, label_id);
}

void NativeRuntime::OnLabel(Worker* w, int64_t label_id) {
  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    complete = barrier_.OnLabel(label_id);
    if (complete) {
      auto it = migrations_.find(label_id);
      if (it == migrations_.end()) return;
      it->second->phase = MigPhase::kDrained;
    }
  }
  if (complete) DrainComplete(w, label_id);
}

void NativeRuntime::DrainComplete(Worker* w, int64_t label_id) {
  MigrationEngine::Handle handle;
  ProcessStateStore* staging = nullptr;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end()) return;
    Migration* m = it->second.get();
    if (m->phase != MigPhase::kDrained) return;  // Someone else finalized.
    if (m->handle == nullptr) return;  // Begin still in flight; StartPrecopy
                                       // re-drives once the handle lands.
    m->phase = MigPhase::kFinalizing;
    if (validate_) {
      auto os = w->order_state.find(m->shard);
      if (os != w->order_state.end()) {
        m->order_state = std::move(os->second);
        w->order_state.erase(os);
      }
    }
    handle = m->handle;
    staging = &m->staging;
  }
  // Hand pre-flip emissions downstream before the new owner starts
  // producing for the same keys — bounds how long they linger in partial
  // batches (per-channel FIFO still carries the ordering guarantee).
  FlushPorts(&w->ports);
  migration_->Finalize(handle, staging,
                       [this, label_id](const MigrationStats&) {
                         MigrationReady(label_id);
                       });
}

void NativeRuntime::MigrationReady(int64_t label_id) {
  Worker* exited_dst = nullptr;
  MpscChannel* dst_channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end()) return;
    Migration* m = it->second.get();
    m->phase = MigPhase::kReady;
    Worker* dst = worker_at(m->op, m->to);
    if (dst->exited) {
      exited_dst = dst;  // Quiescent: install from this thread.
    } else {
      dst_channel = dst->input.get();
    }
    ctrl_version_.fetch_add(1, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
  if (dst_channel != nullptr) dst_channel->Kick();
  if (exited_dst != nullptr) InstallMigratedShard(exited_dst, label_id);
}

void NativeRuntime::InstallMigratedShard(Worker* w, int64_t label_id) {
  std::unique_ptr<Migration> m;
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    auto it = migrations_.find(label_id);
    if (it == migrations_.end() || it->second->phase != MigPhase::kReady) {
      return;
    }
    m = std::move(it->second);
    migrations_.erase(it);
  }
  Result<ShardState> state = m->staging.ExtractShard(m->shard);
  ELASTICUTOR_CHECK_MSG(state.ok(), "migrated shard missing from staging");
  ELASTICUTOR_CHECK(
      w->store.InstallShard(m->shard, std::move(state.value())).ok());
  if (validate_ && !m->order_state.empty()) {
    w->order_state[m->shard] = std::move(m->order_state);
  }
  std::vector<Tuple> replay;
  auto hold = w->hold.find(m->shard);
  if (hold != w->hold.end()) {
    replay = std::move(hold->second);
    w->hold.erase(hold);
  }
  // Lower held before replaying: ProcessTuple must not re-hold, and new
  // arrivals may interleave behind the replay in channel order.
  elastic_ops_[m->op]->held[m->shard].store(0, std::memory_order_release);
  const OperatorSpec& spec = topology_->spec(w->op);
  for (const Tuple& t : replay) ProcessTuple(w, spec, t);
  PublishWorkerCounters(w);
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    in_transition_.erase({m->op, m->shard});
    ++reassignments_done_;
    pause_ns_.push_back(backend_->now() - m->flip_at);
  }
  ctrl_cv_.notify_all();  // Epilogue waiters and the driver re-check.
  // A retiring old owner may be idle-blocked in Pop with this migration
  // the last thing referencing it: wake it to re-run its exit test.
  worker_at(m->op, m->from)->input->Kick();
}

void NativeRuntime::WorkerEpilogue(Worker* w) {
  // The channel is exhausted but this worker may still owe protocol steps:
  // label pushes toward other operators, its own finalize as an old owner,
  // or an install as a destination. Stay on duty until no in-flight move
  // references this worker, then commit to departure atomically with that
  // check (ReassignShard refuses departing endpoints).
  for (;;) {
    PollWorkerControl(w);
    std::vector<int64_t> drains;
    {
      std::unique_lock<std::mutex> lock(ctrl_mu_);
      bool pending = false;
      for (auto& [id, m] : migrations_) {
        if (m->op != w->op) continue;
        if (m->from == w->index && m->phase == MigPhase::kDrained) {
          // Deferred (unarmed) drain: the input channel is exhausted now,
          // so the backlog that stood in for the labeling barrier has been
          // consumed and the shard can finally leave this store.
          drains.push_back(id);
        }
        if (m->from == w->index || m->to == w->index) pending = true;
      }
      if (teardown_ || !pending) {
        w->departing = true;
        return;
      }
      if (drains.empty()) {
        ctrl_cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
    }
    for (int64_t id : drains) DrainComplete(w, id);
  }
}

void NativeRuntime::UpdateWorkerSpeeds(OperatorId op, ElasticOp* eo) {
  const int count = worker_count_[op].load(std::memory_order_relaxed);
  std::vector<double> observed(count, -1.0);
  double max_observed = 0.0;
  for (int i = 0; i < count; ++i) {
    Worker* w = worker_at(op, i);
    const int64_t busy = w->pub_busy_ns.load(std::memory_order_relaxed);
    const int64_t proc = w->pub_processed.load(std::memory_order_relaxed);
    const int64_t dbusy = busy - eo->prev_worker_busy[i];
    const int64_t dproc = proc - eo->prev_worker_proc[i];
    eo->prev_worker_busy[i] = busy;
    eo->prev_worker_proc[i] = proc;
    if (dbusy >= kSpeedMinBusyNs && dproc > 0) {
      observed[i] =
          static_cast<double>(dproc) / static_cast<double>(dbusy);
      max_observed = std::max(max_observed, observed[i]);
    }
  }
  if (max_observed <= 0.0) return;  // Nothing measured this window.
  for (int i = 0; i < count; ++i) {
    double& ewma = eo->speed_ewma[i];
    if (observed[i] > 0.0) {
      const double rel = observed[i] / max_observed;
      ewma = ewma > 0.0 ? kSpeedAlpha * rel + (1.0 - kSpeedAlpha) * ewma
                        : rel;
      ewma = std::max(1e-3, std::min(1.0, ewma));
    } else if (ewma > 0.0) {
      // Unobserved this window: drift toward nominal rather than trusting
      // a stale straggler verdict forever (idleness is not slowness).
      ewma += kSpeedRecovery * (1.0 - ewma);
    }
  }
}

void NativeRuntime::BalanceTick() {
  const bool wall_busy = config_->native.balance.use_wall_busy;
  for (OperatorId op = 0;
       op < static_cast<OperatorId>(elastic_ops_.size()); ++op) {
    ElasticOp* eo = elastic_ops_[op].get();
    if (eo == nullptr) continue;
    const int slots = worker_count_[op].load(std::memory_order_acquire);
    if (slots <= 1) continue;
    std::vector<double> capacity(slots, 1.0);
    std::vector<bool> frozen(slots, false);
    {
      // Measured capacities + lifecycle flags come from the control board;
      // the shard loads below are plain atomic reads.
      std::lock_guard<std::mutex> lock(ctrl_mu_);
      UpdateWorkerSpeeds(op, eo);
      for (int i = 0; i < slots; ++i) {
        Worker* w = worker_at(op, i);
        frozen[i] =
            w->retiring.load(std::memory_order_relaxed) || w->exited;
        if (eo->speed_ewma[i] > 0.0) capacity[i] = eo->speed_ewma[i];
      }
    }
    const int num_shards = static_cast<int>(eo->owner.size());
    std::vector<double> load(num_shards);
    std::vector<int> assignment(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      assignment[s] = eo->owner[s].load(std::memory_order_relaxed);
      if (wall_busy) {
        // Shard load in speed-independent work units: measured busy time
        // on the owner, scaled by the owner's measured speed (a slow
        // worker needs more wall time for the same work — without the
        // scaling, shards would look heavier merely for sitting on a
        // straggler, double-counting what the capacity vector already
        // models).
        const int64_t cur = CycleClock::ToNs(
            eo->busy_ticks[s].load(std::memory_order_relaxed));
        const double delta =
            static_cast<double>(cur - eo->balance_prev_busy[s]);
        eo->balance_prev_busy[s] = cur;
        const int owner = assignment[s];
        load[s] = delta * (owner >= 0 && owner < slots ? capacity[owner]
                                                       : 1.0);
      } else {
        // Legacy signal: raw processed-count deltas (flat per-tuple cost
        // assumption; native.balance.use_wall_busy=false).
        const int64_t cur =
            eo->processed[s].load(std::memory_order_relaxed);
        load[s] = static_cast<double>(cur - eo->balance_prev[s]);
        eo->balance_prev[s] = cur;
      }
    }
    const auto moves = balance::PlanMoves(
        load, &assignment, slots, config_->native.balance.theta,
        config_->native.balance.max_moves, &frozen, &capacity);
    for (const auto& mv : moves) {
      // Busy shards (already in transition / draining endpoints) just skip
      // a round; the next tick replans from fresh load deltas.
      (void)ReassignShard(op, mv.shard, mv.to);
    }
  }
}

// ---------------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------------

TelemetrySnapshot NativeRuntime::SampleTelemetry() const {
  TelemetrySnapshot snap;
  snap.sampled_at = backend_->now();
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  for (OperatorId op = 0; op < static_cast<OperatorId>(workers_.size());
       ++op) {
    const int count = worker_count_[op].load(std::memory_order_acquire);
    ElasticOp* eo = elastic_ == false ? nullptr : elastic_ops_[op].get();
    for (int i = 0; i < count; ++i) {
      Worker* w = workers_[op][i].get();
      WorkerTelemetry wt;
      wt.op = op;
      wt.index = i;
      wt.busy_ns = w->pub_busy_ns.load(std::memory_order_relaxed);
      wt.processed = w->pub_processed.load(std::memory_order_relaxed);
      wt.sink_tuples = w->pub_sink.load(std::memory_order_relaxed);
      wt.speed = eo != nullptr ? eo->speed_ewma[i] : 0.0;
      wt.pinned_cpu = w->pinned_cpu;
      wt.retiring = w->retiring.load(std::memory_order_relaxed);
      wt.exited = w->exited;
      snap.total_processed += wt.processed;
      snap.sink_count += wt.sink_tuples;
      snap.total_busy_ns += wt.busy_ns;
      snap.workers.push_back(wt);
    }
    if (eo != nullptr) {
      const int num_shards = static_cast<int>(eo->owner.size());
      for (int s = 0; s < num_shards; ++s) {
        ShardTelemetry st;
        st.op = op;
        st.shard = s;
        st.owner = eo->owner[s].load(std::memory_order_relaxed);
        st.busy_ns = CycleClock::ToNs(
            eo->busy_ticks[s].load(std::memory_order_relaxed));
        st.processed = eo->processed[s].load(std::memory_order_relaxed);
        snap.shards.push_back(st);
      }
    }
  }
  for (const auto& s : sources_) {
    SourceTelemetry st;
    st.op = s->op;
    st.index = s->index;
    st.emitted = s->pub_generated.load(std::memory_order_relaxed);
    st.pinned_cpu = s->pinned_cpu;
    snap.source_emitted += st.emitted;
    snap.sources.push_back(st);
  }
  snap.reassignments_done = reassignments_done_;
  snap.migrations_in_flight = static_cast<int64_t>(migrations_.size());
  return snap;
}

// ---------------------------------------------------------------------------
// Accessors (deprecated forwarders; see the header's liveness contract).
// ---------------------------------------------------------------------------

int NativeRuntime::shard_owner(OperatorId op, ShardId shard) const {
  return elastic_ops_.at(op)->owner.at(shard).load(std::memory_order_acquire);
}

int64_t NativeRuntime::reassignments_done() const {
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  return reassignments_done_;
}

int64_t NativeRuntime::migrations_in_flight() const {
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  return static_cast<int64_t>(migrations_.size());
}

bool NativeRuntime::MigrationsPending() const {
  if (!elastic_) return false;
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  // Emergency teardown abandons in-flight migrations; don't wait on them.
  return !teardown_ && !migrations_.empty();
}

std::vector<SimDuration> NativeRuntime::migration_pauses() const {
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  return pause_ns_;
}

int64_t NativeRuntime::labels_routed() const {
  std::lock_guard<std::mutex> lock(ctrl_mu_);
  return labels_routed_;
}

int64_t NativeRuntime::order_violations() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->order_violations; });
  return total;
}

int64_t NativeRuntime::total_processed() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->processed; });
  return total;
}

int64_t NativeRuntime::processed(OperatorId op) const {
  int64_t total = 0;
  const int count = worker_count_.at(op).load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) total += workers_[op][i]->processed;
  return total;
}

int64_t NativeRuntime::sink_count() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->sink_tuples; });
  return total;
}

int64_t NativeRuntime::source_emitted() const {
  int64_t total = 0;
  for (const auto& s : sources_) total += s->generated;
  return total;
}

int64_t NativeRuntime::push_blocks() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->input->push_blocks(); });
  return total;
}

int64_t NativeRuntime::pop_waits() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->input->pop_waits(); });
  return total;
}

int64_t NativeRuntime::batches_pushed() const {
  int64_t total = 0;
  ForEachWorker([&total](Worker* w) { total += w->input->batches_pushed(); });
  return total;
}

int NativeRuntime::num_workers(OperatorId op) const {
  (void)workers_.at(op);  // Bounds check.
  return worker_count_[op].load(std::memory_order_acquire);
}

int NativeRuntime::num_shards(OperatorId op) const {
  return partitions_.at(op)->num_shards();
}

ShardId NativeRuntime::shard_of_key(OperatorId op, uint64_t key) const {
  return partitions_.at(op)->ShardOf(key);
}

int NativeRuntime::worker_of_shard(OperatorId op, ShardId shard) const {
  if (elastic_) {
    return elastic_ops_.at(op)->owner.at(shard).load(
        std::memory_order_acquire);
  }
  return partitions_.at(op)->ExecutorOfShard(shard);
}

ProcessStateStore* NativeRuntime::worker_store(OperatorId op, int worker) {
  ELASTICUTOR_CHECK(worker >= 0 && worker < num_workers(op));
  return &workers_.at(op)[worker]->store;
}

}  // namespace exec
}  // namespace elasticutor
