#include "exec/native_runtime.h"

#include <algorithm>

#include "engine/single_task_executor.h"  // ApplyOperatorLogic.

namespace elasticutor {
namespace exec {

/// EmitContext of a native producer: routes each emission into the partial
/// batches of the thread's ports. Lives on the producer's stack for one
/// tuple; no allocation, no locking beyond the channel push. (Friend of
/// NativeRuntime — not in an anonymous namespace on purpose.)
class NativeEmitContext final : public EmitContext {
 public:
  NativeEmitContext(NativeRuntime* rt,
                    std::vector<NativeRuntime::ProducerPort>* ports,
                    SimTime created_at)
      : rt_(rt), ports_(ports), created_at_(created_at) {}

  void Emit(uint64_t key, int32_t size_bytes,
            const TuplePayload& payload) override {
    Tuple out;
    out.key = key;
    out.size_bytes = size_bytes;
    out.created_at = created_at_;
    out.payload = payload;
    for (auto& port : *ports_) rt_->EmitTo(&port, out);
  }

 private:
  NativeRuntime* rt_;
  std::vector<NativeRuntime::ProducerPort>* ports_;
  SimTime created_at_;
};

NativeRuntime::NativeRuntime(const Topology* topology,
                             const EngineConfig* config,
                             NativeBackend* backend, EngineMetrics* metrics)
    : topology_(topology),
      config_(config),
      backend_(backend),
      metrics_(metrics) {}

NativeRuntime::~NativeRuntime() {
  if (started_ && !drained_) {
    // Emergency teardown: unblock every thread and join.
    stop_sources_.store(true, std::memory_order_relaxed);
    for (auto& op_workers : workers_) {
      for (auto& w : op_workers) w->input->Abort();
    }
    WaitDrained();
  }
}

int NativeRuntime::WorkerCount(OperatorId op) const {
  if (config_->native.workers_per_operator > 0) {
    return config_->native.workers_per_operator;
  }
  const OperatorSpec& spec = topology_->spec(op);
  return std::max(1, spec.static_executors);
}

Status NativeRuntime::Setup() {
  if (setup_done_) return Status::FailedPrecondition("Setup called twice");
  if (config_->paradigm != Paradigm::kStatic) {
    return Status::InvalidArgument(
        "the native backend runs the static dataflow only; elasticity "
        "(elastic/RC paradigms) is simulator-only — see docs/architecture.md");
  }
  if (config_->validate_key_order) {
    return Status::InvalidArgument(
        "validate_key_order is simulator-only (the order validator is "
        "single-threaded)");
  }
  batch_tuples_ =
      static_cast<size_t>(std::max(1, config_->native.batch_tuples));
  const size_t channel_cap = static_cast<size_t>(
      std::max(1, config_->native.channel_capacity_batches));

  const int n = topology_->num_operators();
  partitions_.resize(n);
  workers_.resize(n);

  // Pass 1: partitions, workers and their input channels (no ports yet —
  // ports need every destination channel to exist).
  for (OperatorId op : topology_->topo_order()) {
    const OperatorSpec& spec = topology_->spec(op);
    if (spec.is_source) {
      if (spec.source.mode != SourceSpec::Mode::kSaturation) {
        return Status::InvalidArgument(
            "native sources support saturation mode only (trace-mode "
            "Poisson pacing is a simulator feature)");
      }
      if (topology_->downstream(op).size() != 1) {
        return Status::InvalidArgument("source '" + spec.name +
                                       "' must have exactly one downstream "
                                       "operator");
      }
      continue;
    }
    const int count = WorkerCount(op);
    auto partition = std::make_unique<OperatorPartition>(
        spec.total_shards(), count, /*salt=*/op);
    // Producers on this operator's channels: every upstream slot.
    int producers = 0;
    for (OperatorId up : topology_->upstream(op)) {
      const OperatorSpec& up_spec = topology_->spec(up);
      producers +=
          up_spec.is_source ? up_spec.num_executors : WorkerCount(up);
    }
    for (int i = 0; i < count; ++i) {
      auto w = std::make_unique<Worker>();
      w->op = op;
      w->index = i;
      w->input = std::make_unique<MpscChannel>(channel_cap, producers);
      workers_[op].push_back(std::move(w));
    }
    OperatorPartition* part = partition.get();
    for (int s = 0; s < part->num_shards(); ++s) {
      Worker* owner = workers_[op][part->ExecutorOfShard(s)].get();
      ELASTICUTOR_RETURN_NOT_OK(
          owner->store.CreateShard(s, spec.shard_state_bytes));
    }
    partitions_[op] = std::move(partition);
  }

  // Pass 2: rngs (mirroring the simulator's fork order exactly: topo order,
  // executors in index order — so source streams are bit-identical to a sim
  // run at the same seed) and producer ports.
  Rng root(config_->seed, 0x5eed5eed);
  for (OperatorId op : topology_->topo_order()) {
    const OperatorSpec& spec = topology_->spec(op);
    if (spec.is_source) {
      for (int e = 0; e < spec.num_executors; ++e) {
        auto s = std::make_unique<Source>();
        s->op = op;
        s->index = e;
        s->rng = root.Fork(0x500 + MakeExecutorId(op, e));
        BuildPorts(op, &s->ports);
        sources_.push_back(std::move(s));
      }
      continue;
    }
    for (auto& w : workers_[op]) {
      w->rng = root.Fork(MakeExecutorId(op, w->index));
      BuildPorts(op, &w->ports);
    }
  }
  setup_done_ = true;
  return Status::OK();
}

void NativeRuntime::BuildPorts(OperatorId op,
                               std::vector<ProducerPort>* ports) {
  for (OperatorId to : topology_->downstream(op)) {
    ProducerPort port;
    port.to_op = to;
    port.part = partitions_[to].get();
    for (auto& w : workers_[to]) port.channels.push_back(w->input.get());
    port.pending.assign(port.channels.size(), nullptr);
    ports->push_back(std::move(port));
  }
}

void NativeRuntime::Start() {
  ELASTICUTOR_CHECK_MSG(setup_done_, "Start before Setup");
  ELASTICUTOR_CHECK_MSG(!started_, "Start called twice");
  started_ = true;
  // Workers first so channels have their consumers before sources flood.
  for (auto& op_workers : workers_) {
    for (auto& w : op_workers) {
      w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
    }
  }
  for (auto& s : sources_) {
    s->thread = std::thread([this, src = s.get()] { SourceLoop(src); });
  }
}

void NativeRuntime::StopSources() {
  stop_sources_.store(true, std::memory_order_relaxed);
}

void NativeRuntime::WaitDrained() {
  if (!started_ || drained_) return;
  for (auto& s : sources_) {
    if (s->thread.joinable()) s->thread.join();
  }
  for (auto& op_workers : workers_) {
    for (auto& w : op_workers) {
      if (w->thread.joinable()) w->thread.join();
    }
  }
  drained_ = true;
  // Single-threaded from here: merge per-worker counters into the engine
  // metrics (EngineMetrics itself is not touched by running threads).
  metrics_->MergeSinkCount(sink_count());
}

bool NativeRuntime::EmitTo(ProducerPort* port, const Tuple& t) {
  const size_t wi =
      static_cast<size_t>(port->part->ExecutorOfKey(t.key));
  TupleBatchStorage*& batch = port->pending[wi];
  if (batch == nullptr) batch = pool_.Acquire();
  batch->tuples.push_back(t);
  if (batch->tuples.size() < batch_tuples_) return true;
  TupleBatchStorage* full = batch;
  batch = nullptr;
  if (!port->channels[wi]->Push(full)) {
    pool_.Release(full);
    return false;  // Aborted (emergency teardown).
  }
  return true;
}

void NativeRuntime::FlushPorts(std::vector<ProducerPort>* ports) {
  for (auto& port : *ports) {
    for (size_t wi = 0; wi < port.pending.size(); ++wi) {
      TupleBatchStorage* batch = port.pending[wi];
      if (batch == nullptr || batch->tuples.empty()) continue;
      port.pending[wi] = nullptr;
      if (!port.channels[wi]->Push(batch)) pool_.Release(batch);
    }
  }
}

void NativeRuntime::ClosePorts(std::vector<ProducerPort>* ports) {
  FlushPorts(ports);
  for (auto& port : *ports) {
    for (MpscChannel* ch : port.channels) ch->CloseProducer();
  }
}

void NativeRuntime::SourceLoop(Source* s) {
  const SourceSpec& src = topology_->spec(s->op).source;
  const int64_t budget = src.max_tuples;  // 0 = until StopSources.
  while (budget == 0 || s->generated < budget) {
    if (stop_sources_.load(std::memory_order_relaxed)) break;
    Tuple t = src.factory(&s->rng, backend_->now());
    t.created_at = backend_->now();
    ++s->generated;
    bool ok = true;
    for (auto& port : s->ports) ok = EmitTo(&port, t) && ok;
    if (!ok) break;  // Channels aborted.
  }
  ClosePorts(&s->ports);
}

void NativeRuntime::WorkerLoop(Worker* w) {
  const OperatorSpec& spec = topology_->spec(w->op);
  OperatorPartition* part = partitions_[w->op].get();
  const bool is_sink = topology_->is_sink(w->op);
  for (;;) {
    TupleBatchStorage* batch = w->input->TryPop();
    if (batch == nullptr) {
      // Input momentarily idle: don't sit on partial output batches while
      // blocking — downstream would starve behind our buffering.
      FlushPorts(&w->ports);
      batch = w->input->Pop();
      if (batch == nullptr) break;  // All producers closed, ring drained.
    }
    for (const Tuple& t : batch->tuples) {
      const ShardId shard = part->ShardOf(t.key);
      NativeEmitContext emit(this, &w->ports, t.created_at);
      ApplyOperatorLogic(*topology_, spec, w->op, t, &w->store, shard, &emit,
                         &w->rng);
      ++w->processed;
      if (is_sink) ++w->sink_tuples;
    }
    pool_.Release(batch);
  }
  ClosePorts(&w->ports);
}

int64_t NativeRuntime::total_processed() const {
  int64_t total = 0;
  for (const auto& op_workers : workers_) {
    for (const auto& w : op_workers) total += w->processed;
  }
  return total;
}

int64_t NativeRuntime::processed(OperatorId op) const {
  int64_t total = 0;
  for (const auto& w : workers_.at(op)) total += w->processed;
  return total;
}

int64_t NativeRuntime::sink_count() const {
  int64_t total = 0;
  for (const auto& op_workers : workers_) {
    for (const auto& w : op_workers) total += w->sink_tuples;
  }
  return total;
}

int64_t NativeRuntime::source_emitted() const {
  int64_t total = 0;
  for (const auto& s : sources_) total += s->generated;
  return total;
}

int64_t NativeRuntime::push_blocks() const {
  int64_t total = 0;
  for (const auto& op_workers : workers_) {
    for (const auto& w : op_workers) total += w->input->push_blocks();
  }
  return total;
}

int64_t NativeRuntime::pop_waits() const {
  int64_t total = 0;
  for (const auto& op_workers : workers_) {
    for (const auto& w : op_workers) total += w->input->pop_waits();
  }
  return total;
}

int64_t NativeRuntime::batches_pushed() const {
  int64_t total = 0;
  for (const auto& op_workers : workers_) {
    for (const auto& w : op_workers) total += w->input->batches_pushed();
  }
  return total;
}

int NativeRuntime::num_workers(OperatorId op) const {
  return static_cast<int>(workers_.at(op).size());
}

ProcessStateStore* NativeRuntime::worker_store(OperatorId op, int worker) {
  return &workers_.at(op).at(worker)->store;
}

}  // namespace exec
}  // namespace elasticutor
