// CPU affinity portability shim for the native runtime's optional core
// pinning (EngineConfig::native.pinning). Linux: pthread_setaffinity_np on
// the std::thread native handle, with package topology read from sysfs for
// NUMA-aware placement. Elsewhere: every call degrades to a documented
// no-op (pinning is a performance hint, never a correctness dependency).
#pragma once

#include <thread>
#include <vector>

namespace elasticutor {
namespace exec {

/// The machine's online CPUs, with their physical package (socket) ids.
struct CpuTopology {
  struct Cpu {
    int cpu = 0;      // OS CPU id.
    int package = 0;  // Physical package (0 when unknown).
  };
  std::vector<Cpu> cpus;

  /// Enumerates online CPUs. With `numa_aware` the list is sorted
  /// package-major (fill one socket before spilling to the next) so
  /// consecutive pin assignments share a memory domain; otherwise it is in
  /// plain CPU-id order. Never empty: falls back to {0..hw_concurrency-1}
  /// on a single package when sysfs is unavailable.
  static CpuTopology Detect(bool numa_aware);
};

/// True when this build can actually pin (Linux + pthreads).
bool PinningSupported();

/// Pins `t` to `cpu`. Returns false when unsupported or the syscall failed
/// (e.g. the CPU is excluded by the process's cgroup mask) — callers treat
/// failure as "run unpinned", never as an error.
bool PinThreadToCpu(std::thread* t, int cpu);

}  // namespace exec
}  // namespace elasticutor
