// Bounded MPSC channel of tuple micro-batches — the unit of cross-thread
// handoff in the native runtime (the same micro-batches PR 5 introduced on
// the simulated data path travel here between OS threads).
//
// Semantics:
//  * Multiple producers, one consumer. Each producer registers up front
//    (producer count is fixed at wiring time) and calls CloseProducer()
//    exactly once when it finishes; when the last producer closes and the
//    ring drains, Pop() returns nullptr and the consumer shuts down — the
//    dataflow quiesces topologically, no poison pills.
//  * Push blocks while the ring is full (bounded queue => back-pressure
//    propagates upstream to the sources, mirroring the simulator's
//    reservation-based admission).
//  * Mutex + two condvars rather than a lock-free ring: batches amortize
//    the lock over EngineConfig::native.batch_tuples tuples, so the lock is
//    taken ~1/batch_tuples per tuple and contention shows up in the
//    blocked/wait counters long before the mutex itself is the bottleneck.
//    The counters (push_blocks / pop_waits) are reported by
//    bench_native_speed as the channel-contention signal.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"

namespace elasticutor {
namespace exec {

struct TupleBatchStorage;  // exec/batch_pool.h

class MpscChannel {
 public:
  /// `capacity` bounds the number of in-flight batches; `producers` is the
  /// number of CloseProducer() calls after which the channel is closed.
  MpscChannel(size_t capacity, int producers)
      : capacity_(capacity), producers_open_(producers) {
    ELASTICUTOR_CHECK(capacity > 0);
    ELASTICUTOR_CHECK(producers > 0);
  }

  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  /// Blocks while full; returns false iff the channel was force-closed
  /// (Abort) and the batch was not enqueued.
  bool Push(TupleBatchStorage* batch) {
    std::unique_lock<std::mutex> lock(mu_);
    if (ring_.size() >= capacity_) {
      ++push_blocks_;
      not_full_.wait(lock,
                     [this] { return ring_.size() < capacity_ || aborted_; });
    }
    if (aborted_) return false;
    ring_.push_back(batch);
    ++batches_pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullptr when currently empty (channel may still be
  /// open). The consumer uses this to flush partial output batches before
  /// committing to a blocking Pop().
  TupleBatchStorage* TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    return PopLocked();
  }

  /// Blocks until a batch arrives, the channel is closed (all producers
  /// done) and drained, or a Kick() lands. nullptr no longer means "done"
  /// by itself — a kicked consumer gets a spurious nullptr so it can
  /// revisit out-of-band state (the elastic control board); check
  /// exhausted() to distinguish shutdown from a wake-up.
  TupleBatchStorage* Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (ring_.empty() && producers_open_ > 0 && !aborted_ && !kicked_) {
      ++pop_waits_;
      not_empty_.wait(lock, [this] {
        return !ring_.empty() || producers_open_ == 0 || aborted_ || kicked_;
      });
    }
    kicked_ = false;  // Any return lets the consumer poll its control state.
    return PopLocked();
  }

  /// Wakes a consumer blocked in Pop() without closing anything: its Pop
  /// returns (possibly nullptr on an empty ring). Used by the elastic
  /// control plane so an idle worker notices new label/migration duties.
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      kicked_ = true;
    }
    not_empty_.notify_all();
  }

  /// True once the channel can never yield another batch: drained and
  /// either closed by all producers or aborted. The consumer's shutdown
  /// test (a plain nullptr from Pop may just be a Kick).
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.empty() && (producers_open_ == 0 || aborted_);
  }

  /// A new producer joins a live channel (WorkerPool::GrowWorkers wires a
  /// grown worker into every downstream channel). Only legal while at least
  /// one producer is still open: once the last producer closed, the
  /// consumer may already have observed exhaustion and exited.
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ELASTICUTOR_CHECK_MSG(producers_open_ > 0,
                          "AddProducer on a closed channel");
    ++producers_open_;
  }

  /// A producer finished for good (source budget exhausted / stop request /
  /// upstream channel closed).
  void CloseProducer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ELASTICUTOR_CHECK_MSG(producers_open_ > 0,
                            "CloseProducer called more times than producers");
      --producers_open_;
      if (producers_open_ > 0) return;
    }
    not_empty_.notify_all();  // Consumer may be waiting on an empty ring.
  }

  /// Emergency teardown: unblocks producers and the consumer regardless of
  /// ring state (batches still in the ring are returned by Pop until
  /// drained).
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // ---- Contention counters (monotone; read after threads joined) ----
  int64_t push_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_blocks_;
  }
  int64_t pop_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pop_waits_;
  }
  int64_t batches_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_pushed_;
  }

 private:
  TupleBatchStorage* PopLocked() {
    if (ring_.empty()) return nullptr;
    TupleBatchStorage* batch = ring_.front();
    ring_.pop_front();
    not_full_.notify_one();
    return batch;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<TupleBatchStorage*> ring_;
  int producers_open_;
  bool aborted_ = false;
  bool kicked_ = false;
  int64_t push_blocks_ = 0;
  int64_t pop_waits_ = 0;
  int64_t batches_pushed_ = 0;
};

}  // namespace exec
}  // namespace elasticutor
