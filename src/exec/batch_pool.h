// Pooled tuple/batch allocator for the native runtime. Batches are acquired
// by producer threads, filled, handed through an MpscChannel, consumed, and
// released by the consumer thread — so the pool's free list is hit from
// many threads and is mutex-protected. Entries keep their vector capacity
// across reuse: after warm-up the steady-state data path performs no heap
// allocation (allocated() stops growing), the native analog of the
// simulator's EventFn::heap_allocations() gate. bench_native_speed reports
// allocated()/tuples as allocs/tuple.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/tuple.h"

namespace elasticutor {
namespace exec {

/// One pooled micro-batch. `tuples` keeps its capacity across reuse.
/// A batch with `label_id >= 0` is a labeling marker of the elastic
/// reassignment protocol (§3.3): it carries no tuples and rides the same
/// FIFO ring as data, so popping it proves every prior tuple from its
/// producer has been consumed.
struct TupleBatchStorage {
  std::vector<Tuple> tuples;
  int64_t label_id = -1;
};

class BatchPool {
 public:
  BatchPool() = default;
  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  TupleBatchStorage* Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        TupleBatchStorage* batch = free_.back();
        free_.pop_back();
        return batch;
      }
    }
    // Slow path: grow the pool. Outside the lock so concurrent misses
    // allocate in parallel; ownership is recorded under the lock.
    auto owned = std::make_unique<TupleBatchStorage>();
    TupleBatchStorage* batch = owned.get();
    allocated_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    pool_.push_back(std::move(owned));
    return batch;
  }

  void Release(TupleBatchStorage* batch) {
    batch->tuples.clear();  // Keeps capacity.
    batch->label_id = -1;
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(batch);
  }

  /// Batches ever heap-allocated (not reuses). Flat in steady state.
  int64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<TupleBatchStorage>> pool_;
  std::vector<TupleBatchStorage*> free_;
  std::atomic<int64_t> allocated_{0};
};

}  // namespace exec
}  // namespace elasticutor
