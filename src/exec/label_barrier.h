// LabelBarrier — consumer-side bookkeeping for the in-channel labeling
// barrier of the elastic reassignment protocol (paper §3.3, native
// incarnation).
//
// When a shard's routing flips, every producer that can reach the old
// owner pushes one labeling marker (TupleBatchStorage::label_id) into that
// owner's channel, *behind* everything it already routed there. The old
// owner arms a barrier for `expected` = the number of open producers at
// flip time; each marker it pops decrements the count. Because each
// channel is FIFO per producer, the barrier completing proves that every
// pre-flip tuple of the migrating shard has been consumed — the drain the
// paper implements with a labeling tuple per task queue.
//
// The class is deliberately dumb: no locking (callers hold their own
// control mutex) and no knowledge of channels. Markers for unknown ids are
// ignored, which is what makes cancellation work — Cancel() forgets the
// barrier and any markers still in flight become stale no-ops, so an
// aborted migration can re-arm the same shard under a fresh label id
// without double counting.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/status.h"

namespace elasticutor {
namespace exec {

class LabelBarrier {
 public:
  /// Arms a barrier: `expected` markers carrying `label_id` must be
  /// observed before it completes. Returns false (and arms nothing) when
  /// `expected` is zero — there is nobody to wait for and the caller can
  /// treat the drain as already complete.
  bool Arm(int64_t label_id, int expected) {
    ELASTICUTOR_CHECK(expected >= 0);
    ELASTICUTOR_CHECK_MSG(pending_.find(label_id) == pending_.end(),
                          "label id armed twice");
    if (expected == 0) return false;
    pending_.emplace(label_id, expected);
    return true;
  }

  /// One marker observed. True iff this was the last expected marker of an
  /// armed barrier (the barrier completes and is forgotten). Markers of
  /// unknown or cancelled ids return false and are dropped.
  bool OnLabel(int64_t label_id) {
    auto it = pending_.find(label_id);
    if (it == pending_.end()) return false;
    if (--it->second > 0) return false;
    pending_.erase(it);
    return true;
  }

  /// Aborts an armed barrier; its outstanding markers become stale. False
  /// when the id was not armed (already complete or never armed).
  bool Cancel(int64_t label_id) { return pending_.erase(label_id) > 0; }

  bool armed(int64_t label_id) const {
    return pending_.find(label_id) != pending_.end();
  }

  /// Markers still outstanding for `label_id` (0 when not armed).
  int outstanding(int64_t label_id) const {
    auto it = pending_.find(label_id);
    return it == pending_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<int64_t, int> pending_;
};

}  // namespace exec
}  // namespace elasticutor
