// Per-node fault state injected by the scenario layer and consulted by the
// rest of the system:
//  * cpu_factor — multiplier on per-tuple service time for tasks running on
//    the node (1 = healthy, 4 = a 4x straggler). Inflated service times flow
//    into busy_ns, so the scheduler's µ estimate drops and it reacts with
//    capacity, exactly as it would against a real slow node.
//  * available — whether the scheduler may place new cores on the node. A
//    "crashed" node is marked unavailable; the next scheduling cycle sees
//    zero capacity there and evacuates its tasks.
//
// Fault model: fail-slow, not fail-stop. The simulator has no state
// replication, so a true fail-stop would lose shard state with no recovery
// path; a crash is therefore modeled as a severe slowdown plus eviction from
// the schedulable set (the main routing process is assumed to survive on the
// degraded node). docs/scenarios.md spells out the semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"  // NodeId.
#include "common/status.h"

namespace elasticutor {

class NodeFaultPlane {
 public:
  explicit NodeFaultPlane(int num_nodes);

  int num_nodes() const { return static_cast<int>(cpu_factor_.size()); }

  /// Service-time multiplier for tasks on `node` (>= a small epsilon;
  /// 1 = nominal speed, larger = slower).
  double cpu_factor(NodeId node) const { return cpu_factor_.at(node); }
  void SetCpuFactor(NodeId node, double factor);

  /// Whether the scheduler may place new cores on `node`.
  bool available(NodeId node) const { return available_.at(node) != 0; }
  void SetAvailable(NodeId node, bool available);

  bool any_fault_active() const { return faults_active_ > 0; }
  int64_t transitions() const { return transitions_; }

 private:
  std::vector<double> cpu_factor_;
  std::vector<uint8_t> available_;
  int faults_active_ = 0;
  int64_t transitions_ = 0;
};

}  // namespace elasticutor
