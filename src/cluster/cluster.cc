#include "cluster/cluster.h"

#include <numeric>

namespace elasticutor {

Cluster::Cluster(int num_nodes, int cores_per_node)
    : cores_(static_cast<size_t>(num_nodes), cores_per_node) {
  ELASTICUTOR_CHECK_MSG(num_nodes > 0, "cluster needs at least one node");
  ELASTICUTOR_CHECK_MSG(cores_per_node > 0, "nodes need at least one core");
  total_cores_ = num_nodes * cores_per_node;
}

Cluster::Cluster(std::vector<int> cores_per_node)
    : cores_(std::move(cores_per_node)) {
  ELASTICUTOR_CHECK_MSG(!cores_.empty(), "cluster needs at least one node");
  total_cores_ = 0;
  for (int c : cores_) {
    ELASTICUTOR_CHECK_MSG(c > 0, "nodes need at least one core");
    total_cores_ += c;
  }
}

CoreLedger::CoreLedger(const Cluster& cluster) {
  owners_.resize(cluster.num_nodes());
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    owners_[i].assign(cluster.cores(i), kFreeCore);
  }
}

int CoreLedger::Acquire(NodeId node, int64_t owner) {
  ELASTICUTOR_CHECK(owner != kFreeCore);
  auto& cores = owners_.at(node);
  for (size_t i = 0; i < cores.size(); ++i) {
    if (cores[i] == kFreeCore) {
      cores[i] = owner;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void CoreLedger::Release(NodeId node, int core_index) {
  auto& cores = owners_.at(node);
  ELASTICUTOR_CHECK_MSG(cores.at(core_index) != kFreeCore,
                        "releasing a free core");
  cores[core_index] = kFreeCore;
}

int CoreLedger::ReleaseOneOf(NodeId node, int64_t owner) {
  auto& cores = owners_.at(node);
  for (size_t i = 0; i < cores.size(); ++i) {
    if (cores[i] == owner) {
      cores[i] = kFreeCore;
      return static_cast<int>(i);
    }
  }
  return -1;
}

int64_t CoreLedger::OwnerOf(NodeId node, int core_index) const {
  return owners_.at(node).at(core_index);
}

int CoreLedger::FreeOn(NodeId node) const {
  int free = 0;
  for (int64_t owner : owners_.at(node)) {
    if (owner == kFreeCore) ++free;
  }
  return free;
}

int CoreLedger::TotalFree() const {
  int free = 0;
  for (size_t n = 0; n < owners_.size(); ++n) {
    free += FreeOn(static_cast<NodeId>(n));
  }
  return free;
}

int CoreLedger::CountOwnedBy(int64_t owner) const {
  int count = 0;
  for (size_t n = 0; n < owners_.size(); ++n) {
    count += CountOwnedBy(owner, static_cast<NodeId>(n));
  }
  return count;
}

int CoreLedger::CountOwnedBy(int64_t owner, NodeId node) const {
  int count = 0;
  for (int64_t o : owners_.at(node)) {
    if (o == owner) ++count;
  }
  return count;
}

}  // namespace elasticutor
