// Simulated cluster: nodes with a fixed number of CPU cores, plus a ledger
// tracking which logical owner (executor) currently holds each core. The
// paper's testbed is 32 EC2 nodes with 8 cores each; that is the default.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace elasticutor {

using NodeId = int32_t;

class Cluster {
 public:
  /// Homogeneous cluster (the paper's setup).
  Cluster(int num_nodes, int cores_per_node);
  /// Heterogeneous cluster.
  explicit Cluster(std::vector<int> cores_per_node);

  int num_nodes() const { return static_cast<int>(cores_.size()); }
  int cores(NodeId node) const { return cores_.at(node); }
  int total_cores() const { return total_cores_; }

 private:
  std::vector<int> cores_;
  int total_cores_;
};

/// Tracks core ownership. Owners are opaque 64-bit ids (executor ids);
/// kFreeCore marks an unowned core.
class CoreLedger {
 public:
  static constexpr int64_t kFreeCore = -1;

  explicit CoreLedger(const Cluster& cluster);

  /// Acquires a free core on `node` for `owner`; returns the core index or
  /// -1 if the node is fully allocated.
  int Acquire(NodeId node, int64_t owner);

  /// Releases a core. The core must be owned.
  void Release(NodeId node, int core_index);

  /// Releases one core owned by `owner` on `node`; returns the core index
  /// or -1 if the owner holds no core there.
  int ReleaseOneOf(NodeId node, int64_t owner);

  int64_t OwnerOf(NodeId node, int core_index) const;
  int FreeOn(NodeId node) const;
  int TotalFree() const;
  int CountOwnedBy(int64_t owner) const;
  int CountOwnedBy(int64_t owner, NodeId node) const;

 private:
  std::vector<std::vector<int64_t>> owners_;  // [node][core] -> owner.
};

}  // namespace elasticutor
