#include "cluster/fault_plane.h"

namespace elasticutor {

NodeFaultPlane::NodeFaultPlane(int num_nodes)
    : cpu_factor_(static_cast<size_t>(num_nodes), 1.0),
      available_(static_cast<size_t>(num_nodes), 1) {
  ELASTICUTOR_CHECK_MSG(num_nodes > 0, "fault plane needs at least one node");
}

void NodeFaultPlane::SetCpuFactor(NodeId node, double factor) {
  ELASTICUTOR_CHECK_MSG(factor > 0.0, "cpu factor must be positive");
  bool was_faulty = cpu_factor_.at(node) != 1.0 || !available(node);
  cpu_factor_.at(node) = factor;
  bool is_faulty = cpu_factor_.at(node) != 1.0 || !available(node);
  faults_active_ += static_cast<int>(is_faulty) - static_cast<int>(was_faulty);
  ++transitions_;
}

void NodeFaultPlane::SetAvailable(NodeId node, bool avail) {
  bool was_faulty = cpu_factor_.at(node) != 1.0 || !available(node);
  available_.at(node) = avail ? 1 : 0;
  bool is_faulty = cpu_factor_.at(node) != 1.0 || !available(node);
  faults_active_ += static_cast<int>(is_faulty) - static_cast<int>(was_faulty);
  ++transitions_;
}

}  // namespace elasticutor
