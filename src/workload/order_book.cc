#include "workload/order_book.h"

namespace elasticutor {

int64_t OrderBook::Execute(Side side, int64_t price, int64_t volume,
                           std::vector<Trade>* trades) {
  int64_t traded = 0;
  if (side == Side::kBuy) {
    // Match against asks priced at or below the bid.
    while (volume > 0 && !asks_.empty()) {
      auto best = asks_.begin();
      if (best->first > price) break;
      int64_t take = std::min(volume, best->second);
      trades->push_back(Trade{best->first, take});
      traded += take;
      volume -= take;
      best->second -= take;
      if (best->second == 0) asks_.erase(best);
    }
    if (volume > 0) bids_[price] += volume;
  } else {
    while (volume > 0 && !bids_.empty()) {
      auto best = std::prev(bids_.end());
      if (best->first < price) break;
      int64_t take = std::min(volume, best->second);
      trades->push_back(Trade{best->first, take});
      traded += take;
      volume -= take;
      best->second -= take;
      if (best->second == 0) bids_.erase(best);
    }
    if (volume > 0) asks_[price] += volume;
  }
  return traded;
}

}  // namespace elasticutor
