// Synthetic SSE order-flow model (substitute for the proprietary Shanghai
// Stock Exchange trace; see DESIGN.md §2). Reproduces the trace's relevant
// dynamics:
//  * heavy-tailed stock popularity (Zipf),
//  * slow aggregate-rate modulation (session waves),
//  * flash surges: random stocks temporarily trade 5-20x their base rate
//    (Fig 15's spiky per-stock arrival curves),
//  * popularity drift: the hot set rotates over time.
//
// The model is a pure function of (options, seed, t): surge and drift
// schedules are precomputed at construction, so every run is reproducible
// and rates can be queried analytically (used to print Fig 15).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "sim/time.h"

namespace elasticutor {

struct SseTraceOptions {
  int num_stocks = 2000;
  /// Stock popularity tail. 0.45 keeps the hottest stock under ~1% of the
  /// order flow, matching real exchange concentration — a heavier tail
  /// would pin throughput to one key's serial-processing bound long before
  /// the cluster saturates.
  double popularity_skew = 0.45;
  double base_rate_per_sec = 120000.0;  // Aggregate orders/s baseline.
  double wave_amplitude = 0.25;          // Slow sinusoidal modulation.
  SimDuration wave_period_ns = Seconds(300);
  // Flash surges.
  SimDuration surge_every_ns = Seconds(15);   // Mean spawn interval.
  SimDuration surge_min_len_ns = Seconds(10);
  SimDuration surge_max_len_ns = Seconds(40);
  double surge_factor_min = 5.0;
  double surge_factor_max = 20.0;
  // Popularity drift: random popularity swaps.
  SimDuration drift_every_ns = Seconds(30);
  int drift_swaps = 40;
  // Precomputed schedule horizon.
  SimDuration horizon_ns = Seconds(3600);
};

class SseTraceModel {
 public:
  SseTraceModel(const SseTraceOptions& options, uint64_t seed);

  /// Aggregate arrival rate (orders/s) at time t. Analytical (O(#events)):
  /// use for plots and tests.
  double AggregateRate(SimTime t) const;

  /// Arrival rate of one stock at time t (analytical).
  double StockRate(int stock, SimTime t) const;

  /// O(1) amortized aggregate rate for the hot spout path. Time must be
  /// non-decreasing across calls (the simulator guarantees this).
  double CachedAggregateRate(SimTime t);

  /// Samples the stock of the next order arriving at time t. Time must be
  /// non-decreasing across calls.
  int SampleStock(Rng* rng, SimTime t);

  /// `k` most popular stocks over the whole horizon (for Fig 15).
  std::vector<int> TopStocks(int k) const;

  int num_stocks() const { return static_cast<int>(base_weight_.size()); }

 private:
  struct Surge {
    int stock;
    SimTime start;
    SimTime end;
    double factor;
  };
  struct Swap {
    SimTime at;
    int a;
    int b;
  };

  /// Popularity weight of a stock at t (after drift swaps), not including
  /// wave/surge factors.
  double WeightAt(int stock, SimTime t) const;
  double SurgeFactor(int stock, SimTime t) const;
  double Wave(SimTime t) const;
  void AdvanceTo(SimTime t);
  void RebuildSampler(SimTime t);

  SseTraceOptions options_;
  std::vector<double> base_weight_;      // After all swaps <= 0 (initial).
  std::vector<Surge> surges_;            // Sorted by start.
  std::vector<Swap> swaps_;              // Sorted by time.

  // Lazy sampling cache, rebuilt when the regime changes (monotonic time).
  std::unique_ptr<AliasSampler> sampler_;
  SimTime sampler_built_at_ = -1;
  SimTime sampler_valid_until_ = -1;
  double cached_weight_sum_ = 1.0;
  std::vector<double> current_weight_;   // Drift-adjusted weights at cursor.
  size_t swap_cursor_ = 0;
};

}  // namespace elasticutor
