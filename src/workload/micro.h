// The micro-benchmarking topology of Fig 5: generator -> calculator, with
// full control over workload characteristics (tuple size, per-tuple CPU
// cost, key distribution, shard state size, dynamics ω).
#pragma once

#include <memory>

#include "common/status.h"
#include "engine/engine.h"
#include "engine/topology.h"
#include "workload/keyspace.h"

namespace elasticutor {

struct MicroOptions {
  // Key space (§5.1 defaults).
  int num_keys = 10000;
  double zipf_skew = 0.5;
  double shuffles_per_minute = 0.0;  // ω.

  // Tuples.
  int32_t tuple_bytes = 128;
  SimDuration calc_cost_ns = Millis(1);

  // State.
  int64_t shard_state_bytes = 32 * kKiB;

  // Parallelism: y executors, z shards each (paper defaults).
  int generator_executors = 32;
  int calculator_executors = 32;  // y.
  int shards_per_executor = 256;  // z.

  // Source behaviour.
  SourceSpec::Mode mode = SourceSpec::Mode::kSaturation;
  double trace_rate_per_sec = 100000.0;  // kTrace only.
  SimDuration gen_overhead_ns = Micros(10);
};

struct MicroWorkload {
  Topology topology;
  std::shared_ptr<DynamicKeySpace> keys;
  OperatorId generator = -1;
  OperatorId calculator = -1;
  MicroOptions options;

  /// Convenience for tests/examples: activates ω shuffling directly. The
  /// dynamics benches express ω (and richer disturbances) declaratively via
  /// the scenario layer instead — see scn::MicroDynamics (scenario/library.h).
  void InstallDynamics(Engine* engine) const {
    keys->StartShuffling(engine->exec(), options.shuffles_per_minute);
  }
};

Result<MicroWorkload> BuildMicroWorkload(const MicroOptions& options,
                                         uint64_t seed);

}  // namespace elasticutor
