// Limit order book with price-time priority, aggregated per price level —
// the per-stock state of the SSE transactor operator (§5.4: "executes [an
// order] against the outstanding orders and determines the quantities traded
// and the cash transfers made").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace elasticutor {

struct Trade {
  int64_t price = 0;   // Ticks.
  int64_t volume = 0;  // Shares.
};

class OrderBook {
 public:
  enum class Side { kBuy = 0, kSell = 1 };

  OrderBook() = default;

  /// Executes a limit order: matches against the opposite side while the
  /// price crosses, appending trades to `trades`; any remainder rests in the
  /// book. Returns total traded volume.
  int64_t Execute(Side side, int64_t price, int64_t volume,
                  std::vector<Trade>* trades);

  int64_t best_bid() const { return bids_.empty() ? 0 : bids_.rbegin()->first; }
  int64_t best_ask() const { return asks_.empty() ? 0 : asks_.begin()->first; }
  int64_t bid_depth() const { return depth(bids_); }
  int64_t ask_depth() const { return depth(asks_); }
  size_t price_levels() const { return bids_.size() + asks_.size(); }

  /// Approximate in-memory footprint, for state-size accounting.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(price_levels()) * kBytesPerLevel;
  }

  static constexpr int64_t kBytesPerLevel = 48;

 private:
  static int64_t depth(const std::map<int64_t, int64_t>& side) {
    int64_t total = 0;
    for (const auto& [price, volume] : side) total += volume;
    return total;
  }

  std::map<int64_t, int64_t> bids_;  // price -> resting volume.
  std::map<int64_t, int64_t> asks_;
};

}  // namespace elasticutor
