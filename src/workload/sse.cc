#include "workload/sse.h"

#include <algorithm>
#include <cmath>

#include "workload/order_book.h"

namespace elasticutor {

namespace {

// Payload conventions.
//  Order:  f0 = price (ticks), i0 = volume, i1 = side (0 buy / 1 sell).
//  Record: f0 = trade price,   i0 = traded volume.

Tuple MakeOrder(SseTraceModel* trace, Rng* rng, SimTime now,
                int32_t order_bytes) {
  Tuple t;
  int stock = trace->SampleStock(rng, now);
  t.key = static_cast<uint64_t>(stock);
  t.size_bytes = order_bytes;
  // Price around a per-stock anchor with small noise; tight spreads make
  // most orders marketable (≈70% match).
  double anchor = 1000.0 + (stock % 997);
  double noise = rng->NextGaussian(0.0, 2.0);
  bool buy = rng->NextBool(0.5);
  t.payload.f0 = std::max(1.0, anchor + noise + (buy ? 0.8 : -0.8));
  t.payload.i0 = 100 * (1 + static_cast<int64_t>(rng->NextBounded(20)));
  t.payload.i1 = buy ? 0 : 1;
  return t;
}

/// Transactor: runs the matching engine against the per-stock order book and
/// emits one transaction record per trade (volume-weighted into one record
/// when an order crosses several price levels).
OperatorLogic TransactorLogic(int32_t record_bytes) {
  return [record_bytes](const Tuple& t, StateAccessor& state,
                        EmitContext* emit) {
    OrderBook* book = state.GetOrCreate<OrderBook>();
    int64_t levels_before = static_cast<int64_t>(book->price_levels());
    std::vector<Trade> trades;
    auto side = t.payload.i1 == 0 ? OrderBook::Side::kBuy
                                  : OrderBook::Side::kSell;
    int64_t traded = book->Execute(
        side, static_cast<int64_t>(t.payload.f0), t.payload.i0, &trades);
    int64_t levels_after = static_cast<int64_t>(book->price_levels());
    state.AddBytes((levels_after - levels_before) * OrderBook::kBytesPerLevel);
    if (traded > 0) {
      double notional = 0.0;
      for (const Trade& trade : trades) {
        notional += static_cast<double>(trade.price) *
                    static_cast<double>(trade.volume);
      }
      TuplePayload record;
      record.f0 = notional / static_cast<double>(traded);  // VWAP price.
      record.i0 = traded;
      emit->Emit(t.key, record_bytes, record);
    }
  };
}

struct MovingAvgState {
  double avg = 0.0;
};
struct IndexState {
  double last_price = 0.0;
};
struct VolumeState {
  int64_t total_volume = 0;
  int64_t trades = 0;
};
struct VwapState {
  double notional = 0.0;
  int64_t volume = 0;
};
struct HighLowState {
  double high = 0.0;
  double low = 0.0;
};
struct TurnoverState {
  double turnover = 0.0;
};
struct AlarmState {
  double threshold = 0.0;
};
struct SpikeState {
  double ewma = 0.0;
};
struct BreakerState {
  double reference = 0.0;
  bool halted = false;
};
struct FraudState {
  int64_t large_orders = 0;
  int64_t total_orders = 0;
};
struct WashState {
  double last_price = 0.0;
  int64_t repeats = 0;
};

OperatorLogic MovingAverageLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<MovingAvgState>();
    s->avg = s->avg == 0.0 ? t.payload.f0 : 0.95 * s->avg + 0.05 * t.payload.f0;
  };
}
OperatorLogic CompositeIndexLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    state.GetOrCreate<IndexState>()->last_price = t.payload.f0;
  };
}
OperatorLogic VolumeStatsLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<VolumeState>();
    s->total_volume += t.payload.i0;
    ++s->trades;
  };
}
OperatorLogic VwapLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<VwapState>();
    s->notional += t.payload.f0 * static_cast<double>(t.payload.i0);
    s->volume += t.payload.i0;
  };
}
OperatorLogic HighLowLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<HighLowState>();
    if (s->low == 0.0 || t.payload.f0 < s->low) s->low = t.payload.f0;
    if (t.payload.f0 > s->high) s->high = t.payload.f0;
  };
}
OperatorLogic TurnoverLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    state.GetOrCreate<TurnoverState>()->turnover +=
        t.payload.f0 * static_cast<double>(t.payload.i0);
  };
}
OperatorLogic PriceAlarmLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<AlarmState>();
    if (s->threshold == 0.0) s->threshold = t.payload.f0 * 1.1;
    if (t.payload.f0 > s->threshold) s->threshold = t.payload.f0 * 1.1;
  };
}
OperatorLogic SpikeDetectorLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<SpikeState>();
    s->ewma = s->ewma == 0.0 ? t.payload.f0
                             : 0.9 * s->ewma + 0.1 * t.payload.f0;
  };
}
OperatorLogic CircuitBreakerLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<BreakerState>();
    if (s->reference == 0.0) s->reference = t.payload.f0;
    s->halted = std::abs(t.payload.f0 - s->reference) > 0.1 * s->reference;
  };
}
OperatorLogic FraudDetectorLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<FraudState>();
    ++s->total_orders;
    if (t.payload.i0 >= 1800) ++s->large_orders;
  };
}
OperatorLogic WashTradeLogic() {
  return [](const Tuple& t, StateAccessor& state, EmitContext*) {
    auto* s = state.GetOrCreate<WashState>();
    if (t.payload.f0 == s->last_price) {
      ++s->repeats;
    } else {
      s->repeats = 0;
      s->last_price = t.payload.f0;
    }
  };
}

}  // namespace

Result<SseWorkload> BuildSseWorkload(const SseOptions& options,
                                     uint64_t seed) {
  SseWorkload workload;
  workload.options = options;
  workload.trace = std::make_shared<SseTraceModel>(options.trace, seed);

  TopologyBuilder builder;

  OperatorSpec orders;
  orders.name = "orders";
  orders.is_source = true;
  orders.num_executors = options.source_executors;
  orders.shards_per_executor = 1;
  orders.selectivity = 1.0;
  orders.output_bytes = options.order_bytes;
  orders.source.mode = options.mode;
  auto trace = workload.trace;
  int32_t order_bytes = options.order_bytes;
  orders.source.factory = [trace, order_bytes](Rng* rng, SimTime now) {
    return MakeOrder(trace.get(), rng, now, order_bytes);
  };
  if (options.mode == SourceSpec::Mode::kTrace) {
    orders.source.rate_fn = [trace](SimTime t) {
      return trace->CachedAggregateRate(t);
    };
  }
  workload.orders = builder.AddOperator(std::move(orders));

  OperatorSpec transactor;
  transactor.name = "transactor";
  transactor.num_executors = options.executors_per_operator;
  transactor.shards_per_executor = options.shards_per_executor;
  transactor.mean_cost_ns = options.transactor_cost_ns;
  transactor.selectivity = options.match_selectivity;
  transactor.output_bytes = options.record_bytes;
  transactor.shard_state_bytes = options.shard_state_bytes;
  transactor.logic = TransactorLogic(options.record_bytes);
  workload.transactor = builder.AddOperator(std::move(transactor));
  ELASTICUTOR_RETURN_NOT_OK(
      builder.Connect(workload.orders, workload.transactor));

  struct Downstream {
    const char* name;
    OperatorLogic logic;
    bool is_event;
  };
  std::vector<Downstream> downstream;
  downstream.push_back({"moving_average", MovingAverageLogic(), false});
  downstream.push_back({"composite_index", CompositeIndexLogic(), false});
  downstream.push_back({"volume_stats", VolumeStatsLogic(), false});
  downstream.push_back({"vwap", VwapLogic(), false});
  downstream.push_back({"high_low", HighLowLogic(), false});
  downstream.push_back({"turnover", TurnoverLogic(), false});
  downstream.push_back({"price_alarm", PriceAlarmLogic(), true});
  downstream.push_back({"spike_detector", SpikeDetectorLogic(), true});
  downstream.push_back({"circuit_breaker", CircuitBreakerLogic(), true});
  downstream.push_back({"fraud_detector", FraudDetectorLogic(), true});
  downstream.push_back({"wash_trade", WashTradeLogic(), true});

  for (auto& d : downstream) {
    OperatorSpec spec;
    spec.name = d.name;
    spec.num_executors = options.executors_per_operator;
    spec.shards_per_executor = options.shards_per_executor;
    spec.mean_cost_ns =
        d.is_event ? options.event_cost_ns : options.stats_cost_ns;
    spec.selectivity = 0.0;  // Sinks.
    spec.shard_state_bytes = options.shard_state_bytes / 4;
    spec.logic = std::move(d.logic);
    OperatorId id = builder.AddOperator(std::move(spec));
    ELASTICUTOR_RETURN_NOT_OK(builder.Connect(workload.transactor, id));
    (d.is_event ? workload.event_ops : workload.stats_ops).push_back(id);
  }

  Result<Topology> topology = builder.Build();
  if (!topology.ok()) return topology.status();
  workload.topology = std::move(topology).value();
  return workload;
}

}  // namespace elasticutor
