// Dynamic key space of the micro-benchmark (§5.1): `num_keys` distinct keys
// whose frequencies follow a Zipf distribution; "to emulate workload
// dynamics, we shuffle the frequencies of tuple keys by applying a random
// permutation ω times per minute".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "exec/execution_backend.h"

namespace elasticutor {

class DynamicKeySpace {
 public:
  DynamicKeySpace(int num_keys, double zipf_skew, uint64_t seed);

  /// Samples a key: with probability `hotspot share` a uniform pick from the
  /// active hot set (flash crowd), otherwise the current rank->key Zipf
  /// permutation.
  uint64_t SampleKey(Rng* rng) const {
    if (hotspot_share_ > 0.0 && rng->NextDouble() < hotspot_share_) {
      return hot_keys_[rng->NextBounded(
          static_cast<uint32_t>(hot_keys_.size()))];
    }
    return perm_[zipf_.Sample(rng)];
  }

  /// Applies one random permutation of key frequencies.
  void Shuffle();

  /// Schedules `omega` shuffles per minute on the backend clock (0 = static).
  void StartShuffling(exec::ExecutionBackend* exec, double omega_per_minute);

  // ---- Scenario hooks ----
  /// Flash crowd: route `share` of the traffic uniformly onto `num_hot`
  /// randomly chosen keys (drawn with this key space's own deterministic
  /// rng). Replaces any previous hotspot.
  void SetHotspot(double share, int num_hot);
  /// Ends the hotspot (back to the pure Zipf permutation).
  void ClearHotspot();
  bool hotspot_active() const { return hotspot_share_ > 0.0; }
  const std::vector<uint64_t>& hot_keys() const { return hot_keys_; }

  /// Rebuilds the rank distribution with a new Zipf skew (the rank->key
  /// permutation is preserved, so "which keys are hot" does not jump).
  void SetSkew(double skew);
  double skew() const { return zipf_.skew(); }

  int num_keys() const { return static_cast<int>(perm_.size()); }
  int64_t shuffles_applied() const { return shuffles_; }

  /// Probability of `key` under the current permutation + hotspot (tests).
  double KeyProbability(uint64_t key) const;

 private:
  ZipfSampler zipf_;
  std::vector<uint64_t> perm_;       // rank -> key.
  std::vector<double> rank_prob_;    // rank -> probability.
  Rng shuffle_rng_;
  int64_t shuffles_ = 0;
  double hotspot_share_ = 0.0;
  std::vector<uint64_t> hot_keys_;
};

}  // namespace elasticutor
