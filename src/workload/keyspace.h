// Dynamic key space of the micro-benchmark (§5.1): `num_keys` distinct keys
// whose frequencies follow a Zipf distribution; "to emulate workload
// dynamics, we shuffle the frequencies of tuple keys by applying a random
// permutation ω times per minute".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "sim/simulator.h"

namespace elasticutor {

class DynamicKeySpace {
 public:
  DynamicKeySpace(int num_keys, double zipf_skew, uint64_t seed);

  /// Samples a key according to the current rank->key permutation.
  uint64_t SampleKey(Rng* rng) const {
    return perm_[zipf_.Sample(rng)];
  }

  /// Applies one random permutation of key frequencies.
  void Shuffle();

  /// Schedules `omega` shuffles per minute on the simulator (0 = static).
  void StartShuffling(Simulator* sim, double omega_per_minute);

  int num_keys() const { return static_cast<int>(perm_.size()); }
  int64_t shuffles_applied() const { return shuffles_; }

  /// Probability of `key` under the current permutation (tests).
  double KeyProbability(uint64_t key) const;

 private:
  ZipfSampler zipf_;
  std::vector<uint64_t> perm_;       // rank -> key.
  std::vector<double> rank_prob_;    // rank -> probability.
  Rng shuffle_rng_;
  int64_t shuffles_ = 0;
};

}  // namespace elasticutor
