#include "workload/keyspace.h"

#include <numeric>

#include "common/status.h"
#include "common/units.h"

namespace elasticutor {

DynamicKeySpace::DynamicKeySpace(int num_keys, double zipf_skew, uint64_t seed)
    : zipf_(num_keys, zipf_skew), shuffle_rng_(seed, 0x5EED0) {
  ELASTICUTOR_CHECK(num_keys > 0);
  perm_.resize(num_keys);
  std::iota(perm_.begin(), perm_.end(), 0);
  std::vector<double> weights = ZipfWeights(num_keys, zipf_skew);
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  rank_prob_.resize(num_keys);
  for (int i = 0; i < num_keys; ++i) rank_prob_[i] = weights[i] / total;
}

void DynamicKeySpace::Shuffle() {
  // Fisher-Yates on the rank->key permutation.
  for (size_t i = perm_.size() - 1; i > 0; --i) {
    size_t j = shuffle_rng_.NextBounded(static_cast<uint32_t>(i + 1));
    std::swap(perm_[i], perm_[j]);
  }
  ++shuffles_;
}

void DynamicKeySpace::StartShuffling(exec::ExecutionBackend* exec,
                                     double omega_per_minute) {
  if (omega_per_minute <= 0) return;
  SimDuration period =
      static_cast<SimDuration>(60.0 * kNanosPerSecond / omega_per_minute);
  exec->Periodic(period, period, [this](SimTime) {
    Shuffle();
    return true;
  });
}

void DynamicKeySpace::SetHotspot(double share, int num_hot) {
  ELASTICUTOR_CHECK_MSG(share > 0.0 && share < 1.0,
                        "hotspot share must be in (0, 1)");
  ELASTICUTOR_CHECK_MSG(
      num_hot > 0 && num_hot <= static_cast<int>(perm_.size()),
      "hotspot size must be in [1, num_keys]");
  // Sample the hot set without replacement (partial Fisher-Yates over key
  // ids) so a flash crowd always names `num_hot` distinct keys.
  std::vector<uint64_t> pool(perm_.size());
  std::iota(pool.begin(), pool.end(), 0);
  hot_keys_.clear();
  for (int i = 0; i < num_hot; ++i) {
    size_t j = i + shuffle_rng_.NextBounded(
                       static_cast<uint32_t>(pool.size() - i));
    std::swap(pool[i], pool[j]);
    hot_keys_.push_back(pool[i]);
  }
  hotspot_share_ = share;
}

void DynamicKeySpace::ClearHotspot() {
  hotspot_share_ = 0.0;
  hot_keys_.clear();
}

void DynamicKeySpace::SetSkew(double skew) {
  int n = static_cast<int>(perm_.size());
  zipf_ = ZipfSampler(n, skew);
  std::vector<double> weights = ZipfWeights(n, skew);
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (int i = 0; i < n; ++i) rank_prob_[i] = weights[i] / total;
}

double DynamicKeySpace::KeyProbability(uint64_t key) const {
  double base = 0.0;
  for (size_t rank = 0; rank < perm_.size(); ++rank) {
    if (perm_[rank] == key) {
      base = rank_prob_[rank];
      break;
    }
  }
  if (hotspot_share_ <= 0.0) return base;
  double hot = 0.0;
  for (uint64_t k : hot_keys_) {
    if (k == key) {
      hot = 1.0 / static_cast<double>(hot_keys_.size());
      break;
    }
  }
  return (1.0 - hotspot_share_) * base + hotspot_share_ * hot;
}

}  // namespace elasticutor
