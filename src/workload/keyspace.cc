#include "workload/keyspace.h"

#include <numeric>

#include "common/status.h"
#include "common/units.h"

namespace elasticutor {

DynamicKeySpace::DynamicKeySpace(int num_keys, double zipf_skew, uint64_t seed)
    : zipf_(num_keys, zipf_skew), shuffle_rng_(seed, 0x5EED0) {
  ELASTICUTOR_CHECK(num_keys > 0);
  perm_.resize(num_keys);
  std::iota(perm_.begin(), perm_.end(), 0);
  std::vector<double> weights = ZipfWeights(num_keys, zipf_skew);
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  rank_prob_.resize(num_keys);
  for (int i = 0; i < num_keys; ++i) rank_prob_[i] = weights[i] / total;
}

void DynamicKeySpace::Shuffle() {
  // Fisher-Yates on the rank->key permutation.
  for (size_t i = perm_.size() - 1; i > 0; --i) {
    size_t j = shuffle_rng_.NextBounded(static_cast<uint32_t>(i + 1));
    std::swap(perm_[i], perm_[j]);
  }
  ++shuffles_;
}

void DynamicKeySpace::StartShuffling(Simulator* sim,
                                     double omega_per_minute) {
  if (omega_per_minute <= 0) return;
  SimDuration period =
      static_cast<SimDuration>(60.0 * kNanosPerSecond / omega_per_minute);
  sim->Periodic(period, period, [this](SimTime) {
    Shuffle();
    return true;
  });
}

double DynamicKeySpace::KeyProbability(uint64_t key) const {
  for (size_t rank = 0; rank < perm_.size(); ++rank) {
    if (perm_[rank] == key) return rank_prob_[rank];
  }
  return 0.0;
}

}  // namespace elasticutor
