// The SSE application topology of Fig 14: an order stream feeds a
// `transactor` operator that runs market clearing (limit-order matching,
// keyed by stock id) and emits transaction records to 6 statistics operators
// (moving average, composite index, volume stats, VWAP, high/low, turnover)
// and 5 event operators (price alarm, spike detector, circuit breaker,
// fraud detector, wash-trade detector).
//
// Orders are 96 bytes, transaction records 160 bytes (§5.4). The input
// stream follows the synthetic SSE trace model (sse_trace.h).
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "engine/topology.h"
#include "workload/sse_trace.h"

namespace elasticutor {

struct SseOptions {
  SseTraceOptions trace;

  // Parallelism. 12 processing operators must each hold >= 1 core, so on a
  // 256-core cluster 16 executors/op (192 total) leaves headroom; the paper
  // used 32/op on the same cluster because Storm time-shares threads, which
  // the one-task-per-core model here does not (see DESIGN.md).
  int executors_per_operator = 16;
  int shards_per_executor = 64;
  int source_executors = 16;

  // Operator CPU costs.
  SimDuration transactor_cost_ns = MillisF(0.5);
  SimDuration stats_cost_ns = MillisF(0.06);
  SimDuration event_cost_ns = MillisF(0.04);

  // Tuple sizes (paper values).
  int32_t order_bytes = 96;
  int32_t record_bytes = 160;

  // Fraction of orders producing a transaction record (provisioning
  // estimate; the actual fraction emerges from the matching engine).
  double match_selectivity = 0.7;

  int64_t shard_state_bytes = 32 * kKiB;

  SourceSpec::Mode mode = SourceSpec::Mode::kTrace;
};

struct SseWorkload {
  Topology topology;
  std::shared_ptr<SseTraceModel> trace;
  SseOptions options;
  OperatorId orders = -1;       // Source.
  OperatorId transactor = -1;
  std::vector<OperatorId> stats_ops;
  std::vector<OperatorId> event_ops;
};

Result<SseWorkload> BuildSseWorkload(const SseOptions& options, uint64_t seed);

}  // namespace elasticutor
