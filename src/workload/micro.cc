#include "workload/micro.h"

namespace elasticutor {

Result<MicroWorkload> BuildMicroWorkload(const MicroOptions& options,
                                         uint64_t seed) {
  MicroWorkload workload;
  workload.options = options;
  workload.keys = std::make_shared<DynamicKeySpace>(
      options.num_keys, options.zipf_skew, seed);

  TopologyBuilder builder;

  OperatorSpec generator;
  generator.name = "generator";
  generator.is_source = true;
  generator.num_executors = options.generator_executors;
  generator.shards_per_executor = 1;
  generator.selectivity = 1.0;
  generator.output_bytes = options.tuple_bytes;
  generator.source.mode = options.mode;
  generator.source.gen_overhead_ns = options.gen_overhead_ns;
  auto keys = workload.keys;
  int32_t tuple_bytes = options.tuple_bytes;
  generator.source.factory = [keys, tuple_bytes](Rng* rng, SimTime) {
    Tuple t;
    t.key = keys->SampleKey(rng);
    t.size_bytes = tuple_bytes;
    return t;
  };
  if (options.mode == SourceSpec::Mode::kTrace) {
    double rate = options.trace_rate_per_sec;
    generator.source.rate_fn = [rate](SimTime) { return rate; };
  }
  workload.generator = builder.AddOperator(std::move(generator));

  OperatorSpec calculator;
  calculator.name = "calculator";
  calculator.num_executors = options.calculator_executors;
  calculator.shards_per_executor = options.shards_per_executor;
  calculator.mean_cost_ns = options.calc_cost_ns;
  calculator.selectivity = 0.0;  // Sink: no outputs.
  calculator.shard_state_bytes = options.shard_state_bytes;
  workload.calculator = builder.AddOperator(std::move(calculator));

  ELASTICUTOR_RETURN_NOT_OK(
      builder.Connect(workload.generator, workload.calculator));
  Result<Topology> topology = builder.Build();
  if (!topology.ok()) return topology.status();
  workload.topology = std::move(topology).value();
  return workload;
}

}  // namespace elasticutor
