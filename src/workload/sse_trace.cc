#include "workload/sse_trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace elasticutor {

namespace {
constexpr double kPi = 3.141592653589793;
}

SseTraceModel::SseTraceModel(const SseTraceOptions& options, uint64_t seed)
    : options_(options) {
  ELASTICUTOR_CHECK(options.num_stocks > 0);
  base_weight_ = ZipfWeights(options.num_stocks, options.popularity_skew);
  double total = std::accumulate(base_weight_.begin(), base_weight_.end(), 0.0);
  for (double& w : base_weight_) w /= total;

  Rng rng(seed, 0x55E);
  // Surge schedule over the horizon (Poisson spawning). A surge makes one
  // stock trade `factor` times its base rate for its duration.
  SimTime t = 0;
  while (t < options.horizon_ns) {
    t += static_cast<SimDuration>(rng.NextExponential(
        static_cast<double>(options.surge_every_ns)));
    if (t >= options.horizon_ns) break;
    Surge surge;
    surge.stock = static_cast<int>(
        rng.NextBounded(static_cast<uint32_t>(options.num_stocks)));
    SimDuration len = options.surge_min_len_ns +
                      static_cast<SimDuration>(
                          rng.NextDouble() *
                          static_cast<double>(options.surge_max_len_ns -
                                              options.surge_min_len_ns));
    surge.start = t;
    surge.end = t + len;
    surge.factor = options.surge_factor_min +
                   rng.NextDouble() *
                       (options.surge_factor_max - options.surge_factor_min);
    surges_.push_back(surge);
  }
  std::sort(surges_.begin(), surges_.end(),
            [](const Surge& a, const Surge& b) { return a.start < b.start; });

  // Popularity drift: periodic batches of random weight swaps.
  for (SimTime at = options.drift_every_ns; at < options.horizon_ns;
       at += options.drift_every_ns) {
    for (int i = 0; i < options.drift_swaps; ++i) {
      Swap swap;
      swap.at = at;
      swap.a = static_cast<int>(
          rng.NextBounded(static_cast<uint32_t>(options.num_stocks)));
      swap.b = static_cast<int>(
          rng.NextBounded(static_cast<uint32_t>(options.num_stocks)));
      swaps_.push_back(swap);
    }
  }
  current_weight_ = base_weight_;  // Incremental state starts at t = 0.
}

double SseTraceModel::WeightAt(int stock, SimTime t) const {
  // Analytical path (plots/tests), O(#swaps). The incremental state applies
  // swaps to the weight ARRAY in chronological order; expressing the result
  // as a permutation of indices means composing the swaps in REVERSE order:
  // current[x] = base[swap_1(swap_2(...swap_k(x)))].
  size_t last = 0;
  while (last < swaps_.size() && swaps_[last].at <= t) ++last;
  int index = stock;
  for (size_t i = last; i-- > 0;) {
    if (swaps_[i].a == index) {
      index = swaps_[i].b;
    } else if (swaps_[i].b == index) {
      index = swaps_[i].a;
    }
  }
  return base_weight_[index];
}

double SseTraceModel::SurgeFactor(int stock, SimTime t) const {
  double factor = 1.0;
  for (const Surge& surge : surges_) {
    if (surge.start > t) break;
    if (surge.stock == stock && t < surge.end) factor *= surge.factor;
  }
  return factor;
}

double SseTraceModel::Wave(SimTime t) const {
  return 1.0 + options_.wave_amplitude *
                   std::sin(2.0 * kPi * static_cast<double>(t) /
                            static_cast<double>(options_.wave_period_ns));
}

double SseTraceModel::AggregateRate(SimTime t) const {
  // Surge factors on the same stock combine multiplicatively (matching
  // SurgeFactor and the sampler weights), so accumulate per surging stock.
  double sum = 0.0;
  std::vector<int> seen;
  for (const Surge& surge : surges_) {
    if (surge.start > t) break;
    if (t >= surge.end) continue;
    if (std::find(seen.begin(), seen.end(), surge.stock) != seen.end()) {
      continue;
    }
    seen.push_back(surge.stock);
    sum += WeightAt(surge.stock, t) * (SurgeFactor(surge.stock, t) - 1.0);
  }
  return options_.base_rate_per_sec * Wave(t) * (1.0 + sum);
}

double SseTraceModel::StockRate(int stock, SimTime t) const {
  return options_.base_rate_per_sec * Wave(t) * WeightAt(stock, t) *
         SurgeFactor(stock, t);
}

void SseTraceModel::AdvanceTo(SimTime t) {
  // Monotonic incremental state: apply drift swaps that became effective.
  while (swap_cursor_ < swaps_.size() && swaps_[swap_cursor_].at <= t) {
    const Swap& swap = swaps_[swap_cursor_];
    std::swap(current_weight_[swap.a], current_weight_[swap.b]);
    ++swap_cursor_;
  }
}

void SseTraceModel::RebuildSampler(SimTime t) {
  AdvanceTo(t);
  std::vector<double> weights = current_weight_;
  double sum = 0.0;
  for (const Surge& surge : surges_) {
    if (surge.start > t) break;
    if (t < surge.end) {
      weights[surge.stock] *= surge.factor;
    }
  }
  for (double w : weights) sum += w;
  sampler_ = std::make_unique<AliasSampler>(weights);
  cached_weight_sum_ = sum;
  sampler_built_at_ = t;

  // Valid until the next regime boundary.
  SimTime next = kSimTimeMax;
  for (const Surge& surge : surges_) {
    if (surge.start > t) {
      next = std::min(next, surge.start);
      break;
    }
  }
  for (const Surge& surge : surges_) {
    if (surge.start > t) break;
    if (surge.end > t) next = std::min(next, surge.end);
  }
  if (swap_cursor_ < swaps_.size()) {
    next = std::min(next, swaps_[swap_cursor_].at);
  }
  sampler_valid_until_ = next;
}

double SseTraceModel::CachedAggregateRate(SimTime t) {
  if (!sampler_ || t >= sampler_valid_until_) RebuildSampler(t);
  // Σ weights == 1 without surges; surges add on top.
  return options_.base_rate_per_sec * Wave(t) * cached_weight_sum_;
}

int SseTraceModel::SampleStock(Rng* rng, SimTime t) {
  if (!sampler_ || t >= sampler_valid_until_) RebuildSampler(t);
  return static_cast<int>(sampler_->Sample(rng));
}

std::vector<int> SseTraceModel::TopStocks(int k) const {
  std::vector<int> stocks(num_stocks());
  std::iota(stocks.begin(), stocks.end(), 0);
  std::partial_sort(stocks.begin(),
                    stocks.begin() + std::min<size_t>(k, stocks.size()),
                    stocks.end(), [this](int a, int b) {
                      return base_weight_[a] > base_weight_[b];
                    });
  stocks.resize(std::min<size_t>(k, stocks.size()));
  return stocks;
}

}  // namespace elasticutor
