#include "scenario/recovery.h"

#include <algorithm>

#include "common/status.h"

namespace elasticutor {

RecoveryStats MeasureRecovery(const TimeSeries& tput, SimTime baseline_from,
                              SimTime disturb_at, SimTime window_end,
                              double threshold_frac) {
  ELASTICUTOR_CHECK_MSG(baseline_from < disturb_at && disturb_at < window_end,
                        "recovery windows must be ordered");
  ELASTICUTOR_CHECK_MSG(threshold_frac > 0.0 && threshold_frac <= 1.0,
                        "recovery threshold must be in (0, 1]");
  RecoveryStats stats;
  const double bin_s = ToSeconds(tput.bin_ns());
  auto bins = tput.Bins();

  double baseline_sum = 0.0;
  int64_t baseline_bins = 0;
  for (const auto& [start, count] : bins) {
    if (start < baseline_from || start + tput.bin_ns() > disturb_at) continue;
    baseline_sum += count;
    ++baseline_bins;
  }
  if (baseline_bins == 0) return stats;  // Nothing to compare against.
  stats.baseline_tps = baseline_sum / (baseline_bins * bin_s);

  const double threshold = threshold_frac * stats.baseline_tps;
  stats.trough_tps = -1.0;
  SimTime last_below_end = -1;  // End of the last bin under the threshold.
  bool any_post_bin = false;
  for (const auto& [start, count] : bins) {
    if (start < disturb_at || start + tput.bin_ns() > window_end) continue;
    any_post_bin = true;
    double rate = count / bin_s;
    if (stats.trough_tps < 0.0 || rate < stats.trough_tps) {
      stats.trough_tps = rate;
    }
    if (rate < threshold) last_below_end = start + tput.bin_ns();
  }
  if (!any_post_bin) return stats;
  if (stats.trough_tps < 0.0) stats.trough_tps = 0.0;

  if (last_below_end < 0) {
    stats.recovered = true;
    stats.time_to_recover_s = 0.0;  // Never dipped below the threshold.
  } else if (last_below_end >= window_end) {
    stats.recovered = false;  // Still below in the final bin.
    stats.time_to_recover_s = -1.0;
  } else {
    stats.recovered = true;
    stats.time_to_recover_s = ToSeconds(last_below_end - disturb_at);
  }
  return stats;
}

}  // namespace elasticutor
