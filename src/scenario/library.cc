#include "scenario/library.h"

#include <cstdio>

namespace elasticutor {
namespace scn {

namespace {
std::string FmtName(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

Scenario MicroDynamics(double omega_per_minute) {
  Scenario s;
  s.name = FmtName("micro-dynamics-w%.0f", omega_per_minute);
  s.description = "Zipf key-popularity shuffles, omega per minute (paper 5.1)";
  if (omega_per_minute > 0) {
    s.events.push_back(ShuffleCadence(0, omega_per_minute));
  }
  return s;
}

Scenario FlashCrowd(SimTime at, SimDuration length, double rate_mult,
                    double share, int keys) {
  Scenario s;
  s.name = "flash-crowd";
  s.description = "hotspot + rate surge window over a steady trace";
  s.events.push_back(HotspotOn(at, share, keys));
  s.events.push_back(RateStep(at, rate_mult));
  s.events.push_back(HotspotOff(at + length));
  s.events.push_back(RateStep(at + length, 1.0));
  return s;
}

Scenario Straggler(SimTime at, SimDuration length, NodeId node,
                   double cpu_factor) {
  Scenario s;
  s.name = FmtName("straggler-x%.0f", cpu_factor);
  s.description = "one node's service times stretched for a window";
  s.events.push_back(NodeSlowdown(at, length, node, cpu_factor));
  return s;
}

Scenario FailRecover(SimTime at, SimDuration down_for, NodeId node,
                     double crash_cpu_factor) {
  Scenario s;
  s.name = "fail-recover";
  s.description = "fail-slow node crash, scheduler evacuation, rejoin";
  s.events.push_back(NodeCrash(at, node, crash_cpu_factor));
  s.events.push_back(NodeRejoin(at + down_for, node));
  return s;
}

Scenario NicFade(SimTime at, SimDuration length, NodeId node,
                 double bandwidth_factor, SimDuration extra_delay_ns) {
  Scenario s;
  s.name = "nic-fade";
  s.description = "one NIC degraded: lower bandwidth, extra per-message delay";
  s.events.push_back(
      NicDegrade(at, length, node, bandwidth_factor, extra_delay_ns));
  return s;
}

SseSession SseMarketSession(double base_rate_per_sec) {
  SseSession session;
  session.trace.base_rate_per_sec = base_rate_per_sec;
  // The session wave leaves the trace model and becomes a scenario event so
  // both fig15 (analytic) and fig16 (engine) consume the same definition.
  double amplitude = session.trace.wave_amplitude;
  SimDuration period = session.trace.wave_period_ns;
  session.trace.wave_amplitude = 0.0;
  session.scenario.name = "sse-market-session";
  session.scenario.description =
      "session-wave rate modulation over the synthetic SSE order trace";
  session.scenario.events.push_back(RateSine(0, period, amplitude));
  return session;
}

}  // namespace scn
}  // namespace elasticutor
