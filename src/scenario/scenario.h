// Declarative scenario DSL: a deterministic timeline of workload and
// environment disturbances (the axes elasticity surveys evaluate along —
// rate fluctuation, skew shift, hot-key churn, stragglers, failures). A
// Scenario is pure data; the ScenarioDriver (scenario_driver.h) schedules it
// onto an engine's simulator. docs/scenarios.md documents every event type.
//
// Two kinds of events:
//  * Rate events (kRateStep/kRateRamp/kRateSine) are evaluated analytically
//    by RateShaper — no simulator events fire; the shaper wraps the trace
//    sources' rate_fn. Steps and ramps set the level (latest wins, ramps
//    interpolate); active sines multiply on top.
//  * Everything else fires as a simulator event at `at` (window events such
//    as kNodeSlowdown and kNicDegrade also schedule their restore at
//    `at + duration`).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"  // NodeId.
#include "sim/time.h"

namespace elasticutor {

enum class ScenarioEventType {
  // ---- Workload rate (trace-mode sources) ----
  kRateStep,        // From `at`: multiply offered rate by `rate_factor`.
  kRateRamp,        // [at, at+duration]: level ramps ramp_from -> rate_factor.
  kRateSine,        // While active: x (1 + amplitude * sin(2π(t-at)/period)).
  // ---- Key distribution (DynamicKeySpace) ----
  kKeyShuffle,      // At `at`: `shuffle_count` random popularity permutations.
  kShuffleCadence,  // From `at`: omega_per_minute shuffles/min (0 stops).
  kHotspotOn,       // At `at`: hotspot_share of traffic onto hotspot_keys keys.
  kHotspotOff,      // At `at`: back to the pure Zipf permutation.
  kSkewChange,      // At `at`: rebuild the Zipf ranks with `skew`.
  // ---- Faults (NodeFaultPlane / Network) ----
  kNodeSlowdown,    // [at, at+duration]: service times on `node` x cpu_factor.
  kNodeCrash,       // At `at`: node unschedulable + cpu_factor slowdown
                    // (fail-slow; see fault_plane.h for the model).
  kNodeRejoin,      // At `at`: crashed node healthy and schedulable again.
  kNicDegrade,      // [at, at+duration]: egress bandwidth x bandwidth_factor
                    // and +extra_delay_ns per message on `node`.
};

const char* ScenarioEventTypeName(ScenarioEventType type);

/// One timeline entry. Only the fields its type names are meaningful; the
/// factory helpers below fill them.
struct ScenarioEvent {
  ScenarioEventType type = ScenarioEventType::kRateStep;
  SimTime at = 0;
  SimDuration duration = 0;  // Window (ramp/slowdown/NIC; sine: 0 = forever).

  // Rate.
  double rate_factor = 1.0;   // Step target / ramp end.
  double ramp_from = 1.0;     // Ramp start.
  double amplitude = 0.0;     // Sine.
  SimDuration period = 0;     // Sine.

  // Keys.
  double omega_per_minute = 0.0;
  int shuffle_count = 1;
  double hotspot_share = 0.0;
  int hotspot_keys = 0;
  double skew = 0.5;

  // Faults.
  NodeId node = -1;
  double cpu_factor = 1.0;
  double bandwidth_factor = 1.0;
  SimDuration extra_delay_ns = 0;
};

/// A named, deterministic disturbance timeline.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ScenarioEvent> events;
};

// ---- Event factories (the spelling used by benches and docs) ----
namespace scn {

ScenarioEvent RateStep(SimTime at, double factor);
ScenarioEvent RateRamp(SimTime at, SimDuration duration, double from,
                       double to);
ScenarioEvent RateSine(SimTime at, SimDuration period, double amplitude,
                       SimDuration duration = 0);
ScenarioEvent KeyShuffle(SimTime at, int count = 1);
ScenarioEvent ShuffleCadence(SimTime at, double omega_per_minute);
ScenarioEvent HotspotOn(SimTime at, double share, int keys);
ScenarioEvent HotspotOff(SimTime at);
ScenarioEvent SkewChange(SimTime at, double skew);
ScenarioEvent NodeSlowdown(SimTime at, SimDuration duration, NodeId node,
                           double cpu_factor);
ScenarioEvent NodeCrash(SimTime at, NodeId node, double cpu_factor = 8.0);
ScenarioEvent NodeRejoin(SimTime at, NodeId node);
ScenarioEvent NicDegrade(SimTime at, SimDuration duration, NodeId node,
                         double bandwidth_factor,
                         SimDuration extra_delay_ns = 0);

}  // namespace scn

/// Analytic evaluation of a scenario's rate events: FactorAt(t) is the
/// multiplier applied to every trace source's offered rate at simulated
/// time t. Pure and deterministic, so benches (e.g. fig15) can also query it
/// without an engine.
class RateShaper {
 public:
  RateShaper() = default;
  explicit RateShaper(const Scenario& scenario);

  double FactorAt(SimTime t) const;
  bool has_rate_events() const {
    return !levels_.empty() || !sines_.empty();
  }

 private:
  std::vector<ScenarioEvent> levels_;  // Steps + ramps, sorted by `at`.
  std::vector<ScenarioEvent> sines_;   // Sorted by `at`.
};

}  // namespace elasticutor
