#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace elasticutor {

const char* ScenarioEventTypeName(ScenarioEventType type) {
  switch (type) {
    case ScenarioEventType::kRateStep: return "rate-step";
    case ScenarioEventType::kRateRamp: return "rate-ramp";
    case ScenarioEventType::kRateSine: return "rate-sine";
    case ScenarioEventType::kKeyShuffle: return "key-shuffle";
    case ScenarioEventType::kShuffleCadence: return "shuffle-cadence";
    case ScenarioEventType::kHotspotOn: return "hotspot-on";
    case ScenarioEventType::kHotspotOff: return "hotspot-off";
    case ScenarioEventType::kSkewChange: return "skew-change";
    case ScenarioEventType::kNodeSlowdown: return "node-slowdown";
    case ScenarioEventType::kNodeCrash: return "node-crash";
    case ScenarioEventType::kNodeRejoin: return "node-rejoin";
    case ScenarioEventType::kNicDegrade: return "nic-degrade";
  }
  return "?";
}

namespace scn {

ScenarioEvent RateStep(SimTime at, double factor) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kRateStep;
  e.at = at;
  e.rate_factor = factor;
  return e;
}

ScenarioEvent RateRamp(SimTime at, SimDuration duration, double from,
                       double to) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kRateRamp;
  e.at = at;
  e.duration = duration;
  e.ramp_from = from;
  e.rate_factor = to;
  return e;
}

ScenarioEvent RateSine(SimTime at, SimDuration period, double amplitude,
                       SimDuration duration) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kRateSine;
  e.at = at;
  e.period = period;
  e.amplitude = amplitude;
  e.duration = duration;
  return e;
}

ScenarioEvent KeyShuffle(SimTime at, int count) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kKeyShuffle;
  e.at = at;
  e.shuffle_count = count;
  return e;
}

ScenarioEvent ShuffleCadence(SimTime at, double omega_per_minute) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kShuffleCadence;
  e.at = at;
  e.omega_per_minute = omega_per_minute;
  return e;
}

ScenarioEvent HotspotOn(SimTime at, double share, int keys) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kHotspotOn;
  e.at = at;
  e.hotspot_share = share;
  e.hotspot_keys = keys;
  return e;
}

ScenarioEvent HotspotOff(SimTime at) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kHotspotOff;
  e.at = at;
  return e;
}

ScenarioEvent SkewChange(SimTime at, double skew) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kSkewChange;
  e.at = at;
  e.skew = skew;
  return e;
}

ScenarioEvent NodeSlowdown(SimTime at, SimDuration duration, NodeId node,
                           double cpu_factor) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kNodeSlowdown;
  e.at = at;
  e.duration = duration;
  e.node = node;
  e.cpu_factor = cpu_factor;
  return e;
}

ScenarioEvent NodeCrash(SimTime at, NodeId node, double cpu_factor) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kNodeCrash;
  e.at = at;
  e.node = node;
  e.cpu_factor = cpu_factor;
  return e;
}

ScenarioEvent NodeRejoin(SimTime at, NodeId node) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kNodeRejoin;
  e.at = at;
  e.node = node;
  return e;
}

ScenarioEvent NicDegrade(SimTime at, SimDuration duration, NodeId node,
                         double bandwidth_factor,
                         SimDuration extra_delay_ns) {
  ScenarioEvent e;
  e.type = ScenarioEventType::kNicDegrade;
  e.at = at;
  e.duration = duration;
  e.node = node;
  e.bandwidth_factor = bandwidth_factor;
  e.extra_delay_ns = extra_delay_ns;
  return e;
}

}  // namespace scn

RateShaper::RateShaper(const Scenario& scenario) {
  for (const ScenarioEvent& e : scenario.events) {
    switch (e.type) {
      case ScenarioEventType::kRateStep:
        levels_.push_back(e);
        break;
      case ScenarioEventType::kRateRamp:
        ELASTICUTOR_CHECK_MSG(e.duration > 0, "rate ramp needs a duration");
        levels_.push_back(e);
        break;
      case ScenarioEventType::kRateSine:
        ELASTICUTOR_CHECK_MSG(e.period > 0, "rate sine needs a period");
        sines_.push_back(e);
        break;
      default:
        break;
    }
  }
  auto by_at = [](const ScenarioEvent& a, const ScenarioEvent& b) {
    return a.at < b.at;
  };
  std::stable_sort(levels_.begin(), levels_.end(), by_at);
  std::stable_sort(sines_.begin(), sines_.end(), by_at);
}

double RateShaper::FactorAt(SimTime t) const {
  double level = 1.0;
  for (const ScenarioEvent& e : levels_) {
    if (e.at > t) break;
    if (e.type == ScenarioEventType::kRateStep) {
      level = e.rate_factor;
      continue;
    }
    // Ramp: interpolate inside the window, hold the target after it.
    if (t >= e.at + e.duration) {
      level = e.rate_factor;
    } else {
      double frac = static_cast<double>(t - e.at) /
                    static_cast<double>(e.duration);
      level = e.ramp_from + frac * (e.rate_factor - e.ramp_from);
    }
  }
  double factor = level;
  for (const ScenarioEvent& e : sines_) {
    if (e.at > t) break;
    if (e.duration > 0 && t >= e.at + e.duration) continue;
    double phase = 2.0 * M_PI * static_cast<double>(t - e.at) /
                   static_cast<double>(e.period);
    factor *= 1.0 + e.amplitude * std::sin(phase);
  }
  return std::max(0.0, factor);
}

}  // namespace elasticutor
