// ScenarioDriver: executes a Scenario against a live Engine. Rate events are
// compiled into a RateShaper and installed once via Engine::ShapeSourceRates
// (trace-mode sources only); every other event is scheduled as a simulator
// event at its timestamp, so the whole disturbance timeline is part of the
// deterministic event order.
//
//   auto workload = BuildMicroWorkload(options, seed).value();
//   Engine engine(workload.topology, config);
//   ELASTICUTOR_CHECK(engine.Setup().ok());
//   ScenarioDriver driver(scn::FlashCrowd(Seconds(20), Seconds(15),
//                                         /*rate_mult=*/1.5, /*share=*/0.2,
//                                         /*keys=*/64),
//                         &engine, workload.keys);
//   driver.Install();
//   engine.Start();
//   engine.RunFor(...);
//
// Key events (shuffle/hotspot/skew) require the DynamicKeySpace; fault
// events require a node id inside the engine's cluster — Install() validates
// both up front rather than failing mid-run.
//
// Lifetime: the driver must outlive the simulation run — the timed events
// scheduled by Install() call back into it. (The rate shaper alone is
// copied into the sources, so a scenario with only rate events would
// survive the driver, but don't rely on that.)
#pragma once

#include <memory>
#include <unordered_map>

#include "engine/engine.h"
#include "scenario/scenario.h"
#include "workload/keyspace.h"

namespace elasticutor {

class ScenarioDriver {
 public:
  /// `keys` may be null when the scenario has no key events.
  ScenarioDriver(Scenario scenario, Engine* engine,
                 std::shared_ptr<DynamicKeySpace> keys = nullptr);

  /// Installs the rate shaper and schedules every timed event. Call exactly
  /// once, after Engine::Setup() and before running the measured window.
  void Install();

  /// The multiplier the shaper applies to trace sources at time t.
  double RateFactorAt(SimTime t) const { return shaper_.FactorAt(t); }

  const Scenario& scenario() const { return scenario_; }
  int64_t events_fired() const { return events_fired_; }

 private:
  void Validate() const;
  void Execute(const ScenarioEvent& e, int seq);
  void Restore(const ScenarioEvent& e, int seq);

  Scenario scenario_;
  Engine* engine_;
  std::shared_ptr<DynamicKeySpace> keys_;
  RateShaper shaper_;
  int shuffle_generation_ = 0;  // Invalidates superseded cadence timers.
  // Last-writer ownership per node for windowed faults: a window's restore
  // fires only if no later event overwrote the node's CPU/NIC state (value
  // equality cannot distinguish two identical overlapping windows).
  std::unordered_map<NodeId, int> cpu_writer_;
  std::unordered_map<NodeId, int> nic_writer_;
  int64_t events_fired_ = 0;
  bool installed_ = false;
};

}  // namespace elasticutor
