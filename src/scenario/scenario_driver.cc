#include "scenario/scenario_driver.h"

#include "common/status.h"
#include "common/units.h"

namespace elasticutor {

namespace {

bool IsRateEvent(ScenarioEventType type) {
  return type == ScenarioEventType::kRateStep ||
         type == ScenarioEventType::kRateRamp ||
         type == ScenarioEventType::kRateSine;
}

bool IsKeyEvent(ScenarioEventType type) {
  return type == ScenarioEventType::kKeyShuffle ||
         type == ScenarioEventType::kShuffleCadence ||
         type == ScenarioEventType::kHotspotOn ||
         type == ScenarioEventType::kHotspotOff ||
         type == ScenarioEventType::kSkewChange;
}

bool IsNodeEvent(ScenarioEventType type) {
  return type == ScenarioEventType::kNodeSlowdown ||
         type == ScenarioEventType::kNodeCrash ||
         type == ScenarioEventType::kNodeRejoin ||
         type == ScenarioEventType::kNicDegrade;
}

}  // namespace

ScenarioDriver::ScenarioDriver(Scenario scenario, Engine* engine,
                               std::shared_ptr<DynamicKeySpace> keys)
    : scenario_(std::move(scenario)),
      engine_(engine),
      keys_(std::move(keys)),
      shaper_(scenario_) {
  ELASTICUTOR_CHECK_MSG(engine_ != nullptr, "scenario driver needs an engine");
}

void ScenarioDriver::Validate() const {
  for (const ScenarioEvent& e : scenario_.events) {
    ELASTICUTOR_CHECK_MSG(e.at >= 0, "scenario event scheduled before t=0");
    if (IsKeyEvent(e.type)) {
      ELASTICUTOR_CHECK_MSG(keys_ != nullptr,
                            "scenario has key events but no DynamicKeySpace "
                            "was given to the driver");
    }
    if (IsNodeEvent(e.type)) {
      ELASTICUTOR_CHECK_MSG(
          e.node >= 0 && e.node < engine_->cluster().num_nodes(),
          "scenario fault event targets a node outside the cluster");
    }
    if (e.type == ScenarioEventType::kNodeSlowdown ||
        e.type == ScenarioEventType::kNicDegrade) {
      ELASTICUTOR_CHECK_MSG(e.duration > 0,
                            "windowed fault events need a duration");
    }
  }
}

void ScenarioDriver::Install() {
  ELASTICUTOR_CHECK_MSG(!installed_, "scenario installed twice");
  installed_ = true;
  Validate();
  if (shaper_.has_rate_events()) {
    // The shaper is pure copyable data — capture it by value so the wrapped
    // rate_fn never dangles, whatever the driver's lifetime.
    engine_->ShapeSourceRates(
        [shaper = shaper_](SimTime t) { return shaper.FactorAt(t); });
  }
  exec::ExecutionBackend* exec = engine_->exec();
  for (size_t i = 0; i < scenario_.events.size(); ++i) {
    const ScenarioEvent& e = scenario_.events[i];
    if (IsRateEvent(e.type)) continue;  // Handled analytically by the shaper.
    int seq = static_cast<int>(i);
    exec->At(e.at, [this, e, seq]() { Execute(e, seq); });
    if (e.type == ScenarioEventType::kNodeSlowdown ||
        e.type == ScenarioEventType::kNicDegrade) {
      exec->At(e.at + e.duration, [this, e, seq]() { Restore(e, seq); });
    }
  }
}

void ScenarioDriver::Execute(const ScenarioEvent& e, int seq) {
  ++events_fired_;
  NodeFaultPlane* faults = engine_->faults();
  Network* net = engine_->net();
  switch (e.type) {
    case ScenarioEventType::kKeyShuffle:
      for (int i = 0; i < e.shuffle_count; ++i) keys_->Shuffle();
      break;
    case ScenarioEventType::kShuffleCadence: {
      int generation = ++shuffle_generation_;
      if (e.omega_per_minute <= 0) break;  // Cadence 0 just stops the old one.
      SimDuration period = static_cast<SimDuration>(
          60.0 * kNanosPerSecond / e.omega_per_minute);
      engine_->exec()->Periodic(
          engine_->exec()->now() + period, period,
          [this, generation](SimTime) {
            if (generation != shuffle_generation_) return false;
            keys_->Shuffle();
            return true;
          });
      break;
    }
    case ScenarioEventType::kHotspotOn:
      keys_->SetHotspot(e.hotspot_share, e.hotspot_keys);
      break;
    case ScenarioEventType::kHotspotOff:
      keys_->ClearHotspot();
      break;
    case ScenarioEventType::kSkewChange:
      keys_->SetSkew(e.skew);
      break;
    case ScenarioEventType::kNodeSlowdown:
      cpu_writer_[e.node] = seq;
      faults->SetCpuFactor(e.node, e.cpu_factor);
      break;
    case ScenarioEventType::kNodeCrash:
      // Fail-slow crash: the node leaves the schedulable set (the next
      // scheduler cycle evacuates its cores) and whatever still runs there
      // crawls at cpu_factor. See fault_plane.h for why not fail-stop.
      cpu_writer_[e.node] = seq;
      faults->SetAvailable(e.node, false);
      faults->SetCpuFactor(e.node, e.cpu_factor);
      break;
    case ScenarioEventType::kNodeRejoin:
      cpu_writer_[e.node] = seq;
      faults->SetAvailable(e.node, true);
      faults->SetCpuFactor(e.node, 1.0);
      break;
    case ScenarioEventType::kNicDegrade:
      nic_writer_[e.node] = seq;
      net->SetEgressBandwidthFactor(e.node, e.bandwidth_factor);
      net->SetExtraDelay(e.node, e.extra_delay_ns);
      break;
    default:
      ELASTICUTOR_CHECK_MSG(false, "rate events never reach Execute()");
  }
}

void ScenarioDriver::Restore(const ScenarioEvent& e, int seq) {
  // Overlapping windows on the same node: last writer wins. A window only
  // restores if no later slowdown/crash/rejoin (CPU) or NIC event has
  // touched the node since it fired — tracked by sequence number, since
  // value equality cannot tell two identical overlapping windows apart.
  switch (e.type) {
    case ScenarioEventType::kNodeSlowdown:
      if (cpu_writer_[e.node] == seq) {
        engine_->faults()->SetCpuFactor(e.node, 1.0);
      }
      break;
    case ScenarioEventType::kNicDegrade:
      if (nic_writer_[e.node] == seq) {
        engine_->net()->SetEgressBandwidthFactor(e.node, 1.0);
        engine_->net()->SetExtraDelay(e.node, 0);
      }
      break;
    default:
      ELASTICUTOR_CHECK_MSG(false, "event type has no restore phase");
  }
}

}  // namespace elasticutor
