// The shared scenario library: every dynamics-driven bench pulls its
// disturbance timeline from here instead of hand-rolling ramps, so "one
// scenario, three paradigms" comparisons use literally the same definition.
// docs/scenarios.md walks through each entry.
#pragma once

#include "scenario/scenario.h"
#include "workload/sse_trace.h"

namespace elasticutor {
namespace scn {

/// The paper's §5.1 workload dynamics: ω random key-popularity shuffles per
/// minute (fig06/fig07/fig13).
Scenario MicroDynamics(double omega_per_minute);

/// Flash crowd: at `at`, `share` of the traffic collapses onto `keys`
/// random keys while the offered rate steps to x`rate_mult`; both revert
/// after `length` (bench_scn_flash_crowd).
Scenario FlashCrowd(SimTime at, SimDuration length, double rate_mult,
                    double share, int keys);

/// Straggler: `node` runs `cpu_factor`x slower during [at, at+length]
/// (bench_scn_failover).
Scenario Straggler(SimTime at, SimDuration length, NodeId node,
                   double cpu_factor);

/// Fail-slow node crash at `at` (unschedulable + `crash_cpu_factor` slowdown,
/// evacuated by the scheduler), rejoin after `down_for`
/// (bench_scn_failover).
Scenario FailRecover(SimTime at, SimDuration down_for, NodeId node,
                     double crash_cpu_factor = 8.0);

/// NIC degradation: `node`'s egress bandwidth drops to `bandwidth_factor`
/// and every message in/out gains `extra_delay_ns` during [at, at+length].
Scenario NicFade(SimTime at, SimDuration length, NodeId node,
                 double bandwidth_factor, SimDuration extra_delay_ns);

/// The SSE market session shared by fig15 and fig16: per-stock surges and
/// popularity drift stay inside the trace model (they are per-key
/// structure), but the slow aggregate session wave is expressed as a
/// scenario kRateSine — fig16 installs it through the ScenarioDriver, fig15
/// evaluates the same shaper analytically.
struct SseSession {
  SseTraceOptions trace;  // wave_amplitude zeroed; the scenario carries it.
  Scenario scenario;
};
SseSession SseMarketSession(double base_rate_per_sec);

}  // namespace scn
}  // namespace elasticutor
