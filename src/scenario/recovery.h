// Post-disturbance recovery metrics, computed from the engine's per-second
// sink-throughput time series: how deep did throughput dip after a scenario
// disturbance and how long until it stayed back above a fraction of the
// pre-disturbance baseline ("time to rebalance" in the scn benches).
#pragma once

#include "common/rate_meter.h"
#include "sim/time.h"

namespace elasticutor {

struct RecoveryStats {
  double baseline_tps = 0.0;  // Mean rate over [baseline_from, disturb_at).
  double trough_tps = 0.0;    // Worst post-disturbance bin.
  bool recovered = false;     // Stayed >= threshold until window_end.
  /// Seconds from disturb_at until throughput is back at or above
  /// threshold_frac x baseline for the rest of the window. 0 when it never
  /// dipped; -1 when it had not recovered by window_end.
  double time_to_recover_s = -1.0;
};

/// `tput` is EngineMetrics::sink_throughput_series() (counts per fixed bin).
/// Only bins fully inside a window count — a truncated final bin would
/// deflate its rate and fake a dip/non-recovery.
RecoveryStats MeasureRecovery(const TimeSeries& tput, SimTime baseline_from,
                              SimTime disturb_at, SimTime window_end,
                              double threshold_frac);

}  // namespace elasticutor
