#!/usr/bin/env python3
"""Fails when README.md or docs/**.md contain broken relative links.

Checks every markdown link and image whose target is not an absolute URL or
a pure in-page anchor: the referenced file must exist relative to the
document (anchors on existing files are not resolved — headings move too
often for that to be signal). Inline code spans and fenced code blocks are
ignored.

Usage: scripts/check_docs_links.py [repo_root]
"""
import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code(text: str) -> str:
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    docs = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    broken = []
    for doc in docs:
        if not doc.exists():
            broken.append(f"{doc}: document itself is missing")
            continue
        for target in LINK_RE.findall(strip_code(doc.read_text())):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{doc.relative_to(root)}: broken link -> "
                              f"{target}")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken relative link(s)")
        return 1
    print(f"checked {len(docs)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
