#!/usr/bin/env python3
"""CI quality gate over the BENCH_*.json artifacts.

Validates every bench JSON against bench/expectations.json:

  * required_columns  -- every row must carry these keys;
  * row_schemas       -- for files whose JSON concatenates several table
                         sections: every row must carry all keys of at
                         least one listed schema;
  * rows              -- exact count, or {"min": n, "max": n} bounds;
  * numeric_columns   -- columns that, wherever present in a row, must
                         parse as numbers (catches benches serializing
                         "nan"/"-"/garbage into metric cells);
  * allow_empty       -- the file may serialize zero rows (e.g. fig07 below
                         the scale where its one-second bins fill);
  * checks            -- tolerance-banded headline metrics: each check
                         selects rows by exact string match on `where`,
                         requires at least one row to match, and asserts the
                         numeric `column` of every matching row lies within
                         [min, max]. Checks gated by `min_scale` only apply
                         when the run's ELASTICUTOR_BENCH_SCALE is at least
                         that value (recovery metrics degenerate at tiny
                         scales -- see bench/harness/scenario_run.h).
                         Checks gated by `min_cores` only apply to matching
                         rows whose `cores` column (the machine's hardware
                         concurrency, reported by the bench) is at least
                         that value -- thread-scaling speedups are
                         hardware-conditional, not regressions, on small
                         machines.

Usage:
  scripts/check_bench_json.py                  # all files in expectations,
                                               # resolved against --dir
  scripts/check_bench_json.py BENCH_a.json ... # just the named files

Without explicit file arguments every file listed in expectations must
exist, and every BENCH_*.json present must be listed in expectations -- a
new bench must register its expectations to pass CI.

Exits non-zero listing every violation (a regression fails the build).
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def parse_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def check_rows_bound(name, rows, bound, errors):
    if isinstance(bound, int):
        if len(rows) != bound:
            errors.append(f"{name}: expected exactly {bound} rows, "
                          f"got {len(rows)}")
        return
    lo = bound.get("min", 0)
    hi = bound.get("max", float("inf"))
    if not lo <= len(rows) <= hi:
        errors.append(f"{name}: expected between {lo} and {hi} rows, "
                      f"got {len(rows)}")


def match_where(row, where):
    return all(str(row.get(col)) == str(val) for col, val in where.items())


def run_check(name, rows, check, scale, errors):
    min_scale = check.get("min_scale", 0.0)
    if scale < min_scale:
        return  # Metric not meaningful at this scale.
    where = check.get("where", {})
    matches = [row for row in rows if match_where(row, where)]
    label = f"{name}: check {check.get('column')} where {where}"
    if not matches:
        errors.append(f"{label}: no row matches")
        return
    min_cores = check.get("min_cores")
    if min_cores is not None:
        # Hardware-conditional check (e.g. thread-scaling speedups): rows
        # carry the machine's core count in a `cores` column; on smaller
        # machines the metric is meaningless, not failing.
        matches = [row for row in matches
                   if (parse_number(row.get("cores")) or 0) >= min_cores]
        if not matches:
            return
    for row in matches:
        value = parse_number(row.get(check["column"]))
        if value is None:
            errors.append(f"{label}: non-numeric cell "
                          f"{row.get(check['column'])!r}")
            continue
        lo = check.get("min", float("-inf"))
        hi = check.get("max", float("inf"))
        if not lo <= value <= hi:
            errors.append(f"{label}: value {value} outside [{lo}, {hi}] "
                          f"(row: {json.dumps(row)})")


def check_file(path, spec, scale, errors):
    name = os.path.basename(path)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{name}: unreadable ({e})")
        return
    if not isinstance(rows, list):
        errors.append(f"{name}: top-level JSON is not a row array")
        return
    if not rows:
        if not spec.get("allow_empty", False):
            errors.append(f"{name}: serialized no table rows")
        return
    if "rows" in spec:
        check_rows_bound(name, rows, spec["rows"], errors)
    schemas = spec.get("row_schemas")
    if schemas is None and "required_columns" in spec:
        schemas = [spec["required_columns"]]
    numeric_columns = spec.get("numeric_columns", [])
    for i, row in enumerate(rows):
        for col in numeric_columns:
            if col in row and parse_number(row[col]) is None:
                errors.append(f"{name}: row {i} column {col!r} is not "
                              f"numeric ({row[col]!r})")
        if schemas is None:
            continue
        if not any(all(c in row for c in schema) for schema in schemas):
            errors.append(f"{name}: row {i} matches no expected schema "
                          f"(keys: {sorted(row.keys())})")
    for check in spec.get("checks", []):
        run_check(name, rows, check, scale, errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="bench JSON files (default: all in "
                             "expectations, resolved against --dir)")
    parser.add_argument("--expectations",
                        default=os.path.join(REPO_ROOT, "bench",
                                             "expectations.json"))
    parser.add_argument("--dir", default=".",
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get(
                            "ELASTICUTOR_BENCH_SCALE", "1.0") or 1.0),
                        help="bench time scale the artifacts were produced "
                             "at (default: ELASTICUTOR_BENCH_SCALE)")
    args = parser.parse_args()

    with open(args.expectations) as f:
        expectations = json.load(f)
    specs = expectations["files"]

    errors = []
    if args.files:
        targets = args.files
    else:
        targets = [os.path.join(args.dir, name) for name in sorted(specs)]
        # Coverage both ways: every expected file exists, and every artifact
        # present is registered.
        for path in sorted(glob.glob(os.path.join(args.dir,
                                                  "BENCH_*.json"))):
            if os.path.basename(path) not in specs:
                errors.append(f"{os.path.basename(path)}: no expectations "
                              f"registered (add it to bench/expectations"
                              f".json)")

    checked = 0
    for path in targets:
        name = os.path.basename(path)
        if name not in specs:
            errors.append(f"{name}: no expectations registered")
            continue
        if not os.path.exists(path):
            errors.append(f"{name}: artifact missing")
            continue
        check_file(path, specs[name], args.scale, errors)
        checked += 1

    if errors:
        print(f"bench gate: {len(errors)} violation(s) over {checked} "
              f"file(s) at scale {args.scale}:", file=sys.stderr)
        for e in errors:
            print(f"  FAIL {e}", file=sys.stderr)
        return 1
    print(f"bench gate: {checked} file(s) OK at scale {args.scale}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
