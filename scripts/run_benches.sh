#!/usr/bin/env bash
# Builds the benches in Release and runs each one with --json, emitting one
# BENCH_<figure>.json per bench (one record per reported table row) — the
# machine-readable perf trajectory for this repo.
#
# Usage:
#   scripts/run_benches.sh [bench_name ...]
#
#   bench_name    optional subset (e.g. bench_fig06_dynamics); default: all
#                 table-printing benches.
#
# Environment:
#   BUILD_DIR                (default: build-release) CMake build directory.
#   OUT_DIR                  (default: repo root) where BENCH_*.json land.
#   ELASTICUTOR_BENCH_SCALE  duration multiplier, passed through to the
#                            benches (e.g. 0.05 for a quick smoke pass).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-release}"
OUT_DIR="${OUT_DIR:-$ROOT}"

ALL_BENCHES=(
  bench_ablation_balancer
  bench_ablation_phi
  bench_ablation_state_sharing
  bench_core_speed
  bench_fig06_dynamics
  bench_fig07_instantaneous
  bench_fig08_reassignment_breakdown
  bench_fig09_sync_migration
  bench_fig10_scalability_throughput
  bench_fig11_scalability_latency
  bench_fig12_state_size
  bench_fig13_parameters
  bench_fig15_sse_trace
  bench_fig16_sse_application
  bench_native_speed
  bench_scn_failover
  bench_scn_flash_crowd
  bench_table2_scheduler_optimizations
  bench_table3_cluster_scaling
)
# bench_micro_ops is google-benchmark based; use its own --benchmark_out.

BENCHES=("${@:-${ALL_BENCHES[@]}}")

# No option overrides beyond the build type: BUILD_DIR may be the user's
# regular build tree, and flipping cached options there would silently
# deregister its tests.
cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${BENCHES[@]}"

mkdir -p "$OUT_DIR"
for bench in "${BENCHES[@]}"; do
  out="$OUT_DIR/BENCH_${bench#bench_}.json"
  echo "=== $bench -> $out"
  "$BUILD_DIR/bench/$bench" --json "$out"
done

echo
echo "wrote $(ls "$OUT_DIR"/BENCH_*.json | wc -l) BENCH_*.json files to $OUT_DIR"
