// Tests for the workload generators: dynamic key space, micro topology,
// the SSE trace model and the order book.
#include <gtest/gtest.h>

#include <cmath>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

TEST(KeySpaceTest, SamplesFollowZipfBeforeShuffle) {
  DynamicKeySpace keys(1000, 1.0, 7);
  // Rank 0 maps to key 0 before any shuffle; it should dominate.
  Rng rng(1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[keys.SampleKey(&rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(KeySpaceTest, ShuffleMovesHotKey) {
  DynamicKeySpace keys(1000, 1.0, 7);
  double p_before = keys.KeyProbability(0);
  keys.Shuffle();
  // With 1000 keys the chance key 0 keeps rank 0 is ~0.1%.
  EXPECT_NE(p_before, keys.KeyProbability(0));
  EXPECT_EQ(keys.shuffles_applied(), 1);
}

TEST(KeySpaceTest, ProbabilitiesSumToOne) {
  DynamicKeySpace keys(128, 0.5, 3);
  double total = 0;
  for (int k = 0; k < 128; ++k) total += keys.KeyProbability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(KeySpaceTest, PeriodicShuffleOnSimulator) {
  DynamicKeySpace keys(64, 0.5, 3);
  exec::SimBackend sim;
  keys.StartShuffling(&sim, 6.0);  // Every 10 s.
  sim.RunUntil(Seconds(35));
  EXPECT_EQ(keys.shuffles_applied(), 3);
}

TEST(MicroWorkloadTest, BuildsTwoOperatorTopology) {
  MicroOptions options;
  auto w = BuildMicroWorkload(options, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->topology.num_operators(), 2);
  EXPECT_TRUE(w->topology.spec(w->generator).is_source);
  EXPECT_TRUE(w->topology.is_sink(w->calculator));
  EXPECT_EQ(w->topology.spec(w->calculator).total_shards(), 32 * 256);
}

TEST(SseTraceTest, AggregateMatchesStockSum) {
  SseTraceOptions options;
  options.num_stocks = 100;
  SseTraceModel trace(options, 5);
  for (SimTime t : {Seconds(0), Seconds(100), Seconds(500)}) {
    double sum = 0;
    for (int s = 0; s < 100; ++s) sum += trace.StockRate(s, t);
    EXPECT_NEAR(sum, trace.AggregateRate(t), trace.AggregateRate(t) * 1e-6);
  }
}

TEST(SseTraceTest, CachedRateMatchesAnalytical) {
  SseTraceOptions options;
  options.num_stocks = 200;
  SseTraceModel trace(options, 5);
  for (int t = 0; t < 300; t += 7) {
    EXPECT_NEAR(trace.CachedAggregateRate(Seconds(t)),
                trace.AggregateRate(Seconds(t)),
                trace.AggregateRate(Seconds(t)) * 1e-9)
        << "t=" << t;
  }
}

TEST(SseTraceTest, SurgesRaiseStockRate) {
  SseTraceOptions options;
  options.num_stocks = 500;
  SseTraceModel trace(options, 11);
  // Find some time where some stock is surging (factor >= 5 guaranteed by
  // construction): max over stocks of rate/base should exceed 4 somewhere.
  bool surge_seen = false;
  for (int t = 0; t < 600 && !surge_seen; t += 5) {
    for (int s = 0; s < 500; ++s) {
      double base = trace.StockRate(s, Seconds(1));
      double now = trace.StockRate(s, Seconds(t));
      if (base > 0 && now / base > 4.0) {
        surge_seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(surge_seen);
}

TEST(SseTraceTest, SamplingMatchesRates) {
  SseTraceOptions options;
  options.num_stocks = 50;
  options.popularity_skew = 1.0;
  SseTraceModel trace(options, 3);
  Rng rng(9);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[trace.SampleStock(&rng, Seconds(1))];
  double total_rate = trace.AggregateRate(Seconds(1));
  for (int s = 0; s < 5; ++s) {
    double expected = trace.StockRate(s, Seconds(1)) / total_rate;
    EXPECT_NEAR(counts[s] / static_cast<double>(n), expected,
                0.01 + expected * 0.1)
        << "stock " << s;
  }
}

TEST(SseWorkloadTest, BuildsFig14Topology) {
  SseOptions options;
  auto w = BuildSseWorkload(options, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->topology.num_operators(), 13);  // src + transactor + 11.
  EXPECT_EQ(w->stats_ops.size(), 6u);
  EXPECT_EQ(w->event_ops.size(), 5u);
  EXPECT_EQ(w->topology.downstream(w->transactor).size(), 11u);
  EXPECT_EQ(w->topology.upstream(w->transactor).size(), 1u);
}

// ---- Order book ----

TEST(OrderBookTest, RestingOrderNoTrade) {
  OrderBook book;
  std::vector<Trade> trades;
  EXPECT_EQ(book.Execute(OrderBook::Side::kBuy, 100, 500, &trades), 0);
  EXPECT_TRUE(trades.empty());
  EXPECT_EQ(book.best_bid(), 100);
  EXPECT_EQ(book.bid_depth(), 500);
}

TEST(OrderBookTest, CrossingOrdersTrade) {
  OrderBook book;
  std::vector<Trade> trades;
  book.Execute(OrderBook::Side::kSell, 101, 300, &trades);
  int64_t traded = book.Execute(OrderBook::Side::kBuy, 101, 200, &trades);
  EXPECT_EQ(traded, 200);
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].price, 101);
  EXPECT_EQ(trades[0].volume, 200);
  EXPECT_EQ(book.ask_depth(), 100);  // Remainder rests.
}

TEST(OrderBookTest, WalksMultipleLevels) {
  OrderBook book;
  std::vector<Trade> trades;
  book.Execute(OrderBook::Side::kSell, 100, 100, &trades);
  book.Execute(OrderBook::Side::kSell, 101, 100, &trades);
  book.Execute(OrderBook::Side::kSell, 102, 100, &trades);
  trades.clear();
  int64_t traded = book.Execute(OrderBook::Side::kBuy, 101, 250, &trades);
  EXPECT_EQ(traded, 200);  // 100@100 + 100@101; 102 not crossed.
  EXPECT_EQ(trades.size(), 2u);
  EXPECT_EQ(book.bid_depth(), 50);  // Remainder rests at 101.
  EXPECT_EQ(book.best_ask(), 102);
}

TEST(OrderBookTest, PriceImprovementGoesToResting) {
  OrderBook book;
  std::vector<Trade> trades;
  book.Execute(OrderBook::Side::kSell, 99, 100, &trades);
  book.Execute(OrderBook::Side::kBuy, 105, 100, &trades);
  ASSERT_EQ(trades.size(), 1u);
  EXPECT_EQ(trades[0].price, 99);  // Trades at the resting price.
}

TEST(OrderBookTest, DepthConservation) {
  OrderBook book;
  Rng rng(4);
  std::vector<Trade> trades;
  int64_t placed = 0, traded = 0;
  for (int i = 0; i < 5000; ++i) {
    auto side =
        rng.NextBool(0.5) ? OrderBook::Side::kBuy : OrderBook::Side::kSell;
    int64_t price = 1000 + static_cast<int64_t>(rng.NextGaussian(0, 4));
    int64_t volume = 100;
    placed += volume;
    trades.clear();
    traded += 2 * book.Execute(side, price, volume, &trades);
  }
  // Every traded share consumes one resting and one incoming share.
  EXPECT_EQ(book.bid_depth() + book.ask_depth(), placed - traded);
}

}  // namespace
}  // namespace elasticutor
