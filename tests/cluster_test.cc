// Unit tests for the cluster model and core ledger.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace elasticutor {
namespace {

TEST(ClusterTest, HomogeneousShape) {
  Cluster c(32, 8);
  EXPECT_EQ(c.num_nodes(), 32);
  EXPECT_EQ(c.cores(0), 8);
  EXPECT_EQ(c.total_cores(), 256);
}

TEST(ClusterTest, HeterogeneousShape) {
  Cluster c({4, 8, 16});
  EXPECT_EQ(c.num_nodes(), 3);
  EXPECT_EQ(c.total_cores(), 28);
  EXPECT_EQ(c.cores(2), 16);
}

TEST(CoreLedgerTest, AcquireUntilFull) {
  Cluster c(1, 4);
  CoreLedger ledger(c);
  EXPECT_GE(ledger.Acquire(0, 100), 0);
  EXPECT_GE(ledger.Acquire(0, 100), 0);
  EXPECT_GE(ledger.Acquire(0, 200), 0);
  EXPECT_GE(ledger.Acquire(0, 200), 0);
  EXPECT_EQ(ledger.Acquire(0, 300), -1);  // Full.
  EXPECT_EQ(ledger.FreeOn(0), 0);
  EXPECT_EQ(ledger.CountOwnedBy(100), 2);
  EXPECT_EQ(ledger.CountOwnedBy(200, 0), 2);
}

TEST(CoreLedgerTest, ReleaseMakesCoreAvailable) {
  Cluster c(2, 2);
  CoreLedger ledger(c);
  int core = ledger.Acquire(1, 7);
  ASSERT_GE(core, 0);
  EXPECT_EQ(ledger.OwnerOf(1, core), 7);
  ledger.Release(1, core);
  EXPECT_EQ(ledger.OwnerOf(1, core), CoreLedger::kFreeCore);
  EXPECT_EQ(ledger.FreeOn(1), 2);
}

TEST(CoreLedgerTest, ReleaseOneOfFindsOwner) {
  Cluster c(1, 3);
  CoreLedger ledger(c);
  ledger.Acquire(0, 5);
  ledger.Acquire(0, 6);
  EXPECT_GE(ledger.ReleaseOneOf(0, 5), 0);
  EXPECT_EQ(ledger.ReleaseOneOf(0, 5), -1);  // No more cores owned by 5.
  EXPECT_EQ(ledger.CountOwnedBy(6), 1);
}

TEST(CoreLedgerTest, TotalFreeTracksAcrossNodes) {
  Cluster c(3, 2);
  CoreLedger ledger(c);
  EXPECT_EQ(ledger.TotalFree(), 6);
  ledger.Acquire(0, 1);
  ledger.Acquire(2, 1);
  EXPECT_EQ(ledger.TotalFree(), 4);
}

}  // namespace
}  // namespace elasticutor
