// Sim-vs-native equivalence: the same topology at the same seed, run once on
// the discrete-event SimBackend and once on the multithreaded NativeBackend,
// must process the identical tuple multiset and land in identical per-key
// aggregate state — "modulo timing": wall-clock, latencies and interleavings
// differ, sums and counts may not.
//
// Why this holds (and what the tests pin down): both backends fork source
// rngs from the same root in the same order, so source tuple streams are
// bit-identical; keys route through the same OperatorPartition hash (shard
// ids are global, independent of worker counts); per-tuple semantics go
// through the shared ApplyOperatorLogic; and per-key processing order is
// preserved end to end, so even floating-point accumulators agree exactly.
// Worker counts are deliberately DIFFERENT between the two runs — the
// results must not depend on them.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "elasticutor/elasticutor.h"
#include "engine/single_task_executor.h"

namespace elasticutor {
namespace {

// Per-key int64 counters of one operator (the default operator logic keeps
// one per key), accumulated across every store of the operator.
using KeyCounts = std::map<uint64_t, int64_t>;

// Per-shard (global shard id) user-state fingerprint: entry count and
// user_bytes. Captures typed state whose concrete types are private to the
// workload (e.g. the SSE order books) without naming them.
using ShardFingerprint = std::map<ShardId, std::pair<int64_t, int64_t>>;

void AccumulateCounts(const ProcessStateStore& store, KeyCounts* counts) {
  store.ForEachShard([&](ShardId, const ShardState& state) {
    for (const auto& [key, value] : state.entries) {
      const int64_t* counter = std::any_cast<int64_t>(&value);
      ASSERT_NE(counter, nullptr);
      (*counts)[key] += *counter;
    }
  });
}

void AccumulateFingerprint(const ProcessStateStore& store,
                           ShardFingerprint* fp) {
  store.ForEachShard([&](ShardId shard, const ShardState& state) {
    auto& entry = (*fp)[shard];
    entry.first += static_cast<int64_t>(state.entries.size());
    entry.second += state.user_bytes;
  });
}

// Walks every store of `op` on whichever backend `engine` runs.
template <typename Fn>
void ForEachStore(Engine* engine, OperatorId op, Fn&& fn) {
  if (engine->native() != nullptr) {
    for (int w = 0; w < engine->native()->num_workers(op); ++w) {
      fn(*engine->native()->worker_store(op, w));
    }
    return;
  }
  for (const auto& ex : engine->runtime()->executors(op)) {
    fn(*std::static_pointer_cast<SingleTaskExecutor>(ex)->state_store());
  }
}

int64_t ProcessedCount(Engine* engine, OperatorId op) {
  if (engine->native() != nullptr) return engine->native()->processed(op);
  int64_t total = 0;
  for (const auto& ex : engine->runtime()->executors(op)) {
    total += ex->metrics().processed;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Micro topology: generator -> calculator (per-key counters).
// ---------------------------------------------------------------------------

constexpr int64_t kMicroBudget = 3000;  // Per source executor.
constexpr int kMicroSources = 2;

MicroWorkload BuildMicroForEquivalence(uint64_t seed) {
  MicroOptions options;
  options.num_keys = 400;
  options.zipf_skew = 0.8;
  options.tuple_bytes = 64;
  options.calc_cost_ns = Micros(2);
  options.shard_state_bytes = 1 << 10;
  options.generator_executors = kMicroSources;
  options.calculator_executors = 8;
  options.shards_per_executor = 8;
  options.mode = SourceSpec::Mode::kSaturation;
  // Sources must stay slower than downstream capacity: a back-pressured sim
  // spout draws retry jitter from the SAME rng as its tuple factory, which
  // would desync the key stream from the (never-blocked) native source.
  options.gen_overhead_ns = Micros(20);
  MicroWorkload workload = BuildMicroWorkload(options, seed).value();
  workload.topology.mutable_spec(workload.generator).source.max_tuples =
      kMicroBudget;
  workload.topology.mutable_spec(workload.calculator).static_executors = 4;
  return workload;
}

EngineConfig SmallStaticConfig() {
  EngineConfig config;
  config.paradigm = Paradigm::kStatic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.seed = 7;
  return config;
}

TEST(NativeEquivalenceTest, MicroPerKeyCountersMatchSim) {
  // Sim run.
  MicroWorkload sim_workload = BuildMicroForEquivalence(/*seed=*/11);
  Engine sim_engine(sim_workload.topology, SmallStaticConfig());
  ASSERT_TRUE(sim_engine.Setup().ok());
  sim_engine.Start();
  sim_engine.RunToCompletion();

  // Native run: different worker count, micro-batched channels.
  MicroWorkload native_workload = BuildMicroForEquivalence(/*seed=*/11);
  EngineConfig native_config = SmallStaticConfig();
  native_config.backend = exec::BackendKind::kNative;
  native_config.native.workers_per_operator = 3;  // != sim's 4 executors.
  native_config.native.data_path.batch_tuples = 16;
  native_config.native.data_path.channel_capacity_batches = 8;
  Engine native_engine(native_workload.topology, native_config);
  ASSERT_TRUE(native_engine.Setup().ok());
  native_engine.Start();
  native_engine.RunToCompletion();

  // Identical tuple counts.
  const int64_t expected = kMicroSources * kMicroBudget;
  EXPECT_EQ(sim_engine.metrics()->sink_count(), expected);
  EXPECT_EQ(native_engine.metrics()->sink_count(), expected);
  EXPECT_EQ(native_engine.native()->source_emitted(), expected);
  EXPECT_EQ(native_engine.native()->total_processed(), expected);

  // Identical per-key aggregate state.
  KeyCounts sim_counts, native_counts;
  ForEachStore(&sim_engine, sim_workload.calculator,
               [&](const ProcessStateStore& s) {
                 AccumulateCounts(s, &sim_counts);
               });
  ForEachStore(&native_engine, native_workload.calculator,
               [&](const ProcessStateStore& s) {
                 AccumulateCounts(s, &native_counts);
               });
  int64_t total = 0;
  for (const auto& [key, count] : sim_counts) total += count;
  EXPECT_EQ(total, expected);
  EXPECT_EQ(sim_counts, native_counts);
}

TEST(NativeEquivalenceTest, MicroNativeIsDeterministicAcrossWorkerCounts) {
  // Two NATIVE runs with different thread counts must also agree — the
  // native data path itself cannot let parallelism leak into results.
  KeyCounts counts[2];
  const int workers[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/23);
    EngineConfig config = SmallStaticConfig();
    config.backend = exec::BackendKind::kNative;
    config.native.workers_per_operator = workers[run];
    config.native.data_path.batch_tuples = run == 0 ? 1 : 32;  // Batch-size invariant.
    Engine engine(workload.topology, config);
    ASSERT_TRUE(engine.Setup().ok());
    engine.Start();
    engine.RunToCompletion();
    EXPECT_EQ(engine.native()->sink_count(), kMicroSources * kMicroBudget);
    ForEachStore(&engine, workload.calculator,
                 [&](const ProcessStateStore& s) {
                   AccumulateCounts(s, &counts[run]);
                 });
  }
  EXPECT_EQ(counts[0], counts[1]);
}

// ---------------------------------------------------------------------------
// SSE application: order matching + 11 downstream aggregates.
// ---------------------------------------------------------------------------

constexpr int64_t kSseBudget = 4000;

SseWorkload BuildSseForEquivalence(uint64_t seed,
                                   int executors_per_operator = 4) {
  SseOptions options;
  options.mode = SourceSpec::Mode::kSaturation;
  // Horizon 1 ns: no surges, no popularity drift — stock sampling becomes
  // time-independent, so the wall clock cannot perturb the order stream.
  options.trace.horizon_ns = 1;
  options.trace.num_stocks = 300;
  options.source_executors = 1;  // SampleStock mutates shared model state.
  options.executors_per_operator = executors_per_operator;
  options.shards_per_executor = 4;
  options.shard_state_bytes = 4 << 10;
  SseWorkload workload = BuildSseWorkload(options, seed).value();
  OperatorSpec& orders = workload.topology.mutable_spec(workload.orders);
  orders.source.max_tuples = kSseBudget;
  // Keep the source below the transactor's capacity (2 executors x 0.5 ms
  // mean cost): a blocked sim spout would burn factory-rng draws on retry
  // jitter and desync the order stream from the native run.
  orders.source.gen_overhead_ns = Millis(1);
  for (OperatorId op = 0; op < workload.topology.num_operators(); ++op) {
    OperatorSpec& spec = workload.topology.mutable_spec(op);
    if (!spec.is_source) spec.static_executors = 2;
  }
  return workload;
}

TEST(NativeEquivalenceTest, SsePerShardStateAndCountsMatchSim) {
  SseWorkload sim_workload = BuildSseForEquivalence(/*seed=*/5);
  EngineConfig sim_config = SmallStaticConfig();
  sim_config.num_nodes = 8;  // 12 processing ops x 2 executors = 24 cores.
  Engine sim_engine(sim_workload.topology, sim_config);
  ASSERT_TRUE(sim_engine.Setup().ok());
  sim_engine.Start();
  sim_engine.RunToCompletion();

  SseWorkload native_workload = BuildSseForEquivalence(/*seed=*/5);
  EngineConfig native_config = SmallStaticConfig();
  native_config.num_nodes = 8;
  native_config.backend = exec::BackendKind::kNative;
  native_config.native.workers_per_operator = 3;
  native_config.native.data_path.batch_tuples = 8;
  Engine native_engine(native_workload.topology, native_config);
  ASSERT_TRUE(native_engine.Setup().ok());
  native_engine.Start();
  native_engine.RunToCompletion();

  // The transactor consumed the full order budget on both backends; every
  // downstream operator saw exactly the records the matcher emitted.
  EXPECT_EQ(ProcessedCount(&sim_engine, sim_workload.transactor), kSseBudget);
  EXPECT_EQ(ProcessedCount(&native_engine, native_workload.transactor),
            kSseBudget);
  const int64_t sim_records =
      ProcessedCount(&sim_engine, sim_workload.stats_ops[0]);
  EXPECT_GT(sim_records, 0);
  for (OperatorId op : sim_workload.stats_ops) {
    EXPECT_EQ(ProcessedCount(&sim_engine, op), sim_records);
    EXPECT_EQ(ProcessedCount(&native_engine, op), sim_records);
  }
  for (OperatorId op : sim_workload.event_ops) {
    EXPECT_EQ(ProcessedCount(&sim_engine, op), sim_records);
    EXPECT_EQ(ProcessedCount(&native_engine, op), sim_records);
  }
  EXPECT_EQ(sim_engine.metrics()->sink_count(),
            native_engine.metrics()->sink_count());

  // Identical per-shard typed state on every operator: shard ids are global
  // (partition hashing does not depend on worker counts), so entry counts
  // and user-state bytes must line up shard by shard — for the transactor
  // this fingerprints the order books themselves (user_bytes grows with
  // every price-level change).
  for (OperatorId op = 0; op < sim_workload.topology.num_operators(); ++op) {
    if (sim_workload.topology.spec(op).is_source) continue;
    ShardFingerprint sim_fp, native_fp;
    ForEachStore(&sim_engine, op, [&](const ProcessStateStore& s) {
      AccumulateFingerprint(s, &sim_fp);
    });
    ForEachStore(&native_engine, op, [&](const ProcessStateStore& s) {
      AccumulateFingerprint(s, &native_fp);
    });
    EXPECT_EQ(sim_fp, native_fp) << "operator "
                                 << sim_workload.topology.spec(op).name;
  }
}

// ---------------------------------------------------------------------------
// Formerly-rejected configurations, now first-class on the native backend:
// elastic paradigm, trace-mode sources, concurrent order validation.
// ---------------------------------------------------------------------------

TEST(NativeEquivalenceTest, NativeRunsElasticParadigm) {
  MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/3);
  EngineConfig config = SmallStaticConfig();
  config.backend = exec::BackendKind::kNative;
  config.paradigm = Paradigm::kElastic;
  config.native.workers_per_operator = 4;
  Engine engine(workload.topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  // Move every shard once while the dataflow runs, then drain.
  engine.RunFor(Micros(200));
  const int shards = native->num_shards(calc);
  for (int s = 0; s < shards; ++s) {
    // +1 so every move actually leaves the interleaved initial owner;
    // in-transition skips are fine.
    (void)native->ReassignShard(calc, s, (s + 1) % 4);
  }
  engine.RunToCompletion();
  EXPECT_EQ(native->sink_count(), kMicroSources * kMicroBudget);
  EXPECT_GT(native->reassignments_done(), 0);
  EXPECT_EQ(native->migrations_in_flight(), 0);
  // Post-drain moves still work (worker threads have exited).
  const int target = native->shard_owner(calc, 0) == 0 ? 1 : 0;
  ASSERT_TRUE(native->ReassignShard(calc, 0, target).ok());
  engine.RunFor(Millis(1));
  EXPECT_EQ(native->shard_owner(calc, 0), target);
  EXPECT_EQ(native->migrations_in_flight(), 0);
}

TEST(NativeEquivalenceTest, NativeRunsTraceModeSources) {
  MicroOptions options;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 200000.0;
  options.generator_executors = 1;
  options.calculator_executors = 2;
  options.shards_per_executor = 2;
  MicroWorkload workload = BuildMicroWorkload(options, /*seed=*/3).value();
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 500;
  EngineConfig config = SmallStaticConfig();
  config.backend = exec::BackendKind::kNative;
  Engine engine(workload.topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunToCompletion();
  EXPECT_EQ(engine.native()->source_emitted(), 500);
  EXPECT_EQ(engine.native()->sink_count(), 500);
}

TEST(NativeEquivalenceTest, NativeValidatesKeyOrder) {
  MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/3);
  EngineConfig config = SmallStaticConfig();
  config.backend = exec::BackendKind::kNative;
  config.validate_key_order = true;
  config.native.workers_per_operator = 4;
  config.native.data_path.batch_tuples = 8;
  Engine engine(workload.topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunToCompletion();
  EXPECT_EQ(engine.native()->sink_count(), kMicroSources * kMicroBudget);
  EXPECT_EQ(engine.order_violations(), 0);
}

// ---------------------------------------------------------------------------
// Elastic equivalence: shards migrate live between worker threads while the
// dataflow runs; results must still match the simulator bit for bit and be
// invariant across worker counts and migration schedules.
// ---------------------------------------------------------------------------

EngineConfig SmallElasticSimConfig() {
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.seed = 7;
  config.scheduler.enabled = false;  // Scripted core grants only.
  return config;
}

// Accumulates over every store of a sim elastic operator. All scripted core
// grants stay on the executor's home node, so its backend's home store holds
// all of its shards.
template <typename Fn>
void ForEachElasticSimStore(Engine* engine, OperatorId op, Fn&& fn) {
  for (const auto& ex : engine->elastic_executors(op)) {
    fn(*ex->state_backend()->store(ex->home_node()));
  }
}

// Grants every elastic executor of `op` a second core on its home node (so
// the balancer has somewhere to move shards) and then force-reassigns a
// sprinkling of shards — sim-side migrations through the same
// MigrationEngine the native runtime drives.
void ScriptSimElasticMoves(Engine* engine, OperatorId op) {
  auto execs = engine->elastic_executors(op);
  engine->exec()->After(Millis(2), [engine, execs] {
    for (const auto& ex : execs) {
      const NodeId home = ex->home_node();
      if (engine->ledger()->Acquire(home, ex->id()) >= 0) {
        ASSERT_TRUE(ex->AddCore(home).ok());
      }
    }
  });
  engine->exec()->After(Millis(4), [execs] {
    for (const auto& ex : execs) {
      for (int s = 0; s < ex->num_shards(); s += 3) {
        (void)ex->ProbeReassign(s, ex->home_node());
      }
    }
  });
}

EngineConfig NativeElasticConfig(int workers) {
  EngineConfig config = SmallStaticConfig();
  config.paradigm = Paradigm::kElastic;
  config.backend = exec::BackendKind::kNative;
  config.validate_key_order = true;  // Concurrent order validator on.
  config.native.workers_per_operator = workers;
  config.native.data_path.batch_tuples = 8;
  config.native.data_path.channel_capacity_batches = 8;
  if (workers == 8) {
    // The widest run also exercises the paced chunked pre-copy path: chunks
    // and deltas ride the backend's timer wheel instead of completing
    // synchronously.
    config.native.migration_copy_bytes_per_sec = 64e6;
    config.state.migration.chunk_bytes = 512;
  }
  return config;
}

// Sweeps every shard of `op` to a rotating worker while the dataflow runs.
void ScriptNativeElasticMoves(Engine* engine, OperatorId op, int workers,
                              int rounds) {
  exec::NativeRuntime* native = engine->native();
  const int shards = native->num_shards(op);
  for (int round = 0; round < rounds; ++round) {
    engine->RunFor(Micros(300));
    for (int s = 0; s < shards; ++s) {
      // Shards still in transition (or whose endpoints are draining) skip a
      // round; the sweep is best-effort by design.
      (void)native->ReassignShard(op, s, (s + round) % workers);
    }
  }
}

TEST(NativeEquivalenceTest, MicroElasticCountersMatchSimUnderMigration) {
  const int64_t expected = kMicroSources * kMicroBudget;
  KeyCounts sim_counts;
  {
    MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/17);
    Engine engine(workload.topology, SmallElasticSimConfig());
    ASSERT_TRUE(engine.Setup().ok());
    engine.Start();
    ScriptSimElasticMoves(&engine, workload.calculator);
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics()->sink_count(), expected);
    int64_t sim_moves = 0;
    for (const auto& ex : engine.elastic_executors(workload.calculator)) {
      sim_moves += ex->reassignments_done();
    }
    EXPECT_GT(sim_moves, 0) << "sim run must actually migrate shards";
    ForEachElasticSimStore(&engine, workload.calculator,
                           [&](const ProcessStateStore& s) {
                             AccumulateCounts(s, &sim_counts);
                           });
  }
  for (int workers : {1, 2, 8}) {
    MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/17);
    Engine engine(workload.topology, NativeElasticConfig(workers));
    ASSERT_TRUE(engine.Setup().ok());
    engine.Start();
    ScriptNativeElasticMoves(&engine, workload.calculator, workers,
                             /*rounds=*/6);
    engine.RunToCompletion();
    exec::NativeRuntime* native = engine.native();
    EXPECT_EQ(native->sink_count(), expected) << "workers=" << workers;
    EXPECT_EQ(native->source_emitted(), expected);
    EXPECT_EQ(engine.order_violations(), 0) << "workers=" << workers;
    EXPECT_EQ(native->migrations_in_flight(), 0);
    if (workers > 1) {
      EXPECT_GT(native->reassignments_done(), 0) << "workers=" << workers;
      EXPECT_GT(native->labels_routed(), 0);
    }
    KeyCounts native_counts;
    ForEachStore(&engine, workload.calculator,
                 [&](const ProcessStateStore& s) {
                   AccumulateCounts(s, &native_counts);
                 });
    EXPECT_EQ(sim_counts, native_counts) << "workers=" << workers;
  }
}

TEST(NativeEquivalenceTest, PoolResizeKeepsPerKeyResultsBitIdentical) {
  // Run the same workload twice: once with a fixed pool, once growing the
  // pool mid-stream, sweeping shards onto the new workers, then shrinking
  // back down (evacuation over the labeling barrier). Results must be
  // bit-identical — GrowWorkers/ShrinkWorkers are pure placement actions
  // with no semantic footprint.
  const int64_t expected = kMicroSources * kMicroBudget;
  KeyCounts counts[2];
  for (int run = 0; run < 2; ++run) {
    MicroWorkload workload = BuildMicroForEquivalence(/*seed=*/19);
    EngineConfig config = NativeElasticConfig(/*workers=*/3);
    Engine engine(workload.topology, config);
    ASSERT_TRUE(engine.Setup().ok());
    engine.Start();
    exec::NativeRuntime* native = engine.native();
    const OperatorId calc = workload.calculator;
    if (run == 1) {
      engine.RunFor(Micros(300));
      ASSERT_TRUE(engine.worker_pool()->GrowWorkers(calc, 2).ok());
      ASSERT_EQ(native->num_workers(calc), 5);
      // Load the grown workers: rotate every shard across the wider pool
      // while the stream runs.
      ScriptNativeElasticMoves(&engine, calc, /*workers=*/5, /*rounds=*/3);
      ASSERT_TRUE(engine.worker_pool()->ShrinkWorkers(calc, 2).ok());
      engine.RunFor(Micros(300));
    }
    engine.RunToCompletion();
    EXPECT_EQ(native->sink_count(), expected) << "run=" << run;
    EXPECT_EQ(native->source_emitted(), expected);
    EXPECT_EQ(engine.order_violations(), 0) << "run=" << run;
    EXPECT_EQ(native->migrations_in_flight(), 0);
    if (run == 1) {
      EXPECT_GT(native->reassignments_done(), 0);
      // Retired workers hold no state after the drain.
      const exec::TelemetrySnapshot snap = engine.SampleTelemetry();
      for (const auto& wt : snap.workers) {
        if (!wt.retiring) continue;
        int64_t entries = 0;
        native->worker_store(calc, wt.index)
            ->ForEachShard([&](ShardId, const ShardState& state) {
              entries += static_cast<int64_t>(state.entries.size());
            });
        EXPECT_EQ(entries, 0) << "retired worker " << wt.index
                              << " still holds state";
      }
    }
    ForEachStore(&engine, calc, [&](const ProcessStateStore& s) {
      AccumulateCounts(s, &counts[run]);
    });
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(NativeEquivalenceTest, SseElasticStateMatchesSimUnderMigration) {
  // Two executors per operator keeps the sim elastic run inside the 4x4
  // cluster (each executor pins a core); shard ids — and therefore the
  // fingerprints — depend only on total_shards, which both backends share.
  SseWorkload sim_workload =
      BuildSseForEquivalence(/*seed=*/5, /*executors_per_operator=*/2);
  EngineConfig sim_config = SmallElasticSimConfig();
  sim_config.num_nodes = 8;
  Engine sim_engine(sim_workload.topology, sim_config);
  ASSERT_TRUE(sim_engine.Setup().ok());
  sim_engine.Start();
  ScriptSimElasticMoves(&sim_engine, sim_workload.transactor);
  ScriptSimElasticMoves(&sim_engine, sim_workload.stats_ops[0]);
  sim_engine.RunToCompletion();
  ASSERT_EQ(ProcessedCount(&sim_engine, sim_workload.transactor), kSseBudget);

  for (int workers : {1, 2, 8}) {
    SseWorkload workload =
        BuildSseForEquivalence(/*seed=*/5, /*executors_per_operator=*/2);
    EngineConfig config = NativeElasticConfig(workers);
    config.num_nodes = 8;
    Engine engine(workload.topology, config);
    ASSERT_TRUE(engine.Setup().ok());
    engine.Start();
    exec::NativeRuntime* native = engine.native();
    // Migrate across the whole topology, not just one operator: order
    // matching upstream of the stats fan-out is where a protocol bug would
    // scramble per-stock streams.
    for (int round = 0; round < 4; ++round) {
      engine.RunFor(Micros(500));
      for (OperatorId op = 0; op < workload.topology.num_operators(); ++op) {
        if (workload.topology.spec(op).is_source) continue;
        for (int s = 0; s < native->num_shards(op); ++s) {
          (void)native->ReassignShard(op, s, (s + round) % workers);
        }
      }
    }
    engine.RunToCompletion();
    EXPECT_EQ(ProcessedCount(&engine, workload.transactor), kSseBudget);
    EXPECT_EQ(engine.order_violations(), 0) << "workers=" << workers;
    EXPECT_EQ(native->migrations_in_flight(), 0);
    if (workers > 1) EXPECT_GT(native->reassignments_done(), 0);
    EXPECT_EQ(sim_engine.metrics()->sink_count(),
              engine.metrics()->sink_count());
    for (OperatorId op = 0; op < workload.topology.num_operators(); ++op) {
      if (workload.topology.spec(op).is_source) continue;
      ShardFingerprint sim_fp, native_fp;
      ForEachElasticSimStore(&sim_engine, op,
                             [&](const ProcessStateStore& s) {
                               AccumulateFingerprint(s, &sim_fp);
                             });
      ForEachStore(&engine, op, [&](const ProcessStateStore& s) {
        AccumulateFingerprint(s, &native_fp);
      });
      EXPECT_EQ(sim_fp, native_fp)
          << "workers=" << workers << " operator "
          << workload.topology.spec(op).name;
    }
  }
}

}  // namespace
}  // namespace elasticutor
