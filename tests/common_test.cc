// Unit tests for src/common: Status/Result, RNG, Zipf/alias sampling,
// histogram quantiles, rate meters.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/histogram.h"
#include "common/random.h"
#include "common/rate_meter.h"
#include "common/status.h"
#include "common/units.h"
#include "common/zipf.h"

namespace elasticutor {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    ELASTICUTOR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(123, 7), b(123, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(1);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int i = 0; i < 4; ++i) {
    double expected = weights[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expected, 0.01)
        << "bucket " << i;
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  AliasSampler sampler({3.0});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

TEST(ZipfTest, RankOneMostFrequent) {
  ZipfSampler zipf(1000, 0.5);
  Rng rng(4);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfTest, WeightsFollowPowerLaw) {
  auto w = ZipfWeights(100, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
  EXPECT_NEAR(w[9], 0.1, 1e-12);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 10);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_NEAR(h.mean(), 5.5, 1e-9);
  EXPECT_EQ(h.Quantile(0.0), 1);
  EXPECT_EQ(h.Quantile(1.0), 10);
}

TEST(HistogramTest, QuantileResolutionWithinBucketError) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(1e6)));
  }
  // p50 of Exp(1e6) is ln(2)*1e6 ≈ 693147; log-bucketed resolution ~1.6%.
  EXPECT_NEAR(static_cast<double>(h.P50()), 693147.0, 693147.0 * 0.05);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(100);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(INT64_MAX / 2);
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.Quantile(0.5), 0);
}

TEST(SlidingWindowMeterTest, CountsWithinWindow) {
  SlidingWindowMeter meter(Seconds(1));
  meter.Add(0, 10);
  meter.Add(Millis(500), 10);
  EXPECT_DOUBLE_EQ(meter.RatePerSec(Millis(900)), 20.0);
  // First sample (t=0) falls out of the window ending at 1.1s.
  EXPECT_DOUBLE_EQ(meter.RatePerSec(Millis(1100)), 10.0);
  EXPECT_EQ(meter.total(), 20);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.5);
  for (int i = 0; i < 32; ++i) e.Add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.1);
  e.Add(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(TimeSeriesTest, BinsValues) {
  TimeSeries ts(Seconds(1));
  ts.Add(Millis(100), 1);
  ts.Add(Millis(900), 1);
  ts.Add(Millis(1500), 1);
  auto bins = ts.Bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].second, 2.0);
  EXPECT_DOUBLE_EQ(bins[1].second, 1.0);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(Seconds(2), 2000000000);
  EXPECT_EQ(Millis(3), 3000000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
  EXPECT_EQ(MillisF(0.5), 500000);
}

}  // namespace
}  // namespace elasticutor
