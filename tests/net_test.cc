// Unit tests for the network model: latency composition, bandwidth
// serialization, FIFO ordering, byte accounting, RPC round trips.
#include <gtest/gtest.h>

#include <vector>

#include "exec/sim_backend.h"
#include "net/network.h"

namespace elasticutor {
namespace {

NetworkConfig TestConfig() {
  NetworkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: easy arithmetic.
  cfg.propagation_ns = Micros(100);
  cfg.intra_node_ns = Micros(10);
  cfg.per_message_overhead_bytes = 0;
  return cfg;
}

TEST(NetworkTest, IntraNodeUsesHandoffLatencyOnly) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  SimTime delivered = -1;
  net.Send(0, 0, 1 << 20, Purpose::kInterOperator,
           [&]() { delivered = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(delivered, Micros(10));  // No bandwidth cost on-node.
  EXPECT_EQ(net.inter_node_bytes(Purpose::kInterOperator), 0);
  EXPECT_EQ(net.intra_node_bytes(Purpose::kInterOperator), 1 << 20);
}

TEST(NetworkTest, TransmissionPlusPropagation) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  SimTime delivered = -1;
  // 1000 bytes at 1 MB/s = 1 ms transmission.
  net.Send(0, 1, 1000, Purpose::kInterOperator,
           [&]() { delivered = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(delivered, Millis(1) + Micros(100));
}

TEST(NetworkTest, EgressSerializesMessages) {
  exec::SimBackend sim;
  Network net(&sim, 3, TestConfig());
  std::vector<SimTime> deliveries;
  net.Send(0, 1, 1000, Purpose::kInterOperator,
           [&]() { deliveries.push_back(sim.now()); });
  net.Send(0, 2, 1000, Purpose::kInterOperator,
           [&]() { deliveries.push_back(sim.now()); });
  sim.RunAll();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], Millis(1) + Micros(100));
  EXPECT_EQ(deliveries[1], Millis(2) + Micros(100));  // Queued behind first.
}

TEST(NetworkTest, PerDestinationFifo) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    net.Send(0, 1, 100 + i, Purpose::kRemoteTask,
             [&order, i]() { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(NetworkTest, DistinctSourcesDoNotSerialize) {
  exec::SimBackend sim;
  Network net(&sim, 3, TestConfig());
  std::vector<SimTime> deliveries(2);
  net.Send(0, 2, 1000, Purpose::kInterOperator,
           [&]() { deliveries[0] = sim.now(); });
  net.Send(1, 2, 1000, Purpose::kInterOperator,
           [&]() { deliveries[1] = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(deliveries[0], deliveries[1]);  // Parallel egress.
}

TEST(NetworkTest, PurposeAccountingSeparated) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  net.Send(0, 1, 100, Purpose::kInterOperator, []() {});
  net.Send(0, 1, 200, Purpose::kStateMigration, []() {});
  net.Send(0, 1, 300, Purpose::kRemoteTask, []() {});
  net.Send(0, 1, 400, Purpose::kStateAccess, []() {});
  sim.RunAll();
  EXPECT_EQ(net.inter_node_bytes(Purpose::kInterOperator), 100);
  EXPECT_EQ(net.inter_node_bytes(Purpose::kStateMigration), 200);
  EXPECT_EQ(net.inter_node_bytes(Purpose::kRemoteTask), 300);
  EXPECT_EQ(net.inter_node_bytes(Purpose::kStateAccess), 400);
  EXPECT_EQ(net.total_inter_node_bytes(), 1000);
}

TEST(NetworkTest, MigrationChunksAndLabelShareOneFifo) {
  // The reassignment protocol relies on purposes NOT having separate
  // channels: pre-copy chunks, the labeling tuple and post-flip data tuples
  // on the same (src,dst) path drain through one egress queue in send
  // order, so a label can never overtake a chunk sent before it.
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    net.Send(0, 1, 64 * 1024, Purpose::kStateMigration,
             [&order, i]() { order.push_back(i); });
  }
  net.Send(0, 1, 64, Purpose::kRemoteTask, [&order]() { order.push_back(99); });
  net.Send(0, 1, 128, Purpose::kInterOperator,
           [&order]() { order.push_back(100); });
  sim.RunAll();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 99, 100}));
}

TEST(NetworkTest, StateAccessRpcBytesAttributedBothWays) {
  // External-KV accesses are request/response pairs: the response send is
  // chained on the request's delivery, and both directions land under
  // Purpose::kStateAccess.
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  SimTime reply_at = -1;
  net.Send(0, 1, 128, Purpose::kStateAccess, [&]() {
    net.Send(1, 0, 128, Purpose::kStateAccess, [&]() { reply_at = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(net.inter_node_bytes(Purpose::kStateAccess), 256);
  // Two 128-byte transmissions at 1 MB/s plus two propagation delays.
  EXPECT_EQ(reply_at, 2 * (Micros(128) + Micros(100)));
}

TEST(NetworkTest, MessageOverheadCounted) {
  exec::SimBackend sim;
  NetworkConfig cfg = TestConfig();
  cfg.per_message_overhead_bytes = 64;
  Network net(&sim, 2, cfg);
  net.Send(0, 1, 100, Purpose::kInterOperator, []() {});
  sim.RunAll();
  EXPECT_EQ(net.inter_node_bytes(Purpose::kInterOperator), 164);
}

TEST(NetworkTest, AllMessagesDelivered) {
  exec::SimBackend sim;
  Network net(&sim, 4, TestConfig());
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    net.Send(i % 4, (i + 1) % 4, 50, Purpose::kControl,
             [&]() { ++delivered; });
  }
  sim.RunAll();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.messages_sent(), 100);
  EXPECT_EQ(net.messages_delivered(), 100);
}

TEST(NetworkTest, RpcRoundTrip) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  SimTime request_seen = -1, reply_seen = -1;
  net.Rpc(0, 1, 100, 100, Millis(2),
          [&]() { request_seen = sim.now(); },
          [&]() { reply_seen = sim.now(); });
  sim.RunAll();
  // Request: 0.1 ms tx + 0.1 ms prop; handler 2 ms; reply same path.
  EXPECT_EQ(request_seen, Micros(100) + Micros(100));
  EXPECT_EQ(reply_seen, request_seen + Millis(2) + Micros(100) + Micros(100));
}

TEST(NetworkTest, ResetCountersClearsBytes) {
  exec::SimBackend sim;
  Network net(&sim, 2, TestConfig());
  net.Send(0, 1, 100, Purpose::kInterOperator, []() {});
  sim.RunAll();
  net.ResetCounters();
  EXPECT_EQ(net.total_inter_node_bytes(), 0);
  EXPECT_EQ(net.messages_sent(), 0);
}

}  // namespace
}  // namespace elasticutor
