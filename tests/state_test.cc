// Unit tests for the state layer: the per-process store + StateAccessor,
// the pluggable StateBackend implementations, and the MigrationEngine
// (chunk/byte accounting, dirty-delta tracking under concurrent writes,
// sync-blob vs chunked-live semantics).
#include <gtest/gtest.h>

#include <type_traits>

#include "net/network.h"
#include "exec/sim_backend.h"
#include "state/migration_engine.h"
#include "state/state_backend.h"
#include "state/state_store.h"

namespace elasticutor {
namespace {

// Shard blobs move, never copy: an accidental deep copy would double the
// state a migration appears to ship.
static_assert(!std::is_copy_constructible_v<ShardState>);
static_assert(!std::is_copy_assignable_v<ShardState>);
static_assert(std::is_move_constructible_v<ShardState>);
static_assert(std::is_move_assignable_v<ShardState>);

TEST(StateStoreTest, CreateAndAccount) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(1, 32768).ok());
  EXPECT_TRUE(store.HasShard(1));
  EXPECT_EQ(store.ShardBytes(1), 32768);
  EXPECT_EQ(store.TotalBytes(), 32768);
  EXPECT_EQ(store.num_shards(), 1u);
}

TEST(StateStoreTest, DuplicateCreateFails) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(1, 10).ok());
  EXPECT_EQ(store.CreateShard(1, 10).code(), StatusCode::kAlreadyExists);
}

TEST(StateAccessorTest, PerKeyIsolation) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  {
    StateAccessor a(&store, 0, 1);
    *a.GetOrCreate<int64_t>() = 10;
  }
  {
    StateAccessor b(&store, 0, 2);
    EXPECT_EQ(*b.GetOrCreate<int64_t>(), 0);  // Fresh state for key 2.
  }
  {
    StateAccessor a(&store, 0, 1);
    EXPECT_EQ(*a.GetOrCreate<int64_t>(), 10);
  }
}

TEST(StateAccessorTest, UserBytesGrowWithEntries) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  int64_t before = store.ShardBytes(0);
  for (uint64_t k = 0; k < 10; ++k) {
    StateAccessor a(&store, 0, k);
    a.GetOrCreate<int64_t>();
  }
  EXPECT_GT(store.ShardBytes(0), before);
  // Re-access does not double count.
  int64_t after = store.ShardBytes(0);
  for (uint64_t k = 0; k < 10; ++k) {
    StateAccessor a(&store, 0, k);
    a.GetOrCreate<int64_t>();
  }
  EXPECT_EQ(store.ShardBytes(0), after);
}

TEST(StateAccessorTest, AddBytesAdjustsFootprint) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  StateAccessor a(&store, 0, 5);
  a.GetOrCreate<int64_t>();
  int64_t before = store.ShardBytes(0);
  a.AddBytes(512);
  EXPECT_EQ(store.ShardBytes(0), before + 512);
}

TEST(DirtyTrackerTest, DedupesKeysAndAccumulatesGrowth) {
  DirtyTracker tracker;
  tracker.OnWrite(1, 100);
  tracker.OnWrite(1, 100);  // Re-touch: no new delta bytes.
  tracker.OnWrite(2, 50);
  tracker.OnGrow(8);
  EXPECT_EQ(tracker.dirty_keys(), 2u);
  EXPECT_EQ(tracker.dirty_bytes(), 158);
  EXPECT_EQ(tracker.writes(), 3);
}

TEST(StateAccessorTest, WritesFeedAttachedDirtyTracker) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 1000).ok());
  DirtyTracker tracker;
  store.GetShard(0)->dirty = &tracker;
  {
    StateAccessor a(&store, 0, 7);
    *a.GetOrCreate<int64_t>() = 1;
    a.AddBytes(64);
  }
  EXPECT_EQ(tracker.dirty_keys(), 1u);
  EXPECT_EQ(tracker.dirty_bytes(),
            static_cast<int64_t>(sizeof(int64_t)) +
                StateAccessor::kEntryOverheadBytes + 64);
  store.GetShard(0)->dirty = nullptr;
  {
    StateAccessor a(&store, 0, 8);
    a.GetOrCreate<int64_t>();
  }
  EXPECT_EQ(tracker.dirty_keys(), 1u);  // Detached: no further tracking.
}

// ---- MigrationEngine ----

NetworkConfig MigNetConfig() {
  NetworkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: easy arithmetic.
  cfg.propagation_ns = Micros(100);
  cfg.intra_node_ns = Micros(10);
  cfg.per_message_overhead_bytes = 0;
  return cfg;
}

struct MigrationRig {
  exec::SimBackend sim;
  Network net;
  MigrationEngine engine;
  ProcessStateStore src, dst;

  explicit MigrationRig(MigrationConfig cfg = MigrationConfig{})
      : net(&sim, 4, MigNetConfig()), engine(&sim, &net, cfg) {}
};

TEST(MigrationEngineTest, SyncBlobShipsEverythingInThePause) {
  MigrationRig rig;
  ASSERT_TRUE(rig.src.CreateShard(2, 100 * 1000).ok());
  MigrationStats stats;
  bool done = false;
  rig.engine.MigrateSync(&rig.src, &rig.dst, 2, /*from=*/0, /*to=*/1,
                         /*local_copy_bytes_per_sec=*/0.0,
                         [&](const MigrationStats& s) {
                           stats = s;
                           done = true;
                         });
  rig.sim.RunAll();
  ASSERT_TRUE(done);
  EXPECT_FALSE(rig.src.HasShard(2));
  EXPECT_TRUE(rig.dst.HasShard(2));
  EXPECT_EQ(rig.dst.ShardBytes(2), 100 * 1000);
  EXPECT_TRUE(stats.inter_node);
  EXPECT_EQ(stats.chunks, 0);  // Nothing pre-copies under sync-blob.
  EXPECT_EQ(stats.precopy_bytes, 0);
  EXPECT_EQ(stats.delta_bytes, 100 * 1000);
  EXPECT_EQ(stats.moved_bytes, 100 * 1000);
  // 100 KB at 1 MB/s = 100 ms transmission + propagation: a full pause.
  EXPECT_EQ(stats.finalize_ns, Millis(100) + Micros(100));
  EXPECT_EQ(rig.net.inter_node_bytes(Purpose::kStateMigration), 100 * 1000);
}

TEST(MigrationEngineTest, SameNodeFreeHandoffIsSynchronous) {
  MigrationRig rig;
  ASSERT_TRUE(rig.src.CreateShard(3, 64 * kKiB).ok());
  bool done = false;
  rig.engine.MigrateSync(&rig.src, &rig.dst, 3, /*from=*/1, /*to=*/1, 0.0,
                         [&](const MigrationStats& s) {
                           EXPECT_FALSE(s.inter_node);
                           EXPECT_EQ(s.finalize_ns, 0);
                           done = true;
                         });
  EXPECT_TRUE(done);  // No event needed: intra-process handoff is free.
  EXPECT_TRUE(rig.dst.HasShard(3));
  EXPECT_EQ(rig.net.inter_node_bytes(Purpose::kStateMigration), 0);
}

TEST(MigrationEngineTest, ChunkedPrecopyChunkAndByteAccounting) {
  MigrationConfig cfg;
  cfg.strategy = MigrationStrategy::kChunkedLive;
  cfg.chunk_bytes = 64 * kKiB;
  MigrationRig rig(cfg);
  ASSERT_TRUE(rig.src.CreateShard(7, 256 * kKiB).ok());
  bool precopied = false;
  auto handle = rig.engine.Begin(&rig.src, 7, /*from=*/0, /*to=*/1, 0.0,
                                 [&]() { precopied = true; });
  rig.sim.RunAll();
  ASSERT_TRUE(precopied);
  ASSERT_TRUE(handle->precopy_done());
  EXPECT_EQ(handle->stats().chunks, 4);  // 256 KB / 64 KB.
  EXPECT_EQ(handle->stats().precopy_bytes, 256 * kKiB);
  EXPECT_GT(handle->stats().precopy_ns, 0);
  // The shard never left the source during pre-copy.
  EXPECT_TRUE(rig.src.HasShard(7));

  MigrationStats stats;
  bool done = false;
  rig.engine.Finalize(handle, &rig.dst, [&](const MigrationStats& s) {
    stats = s;
    done = true;
  });
  rig.sim.RunAll();
  ASSERT_TRUE(done);
  EXPECT_TRUE(rig.dst.HasShard(7));
  EXPECT_FALSE(rig.src.HasShard(7));
  EXPECT_EQ(stats.delta_bytes, 0);  // Nothing written while pre-copying.
  EXPECT_EQ(stats.moved_bytes, 256 * kKiB);
  EXPECT_EQ(stats.finalize_ns, 0);  // Empty delta: instant flip.
  EXPECT_EQ(rig.net.inter_node_bytes(Purpose::kStateMigration), 256 * kKiB);
  EXPECT_EQ(rig.engine.chunks_shipped(), 4);
  EXPECT_EQ(rig.engine.bytes_shipped(), 256 * kKiB);
  EXPECT_EQ(rig.engine.migrations_begun(), 1);
  EXPECT_EQ(rig.engine.migrations_completed(), 1);
}

TEST(MigrationEngineTest, DirtyDeltaReplayedUnderConcurrentWrites) {
  MigrationConfig cfg;
  cfg.strategy = MigrationStrategy::kChunkedLive;
  cfg.chunk_bytes = 16 * kKiB;
  MigrationRig rig(cfg);
  ASSERT_TRUE(rig.src.CreateShard(9, 128 * kKiB).ok());
  // Pre-copy takes ~128 ms at 1 MB/s; writes land while chunks stream.
  auto handle = rig.engine.Begin(&rig.src, 9, /*from=*/0, /*to=*/1, 0.0,
                                 nullptr);
  for (int i = 0; i < 5; ++i) {
    rig.sim.After(Millis(10 * (i + 1)), [&rig, i]() {
      StateAccessor a(&rig.src, 9, /*key=*/100 + i);
      *a.GetOrCreate<int64_t>() = 1000 + i;
    });
  }
  rig.sim.RunAll();
  ASSERT_TRUE(handle->precopy_done());
  EXPECT_EQ(handle->dirty().dirty_keys(), 5u);
  const int64_t per_entry = static_cast<int64_t>(sizeof(int64_t)) +
                            StateAccessor::kEntryOverheadBytes;
  EXPECT_EQ(handle->dirty().dirty_bytes(), 5 * per_entry);

  MigrationStats stats;
  rig.engine.Finalize(handle, &rig.dst,
                      [&](const MigrationStats& s) { stats = s; });
  rig.sim.RunAll();
  EXPECT_EQ(stats.delta_bytes, 5 * per_entry);
  EXPECT_EQ(stats.moved_bytes, stats.precopy_bytes + 5 * per_entry);
  EXPECT_GT(stats.finalize_ns, 0);  // The delta ships inside the pause.
  EXPECT_LT(stats.finalize_ns, Millis(5));  // ... but it is tiny.
  // Correctness: every concurrent write is present at the destination.
  for (int i = 0; i < 5; ++i) {
    StateAccessor a(&rig.dst, 9, 100 + i);
    EXPECT_EQ(*a.GetOrCreate<int64_t>(), 1000 + i);
  }
}

TEST(MigrationEngineTest, SameNodeChunkedCopyPaysLocalRate) {
  MigrationConfig cfg;
  cfg.strategy = MigrationStrategy::kChunkedLive;
  MigrationRig rig(cfg);
  ASSERT_TRUE(rig.src.CreateShard(4, 2 * kMiB).ok());
  auto handle = rig.engine.Begin(&rig.src, 4, /*from=*/2, /*to=*/2,
                                 /*local_copy_bytes_per_sec=*/2e9, nullptr);
  rig.sim.RunAll();
  ASSERT_TRUE(handle->precopy_done());
  // 2 MiB at 2 GB/s ~= 1.05 ms of serialize+copy, no network traffic.
  EXPECT_GT(handle->stats().precopy_ns, Micros(900));
  EXPECT_EQ(rig.net.inter_node_bytes(Purpose::kStateMigration), 0);
  bool done = false;
  rig.engine.Finalize(handle, &rig.dst,
                      [&](const MigrationStats&) { done = true; });
  rig.sim.RunAll();
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.dst.HasShard(4));
}

TEST(MigrationEngineTest, MigrationPreservesUserEntries) {
  MigrationRig rig;
  ASSERT_TRUE(rig.src.CreateShard(3, 1000).ok());
  {
    StateAccessor accessor(&rig.src, 3, /*key=*/42);
    *accessor.GetOrCreate<int64_t>() = 7;
  }
  bool done = false;
  rig.engine.MigrateSync(&rig.src, &rig.dst, 3, 0, 1, 0.0,
                         [&](const MigrationStats&) { done = true; });
  rig.sim.RunAll();
  ASSERT_TRUE(done);
  StateAccessor accessor(&rig.dst, 3, 42);
  EXPECT_EQ(*accessor.GetOrCreate<int64_t>(), 7);
}

TEST(MigrationEngineTest, MissingShardNotFoundThroughStore) {
  ProcessStateStore store;
  EXPECT_FALSE(store.HasShard(2));
  ASSERT_TRUE(store.CreateShard(2, 100).ok());
  EXPECT_TRUE(store.HasShard(2));
  EXPECT_EQ(store.ShardBytes(5), 0);  // Absent shard: zero bytes.
}

// ---- StateBackend implementations ----

TEST(StateBackendTest, LocalSharedProcessLifecycle) {
  LocalSharedBackend backend;
  ProcessStateStore* home = backend.AddProcess(0);
  EXPECT_EQ(backend.AddProcess(0), home);  // Idempotent.
  ASSERT_TRUE(home->CreateShard(1, 500).ok());
  ProcessStateStore* remote = backend.AddProcess(1);
  EXPECT_NE(home, remote);
  EXPECT_EQ(backend.AccessStore(0), home);
  EXPECT_EQ(backend.AccessStore(1), remote);
  EXPECT_EQ(backend.TotalBytes(), 500);
  EXPECT_FALSE(backend.NeedsMigration(0, 0));  // Intra-process sharing.
  EXPECT_TRUE(backend.NeedsMigration(0, 1));
  EXPECT_EQ(backend.OnTupleAccess(1), 0);
  EXPECT_DOUBLE_EQ(backend.local_copy_bytes_per_sec(), 0.0);
  backend.RemoveProcess(1);  // Empty: fine.
}

TEST(StateBackendTest, AlwaysMigratePolicy) {
  AlwaysMigrateBackend backend(2e9);
  EXPECT_TRUE(backend.NeedsMigration(0, 0));  // Even same-process moves.
  EXPECT_TRUE(backend.NeedsMigration(0, 1));
  EXPECT_DOUBLE_EQ(backend.local_copy_bytes_per_sec(), 2e9);
  EXPECT_EQ(backend.kind(), StateBackendKind::kAlwaysMigrate);
}

TEST(StateBackendTest, ExternalKvRoutesEveryNodeToHomeStore) {
  ExternalKvBackend backend(/*home=*/0, /*net=*/nullptr, Micros(150), 128);
  ProcessStateStore* store = backend.AddProcess(0);
  EXPECT_EQ(backend.AddProcess(3), store);   // One store for the cluster.
  EXPECT_EQ(backend.AccessStore(2), store);  // Remote tasks read it too.
  EXPECT_FALSE(backend.NeedsMigration(0, 3));
  EXPECT_EQ(backend.OnTupleAccess(2), 2 * Micros(150));  // Read + write.
}

TEST(StateBackendTest, ExternalKvAttributesAccessBytesToNetwork) {
  exec::SimBackend sim;
  Network net(&sim, 4, MigNetConfig());
  ExternalKvBackend backend(/*home=*/0, &net, Micros(150), 128);
  // A task on a remote node: the read/write round trip crosses the wire.
  backend.OnTupleAccess(/*task_node=*/2);
  sim.RunAll();
  EXPECT_EQ(net.inter_node_bytes(Purpose::kStateAccess), 2 * 128);
  // A task co-located with the store: loopback accounting only.
  backend.OnTupleAccess(/*task_node=*/0);
  sim.RunAll();
  EXPECT_EQ(net.intra_node_bytes(Purpose::kStateAccess), 2 * 128);
}

TEST(StateBackendTest, FactorySelectsBackend) {
  StateLayerConfig config;
  config.backend = StateBackendKind::kLocalShared;
  EXPECT_EQ(CreateStateBackend(config, 0, nullptr)->kind(),
            StateBackendKind::kLocalShared);
  config.backend = StateBackendKind::kAlwaysMigrate;
  EXPECT_EQ(CreateStateBackend(config, 0, nullptr)->kind(),
            StateBackendKind::kAlwaysMigrate);
  config.backend = StateBackendKind::kExternalKv;
  EXPECT_EQ(CreateStateBackend(config, 0, nullptr)->kind(),
            StateBackendKind::kExternalKv);
  EXPECT_STREQ(StateBackendName(StateBackendKind::kExternalKv), "external-kv");
  EXPECT_STREQ(MigrationStrategyName(MigrationStrategy::kChunkedLive),
               "chunked-live");
}

}  // namespace
}  // namespace elasticutor
