// Unit tests for the per-process state store and StateAccessor.
#include <gtest/gtest.h>

#include "state/state_store.h"

namespace elasticutor {
namespace {

TEST(StateStoreTest, CreateAndAccount) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(1, 32768).ok());
  EXPECT_TRUE(store.HasShard(1));
  EXPECT_EQ(store.ShardBytes(1), 32768);
  EXPECT_EQ(store.TotalBytes(), 32768);
  EXPECT_EQ(store.num_shards(), 1u);
}

TEST(StateStoreTest, DuplicateCreateFails) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(1, 10).ok());
  EXPECT_EQ(store.CreateShard(1, 10).code(), StatusCode::kAlreadyExists);
}

TEST(StateStoreTest, ExtractRemovesShard) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(2, 100).ok());
  Result<ShardState> blob = store.ExtractShard(2);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->base_bytes, 100);
  EXPECT_FALSE(store.HasShard(2));
  EXPECT_EQ(store.ExtractShard(2).status().code(), StatusCode::kNotFound);
}

TEST(StateStoreTest, MigrationPreservesContents) {
  ProcessStateStore src, dst;
  ASSERT_TRUE(src.CreateShard(3, 1000).ok());
  {
    StateAccessor accessor(&src, 3, /*key=*/42);
    *accessor.GetOrCreate<int64_t>() = 7;
  }
  ShardState blob = std::move(src.ExtractShard(3)).value();
  ASSERT_TRUE(dst.InstallShard(3, std::move(blob)).ok());
  StateAccessor accessor(&dst, 3, 42);
  EXPECT_EQ(*accessor.GetOrCreate<int64_t>(), 7);
}

TEST(StateAccessorTest, PerKeyIsolation) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  {
    StateAccessor a(&store, 0, 1);
    *a.GetOrCreate<int64_t>() = 10;
  }
  {
    StateAccessor b(&store, 0, 2);
    EXPECT_EQ(*b.GetOrCreate<int64_t>(), 0);  // Fresh state for key 2.
  }
  {
    StateAccessor a(&store, 0, 1);
    EXPECT_EQ(*a.GetOrCreate<int64_t>(), 10);
  }
}

TEST(StateAccessorTest, UserBytesGrowWithEntries) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  int64_t before = store.ShardBytes(0);
  for (uint64_t k = 0; k < 10; ++k) {
    StateAccessor a(&store, 0, k);
    a.GetOrCreate<int64_t>();
  }
  EXPECT_GT(store.ShardBytes(0), before);
  // Re-access does not double count.
  int64_t after = store.ShardBytes(0);
  for (uint64_t k = 0; k < 10; ++k) {
    StateAccessor a(&store, 0, k);
    a.GetOrCreate<int64_t>();
  }
  EXPECT_EQ(store.ShardBytes(0), after);
}

TEST(StateAccessorTest, AddBytesAdjustsFootprint) {
  ProcessStateStore store;
  ASSERT_TRUE(store.CreateShard(0, 0).ok());
  StateAccessor a(&store, 0, 5);
  a.GetOrCreate<int64_t>();
  int64_t before = store.ShardBytes(0);
  a.AddBytes(512);
  EXPECT_EQ(store.ShardBytes(0), before + 512);
}

}  // namespace
}  // namespace elasticutor
