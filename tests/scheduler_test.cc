// Tests for the performance model (Erlang-C / Jackson / greedy allocation)
// and the CPU-to-executor assignment (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

// ---- Erlang-C / M/M/k ----

TEST(PerfModelTest, ErlangCMatchesMm1) {
  // For k = 1 the waiting probability equals the utilization ρ.
  EXPECT_NEAR(ErlangC(1, 500.0, 1000.0), 0.5, 1e-9);
  EXPECT_NEAR(ErlangC(1, 900.0, 1000.0), 0.9, 1e-9);
}

TEST(PerfModelTest, Mm1SojournClosedForm) {
  // M/M/1: T = 1/(µ-λ).
  EXPECT_NEAR(MmkSojournSeconds(1, 500.0, 1000.0), 1.0 / 500.0, 1e-9);
  EXPECT_NEAR(MmkSojournSeconds(1, 900.0, 1000.0), 1.0 / 100.0, 1e-9);
}

TEST(PerfModelTest, UnstableQueueIsInfinite) {
  EXPECT_TRUE(std::isinf(MmkSojournSeconds(1, 1200.0, 1000.0)));
  EXPECT_TRUE(std::isinf(MmkSojournSeconds(2, 2000.0, 1000.0)));
}

TEST(PerfModelTest, MoreServersReduceSojourn) {
  double t2 = MmkSojournSeconds(2, 1500.0, 1000.0);
  double t3 = MmkSojournSeconds(3, 1500.0, 1000.0);
  double t8 = MmkSojournSeconds(8, 1500.0, 1000.0);
  EXPECT_GT(t2, t3);
  EXPECT_GT(t3, t8);
  // Converges to the pure service time 1/µ.
  EXPECT_NEAR(t8, 1e-3, 2e-4);
}

TEST(PerfModelTest, JacksonWeightsByArrivalRate) {
  std::vector<ExecutorDemand> demands = {{900.0, 1000.0}, {100.0, 1000.0}};
  std::vector<int> k = {1, 1};
  double t = JacksonLatencySeconds(demands, k, 1000.0);
  // (900·T1 + 100·T2)/1000 with T1 = 1/100, T2 = 1/900.
  EXPECT_NEAR(t, (900.0 / 100.0 + 100.0 / 900.0) / 1000.0, 1e-9);
}

// ---- Greedy allocation ----

TEST(AllocationTest, MinimalStableAllocation) {
  std::vector<ExecutorDemand> demands = {{2500.0, 1000.0}, {500.0, 1000.0}};
  auto result = AllocateCores(demands, 100, /*target=*/1e9, false);
  EXPECT_EQ(result.cores[0], 3);  // floor(2.5)+1.
  EXPECT_EQ(result.cores[1], 1);
}

TEST(AllocationTest, MeetsLatencyTarget) {
  // Jackson E[T] here is T1 + T2 >= 2/µ = 2 ms; ask for 2.2 ms which needs
  // extra cores beyond the minimal stable allocation.
  std::vector<ExecutorDemand> demands = {{3500.0, 1000.0}, {3500.0, 1000.0}};
  auto result = AllocateCores(demands, 64, /*target=*/0.0022, false);
  EXPECT_TRUE(result.target_met);
  EXPECT_LE(result.expected_latency_s, 0.0022);
  int used = result.cores[0] + result.cores[1];
  EXPECT_LE(used, 64);
  EXPECT_GT(used, 8);  // Needs more than the minimal stable allocation.
}

TEST(AllocationTest, GreedyPrefersHigherGain) {
  // One hot executor, three idle: extra cores go to the hot one first.
  std::vector<ExecutorDemand> demands = {
      {5000.0, 1000.0}, {100.0, 1000.0}, {100.0, 1000.0}, {100.0, 1000.0}};
  auto result = AllocateCores(demands, 12, 0.0011, false);
  EXPECT_GT(result.cores[0], result.cores[1]);
}

TEST(AllocationTest, AllocateAllUsesEveryCore) {
  std::vector<ExecutorDemand> demands(8, ExecutorDemand{1000.0, 1000.0});
  auto result = AllocateCores(demands, 64, 0.002, true);
  EXPECT_EQ(std::accumulate(result.cores.begin(), result.cores.end(), 0), 64);
}

TEST(AllocationTest, CapacityShortfallShavesGracefully) {
  std::vector<ExecutorDemand> demands(8, ExecutorDemand{9000.0, 1000.0});
  auto result = AllocateCores(demands, 16, 0.002, false);
  int used = std::accumulate(result.cores.begin(), result.cores.end(), 0);
  EXPECT_LE(used, 16);
  for (int k : result.cores) EXPECT_GE(k, 1);
}

// ---- Algorithm 1 (assignment) ----

AssignmentInput BaseInput(int nodes, int executors) {
  AssignmentInput in;
  in.node_capacity.assign(nodes, 8);
  in.home.resize(executors);
  in.target.assign(executors, 1);
  in.state_bytes.assign(executors, 8e6);
  in.data_intensity.assign(executors, 0.0);
  in.current = SparseAssignment(executors);
  for (int j = 0; j < executors; ++j) {
    in.home[j] = j % nodes;
    in.current.Add(j % nodes, j, 1);
  }
  return in;
}

TEST(AssignmentTest, NoChangeWhenTargetsMatch) {
  AssignmentInput in = BaseInput(4, 8);
  auto out = SolveAssignment(in);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.x, in.current);
  EXPECT_DOUBLE_EQ(out.migration_cost_bytes, 0.0);
}

TEST(AssignmentTest, SatisfiesTargetsAndCapacity) {
  AssignmentInput in = BaseInput(4, 8);
  in.target = {5, 1, 1, 1, 5, 1, 1, 1};
  auto out = SolveAssignment(in);
  ASSERT_TRUE(out.feasible);
  auto dense = out.x.ToDense(4);
  for (int j = 0; j < 8; ++j) {
    EXPECT_GE(out.x.Total(j), in.target[j]) << "executor " << j;
  }
  for (int i = 0; i < 4; ++i) {
    int used = 0;
    for (int j = 0; j < 8; ++j) used += dense[i][j];
    EXPECT_LE(used, in.node_capacity[i]) << "node " << i;
  }
}

TEST(AssignmentTest, DataIntensiveExecutorStaysLocal) {
  AssignmentInput in = BaseInput(4, 8);
  in.target[0] = 6;
  in.data_intensity[0] = 10e6;  // Above φ = 512 KB/s.
  auto out = SolveAssignment(in);
  ASSERT_TRUE(out.feasible);
  // All 6 cores of executor 0 on its home node (node 0).
  EXPECT_EQ(out.x.At(in.home[0], 0), 6);
}

TEST(AssignmentTest, PhiDoublesWhenLocalityInfeasible) {
  AssignmentInput in = BaseInput(2, 4);  // 2 nodes x 8 cores.
  // Both data-intensive executors home on node 0 and each wants 6 cores:
  // together infeasible locally (12 > 8), so φ must double until one is
  // allowed remote cores.
  in.home = {0, 0, 1, 1};
  in.current = SparseAssignment(4);
  in.current.Add(0, 0, 1);
  in.current.Add(0, 1, 1);
  in.current.Add(1, 2, 1);
  in.current.Add(1, 3, 1);
  in.target = {6, 6, 1, 1};
  in.data_intensity = {10e6, 9e6, 0, 0};
  auto out = SolveAssignment(in);
  ASSERT_TRUE(out.feasible);
  EXPECT_GT(out.phi_used, in.phi);
}

TEST(AssignmentTest, InfeasibleWhenOverCapacity) {
  AssignmentInput in = BaseInput(2, 4);
  in.target = {8, 8, 8, 8};  // 32 > 16 cores.
  auto out = SolveAssignment(in);
  EXPECT_FALSE(out.feasible);
}

TEST(AssignmentTest, PrefersCheapDonors) {
  AssignmentInput in = BaseInput(2, 3);
  // Executor 2 is over-provisioned with cores on both nodes; executor 0
  // needs one more. Cheapest donor core should leave migration cost ~0 when
  // a free core exists.
  in.current = SparseAssignment(3);
  in.current.Add(0, 0, 1);
  in.current.Add(0, 1, 1);
  in.current.Add(1, 2, 2);
  in.target = {2, 1, 2};
  auto out = SolveAssignment(in);
  ASSERT_TRUE(out.feasible);
  // Free cores exist (16 capacity, 4 used): no deallocation needed and the
  // new core lands with minimal cost.
  EXPECT_DOUBLE_EQ(out.migration_cost_bytes, 0.0);
}

TEST(AssignmentTest, MigrationCostAccountsProportionalState) {
  AssignmentInput in = BaseInput(2, 1);
  in.current = SparseAssignment(1);
  in.current.Add(0, 0, 2);  // 2 cores on node 0, state 8 MB.
  in.target = {2};
  // Force a move by making node 0 too small for an added executor... here
  // just verify the cost function directly: moving half the cores moves
  // half the state.
  SparseAssignment x = SparseAssignment::FromDense({{1}, {1}});
  EXPECT_NEAR(MigrationCostBytes(in, x), 4e6, 1.0);
}

TEST(AssignmentTest, NaiveIgnoresCurrentPlacement) {
  AssignmentInput in = BaseInput(4, 8);
  in.target.assign(8, 3);
  auto naive = NaiveAssignment(in);
  ASSERT_TRUE(naive.feasible);
  auto optimized = SolveAssignment(in);
  ASSERT_TRUE(optimized.feasible);
  EXPECT_GE(naive.migration_cost_bytes, optimized.migration_cost_bytes);
}

// ---- End-to-end scheduler behavior ----

TEST(DynamicSchedulerTest, ShiftsCoresTowardLoad) {
  // Two-operator micro topology; all keys concentrated on a tiny hot set so
  // one elastic executor carries most load — it must end with most cores.
  TopologyBuilder builder;
  OperatorSpec source;
  source.name = "src";
  source.is_source = true;
  source.num_executors = 2;
  source.shards_per_executor = 1;
  source.source.mode = SourceSpec::Mode::kSaturation;
  source.source.factory = [](Rng* rng, SimTime) {
    Tuple t;
    // 80% of traffic on keys 0..3, the rest uniform over 4096.
    t.key = rng->NextBool(0.8) ? rng->NextBounded(4)
                               : rng->NextBounded(4096);
    t.size_bytes = 128;
    return t;
  };
  OperatorId src = builder.AddOperator(std::move(source));
  OperatorSpec work;
  work.name = "work";
  work.num_executors = 4;
  work.shards_per_executor = 32;
  work.mean_cost_ns = Millis(1);
  work.selectivity = 0.0;
  OperatorId w = builder.AddOperator(std::move(work));
  ASSERT_TRUE(builder.Connect(src, w).ok());
  Topology topology = std::move(builder.Build()).value();

  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(8));

  auto execs = engine.elastic_executors(w);
  int max_cores = 0, total = 0;
  for (const auto& ex : execs) {
    max_cores = std::max(max_cores, ex->num_tasks());
    total += ex->num_tasks();
  }
  EXPECT_GT(max_cores, total / 4) << "hot executor should hold extra cores";
  EXPECT_GT(engine.scheduler()->cycles(), 0);
  EXPECT_GT(engine.scheduler()->avg_scheduling_wall_ms(), 0.0);
}

// ---- Pause-cost model (chunked migration; consumed by the scheduler) ----

TEST(PauseCostModelTest, SyncBlobPauseGrowsLinearlyWithState) {
  PauseCostModel model;
  model.bandwidth_bytes_per_sec = 125e6;
  model.sync_seconds = 0.002;
  model.chunked_live = false;
  double p1 = EstimatePauseSeconds(model, 1 * kMiB);
  double p32 = EstimatePauseSeconds(model, 32 * kMiB);
  EXPECT_NEAR(p32 - model.sync_seconds, 32.0 * (p1 - model.sync_seconds),
              1e-9);
  EXPECT_NEAR(p32, 0.002 + 32.0 * 1048576.0 / 125e6, 1e-9);
}

TEST(PauseCostModelTest, ChunkedLivePauseStaysFlat) {
  PauseCostModel model;
  model.bandwidth_bytes_per_sec = 125e6;
  model.sync_seconds = 0.002;
  model.chunked_live = true;
  model.dirty_bytes_per_sec = 1e6;  // 1 MB/s of writes into the shard.
  double p1 = EstimatePauseSeconds(model, 1 * kMiB);
  double p32 = EstimatePauseSeconds(model, 32 * kMiB);
  // The pause only grows with the dirty delta: its slope vs state size is
  // the sync-blob slope scaled by dirty_rate / bandwidth (1/125 here).
  model.chunked_live = false;
  double s1 = EstimatePauseSeconds(model, 1 * kMiB);
  double s32 = EstimatePauseSeconds(model, 32 * kMiB);
  EXPECT_NEAR((p32 - p1) / (s32 - s1), 1e6 / 125e6, 1e-9);
  EXPECT_LT(p32, s32 / 50.0);
}

TEST(PauseCostModelTest, DeltaNeverExceedsTheStateItself) {
  PauseCostModel model;
  model.bandwidth_bytes_per_sec = 1e6;
  model.sync_seconds = 0.0;
  model.chunked_live = true;
  model.dirty_bytes_per_sec = 1e12;  // Pathological write rate.
  // Capped at re-shipping the whole state once.
  EXPECT_NEAR(EstimatePauseSeconds(model, 1 * kMiB), 1048576.0 / 1e6, 1e-9);
}

namespace {

EngineConfig PauseBudgetConfig() {
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  return config;
}

Topology TwoOpTraceTopology() {
  TopologyBuilder builder;
  OperatorSpec src;
  src.name = "src";
  src.is_source = true;
  src.num_executors = 2;
  src.shards_per_executor = 1;
  src.source.mode = SourceSpec::Mode::kTrace;
  src.source.rate_fn = [](SimTime) { return 20000.0; };
  src.source.factory = [](Rng* rng, SimTime) {
    Tuple t;
    t.key = rng->NextU64() % 1024;
    t.size_bytes = 128;
    return t;
  };
  OperatorId s = builder.AddOperator(std::move(src));
  OperatorSpec work;
  work.name = "work";
  work.num_executors = 2;
  work.shards_per_executor = 16;
  work.mean_cost_ns = Millis(1);
  work.selectivity = 0.0;
  OperatorId w = builder.AddOperator(std::move(work));
  ELASTICUTOR_CHECK(builder.Connect(s, w).ok());
  return std::move(builder.Build()).value();
}

}  // namespace

TEST(PauseCostModelTest, PauseBudgetDefersStateMovingCycles) {
  // The pause estimate is a scheduling input: with a (near-)zero budget,
  // every diff whose assignment would move shard state is deferred, so the
  // overloaded executors never spread off their home nodes.
  EngineConfig config = PauseBudgetConfig();
  config.scheduler.pause_budget_s = 1e-6;
  Engine engine(TwoOpTraceTopology(), config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(6));
  ASSERT_GT(engine.scheduler()->cycles(), 0);
  EXPECT_EQ(engine.scheduler()->core_moves_issued(), 0);

  // Same workload with the budget off: the scheduler does spread cores.
  EngineConfig free_config = PauseBudgetConfig();
  Engine unbudgeted(TwoOpTraceTopology(), free_config);
  ASSERT_TRUE(unbudgeted.Setup().ok());
  unbudgeted.Start();
  unbudgeted.RunFor(Seconds(6));
  EXPECT_GT(unbudgeted.scheduler()->core_moves_issued(), 0);
}

TEST(PauseCostModelTest, SchedulerPublishesPauseEstimate) {
  // The scheduler translates each cycle's planned state movement into an
  // expected pause cost under the configured strategy.
  EngineConfig config = PauseBudgetConfig();
  Engine engine(TwoOpTraceTopology(), config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(6));
  ASSERT_GT(engine.scheduler()->cycles(), 0);
  // With chunked-live in effect the estimate exists and is bounded by the
  // sync-blob cost of the same movement.
  double live = engine.scheduler()->last_pause_estimate_s();
  EXPECT_GE(live, 0.0);
  PauseCostModel sync_model;
  sync_model.bandwidth_bytes_per_sec =
      engine.config().net.bandwidth_bytes_per_sec;
  sync_model.sync_seconds = 1.0;  // Generous drain bound.
  sync_model.chunked_live = false;
  EXPECT_LE(live, EstimatePauseSeconds(
                      sync_model,
                      static_cast<int64_t>(
                          engine.scheduler()->last_migration_cost_bytes())));
}

}  // namespace
}  // namespace elasticutor
