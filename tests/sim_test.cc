// Unit tests for the discrete-event simulator: ordering, determinism,
// cancellation, periodic processes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace elasticutor {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&]() { order.push_back(3); });
  q.Push(10, [&]() { order.push_back(1); });
  q.Push(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Push(10, [&]() { ran = true; });
  q.Push(20, []() {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.PeekTime(), 20);
  while (!q.empty()) q.Pop().fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelReportsLiveness) {
  EventQueue q;
  EventId id = q.Push(10, []() {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id)) << "double cancel must report failure";
  EXPECT_FALSE(q.Cancel(9999)) << "unknown id must report failure";

  EventId executed = q.Push(5, []() {});
  while (!q.empty()) q.Pop().fn();
  EXPECT_FALSE(q.Cancel(executed)) << "cancelling an executed event is a "
                                      "no-op that reports failure";
}

TEST(SimulatorTest, CancelReturnsWhetherEventWasPending) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.At(10, [&]() { ++fired; });
  sim.At(20, [&]() { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&]() { ++fired; });
  sim.At(20, [&]() { ++fired; });
  sim.At(30, [&]() { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);  // Events at exactly `until` run.
  EXPECT_EQ(sim.now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  SimTime seen = -1;
  sim.At(100, [&]() {
    sim.After(50, [&]() { seen = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.After(10, recurse);
  };
  sim.After(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, PeriodicFiresUntilStopped) {
  Simulator sim;
  int count = 0;
  sim.Periodic(10, 10, [&](SimTime) { return ++count < 4; });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, PeriodicTimesAreExact) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Periodic(5, 7, [&](SimTime t) {
    times.push_back(t);
    return times.size() < 3;
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 12, 19}));
}

TEST(SimulatorTest, DeterministicEventCount) {
  auto run = []() {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      sim.After(i * 3 % 17, [&]() { ++fired; });
    }
    sim.RunAll();
    return sim.events_executed();
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

}  // namespace
}  // namespace elasticutor
