// Unit tests for the discrete-event simulator: ordering, determinism,
// cancellation, periodic processes, the inline callback type, and a
// randomized index-heap stress test against a multimap reference model.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_fn.h"
#include "sim/event_queue.h"
#include "exec/sim_backend.h"

namespace elasticutor {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&]() { order.push_back(3); });
  q.Push(10, [&]() { order.push_back(1); });
  q.Push(20, [&]() { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Push(10, [&]() { ran = true; });
  q.Push(20, []() {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.PeekTime(), 20);
  while (!q.empty()) q.Pop().fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelReportsLiveness) {
  EventQueue q;
  EventId id = q.Push(10, []() {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id)) << "double cancel must report failure";
  EXPECT_FALSE(q.Cancel(9999)) << "unknown id must report failure";

  EventId executed = q.Push(5, []() {});
  while (!q.empty()) q.Pop().fn();
  EXPECT_FALSE(q.Cancel(executed)) << "cancelling an executed event is a "
                                      "no-op that reports failure";
}

TEST(EventQueueTest, CancelDoesNotHitRecycledSlot) {
  // Slots are recycled through a free list; an id issued for an executed
  // event must not cancel whatever event reuses its slot later.
  EventQueue q;
  int fired = 0;
  EventId old_id = q.Push(10, [&]() { ++fired; });
  q.Pop().fn();  // Executes and frees the slot.
  EventId fresh = q.Push(20, [&]() { ++fired; });
  EXPECT_FALSE(q.Cancel(old_id)) << "stale id must not cancel a reused slot";
  EXPECT_EQ(q.PeekTime(), 20);
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(q.Cancel(fresh));
}

TEST(EventQueueTest, ConstAccessorsSkipCancelled) {
  EventQueue q;
  EventId a = q.Push(10, []() {});
  q.Push(30, []() {});
  ASSERT_TRUE(q.Cancel(a));
  const EventQueue& cq = q;  // empty()/PeekTime() are logically const.
  EXPECT_FALSE(cq.empty());
  EXPECT_EQ(cq.PeekTime(), 30);
  EXPECT_EQ(cq.live_size(), 1u);
}

TEST(EventQueueTest, RandomizedStressMatchesMultimapModel) {
  // Reference model: a multimap ordered by (time, push sequence) plus a
  // liveness map, driven through a seeded interleaving of push/pop/cancel.
  EventQueue q;
  std::multimap<std::pair<SimTime, uint64_t>, int> model;  // -> tag.
  std::map<EventId,
           std::multimap<std::pair<SimTime, uint64_t>, int>::iterator>
      live;
  std::vector<EventId> issued;
  std::mt19937_64 rng(20260728);
  uint64_t seq = 0;
  int next_tag = 0;
  int last_fired = -1;

  for (int step = 0; step < 20000; ++step) {
    int op = static_cast<int>(rng() % 10);
    if (op < 5 || model.empty()) {  // Push.
      SimTime time = static_cast<SimTime>(rng() % 1000);
      int tag = next_tag++;
      EventId id = q.Push(time, [&last_fired, tag]() { last_fired = tag; });
      auto it = model.emplace(std::make_pair(time, seq++), tag);
      ASSERT_TRUE(live.emplace(id, it).second) << "duplicate live id";
      issued.push_back(id);
    } else if (op < 8) {  // Pop.
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.PeekTime(), model.begin()->first.first);
      EventQueue::Entry entry = q.Pop();
      entry.fn();
      ASSERT_EQ(last_fired, model.begin()->second)
          << "pop order diverged from the reference model";
      ASSERT_EQ(entry.time, model.begin()->first.first);
      ASSERT_EQ(live.count(entry.id), 1u);
      live.erase(entry.id);
      model.erase(model.begin());
    } else if (!issued.empty()) {  // Cancel a random (possibly dead) id.
      EventId id = issued[rng() % issued.size()];
      auto it = live.find(id);
      bool expect_live = it != live.end();
      ASSERT_EQ(q.Cancel(id), expect_live);
      if (expect_live) {
        model.erase(it->second);
        live.erase(it);
      }
    }
    ASSERT_EQ(q.live_size(), model.size());
  }
  while (!model.empty()) {
    ASSERT_FALSE(q.empty());
    EventQueue::Entry entry = q.Pop();
    entry.fn();
    ASSERT_EQ(last_fired, model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventFnTest, SmallClosuresStayInline) {
  int64_t before = EventFn::heap_allocations();
  int hits = 0;
  EventFn fn([&hits]() { ++hits; });
  EXPECT_FALSE(fn.on_heap());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(EventFn::heap_allocations(), before);
}

TEST(EventFnTest, TupleSizedCapturesStayInline) {
  // The hot-path closures capture a 64-byte Tuple plus a pointer or two;
  // they must never fall back to the heap.
  int64_t before = EventFn::heap_allocations();
  struct {
    std::array<unsigned char, 64> tuple{};
    void* target = nullptr;
    void* extra = nullptr;
  } capture;
  EventFn fn([capture]() { (void)capture; });
  EXPECT_FALSE(fn.on_heap());
  EXPECT_EQ(EventFn::heap_allocations(), before);
}

TEST(EventFnTest, OversizedCapturesFallBackToHeapAndCount) {
  int64_t before = EventFn::heap_allocations();
  std::array<unsigned char, 256> big{};
  big[0] = 7;
  unsigned char seen = 0;
  EventFn fn([big, &seen]() { seen = big[0]; });
  EXPECT_TRUE(fn.on_heap());
  EXPECT_EQ(EventFn::heap_allocations(), before + 1);
  EventFn moved = std::move(fn);  // Pointer transfer: no new allocation.
  EXPECT_EQ(EventFn::heap_allocations(), before + 1);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(EventFnTest, MoveAndNullSemantics) {
  int calls = 0;
  EventFn a([&calls]() { ++calls; });
  EXPECT_TRUE(static_cast<bool>(a));
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
  b = nullptr;
  EXPECT_FALSE(static_cast<bool>(b));
  EventFn empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(SimulatorTest, CancelReturnsWhetherEventWasPending) {
  exec::SimBackend sim;
  int fired = 0;
  EventId id = sim.At(10, [&]() { ++fired; });
  sim.At(20, [&]() { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  exec::SimBackend sim;
  int fired = 0;
  sim.At(10, [&]() { ++fired; });
  sim.At(20, [&]() { ++fired; });
  sim.At(30, [&]() { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);  // Events at exactly `until` run.
  EXPECT_EQ(sim.now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  exec::SimBackend sim;
  SimTime seen = -1;
  sim.At(100, [&]() {
    sim.After(50, [&]() { seen = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  exec::SimBackend sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.After(10, recurse);
  };
  sim.After(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, PeriodicFiresUntilStopped) {
  exec::SimBackend sim;
  int count = 0;
  sim.Periodic(10, 10, [&](SimTime) { return ++count < 4; });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, PeriodicTimesAreExact) {
  exec::SimBackend sim;
  std::vector<SimTime> times;
  sim.Periodic(5, 7, [&](SimTime t) {
    times.push_back(t);
    return times.size() < 3;
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 12, 19}));
}

TEST(SimulatorTest, DeterministicEventCount) {
  auto run = []() {
    exec::SimBackend sim;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      sim.After(i * 3 % 17, [&]() { ++fired; });
    }
    sim.RunAll();
    return sim.events_executed();
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  exec::SimBackend sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

}  // namespace
}  // namespace elasticutor
