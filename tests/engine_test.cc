// Tests for the engine substrate: topology validation, partitioning,
// metrics, spouts and the static executor data path.
#include <gtest/gtest.h>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

OperatorSpec SimpleSource(int executors = 2) {
  OperatorSpec spec;
  spec.name = "src";
  spec.is_source = true;
  spec.num_executors = executors;
  spec.shards_per_executor = 1;
  spec.source.factory = [](Rng* rng, SimTime) {
    Tuple t;
    t.key = rng->NextBounded(64);
    t.size_bytes = 128;
    return t;
  };
  return spec;
}

TEST(TopologyTest, BuildValidatesSources) {
  TopologyBuilder b;
  OperatorSpec bad;
  bad.name = "no-factory";
  bad.is_source = true;
  b.AddOperator(std::move(bad));
  EXPECT_FALSE(b.Build().ok());
}

TEST(TopologyTest, RejectsCycles) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator(SimpleSource());
  OperatorSpec w;
  w.name = "w";
  OperatorId x = b.AddOperator(w);
  w.name = "v";
  OperatorId y = b.AddOperator(w);
  ASSERT_TRUE(b.Connect(a, x).ok());
  ASSERT_TRUE(b.Connect(x, y).ok());
  ASSERT_TRUE(b.Connect(y, x).ok());
  EXPECT_FALSE(b.Build().ok());
}

TEST(TopologyTest, RejectsUnreachableOperator) {
  TopologyBuilder b;
  b.AddOperator(SimpleSource());
  OperatorSpec w;
  w.name = "island";
  b.AddOperator(w);
  EXPECT_FALSE(b.Build().ok());
}

TEST(TopologyTest, RejectsDuplicateEdgeAndSelfLoop) {
  TopologyBuilder b;
  OperatorId a = b.AddOperator(SimpleSource());
  OperatorSpec w;
  w.name = "w";
  OperatorId x = b.AddOperator(w);
  ASSERT_TRUE(b.Connect(a, x).ok());
  EXPECT_FALSE(b.Connect(a, x).ok());
  EXPECT_FALSE(b.Connect(x, x).ok());
}

TEST(TopologyTest, TopoOrderSourcesFirst) {
  TopologyBuilder b;
  OperatorSpec w;
  w.name = "w";
  OperatorId x = b.AddOperator(w);  // Added before the source on purpose.
  OperatorId a = b.AddOperator(SimpleSource());
  ASSERT_TRUE(b.Connect(a, x).ok());
  Topology t = std::move(b.Build()).value();
  EXPECT_EQ(t.topo_order().front(), a);
  EXPECT_TRUE(t.is_sink(x));
  EXPECT_FALSE(t.is_sink(a));
}

TEST(PartitionTest, ShardOfIsStableAndInRange) {
  OperatorPartition p(64, 8, /*salt=*/3);
  for (uint64_t key = 0; key < 1000; ++key) {
    ShardId s = p.ShardOf(key);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 64);
    EXPECT_EQ(s, p.ShardOf(key));
  }
}

TEST(PartitionTest, BlockedMapGroupsContiguously) {
  OperatorPartition p(64, 8, 0);
  p.SetBlockedMap(8);
  EXPECT_EQ(p.ExecutorOfShard(0), 0);
  EXPECT_EQ(p.ExecutorOfShard(7), 0);
  EXPECT_EQ(p.ExecutorOfShard(8), 1);
  EXPECT_EQ(p.ExecutorOfShard(63), 7);
}

TEST(PartitionTest, SetMapValidates) {
  OperatorPartition p(8, 2, 0);
  EXPECT_FALSE(p.SetMap({0, 1}, 2).ok());            // Wrong size.
  EXPECT_FALSE(p.SetMap({0, 1, 2, 0, 1, 0, 1, 0}, 2).ok());  // Bad index.
  uint64_t v = p.version();
  EXPECT_TRUE(p.SetMap({0, 1, 0, 1, 1, 1, 0, 0}, 2).ok());
  EXPECT_GT(p.version(), v);
}

TEST(PartitionTest, ShardsOfInvertsMap) {
  OperatorPartition p(16, 4, 0);
  auto shards = p.ShardsOf(2);
  for (ShardId s : shards) EXPECT_EQ(p.ExecutorOfShard(s), 2);
  size_t total = 0;
  for (int e = 0; e < 4; ++e) total += p.ShardsOf(e).size();
  EXPECT_EQ(total, 16u);
}

TEST(OrderValidatorTest, DetectsReordering) {
  OrderValidator v;
  uint64_t s1 = v.OnArrive(0, 42);
  uint64_t s2 = v.OnArrive(0, 42);
  v.OnProcess(0, 42, s2);  // Out of order.
  v.OnProcess(0, 42, s1);
  EXPECT_GT(v.violations(), 0);
}

TEST(OrderValidatorTest, AcceptsInOrderPerKey) {
  OrderValidator v;
  for (uint64_t key = 0; key < 4; ++key) {
    for (int i = 0; i < 10; ++i) {
      v.OnProcess(1, key, v.OnArrive(1, key));
    }
  }
  EXPECT_EQ(v.violations(), 0);
}

class MicroEngineTest : public ::testing::TestWithParam<Paradigm> {};

TEST_P(MicroEngineTest, ProcessesTuplesEndToEnd) {
  MicroOptions options;
  options.generator_executors = 4;
  options.calculator_executors = 4;
  options.shards_per_executor = 16;
  auto workload = BuildMicroWorkload(options, 1);
  ASSERT_TRUE(workload.ok());
  EngineConfig config;
  config.paradigm = GetParam();
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(3));
  EXPECT_GT(engine.metrics()->sink_count(), 1000);
  EXPECT_GT(engine.LatencyHistogram().mean(), 0.0);
}

TEST_P(MicroEngineTest, DeterministicAcrossRuns) {
  auto run = [](Paradigm paradigm) {
    MicroOptions options;
    options.generator_executors = 2;
    options.calculator_executors = 2;
    options.shards_per_executor = 8;
    auto workload = BuildMicroWorkload(options, 99);
    EngineConfig config;
    config.paradigm = paradigm;
    config.num_nodes = 2;
    config.cores_per_node = 4;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    engine.Start();
    engine.RunFor(Seconds(2));
    return engine.metrics()->sink_count();
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllParadigms, MicroEngineTest,
                         ::testing::Values(Paradigm::kStatic,
                                           Paradigm::kResourceCentric,
                                           Paradigm::kElastic));

TEST(EngineTest, SimBackendServesTelemetryAndHasNoWorkerPool) {
  // The resource-control plane is backend-independent on the measurement
  // side only: the sim adapter fills WorkerTelemetry from ExecutorMetrics,
  // while actuation (worker_pool) is native-only — simulated scaling is
  // AddCore/RemoveCore on the elastic executors.
  MicroOptions options;
  options.generator_executors = 2;
  options.calculator_executors = 4;
  options.shards_per_executor = 4;
  auto workload = BuildMicroWorkload(options, 3);
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  EXPECT_EQ(engine.worker_pool(), nullptr);
  engine.Start();
  engine.RunFor(Seconds(2));

  const exec::TelemetrySnapshot snap = engine.SampleTelemetry();
  EXPECT_EQ(snap.sampled_at, engine.exec()->now());
  ASSERT_EQ(snap.workers.size(), 4u);
  ASSERT_EQ(snap.sources.size(), 2u);
  EXPECT_GT(snap.source_emitted, 0);
  EXPECT_GT(snap.total_processed, 0);
  EXPECT_GT(snap.total_busy_ns, 0);
  EXPECT_EQ(snap.sink_count, engine.metrics()->sink_count());
  int64_t worker_processed = 0;
  for (const auto& wt : snap.workers) {
    EXPECT_EQ(wt.op, workload->calculator);
    EXPECT_EQ(wt.pinned_cpu, -1);  // No threads to pin in the simulator.
    EXPECT_FALSE(wt.retiring);
    EXPECT_GT(wt.speed, 0.0);  // TaskSpeedOn: 1.0 nominal, always > 0.
    worker_processed += wt.processed;
  }
  EXPECT_EQ(worker_processed, snap.total_processed);
  EXPECT_TRUE(snap.shards.empty());  // Sim shard accounting is per-executor.
}

TEST(EngineTest, StaticProvisioningUsesAllCores) {
  MicroOptions options;
  auto workload = BuildMicroWorkload(options, 1);
  EngineConfig config;
  config.paradigm = Paradigm::kStatic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  // All 16 cores held by calculator executors (the only processing op).
  EXPECT_EQ(engine.ledger()->TotalFree(), 0);
  EXPECT_EQ(engine.runtime()->executors(workload->calculator).size(), 16u);
}

TEST(EngineTest, TraceModeRespectsOfferedRate) {
  MicroOptions options;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 5000.0;
  options.generator_executors = 4;
  options.calculator_executors = 4;
  options.shards_per_executor = 16;
  auto workload = BuildMicroWorkload(options, 5);
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(5));
  double rate = engine.metrics()->sink_count() / 5.0;
  EXPECT_NEAR(rate, 5000.0, 500.0);  // Poisson noise margin.
}

TEST(EngineTest, StopSourcesDrainsSystem) {
  MicroOptions options;
  options.generator_executors = 2;
  options.calculator_executors = 2;
  options.shards_per_executor = 8;
  auto workload = BuildMicroWorkload(options, 2);
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 2;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(1));
  engine.StopSources();
  engine.RunFor(Seconds(2));
  int64_t after_drain = engine.metrics()->sink_count();
  engine.RunFor(Seconds(1));
  EXPECT_EQ(engine.metrics()->sink_count(), after_drain);  // Fully drained.
  for (OperatorId op = 0; op < engine.topology().num_operators(); ++op) {
    EXPECT_EQ(engine.runtime()->inflight(op), 0) << "op " << op;
  }
}

}  // namespace
}  // namespace elasticutor
