// Scenario-subsystem tests: the rate shaper's analytic semantics, key-space
// hotspot hooks, fault-plane injection (straggler slowdown, NIC degradation,
// crash evacuation) and — critically — the determinism regression: the same
// scenario run twice must produce byte-for-byte identical metrics, so fault
// injection can never silently introduce nondeterminism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

// ---------------------------------------------------------------------------
// RateShaper.
// ---------------------------------------------------------------------------

TEST(RateShaperTest, StepsLatestWins) {
  Scenario s;
  s.events.push_back(scn::RateStep(Seconds(10), 2.0));
  s.events.push_back(scn::RateStep(Seconds(20), 0.5));
  RateShaper shaper(s);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(0), 1.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(10)), 2.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(15)), 2.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(25)), 0.5);
}

TEST(RateShaperTest, RampInterpolatesAndHolds) {
  Scenario s;
  s.events.push_back(scn::RateRamp(Seconds(10), Seconds(10), 1.0, 3.0));
  RateShaper shaper(s);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(15)), 2.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(20)), 3.0);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(60)), 3.0);
}

TEST(RateShaperTest, SineModulatesOnTopOfLevel) {
  Scenario s;
  s.events.push_back(scn::RateStep(0, 2.0));
  s.events.push_back(scn::RateSine(0, Seconds(40), 0.5));
  RateShaper shaper(s);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(0), 2.0);                // sin(0) = 0.
  EXPECT_NEAR(shaper.FactorAt(Seconds(10)), 3.0, 1e-9);    // Peak: 2 * 1.5.
  EXPECT_NEAR(shaper.FactorAt(Seconds(30)), 1.0, 1e-9);    // Trough: 2 * 0.5.
}

TEST(RateShaperTest, SineWindowExpires) {
  Scenario s;
  s.events.push_back(scn::RateSine(0, Seconds(40), 0.5, Seconds(20)));
  RateShaper shaper(s);
  EXPECT_NEAR(shaper.FactorAt(Seconds(10)), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(20)), 1.0);  // Window over.
}

TEST(RateShaperTest, FactorNeverNegative) {
  Scenario s;
  s.events.push_back(scn::RateSine(0, Seconds(40), 2.0));  // Over-modulated.
  RateShaper shaper(s);
  EXPECT_DOUBLE_EQ(shaper.FactorAt(Seconds(30)), 0.0);
}

// ---------------------------------------------------------------------------
// DynamicKeySpace scenario hooks.
// ---------------------------------------------------------------------------

TEST(KeySpaceHotspotTest, HotspotShiftsProbabilityMass) {
  DynamicKeySpace keys(1000, 0.5, /*seed=*/7);
  keys.SetHotspot(/*share=*/0.4, /*num_hot=*/4);
  ASSERT_EQ(keys.hot_keys().size(), 4u);
  // Each hot key carries at least share/num_hot of the traffic.
  for (uint64_t k : keys.hot_keys()) {
    EXPECT_GE(keys.KeyProbability(k), 0.4 / 4);
  }
  // Empirically ~40% of samples land in the hot set.
  Rng rng(123, 0);
  int hits = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t k = keys.SampleKey(&rng);
    for (uint64_t h : keys.hot_keys()) hits += (k == h);
  }
  double frac = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(frac, 0.4, 0.03);

  keys.ClearHotspot();
  EXPECT_FALSE(keys.hotspot_active());
}

TEST(KeySpaceHotspotTest, HotKeysAreDistinct) {
  DynamicKeySpace keys(64, 0.5, /*seed=*/1);
  keys.SetHotspot(0.5, 64);  // Whole key space: forces distinctness check.
  std::vector<uint64_t> hot = keys.hot_keys();
  std::sort(hot.begin(), hot.end());
  EXPECT_EQ(std::unique(hot.begin(), hot.end()), hot.end());
}

TEST(KeySpaceHotspotTest, SetSkewRebuildsDistribution) {
  DynamicKeySpace keys(100, 0.0, /*seed=*/3);  // Uniform.
  EXPECT_NEAR(keys.KeyProbability(0), 0.01, 1e-12);
  keys.SetSkew(1.0);
  double total = 0.0;
  for (int k = 0; k < 100; ++k) total += keys.KeyProbability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(keys.KeyProbability(keys.hot_keys().empty()
                                    ? 0
                                    : keys.hot_keys()[0]),
            0.0);
}

// ---------------------------------------------------------------------------
// Fault plane + network injection.
// ---------------------------------------------------------------------------

TEST(FaultPlaneTest, TracksFactorsAndAvailability) {
  NodeFaultPlane faults(4);
  EXPECT_FALSE(faults.any_fault_active());
  faults.SetCpuFactor(2, 4.0);
  EXPECT_TRUE(faults.any_fault_active());
  EXPECT_DOUBLE_EQ(faults.cpu_factor(2), 4.0);
  faults.SetAvailable(2, false);
  faults.SetCpuFactor(2, 1.0);
  EXPECT_TRUE(faults.any_fault_active());  // Still unavailable.
  faults.SetAvailable(2, true);
  EXPECT_FALSE(faults.any_fault_active());
}

TEST(NetworkFaultTest, DegradedEgressSlowsTransmission) {
  exec::SimBackend sim;
  NetworkConfig cfg;
  Network net(&sim, 2, cfg);
  SimTime healthy_arrival = -1;
  net.Send(0, 1, 100000, Purpose::kInterOperator,
           [&]() { healthy_arrival = sim.now(); });
  sim.RunAll();

  exec::SimBackend sim2;
  Network net2(&sim2, 2, cfg);
  net2.SetEgressBandwidthFactor(0, 0.1);
  SimTime degraded_arrival = -1;
  net2.Send(0, 1, 100000, Purpose::kInterOperator,
            [&]() { degraded_arrival = sim2.now(); });
  sim2.RunAll();
  EXPECT_GT(degraded_arrival, healthy_arrival * 5);
}

TEST(NetworkFaultTest, ExtraDelayKeepsChannelFifo) {
  exec::SimBackend sim;
  NetworkConfig cfg;
  Network net(&sim, 2, cfg);
  std::vector<int> order;
  net.SetExtraDelay(1, Millis(50));
  net.Send(0, 1, 64, Purpose::kInterOperator, [&]() { order.push_back(1); });
  // NIC heals while the first message is in flight; the second must still
  // arrive after the first (per-channel FIFO is a protocol invariant).
  net.SetExtraDelay(1, 0);
  net.Send(0, 1, 64, Purpose::kInterOperator, [&]() { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// ScenarioDriver against a live engine.
// ---------------------------------------------------------------------------

MicroOptions SmallTraceOptions() {
  MicroOptions options;
  options.num_keys = 500;
  options.generator_executors = 4;
  options.calculator_executors = 4;
  options.shards_per_executor = 16;
  options.shard_state_bytes = 4 * kKiB;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 4000.0;
  options.calc_cost_ns = MillisF(0.5);
  return options;
}

EngineConfig SmallConfig(Paradigm paradigm) {
  EngineConfig config;
  config.paradigm = paradigm;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  return config;
}

TEST(ScenarioDriverTest, FiresTimedEventsAndShufflesCadence) {
  auto workload = BuildMicroWorkload(SmallTraceOptions(), /*seed=*/11);
  ASSERT_TRUE(workload.ok());
  Engine engine(workload->topology, SmallConfig(Paradigm::kElastic));
  ASSERT_TRUE(engine.Setup().ok());

  Scenario s;
  s.name = "test-mix";
  s.events.push_back(scn::ShuffleCadence(0, /*omega=*/60.0));  // Every 1 s.
  s.events.push_back(scn::HotspotOn(Seconds(2), 0.3, 8));
  s.events.push_back(scn::HotspotOff(Seconds(4)));
  s.events.push_back(scn::KeyShuffle(Seconds(5), 3));
  ScenarioDriver driver(s, &engine, workload->keys);
  driver.Install();

  engine.Start();
  engine.RunFor(Seconds(3));
  EXPECT_TRUE(workload->keys->hotspot_active());
  EXPECT_GE(workload->keys->shuffles_applied(), 2);
  engine.RunFor(Seconds(3));
  EXPECT_FALSE(workload->keys->hotspot_active());
  // 1/s cadence for ~6 s plus the 3-count one-shot at t=5.
  EXPECT_GE(workload->keys->shuffles_applied(), 8);
  EXPECT_EQ(driver.events_fired(), 4);  // Cadence, hotspot on/off, shuffle.
}

TEST(ScenarioDriverTest, SlowdownWindowDepressesThroughputThenRestores) {
  auto run = [](bool with_fault) {
    auto workload = BuildMicroWorkload(SmallTraceOptions(), /*seed=*/11);
    EXPECT_TRUE(workload.ok());
    Engine engine(workload->topology, SmallConfig(Paradigm::kStatic));
    EXPECT_TRUE(engine.Setup().ok());
    if (with_fault) {
      // Slow the whole cluster 32x for a window — far past saturation, so
      // static (no reaction path) must visibly drop completed tuples while
      // the window is open, and recover after it.
      Scenario s;
      for (NodeId n = 0; n < 4; ++n) {
        s.events.push_back(scn::NodeSlowdown(Seconds(2), Seconds(2), n,
                                             32.0));
      }
      ScenarioDriver driver(s, &engine, nullptr);
      driver.Install();
      engine.Start();
      engine.RunFor(Seconds(6));
    } else {
      engine.Start();
      engine.RunFor(Seconds(6));
    }
    return engine.metrics()->sink_count_in_window(Seconds(2), Seconds(4));
  };
  int64_t faulty = run(true);
  int64_t healthy = run(false);
  EXPECT_LT(faulty, healthy / 2);
}

TEST(ScenarioDriverTest, CrashEvacuatesAndRejoinRestores) {
  auto workload = BuildMicroWorkload(SmallTraceOptions(), /*seed=*/11);
  ASSERT_TRUE(workload.ok());
  Engine engine(workload->topology, SmallConfig(Paradigm::kElastic));
  ASSERT_TRUE(engine.Setup().ok());

  const NodeId victim = 2;
  ScenarioDriver driver(
      scn::FailRecover(Seconds(3), Seconds(6), victim), &engine,
      workload->keys);
  driver.Install();
  engine.Start();
  engine.RunFor(Seconds(2));

  auto cores_on_victim = [&]() {
    int total = 0;
    for (const auto& ex : engine.elastic_executors(workload->calculator)) {
      total += ex->tasks_on(victim);
    }
    return total;
  };
  int before = cores_on_victim();
  EXPECT_GT(before, 0) << "victim node should host tasks before the crash";

  engine.RunFor(Seconds(5));  // Crash at t=3; several scheduler cycles.
  EXPECT_EQ(cores_on_victim(), 0)
      << "scheduler must evacuate the crashed node";
  EXPECT_FALSE(engine.faults()->available(victim));

  engine.RunFor(Seconds(5));  // Rejoin at t=9.
  EXPECT_TRUE(engine.faults()->available(victim));
  EXPECT_DOUBLE_EQ(engine.faults()->cpu_factor(victim), 1.0);
}

TEST(ScenarioDriverTest, IdenticalOverlappingWindowsLastWriterWins) {
  auto workload = BuildMicroWorkload(SmallTraceOptions(), /*seed=*/11);
  ASSERT_TRUE(workload.ok());
  Engine engine(workload->topology, SmallConfig(Paradigm::kStatic));
  ASSERT_TRUE(engine.Setup().ok());

  // Two slowdown windows with IDENTICAL parameters: [1s,3s] and [2s,4s].
  // The first window's expiry at t=3 must not heal the node — the second
  // window owns it until t=4 (value equality can't tell them apart; the
  // driver tracks ownership by event sequence).
  Scenario s;
  s.events.push_back(scn::NodeSlowdown(Seconds(1), Seconds(2), 0, 4.0));
  s.events.push_back(scn::NodeSlowdown(Seconds(2), Seconds(2), 0, 4.0));
  // A crash during a slowdown window: the slowdown's expiry at t=3 must not
  // reset the crash factor either; only the rejoin heals the node.
  s.events.push_back(scn::NodeSlowdown(Seconds(1), Seconds(2), 1, 8.0));
  s.events.push_back(scn::NodeCrash(Seconds(2), 1, /*cpu_factor=*/8.0));
  s.events.push_back(scn::NodeRejoin(Seconds(5), 1));
  ScenarioDriver driver(s, &engine, nullptr);
  driver.Install();

  engine.Start();
  engine.RunFor(Seconds(3) + Millis(500));  // t=3.5: first windows expired.
  EXPECT_DOUBLE_EQ(engine.faults()->cpu_factor(0), 4.0);
  EXPECT_DOUBLE_EQ(engine.faults()->cpu_factor(1), 8.0);
  EXPECT_FALSE(engine.faults()->available(1));
  engine.RunFor(Seconds(1));  // t=4.5: second window on node 0 expired.
  EXPECT_DOUBLE_EQ(engine.faults()->cpu_factor(0), 1.0);
  engine.RunFor(Seconds(1));  // t=5.5: node 1 rejoined.
  EXPECT_DOUBLE_EQ(engine.faults()->cpu_factor(1), 1.0);
  EXPECT_TRUE(engine.faults()->available(1));
}

// ---------------------------------------------------------------------------
// Recovery metric.
// ---------------------------------------------------------------------------

TEST(RecoveryTest, MeasuresDipAndRecoveryPoint) {
  TimeSeries tput(Seconds(1));
  // Baseline 100/s for 5 s, dip to 20/s for 3 s, back to 100/s.
  for (int s = 0; s < 5; ++s) tput.Add(Seconds(s), 100);
  for (int s = 5; s < 8; ++s) tput.Add(Seconds(s), 20);
  for (int s = 8; s < 12; ++s) tput.Add(Seconds(s), 100);

  RecoveryStats r = MeasureRecovery(tput, 0, Seconds(5), Seconds(12), 0.9);
  EXPECT_NEAR(r.baseline_tps, 100.0, 1e-9);
  EXPECT_NEAR(r.trough_tps, 20.0, 1e-9);
  EXPECT_TRUE(r.recovered);
  EXPECT_NEAR(r.time_to_recover_s, 3.0, 1e-9);
}

TEST(RecoveryTest, ReportsNonRecovery) {
  TimeSeries tput(Seconds(1));
  for (int s = 0; s < 5; ++s) tput.Add(Seconds(s), 100);
  for (int s = 5; s < 10; ++s) tput.Add(Seconds(s), 10);
  RecoveryStats r = MeasureRecovery(tput, 0, Seconds(5), Seconds(10), 0.9);
  EXPECT_FALSE(r.recovered);
  EXPECT_DOUBLE_EQ(r.time_to_recover_s, -1.0);
}

TEST(RecoveryTest, NoDipMeansInstantRecovery) {
  TimeSeries tput(Seconds(1));
  for (int s = 0; s < 10; ++s) tput.Add(Seconds(s), 100);
  RecoveryStats r = MeasureRecovery(tput, 0, Seconds(5), Seconds(10), 0.9);
  EXPECT_TRUE(r.recovered);
  EXPECT_DOUBLE_EQ(r.time_to_recover_s, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism regression: identical scenario -> byte-for-byte identical
// metrics. Runs a deliberately adversarial mix (hotspot churn + straggler +
// NIC fade + crash/rejoin) twice under the elastic paradigm.
// ---------------------------------------------------------------------------

std::string RunScenarioFingerprint(const Scenario& s) {
  auto workload = BuildMicroWorkload(SmallTraceOptions(), /*seed=*/99);
  EXPECT_TRUE(workload.ok());
  Engine engine(workload->topology, SmallConfig(Paradigm::kElastic));
  EXPECT_TRUE(engine.Setup().ok());

  ScenarioDriver driver(s, &engine, workload->keys);
  driver.Install();

  engine.Start();
  engine.RunFor(Seconds(3));
  engine.ResetMetricsAfterWarmup();
  engine.RunFor(Seconds(6));

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "sink=%lld lat_mean=%.9f lat_p99=%lld events=%llu fired=%lld "
      "ops=%zu shuffles=%lld inter=%lld remote=%lld mig=%lld violations=%lld",
      static_cast<long long>(engine.metrics()->sink_count()),
      engine.LatencyHistogram().mean(),
      static_cast<long long>(engine.LatencyHistogram().P99()),
      static_cast<unsigned long long>(engine.exec()->events_executed()),
      static_cast<long long>(driver.events_fired()),
      engine.metrics()->elasticity_ops().size(),
      static_cast<long long>(workload->keys->shuffles_applied()),
      static_cast<long long>(
          engine.net()->inter_node_bytes(Purpose::kInterOperator)),
      static_cast<long long>(
          engine.net()->inter_node_bytes(Purpose::kRemoteTask)),
      static_cast<long long>(
          engine.net()->inter_node_bytes(Purpose::kStateMigration)),
      static_cast<long long>(engine.order_violations()));
  return buf;
}

Scenario DeterminismMix() {
  Scenario s;
  s.name = "determinism-mix";
  s.events.push_back(scn::ShuffleCadence(0, 30.0));
  s.events.push_back(scn::HotspotOn(Seconds(1), 0.25, 16));
  s.events.push_back(scn::RateStep(Seconds(1), 1.5));
  s.events.push_back(scn::NodeSlowdown(Seconds(2), Seconds(2), 1, 4.0));
  s.events.push_back(scn::NicDegrade(Seconds(2), Seconds(2), 3, 0.2,
                                     Micros(300)));
  s.events.push_back(scn::NodeCrash(Seconds(4), 2));
  s.events.push_back(scn::HotspotOff(Seconds(5)));
  s.events.push_back(scn::RateStep(Seconds(5), 1.0));
  s.events.push_back(scn::NodeRejoin(Seconds(6), 2));
  return s;
}

TEST(ScenarioDeterminismTest, IdenticalScenarioIdenticalMetrics) {
  std::string first = RunScenarioFingerprint(DeterminismMix());
  std::string second = RunScenarioFingerprint(DeterminismMix());
  EXPECT_EQ(first, second);
}

// Capacity-aware balancing reacts to an undetected straggler through the
// per-task service-rate EWMA; this regression pins down that the whole
// detect -> shed -> recover loop stays byte-for-byte deterministic.
TEST(ScenarioDeterminismTest, StragglerScenarioIsDeterministic) {
  Scenario s = scn::Straggler(Seconds(2), Seconds(4), /*node=*/1,
                              /*cpu_factor=*/4.0);
  std::string first = RunScenarioFingerprint(s);
  std::string second = RunScenarioFingerprint(s);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace elasticutor
