// Migration-under-load soak for the native elastic runtime: a seeded
// randomized schedule of live shard reassignments (>= 200 completed moves)
// against unbounded saturation sources, with the concurrent order validator
// on and the paced chunked pre-copy path engaged. The invariants after the
// drain are absolute — every generated tuple reaches the sink exactly once
// and no (producer, key) stream is ever reordered — so the test doubles as
// the TSan workout for the whole control plane (CI runs it in the
// Debug+TSan job; any data race in the labeling barrier, the routing flip
// or the hold/replay path shows up here first).
#include <gtest/gtest.h>

#include <random>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

MicroWorkload BuildStressWorkload(uint64_t seed) {
  MicroOptions options;
  options.num_keys = 512;
  options.zipf_skew = 0.6;
  options.tuple_bytes = 64;
  options.calc_cost_ns = Micros(2);
  options.shard_state_bytes = 2 << 10;
  options.generator_executors = 2;
  options.calculator_executors = 4;
  options.shards_per_executor = 4;  // 16 shards total.
  options.mode = SourceSpec::Mode::kSaturation;
  options.gen_overhead_ns = Micros(20);
  MicroWorkload workload = BuildMicroWorkload(options, seed).value();
  // Unbounded: the soak decides when it has seen enough migrations and
  // stops the sources itself.
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 0;
  return workload;
}

EngineConfig StressConfig() {
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.backend = exec::BackendKind::kNative;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.seed = 7;
  config.validate_key_order = true;
  config.native.workers_per_operator = 4;
  // Tiny batches and rings: maximize cross-thread handoffs and
  // back-pressure stalls per tuple — the interleavings a race hides in.
  config.native.data_path.batch_tuples = 4;
  config.native.data_path.channel_capacity_batches = 4;
  // Paced pre-copy: chunks and deltas ride the timer wheel, so routing
  // flips land while the shard is mid-copy and the DirtyTracker is hot.
  config.native.migration_copy_bytes_per_sec = 64e6;
  config.state.migration.chunk_bytes = 512;
  return config;
}

TEST(NativeElasticStressTest, RandomizedMigrationSoakConservesEveryTuple) {
  constexpr int64_t kTargetMoves = 200;
  MicroWorkload workload = BuildStressWorkload(/*seed=*/29);
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();

  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  const int shards = native->num_shards(calc);
  const int workers = native->num_workers(calc);
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pick_shard(0, shards - 1);
  std::uniform_int_distribution<int> pick_worker(0, workers - 1);

  // Randomized schedule: every ~200 us of wall-clock dataflow, post four
  // random moves. Collisions with in-flight moves are rejected and simply
  // retried by a later round — the soak counts completions, not requests.
  int64_t rejected = 0;
  int rounds = 0;
  while (native->reassignments_done() < kTargetMoves) {
    ASSERT_LT(rounds++, 4000) << "soak stalled: "
                              << native->reassignments_done()
                              << " moves after " << rounds << " rounds";
    engine.RunFor(Micros(200));
    for (int i = 0; i < 4; ++i) {
      if (!native->ReassignShard(calc, pick_shard(rng), pick_worker(rng))
               .ok()) {
        ++rejected;
      }
    }
  }
  engine.StopSources();
  engine.RunToCompletion();

  // Conservation: every generated tuple was processed and hit the sink
  // exactly once — nothing lost in a drain, nothing replayed twice.
  const int64_t emitted = native->source_emitted();
  EXPECT_GT(emitted, 0);
  EXPECT_EQ(native->total_processed(), emitted);
  EXPECT_EQ(native->sink_count(), emitted);
  EXPECT_EQ(engine.metrics()->sink_count(), emitted);

  // Ordering: the concurrent validator saw every (producer, key) stream
  // arrive in emission order across >= 200 mid-stream reassignments.
  EXPECT_EQ(engine.order_violations(), 0);

  // Protocol accounting: everything begun was finished.
  EXPECT_GE(native->reassignments_done(), kTargetMoves);
  EXPECT_EQ(native->migrations_in_flight(), 0);
  EXPECT_GT(native->labels_routed(), 0);
  const auto pauses = native->migration_pauses();
  EXPECT_EQ(static_cast<int64_t>(pauses.size()),
            native->reassignments_done());
  for (SimDuration pause : pauses) EXPECT_GE(pause, 0);
  // The schedule must have exercised the contended path too: with 4 moves
  // posted per round against 16 shards, same-shard collisions are certain.
  EXPECT_GT(rejected, 0);
}

TEST(NativeElasticStressTest, WorkerScalingSoakConservesEveryTuple) {
  // The resource-control-plane soak: randomized GrowWorkers/ShrinkWorkers
  // mid-stream, interleaved with randomized shard reassignments, against
  // unbounded saturation sources with the order validator on. Every grown
  // worker becomes a live routing destination while producers are mid-batch;
  // every shrunk worker must evacuate its shards over the labeling barrier
  // and exit only once nothing references it. Conservation and ordering
  // stay absolute throughout (the TSan job runs this too).
  constexpr int64_t kTargetMoves = 150;
  constexpr int kTargetScaleOps = 6;
  MicroWorkload workload = BuildStressWorkload(/*seed=*/41);
  EngineConfig config = StressConfig();
  config.native.max_workers_per_operator = 8;
  Engine engine(workload.topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();

  exec::NativeRuntime* native = engine.native();
  exec::WorkerPool* pool = engine.worker_pool();
  ASSERT_NE(pool, nullptr);
  const OperatorId calc = workload.calculator;
  const int shards = native->num_shards(calc);
  std::mt19937 rng(4321);
  std::uniform_int_distribution<int> pick_shard(0, shards - 1);

  int64_t rejected = 0;
  int scale_ops = 0;
  int rounds = 0;
  int actives = 4;  // Mirrors grow/shrink successes below.
  bool grow_next = true;
  while (native->reassignments_done() < kTargetMoves ||
         scale_ops < kTargetScaleOps) {
    ASSERT_LT(rounds++, 4000)
        << "soak stalled: " << native->reassignments_done() << " moves, "
        << scale_ops << " scale ops after " << rounds << " rounds";
    engine.RunFor(Micros(200));
    // Moves target the live slot range, retiring victims included — those
    // are rejected, which is exactly the contract under test.
    std::uniform_int_distribution<int> pick_worker(
        0, native->num_workers(calc) - 1);
    for (int i = 0; i < 3; ++i) {
      if (!native->ReassignShard(calc, pick_shard(rng), pick_worker(rng))
               .ok()) {
        ++rejected;
      }
    }
    if (rounds % 5 == 0) {
      // Alternate grow/shrink while respecting the pool's slot budget:
      // slots are single-use (a retired slot is never re-armed), so grows
      // are bounded by max_workers_per_operator. Never shrink below 3
      // actives — reassignments need live non-retiring destinations to
      // keep completing.
      const bool can_grow = native->num_workers(calc) < 8;
      const bool can_shrink = actives > 3;
      const bool grow = grow_next ? can_grow : (can_shrink ? false : can_grow);
      if (grow) {
        if (pool->GrowWorkers(calc, 1).ok()) {
          ++scale_ops;
          ++actives;
        }
      } else if (can_shrink) {
        if (pool->ShrinkWorkers(calc, 1).ok()) {
          ++scale_ops;
          --actives;
        }
      }
      grow_next = !grow_next;
    }
  }
  engine.StopSources();
  engine.RunToCompletion();

  const int64_t emitted = native->source_emitted();
  EXPECT_GT(emitted, 0);
  EXPECT_EQ(native->total_processed(), emitted);
  EXPECT_EQ(native->sink_count(), emitted);
  EXPECT_EQ(engine.order_violations(), 0);
  EXPECT_GE(scale_ops, kTargetScaleOps);
  EXPECT_GT(native->num_workers(calc), 4) << "no growth ever landed";
  EXPECT_EQ(native->migrations_in_flight(), 0);
  EXPECT_GT(rejected, 0);

  // The unified snapshot agrees with the joined threads' exact counters
  // (post-WaitDrained exactness), covers every slot ever grown, and shows
  // every retired worker fully evacuated.
  const exec::TelemetrySnapshot snap = engine.SampleTelemetry();
  EXPECT_EQ(snap.total_processed, emitted);
  EXPECT_EQ(snap.sink_count, emitted);
  EXPECT_EQ(snap.source_emitted, emitted);
  EXPECT_EQ(snap.reassignments_done, native->reassignments_done());
  EXPECT_EQ(snap.migrations_in_flight, 0);
  EXPECT_GT(snap.total_busy_ns, 0);
  int64_t shard_processed = 0;
  for (const auto& st : snap.shards) {
    EXPECT_GE(st.owner, 0);
    shard_processed += st.processed;
    EXPECT_GE(st.busy_ns, 0);
  }
  EXPECT_EQ(shard_processed, emitted);  // calc is the only worker operator.
  int grown_seen = 0;
  for (const auto& wt : snap.workers) {
    EXPECT_TRUE(wt.exited);
    if (wt.index >= 4) ++grown_seen;
    if (wt.retiring) {
      // Evacuation-before-exit: a retired worker owns nothing.
      for (const auto& st : snap.shards) {
        EXPECT_FALSE(st.op == wt.op && st.owner == wt.index)
            << "retired worker " << wt.index << " still owns shard "
            << st.shard;
      }
    }
  }
  EXPECT_GT(grown_seen, 0);
}

TEST(NativeElasticStressTest, MovesAfterDrainStillRelocateState) {
  // After the dataflow quiesced the worker threads are gone; ReassignShard
  // falls back to the driver-driven synchronous path. Sweep every shard to
  // worker 0 and verify the consolidated stores.
  MicroWorkload workload = BuildStressWorkload(/*seed=*/31);
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 500;
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunToCompletion();

  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  for (int s = 0; s < native->num_shards(calc); ++s) {
    ASSERT_TRUE(native->ReassignShard(calc, s, 0).ok());
  }
  // Paced copies still ride the timer wheel; pump 1 ms windows until the
  // cohort lands (wall-clock scheduling jitter can push a chunk timer just
  // past a single window's deadline on a loaded machine).
  for (int pumps = 0; native->migrations_in_flight() > 0 && pumps < 200;
       ++pumps) {
    engine.RunFor(Millis(1));
  }
  EXPECT_EQ(native->migrations_in_flight(), 0);
  int64_t entries_on_zero = 0;
  for (int s = 0; s < native->num_shards(calc); ++s) {
    EXPECT_EQ(native->shard_owner(calc, s), 0);
  }
  native->worker_store(calc, 0)->ForEachShard(
      [&](ShardId, const ShardState& state) {
        entries_on_zero += static_cast<int64_t>(state.entries.size());
      });
  EXPECT_GT(entries_on_zero, 0);
  for (int w = 1; w < native->num_workers(calc); ++w) {
    native->worker_store(calc, w)->ForEachShard(
        [&](ShardId shard, const ShardState&) {
          ADD_FAILURE() << "shard " << shard << " left behind on worker "
                        << w;
        });
  }
}

TEST(NativeElasticStressTest, WorkerScalingErrorPaths) {
  MicroWorkload workload = BuildStressWorkload(/*seed=*/43);
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 200;
  EngineConfig config = StressConfig();
  config.native.max_workers_per_operator = 5;  // 4 initial + 1 spare slot.
  Engine engine(workload.topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  exec::WorkerPool* pool = engine.worker_pool();
  ASSERT_NE(pool, nullptr);
  const OperatorId calc = workload.calculator;

  // Before Start: no threads to grow into or retire.
  EXPECT_FALSE(pool->GrowWorkers(calc, 1).ok());
  EXPECT_FALSE(pool->ShrinkWorkers(calc, 1).ok());
  engine.Start();

  // Bad arguments.
  EXPECT_FALSE(pool->GrowWorkers(workload.generator, 1).ok());  // A source.
  EXPECT_FALSE(pool->GrowWorkers(calc, 0).ok());
  EXPECT_FALSE(pool->ShrinkWorkers(calc, -1).ok());
  EXPECT_FALSE(pool->GrowWorkers(-1, 1).ok());

  // Slot reservation is a hard ceiling: one spare slot, so +2 is rejected
  // whole, +1 lands, then the pool is full.
  EXPECT_FALSE(pool->GrowWorkers(calc, 2).ok());
  ASSERT_TRUE(pool->GrowWorkers(calc, 1).ok());
  EXPECT_EQ(pool->num_workers(calc), 5);
  EXPECT_FALSE(pool->GrowWorkers(calc, 1).ok());

  // The pool never shrinks to zero active workers.
  EXPECT_FALSE(pool->ShrinkWorkers(calc, 5).ok());
  ASSERT_TRUE(pool->ShrinkWorkers(calc, 4).ok());
  EXPECT_FALSE(pool->ShrinkWorkers(calc, 1).ok());  // 1 active left.

  engine.RunToCompletion();
  EXPECT_EQ(engine.native()->sink_count(), 400);  // 2 sources x 200.
  EXPECT_EQ(engine.order_violations(), 0);
  // Everything evacuated onto the lone survivor.
  const exec::TelemetrySnapshot snap = engine.SampleTelemetry();
  int actives = 0;
  for (const auto& wt : snap.workers) {
    if (!wt.retiring) ++actives;
  }
  EXPECT_EQ(actives, 1);
  for (const auto& st : snap.shards) {
    EXPECT_FALSE(snap.workers.at(st.owner).retiring)
        << "shard " << st.shard << " stranded on a retired worker";
  }

  // After the drain every producer is closed; growth has nothing to route.
  EXPECT_FALSE(pool->GrowWorkers(calc, 1).ok());

  // Static paradigm: the pool surface exists but refuses (no routing table
  // to add destinations to).
  MicroWorkload static_wl = BuildStressWorkload(/*seed=*/47);
  static_wl.topology.mutable_spec(static_wl.generator).source.max_tuples = 50;
  EngineConfig static_config = StressConfig();
  static_config.paradigm = Paradigm::kStatic;
  Engine static_engine(static_wl.topology, static_config);
  ASSERT_TRUE(static_engine.Setup().ok());
  static_engine.Start();
  EXPECT_FALSE(
      static_engine.worker_pool()->GrowWorkers(static_wl.calculator, 1).ok());
  EXPECT_FALSE(
      static_engine.worker_pool()->ShrinkWorkers(static_wl.calculator, 1).ok());
  static_engine.RunToCompletion();
}

TEST(NativeElasticStressTest, RejectsOutOfRangeAndInTransitionMoves) {
  MicroWorkload workload = BuildStressWorkload(/*seed=*/37);
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 200;
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  // Source operators have no shards to move; bad indices are caught before
  // anything is posted.
  EXPECT_FALSE(native->ReassignShard(workload.generator, 0, 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, -1, 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, native->num_shards(calc), 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, 0, -1).ok());
  EXPECT_FALSE(
      native->ReassignShard(calc, 0, native->num_workers(calc)).ok());
  // Same destination: a no-op success, not a posted move.
  const int owner = native->shard_owner(calc, 0);
  EXPECT_TRUE(native->ReassignShard(calc, 0, owner).ok());
  EXPECT_EQ(native->shard_owner(calc, 0), owner);
  engine.RunToCompletion();
  EXPECT_EQ(native->migrations_in_flight(), 0);
  EXPECT_EQ(engine.order_violations(), 0);
}

}  // namespace
}  // namespace elasticutor
