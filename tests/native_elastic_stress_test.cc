// Migration-under-load soak for the native elastic runtime: a seeded
// randomized schedule of live shard reassignments (>= 200 completed moves)
// against unbounded saturation sources, with the concurrent order validator
// on and the paced chunked pre-copy path engaged. The invariants after the
// drain are absolute — every generated tuple reaches the sink exactly once
// and no (producer, key) stream is ever reordered — so the test doubles as
// the TSan workout for the whole control plane (CI runs it in the
// Debug+TSan job; any data race in the labeling barrier, the routing flip
// or the hold/replay path shows up here first).
#include <gtest/gtest.h>

#include <random>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

MicroWorkload BuildStressWorkload(uint64_t seed) {
  MicroOptions options;
  options.num_keys = 512;
  options.zipf_skew = 0.6;
  options.tuple_bytes = 64;
  options.calc_cost_ns = Micros(2);
  options.shard_state_bytes = 2 << 10;
  options.generator_executors = 2;
  options.calculator_executors = 4;
  options.shards_per_executor = 4;  // 16 shards total.
  options.mode = SourceSpec::Mode::kSaturation;
  options.gen_overhead_ns = Micros(20);
  MicroWorkload workload = BuildMicroWorkload(options, seed).value();
  // Unbounded: the soak decides when it has seen enough migrations and
  // stops the sources itself.
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 0;
  return workload;
}

EngineConfig StressConfig() {
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.backend = exec::BackendKind::kNative;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.seed = 7;
  config.validate_key_order = true;
  config.native.workers_per_operator = 4;
  // Tiny batches and rings: maximize cross-thread handoffs and
  // back-pressure stalls per tuple — the interleavings a race hides in.
  config.native.batch_tuples = 4;
  config.native.channel_capacity_batches = 4;
  // Paced pre-copy: chunks and deltas ride the timer wheel, so routing
  // flips land while the shard is mid-copy and the DirtyTracker is hot.
  config.native.migration_copy_bytes_per_sec = 64e6;
  config.state.migration.chunk_bytes = 512;
  return config;
}

TEST(NativeElasticStressTest, RandomizedMigrationSoakConservesEveryTuple) {
  constexpr int64_t kTargetMoves = 200;
  MicroWorkload workload = BuildStressWorkload(/*seed=*/29);
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();

  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  const int shards = native->num_shards(calc);
  const int workers = native->num_workers(calc);
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pick_shard(0, shards - 1);
  std::uniform_int_distribution<int> pick_worker(0, workers - 1);

  // Randomized schedule: every ~200 us of wall-clock dataflow, post four
  // random moves. Collisions with in-flight moves are rejected and simply
  // retried by a later round — the soak counts completions, not requests.
  int64_t rejected = 0;
  int rounds = 0;
  while (native->reassignments_done() < kTargetMoves) {
    ASSERT_LT(rounds++, 4000) << "soak stalled: "
                              << native->reassignments_done()
                              << " moves after " << rounds << " rounds";
    engine.RunFor(Micros(200));
    for (int i = 0; i < 4; ++i) {
      if (!native->ReassignShard(calc, pick_shard(rng), pick_worker(rng))
               .ok()) {
        ++rejected;
      }
    }
  }
  engine.StopSources();
  engine.RunToCompletion();

  // Conservation: every generated tuple was processed and hit the sink
  // exactly once — nothing lost in a drain, nothing replayed twice.
  const int64_t emitted = native->source_emitted();
  EXPECT_GT(emitted, 0);
  EXPECT_EQ(native->total_processed(), emitted);
  EXPECT_EQ(native->sink_count(), emitted);
  EXPECT_EQ(engine.metrics()->sink_count(), emitted);

  // Ordering: the concurrent validator saw every (producer, key) stream
  // arrive in emission order across >= 200 mid-stream reassignments.
  EXPECT_EQ(engine.order_violations(), 0);

  // Protocol accounting: everything begun was finished.
  EXPECT_GE(native->reassignments_done(), kTargetMoves);
  EXPECT_EQ(native->migrations_in_flight(), 0);
  EXPECT_GT(native->labels_routed(), 0);
  const auto pauses = native->migration_pauses();
  EXPECT_EQ(static_cast<int64_t>(pauses.size()),
            native->reassignments_done());
  for (SimDuration pause : pauses) EXPECT_GE(pause, 0);
  // The schedule must have exercised the contended path too: with 4 moves
  // posted per round against 16 shards, same-shard collisions are certain.
  EXPECT_GT(rejected, 0);
}

TEST(NativeElasticStressTest, MovesAfterDrainStillRelocateState) {
  // After the dataflow quiesced the worker threads are gone; ReassignShard
  // falls back to the driver-driven synchronous path. Sweep every shard to
  // worker 0 and verify the consolidated stores.
  MicroWorkload workload = BuildStressWorkload(/*seed=*/31);
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 500;
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunToCompletion();

  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  for (int s = 0; s < native->num_shards(calc); ++s) {
    ASSERT_TRUE(native->ReassignShard(calc, s, 0).ok());
  }
  engine.RunFor(Millis(1));  // Paced copies still ride the timer wheel.
  EXPECT_EQ(native->migrations_in_flight(), 0);
  int64_t entries_on_zero = 0;
  for (int s = 0; s < native->num_shards(calc); ++s) {
    EXPECT_EQ(native->shard_owner(calc, s), 0);
  }
  native->worker_store(calc, 0)->ForEachShard(
      [&](ShardId, const ShardState& state) {
        entries_on_zero += static_cast<int64_t>(state.entries.size());
      });
  EXPECT_GT(entries_on_zero, 0);
  for (int w = 1; w < native->num_workers(calc); ++w) {
    native->worker_store(calc, w)->ForEachShard(
        [&](ShardId shard, const ShardState&) {
          ADD_FAILURE() << "shard " << shard << " left behind on worker "
                        << w;
        });
  }
}

TEST(NativeElasticStressTest, RejectsOutOfRangeAndInTransitionMoves) {
  MicroWorkload workload = BuildStressWorkload(/*seed=*/37);
  workload.topology.mutable_spec(workload.generator).source.max_tuples = 200;
  Engine engine(workload.topology, StressConfig());
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  // Source operators have no shards to move; bad indices are caught before
  // anything is posted.
  EXPECT_FALSE(native->ReassignShard(workload.generator, 0, 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, -1, 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, native->num_shards(calc), 0).ok());
  EXPECT_FALSE(native->ReassignShard(calc, 0, -1).ok());
  EXPECT_FALSE(
      native->ReassignShard(calc, 0, native->num_workers(calc)).ok());
  // Same destination: a no-op success, not a posted move.
  const int owner = native->shard_owner(calc, 0);
  EXPECT_TRUE(native->ReassignShard(calc, 0, owner).ok());
  EXPECT_EQ(native->shard_owner(calc, 0), owner);
  engine.RunToCompletion();
  EXPECT_EQ(native->migrations_in_flight(), 0);
  EXPECT_EQ(engine.order_violations(), 0);
}

}  // namespace
}  // namespace elasticutor
