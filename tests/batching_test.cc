// Regressions for channel micro-batching (EngineConfig::max_batch_tuples):
// batching must change HOW tuples travel (messages, events), never WHAT the
// system computes — per-key order holds at every batch size, runs are
// byte-for-byte deterministic, and the steady-state data path performs no
// callback heap allocation.
#include <gtest/gtest.h>

#include <tuple>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

struct RunSignature {
  int64_t sink_count = 0;
  int64_t routed = 0;
  int64_t inter_bytes = 0;
  int64_t messages = 0;
  uint64_t events = 0;
  double mean_latency = 0.0;

  bool operator==(const RunSignature& other) const {
    return sink_count == other.sink_count && routed == other.routed &&
           inter_bytes == other.inter_bytes && messages == other.messages &&
           events == other.events && mean_latency == other.mean_latency;
  }
};

RunSignature RunMicro(Paradigm paradigm, int batch, uint64_t seed,
                      int64_t* order_violations = nullptr,
                      int64_t* heap_allocs_steady = nullptr) {
  MicroOptions options;
  options.generator_executors = 2;
  options.calculator_executors = 2;
  options.shards_per_executor = 8;
  options.calc_cost_ns = Micros(20);
  auto workload = BuildMicroWorkload(options, seed);
  ELASTICUTOR_CHECK(workload.ok());
  EngineConfig config;
  config.paradigm = paradigm;
  config.num_nodes = 2;
  config.cores_per_node = 4;
  config.max_batch_tuples = batch;
  config.validate_key_order = true;
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(1));
  engine.ResetMetricsAfterWarmup();
  int64_t allocs_before = EventFn::heap_allocations();
  engine.RunFor(Seconds(2));
  if (order_violations != nullptr) {
    *order_violations = engine.order_violations();
  }
  if (heap_allocs_steady != nullptr) {
    *heap_allocs_steady = EventFn::heap_allocations() - allocs_before;
  }
  RunSignature sig;
  sig.sink_count = engine.metrics()->sink_count();
  sig.routed = engine.metrics()->routed_tuples();
  sig.inter_bytes = engine.net()->total_inter_node_bytes();
  sig.messages = engine.net()->messages_sent();
  sig.events = engine.exec()->events_executed();
  sig.mean_latency = engine.LatencyHistogram().mean();
  return sig;
}

class BatchingTest
    : public ::testing::TestWithParam<std::tuple<Paradigm, int>> {};

TEST_P(BatchingTest, PreservesPerKeyOrderAndDeterminism) {
  auto [paradigm, batch] = GetParam();
  int64_t violations = -1;
  RunSignature first = RunMicro(paradigm, batch, 7, &violations);
  EXPECT_EQ(violations, 0) << "micro-batching must not reorder keys";
  EXPECT_GT(first.sink_count, 1000);
  // Byte-for-byte determinism: a second run with the same seed reproduces
  // every counter (events, messages, wire bytes, latency) exactly.
  RunSignature second = RunMicro(paradigm, batch, 7);
  EXPECT_TRUE(first == second)
      << "runs diverged: sink " << first.sink_count << "/"
      << second.sink_count << " events " << first.events << "/"
      << second.events;
}

INSTANTIATE_TEST_SUITE_P(
    ParadigmsAndBatchSizes, BatchingTest,
    ::testing::Combine(::testing::Values(Paradigm::kStatic,
                                         Paradigm::kElastic),
                       ::testing::Values(1, 8, 64)),
    [](const ::testing::TestParamInfo<std::tuple<Paradigm, int>>& info) {
      return std::string(ParadigmName(std::get<0>(info.param)) ==
                                 std::string("static")
                             ? "static"
                             : "elastic") +
             "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(BatchingTest, BatchSizeOneMatchesHistoricalPath) {
  // max_batch_tuples == 1 must be the tuple-at-a-time data path: exactly
  // one message per routed tuple.
  RunSignature sig = RunMicro(Paradigm::kStatic, 1, 3);
  EXPECT_EQ(sig.messages, sig.routed);
}

TEST(BatchingTest, BatchingReducesMessagesAndEvents) {
  RunSignature b1 = RunMicro(Paradigm::kStatic, 1, 3);
  RunSignature b8 = RunMicro(Paradigm::kStatic, 8, 3);
  // Same modeled computation...
  EXPECT_GT(b8.sink_count, b1.sink_count / 2);
  // ...but fewer messages per routed tuple (runs coalesce).
  double b1_msgs = static_cast<double>(b1.messages) / b1.routed;
  double b8_msgs = static_cast<double>(b8.messages) / b8.routed;
  EXPECT_LT(b8_msgs, b1_msgs);
  double b1_events = static_cast<double>(b1.events) / b1.routed;
  double b8_events = static_cast<double>(b8.events) / b8.routed;
  EXPECT_LT(b8_events, b1_events);
}

TEST(BatchingTest, SteadyStateIsCallbackAllocationFree) {
  // After warm-up the data path must not miss EventFn's inline storage —
  // the allocation-free property bench_core_speed gates in CI.
  for (int batch : {1, 8}) {
    int64_t allocs = -1;
    RunSignature sig = RunMicro(Paradigm::kStatic, batch, 11, nullptr,
                                &allocs);
    EXPECT_GT(sig.sink_count, 1000);
    EXPECT_EQ(allocs, 0) << "batch " << batch
                         << ": steady-state EventFn heap fallback";
  }
}

}  // namespace
}  // namespace elasticutor
