// Sparse-vs-dense Algorithm 1 equivalence.
//
// The sparse indexed-heap solver (SolveAssignmentOnce) and the dense
// reference oracle (SolveAssignmentOnceDense) implement the same greedy with
// the same tie-breaking and shared marginal-cost arithmetic, so on any input
// they must agree *exactly*: feasibility, φ used, the full assignment and
// the (floating-point) migration cost. The randomized instances cover the
// regimes the scheduler produces — over/under-provisioned executors,
// data-intensive (locality-constrained) executors above φ, zero-capacity
// crashed nodes (the evacuation input: their cores are excluded from
// `current`), stateless executors, straggler node speeds and structurally
// infeasible demands.
#include <gtest/gtest.h>

#include <numeric>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

AssignmentInput RandomInput(uint64_t seed) {
  Rng rng(seed);
  const int n = 2 + static_cast<int>(rng.NextBounded(47));
  const int m = 1 + static_cast<int>(rng.NextBounded(64));
  AssignmentInput in;
  in.node_capacity.resize(n);
  for (int i = 0; i < n; ++i) {
    // ~15% crashed/evacuating nodes with zero schedulable capacity.
    in.node_capacity[i] =
        rng.NextBool(0.15) ? 0 : 1 + static_cast<int>(rng.NextBounded(8));
  }
  if (std::accumulate(in.node_capacity.begin(), in.node_capacity.end(), 0) ==
      0) {
    in.node_capacity[0] = 8;
  }
  switch (rng.NextBounded(3)) {
    case 0:
      break;  // No speed vector at all.
    case 1:
      in.node_speed.assign(n, 1.0);
      break;
    default:
      in.node_speed.resize(n);
      for (int i = 0; i < n; ++i) {
        in.node_speed[i] = in.node_capacity[i] == 0
                               ? 0.0
                               : (rng.NextBool(0.25)
                                      ? 0.25 + 0.5 * rng.NextDouble()
                                      : 1.0);
      }
  }
  in.home.resize(m);
  in.target.resize(m);
  in.state_bytes.resize(m);
  in.data_intensity.resize(m);
  in.current = SparseAssignment(m);
  std::vector<int> used(n, 0);
  for (int j = 0; j < m; ++j) {
    // Homes may land on crashed nodes (the evacuation case: an intensive
    // executor whose home is gone forces the φ-doubling loop).
    in.home[j] = static_cast<int>(rng.NextBounded(n));
    int cores = static_cast<int>(rng.NextBounded(4));
    for (int c = 0; c < cores; ++c) {
      int i = static_cast<int>(rng.NextBounded(n));
      if (used[i] < in.node_capacity[i]) {
        ++used[i];
        in.current.Add(i, j, 1);
      }
    }
    in.target[j] = 1 + static_cast<int>(rng.NextBounded(4));
    in.state_bytes[j] = rng.NextBool(0.2) ? 0.0 : rng.NextDouble() * 16e6;
    // ~30% data-intensive (above the default φ = 512 KB/s), the rest below.
    in.data_intensity[j] = rng.NextBool(0.3)
                               ? 1e6 + rng.NextDouble() * 9e6
                               : rng.NextDouble() * 0.5 * in.phi;
  }
  return in;
}

void ExpectIdentical(const AssignmentOutput& sparse,
                     const AssignmentOutput& dense, uint64_t seed) {
  ASSERT_EQ(sparse.feasible, dense.feasible) << "seed " << seed;
  EXPECT_EQ(sparse.phi_used, dense.phi_used) << "seed " << seed;
  // Bit-identical, not approximately equal: the solvers share the marginal
  // cost helpers and the summation order of MigrationCostBytes.
  EXPECT_EQ(sparse.migration_cost_bytes, dense.migration_cost_bytes)
      << "seed " << seed;
  EXPECT_EQ(sparse.x, dense.x) << "seed " << seed;
}

TEST(AssignmentEquivalenceTest, RandomizedInstancesMatchExactly) {
  int feasible = 0, infeasible = 0;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    AssignmentInput in = RandomInput(seed);
    AssignmentOutput sparse = SolveAssignment(in);
    AssignmentOutput dense = SolveAssignmentDense(in);
    ExpectIdentical(sparse, dense, seed);
    if (sparse.feasible) {
      ++feasible;
      // Identical assignments produce identical core-move plans.
      EXPECT_EQ(PlanCoreDiff(in.current, sparse.x),
                PlanCoreDiff(in.current, dense.x))
          << "seed " << seed;
      // Sanity: capacity respected and targets met.
      std::vector<int> used(in.node_capacity.size(), 0);
      for (int j = 0; j < sparse.x.num_executors(); ++j) {
        EXPECT_GE(sparse.x.Total(j), in.target[j]) << "seed " << seed;
        for (const auto& [node, cores] : sparse.x.exec[j]) {
          EXPECT_GT(cores, 0);
          used[node] += cores;
        }
      }
      for (size_t i = 0; i < used.size(); ++i) {
        EXPECT_LE(used[i], in.node_capacity[i]) << "seed " << seed;
      }
    } else {
      ++infeasible;
    }
  }
  // The generator must exercise both regimes.
  EXPECT_GT(feasible, 20);
  EXPECT_GT(infeasible, 5);
}

TEST(AssignmentEquivalenceTest, SinglePhiRunsMatchIncludingFailures) {
  // At a fixed φ both solvers must fail (or succeed) on exactly the same
  // instances — the doubling loop amplifies any divergence here.
  for (uint64_t seed = 200; seed <= 260; ++seed) {
    AssignmentInput in = RandomInput(seed);
    for (double phi : {in.phi, 64.0 * in.phi, 1e18}) {
      AssignmentOutput sparse = SolveAssignmentOnce(in, phi);
      AssignmentOutput dense = SolveAssignmentOnceDense(in, phi);
      ExpectIdentical(sparse, dense, seed);
    }
  }
}

TEST(AssignmentEquivalenceTest, CrashEvacuationInput) {
  // Node 1 crashed: zero capacity, and the four cores executors held there
  // are excluded from `current` (exactly the input DynamicScheduler builds).
  // Both solvers must replan those cores identically on healthy nodes.
  AssignmentInput in;
  in.node_capacity = {8, 0, 8};
  in.node_speed = {1.0, 0.0, 1.0};
  const int m = 4;
  in.home = {0, 1, 1, 2};  // Executors 1-2 homed on the dead node.
  in.target = {2, 2, 2, 2};
  in.state_bytes.assign(m, 4e6);
  in.data_intensity = {0.0, 1e7, 0.0, 0.0};  // Executor 1 is intensive.
  in.current = SparseAssignment(m);
  in.current.Add(0, 0, 2);
  in.current.Add(2, 3, 2);  // Executors 1-2 lost all their cores.
  AssignmentOutput sparse = SolveAssignment(in);
  AssignmentOutput dense = SolveAssignmentDense(in);
  ExpectIdentical(sparse, dense, 0);
  ASSERT_TRUE(sparse.feasible);
  for (int j = 0; j < m; ++j) {
    EXPECT_EQ(sparse.x.At(1, j), 0) << "core planned on the crashed node";
    EXPECT_GE(sparse.x.Total(j), in.target[j]);
  }
  // The intensive executor could not stay local (home is dead), so φ rose.
  EXPECT_GT(sparse.phi_used, in.phi);
}

TEST(PlanCoreDiffTest, EmitsMovesInNodeMajorOrder) {
  // Regression for ExecuteDiff's issuance order: one add per core and one
  // removal candidate per shrinking (node, executor), both (node, executor)
  // ascending — the order the historical dense n×m delta scan produced.
  SparseAssignment current = SparseAssignment::FromDense({
      {2, 0},  // node 0
      {0, 1},  // node 1
      {1, 0},  // node 2
  });
  SparseAssignment next = SparseAssignment::FromDense({
      {1, 1},
      {0, 1},
      {3, 0},
  });
  DiffPlan plan = PlanCoreDiff(current, next);
  std::vector<CoreMove> expected_adds = {{0, 1}, {2, 0}, {2, 0}};
  std::vector<CoreMove> expected_removals = {{0, 0}};
  EXPECT_EQ(plan.adds, expected_adds);
  EXPECT_EQ(plan.removal_candidates, expected_removals);

  // No-op diff plans nothing.
  DiffPlan none = PlanCoreDiff(current, current);
  EXPECT_TRUE(none.adds.empty());
  EXPECT_TRUE(none.removal_candidates.empty());
}

TEST(SparseAssignmentTest, AccessorsAndDenseRoundTrip) {
  SparseAssignment a(2);
  a.Add(3, 0, 2);
  a.Add(1, 0, 1);
  a.Add(2, 1, 4);
  EXPECT_EQ(a.At(3, 0), 2);
  EXPECT_EQ(a.At(1, 0), 1);
  EXPECT_EQ(a.At(0, 0), 0);
  EXPECT_EQ(a.Total(0), 3);
  EXPECT_EQ(a.Total(1), 4);
  // Entries stay node-ascending and vanish at zero.
  PlacementVec expected = {{1, 1}, {3, 2}};
  EXPECT_EQ(a.exec[0], expected);
  a.Add(1, 0, -1);
  EXPECT_EQ(a.exec[0].size(), 1u);
  EXPECT_EQ(a.At(1, 0), 0);

  SparseAssignment round = SparseAssignment::FromDense(a.ToDense(5));
  EXPECT_EQ(round, a);
}

}  // namespace
}  // namespace elasticutor
