// Unit tests for the execution-backend seam (src/exec/): the native
// backend's timer semantics (which must mirror the simulator's), the bounded
// MPSC channel, the batch pool, and the thread-safety of the EventFn
// heap-allocation counter. The sim-vs-native dataflow equivalence lives in
// native_equivalence_test.cc.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine_config.h"
#include "exec/batch_pool.h"
#include "exec/cpu_affinity.h"
#include "exec/label_barrier.h"
#include "exec/mpsc_channel.h"
#include "exec/native_backend.h"
#include "exec/sim_backend.h"
#include "exec/telemetry.h"
#include "sim/event_fn.h"

namespace elasticutor {
namespace {

using exec::BatchPool;
using exec::MpscChannel;
using exec::NativeBackend;
using exec::TupleBatchStorage;

// ---------------------------------------------------------------------------
// NativeBackend: wall-clock timers with simulator-compatible semantics.
// ---------------------------------------------------------------------------

TEST(NativeBackendTest, KindAndNameRoundTrip) {
  NativeBackend backend;
  EXPECT_EQ(backend.kind(), exec::BackendKind::kNative);
  EXPECT_STREQ(exec::BackendKindName(backend.kind()), "native");
  exec::SimBackend sim;
  EXPECT_STREQ(exec::BackendKindName(sim.kind()), "sim");
}

TEST(NativeBackendTest, NowIsMonotonic) {
  NativeBackend backend;
  SimTime a = backend.now();
  SimTime b = backend.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(NativeBackendTest, AfterFiresWithinRunUntil) {
  NativeBackend backend;
  bool fired = false;
  backend.After(Millis(1), [&]() { fired = true; });
  uint64_t executed = backend.RunUntil(backend.now() + Millis(200));
  EXPECT_TRUE(fired);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(backend.events_executed(), 1u);
}

TEST(NativeBackendTest, NegativeDelayClampsToNow) {
  NativeBackend backend;
  bool fired = false;
  backend.After(-Millis(5), [&]() { fired = true; });  // Clamps like sim.
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_TRUE(fired);
}

TEST(NativeBackendTest, SameDeadlineFiresInScheduleOrder) {
  NativeBackend backend;
  std::vector<int> order;
  const SimTime at = backend.now() + Millis(2);
  for (int i = 0; i < 8; ++i) {
    backend.At(at, [&order, i]() { order.push_back(i); });
  }
  backend.RunUntil(at + Millis(200));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(NativeBackendTest, CancelPreventsFiring) {
  NativeBackend backend;
  bool fired = false;
  EventId id = backend.After(Millis(5), [&]() { fired = true; });
  EXPECT_TRUE(backend.Cancel(id));
  EXPECT_FALSE(backend.Cancel(id));  // Already cancelled.
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_FALSE(fired);
  EXPECT_EQ(backend.events_executed(), 0u);
}

TEST(NativeBackendTest, CancelAfterFiringReturnsFalse) {
  NativeBackend backend;
  EventId id = backend.After(0, []() {});
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_FALSE(backend.Cancel(id));
}

TEST(NativeBackendTest, ScheduleFromAnotherThreadFires) {
  NativeBackend backend;
  std::atomic<bool> fired{false};
  // The driver parks far in the future; a worker schedules an earlier timer,
  // which must wake the driver rather than wait out the original deadline.
  std::thread scheduler([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    backend.After(0, [&]() { fired.store(true); });
  });
  backend.RunUntil(backend.now() + Millis(500));
  scheduler.join();
  EXPECT_TRUE(fired.load());
}

TEST(NativeBackendTest, StopWakesUnboundedRunUntil) {
  NativeBackend backend;
  std::thread stopper([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    backend.Stop();
  });
  backend.RunUntil(kSimTimeMax);  // Returns promptly on Stop, no deadline.
  stopper.join();
}

TEST(NativeBackendTest, PeriodicFiresUntilCallbackDeclines) {
  NativeBackend backend;
  int fires = 0;
  backend.Periodic(backend.now() + Millis(1), Millis(1),
                   [&](SimTime) { return ++fires < 3; });
  backend.RunUntil(backend.now() + Millis(500));
  EXPECT_EQ(fires, 3);
}

// ---------------------------------------------------------------------------
// MpscChannel.
// ---------------------------------------------------------------------------

TEST(MpscChannelTest, FifoRoundTripAndCloseDrain) {
  MpscChannel ch(/*capacity=*/4, /*producers=*/1);
  std::array<TupleBatchStorage, 3> batches;
  for (auto& b : batches) EXPECT_TRUE(ch.Push(&b));
  ch.CloseProducer();
  // Closed but not drained: batches come out in FIFO order, then nullptr.
  EXPECT_EQ(ch.Pop(), &batches[0]);
  EXPECT_EQ(ch.TryPop(), &batches[1]);
  EXPECT_EQ(ch.Pop(), &batches[2]);
  EXPECT_EQ(ch.Pop(), nullptr);
  EXPECT_EQ(ch.TryPop(), nullptr);
  EXPECT_EQ(ch.batches_pushed(), 3);
}

TEST(MpscChannelTest, TryPopOnEmptyOpenChannelReturnsNull) {
  MpscChannel ch(2, 1);
  EXPECT_EQ(ch.TryPop(), nullptr);
  ch.CloseProducer();
}

TEST(MpscChannelTest, PopBlocksUntilPush) {
  MpscChannel ch(2, 1);
  TupleBatchStorage batch;
  TupleBatchStorage* popped = nullptr;
  std::thread consumer([&]() { popped = ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ch.Push(&batch));
  consumer.join();
  EXPECT_EQ(popped, &batch);
  EXPECT_GE(ch.pop_waits(), 1);
  ch.CloseProducer();
}

TEST(MpscChannelTest, FullChannelBlocksProducerUntilPop) {
  MpscChannel ch(/*capacity=*/1, /*producers=*/1);
  TupleBatchStorage first, second;
  EXPECT_TRUE(ch.Push(&first));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&]() {
    EXPECT_TRUE(ch.Push(&second));  // Blocks: channel is full.
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ch.Pop(), &first);  // Frees a slot; producer unblocks.
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(ch.Pop(), &second);
  EXPECT_GE(ch.push_blocks(), 1);
  ch.CloseProducer();
}

TEST(MpscChannelTest, LastProducerCloseWakesBlockedConsumer) {
  MpscChannel ch(4, /*producers=*/3);
  TupleBatchStorage sentinel;
  TupleBatchStorage* popped = &sentinel;
  std::thread consumer([&]() { popped = ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ch.CloseProducer();
  ch.CloseProducer();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ch.CloseProducer();  // Last close: consumer must see nullptr.
  consumer.join();
  EXPECT_EQ(popped, nullptr);
}

TEST(MpscChannelTest, MultiProducerStressDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  MpscChannel ch(/*capacity=*/8, kProducers);
  std::vector<std::unique_ptr<TupleBatchStorage>> storage;
  storage.reserve(kProducers * kPerProducer);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    storage.push_back(std::make_unique<TupleBatchStorage>());
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(ch.Push(storage[p * kPerProducer + i].get()));
      }
      ch.CloseProducer();
    });
  }
  int consumed = 0;
  while (ch.Pop() != nullptr) ++consumed;
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_EQ(ch.batches_pushed(), kProducers * kPerProducer);
}

TEST(MpscChannelTest, AbortUnblocksFullChannelProducer) {
  MpscChannel ch(/*capacity=*/1, /*producers=*/1);
  TupleBatchStorage first, second;
  EXPECT_TRUE(ch.Push(&first));
  std::atomic<bool> push_result{true};
  std::thread producer([&]() { push_result.store(ch.Push(&second)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.Abort();
  producer.join();
  EXPECT_FALSE(push_result.load());  // Aborted push reports failure.
}

// ---------------------------------------------------------------------------
// BatchPool.
// ---------------------------------------------------------------------------

TEST(BatchPoolTest, ReleaseThenAcquireReusesWithoutAllocating) {
  BatchPool pool;
  TupleBatchStorage* a = pool.Acquire();
  EXPECT_EQ(pool.allocated(), 1);
  a->tuples.resize(16);
  const size_t capacity = a->tuples.capacity();
  pool.Release(a);
  TupleBatchStorage* b = pool.Acquire();
  EXPECT_EQ(b, a);                 // Reused, not reallocated.
  EXPECT_EQ(pool.allocated(), 1);  // Flat: the steady-state invariant.
  EXPECT_TRUE(b->tuples.empty());  // Cleared on release...
  EXPECT_GE(b->tuples.capacity(), capacity);  // ...but capacity retained.
  pool.Release(b);
}

TEST(BatchPoolTest, ConcurrentAcquireReleaseIsSafe) {
  BatchPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kRounds; ++i) {
        TupleBatchStorage* batch = pool.Acquire();
        batch->tuples.emplace_back();
        pool.Release(batch);
      }
    });
  }
  for (auto& t : threads) t.join();
  // At most one live batch per thread at any instant.
  EXPECT_GE(pool.allocated(), 1);
  EXPECT_LE(pool.allocated(), kThreads);
}

// ---------------------------------------------------------------------------
// EventFn::heap_allocations() under concurrent construction.
// ---------------------------------------------------------------------------

TEST(EventFnCounterTest, ConcurrentHeapFallbacksAreCountedExactly) {
  const int64_t before = EventFn::heap_allocations();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kPerThread; ++i) {
        // Oversized capture: guaranteed inline-storage miss.
        std::array<char, EventFn::kInlineBytes + 1> big{};
        EventFn fn([big]() { (void)big; });
        fn();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed atomics still count exactly; only ordering is unconstrained.
  EXPECT_EQ(EventFn::heap_allocations() - before, kThreads * kPerThread);
}

TEST(EventFnCounterTest, InlineCallablesDoNotTouchTheCounter) {
  const int64_t before = EventFn::heap_allocations();
  int x = 0;
  EventFn fn([&x]() { ++x; });
  EXPECT_FALSE(fn.on_heap());
  fn();
  EXPECT_EQ(x, 1);
  EXPECT_EQ(EventFn::heap_allocations(), before);
}

// ---------------------------------------------------------------------------
// In-channel labeling barrier: the primitive behind live shard reassignment
// (exec/label_barrier.h + the label-marker batches + MpscChannel::Kick).
// ---------------------------------------------------------------------------

TEST(LabelBarrierTest, CompletesOnLastExpectedMarker) {
  exec::LabelBarrier barrier;
  ASSERT_TRUE(barrier.Arm(/*label_id=*/7, /*expected=*/3));
  EXPECT_TRUE(barrier.armed(7));
  EXPECT_EQ(barrier.outstanding(7), 3);
  EXPECT_FALSE(barrier.OnLabel(7));
  EXPECT_FALSE(barrier.OnLabel(7));
  EXPECT_EQ(barrier.outstanding(7), 1);
  EXPECT_TRUE(barrier.OnLabel(7));  // Last marker: barrier completes.
  EXPECT_FALSE(barrier.armed(7));
  EXPECT_FALSE(barrier.OnLabel(7));  // Late marker of a done barrier: stale.
}

TEST(LabelBarrierTest, ZeroProducersMeansNothingToWaitFor) {
  exec::LabelBarrier barrier;
  EXPECT_FALSE(barrier.Arm(/*label_id=*/1, /*expected=*/0));
  EXPECT_FALSE(barrier.armed(1));
  EXPECT_EQ(barrier.outstanding(1), 0);
}

TEST(LabelBarrierTest, CancelMakesInFlightMarkersStaleAndAllowsRelabel) {
  exec::LabelBarrier barrier;
  ASSERT_TRUE(barrier.Arm(/*label_id=*/9, /*expected=*/2));
  EXPECT_TRUE(barrier.Cancel(9));  // Aborted migration.
  EXPECT_FALSE(barrier.Cancel(9));  // Already gone.
  EXPECT_FALSE(barrier.OnLabel(9));  // Its markers no-op from now on.
  // Re-labeling the same shard under a fresh id must not double count the
  // stale markers still in flight.
  ASSERT_TRUE(barrier.Arm(/*label_id=*/10, /*expected=*/1));
  EXPECT_FALSE(barrier.OnLabel(9));  // Another stale marker drains.
  EXPECT_TRUE(barrier.OnLabel(10));
}

TEST(LabelBarrierTest, IndependentLabelsDoNotInterfere) {
  exec::LabelBarrier barrier;
  ASSERT_TRUE(barrier.Arm(1, 1));
  ASSERT_TRUE(barrier.Arm(2, 2));
  EXPECT_TRUE(barrier.OnLabel(1));
  EXPECT_FALSE(barrier.OnLabel(2));
  EXPECT_TRUE(barrier.armed(2));
  EXPECT_TRUE(barrier.OnLabel(2));
}

TEST(MpscChannelTest, LabelMarkerArrivesBehindEarlierBatches) {
  // The whole point of the in-channel barrier: a marker pushed after N data
  // batches is popped after all N (per-producer FIFO), and Release resets
  // the label stamp so recycled batches are plain data again.
  MpscChannel channel(/*capacity=*/8, /*producers=*/1);
  BatchPool pool;
  constexpr int kData = 3;
  for (int i = 0; i < kData; ++i) {
    TupleBatchStorage* batch = pool.Acquire();
    EXPECT_EQ(batch->label_id, -1);
    batch->tuples.push_back(Tuple{});
    ASSERT_TRUE(channel.Push(batch));
  }
  TupleBatchStorage* marker = pool.Acquire();
  marker->label_id = 42;
  ASSERT_TRUE(channel.Push(marker));
  for (int i = 0; i < kData; ++i) {
    TupleBatchStorage* batch = channel.Pop();
    ASSERT_NE(batch, nullptr);
    EXPECT_EQ(batch->label_id, -1) << "marker overtook batch " << i;
    pool.Release(batch);
  }
  TupleBatchStorage* popped = channel.Pop();
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->label_id, 42);
  pool.Release(popped);
  EXPECT_EQ(popped->label_id, -1);  // Recycled batches are data again.
}

TEST(MpscChannelTest, KickWakesBlockedPopWithoutClosing) {
  MpscChannel channel(/*capacity=*/2, /*producers=*/1);
  BatchPool pool;
  std::atomic<int> null_pops{0};
  TupleBatchStorage* got = nullptr;
  std::thread consumer([&] {
    for (;;) {
      TupleBatchStorage* batch = channel.Pop();
      if (batch != nullptr) {
        got = batch;
        return;
      }
      ASSERT_FALSE(channel.exhausted());  // A kick, not a shutdown.
      null_pops.fetch_add(1);
    }
  });
  // The consumer may be mid-Pop or not yet there; Kick must wake it either
  // way (the flag persists until the next Pop returns).
  channel.Kick();
  while (null_pops.load() == 0) std::this_thread::yield();
  TupleBatchStorage* batch = pool.Acquire();
  ASSERT_TRUE(channel.Push(batch));
  consumer.join();
  EXPECT_EQ(got, batch);
  EXPECT_FALSE(channel.exhausted());
  channel.CloseProducer();
  EXPECT_TRUE(channel.exhausted());
  pool.Release(batch);
}

TEST(MpscChannelTest, BarrierDrainsAcrossProducerClose) {
  // Two producers feed one consumer. Producer A pushes data then its
  // marker; producer B closes without ever pushing (its marker duty was
  // swept before the close — modeled here by the barrier expecting only
  // A's marker). The consumer's barrier completes exactly when A's marker
  // arrives, and the channel is exhausted only after both closed.
  MpscChannel channel(/*capacity=*/8, /*producers=*/2);
  BatchPool pool;
  exec::LabelBarrier barrier;
  ASSERT_TRUE(barrier.Arm(/*label_id=*/5, /*expected=*/1));

  TupleBatchStorage* data = pool.Acquire();
  data->tuples.push_back(Tuple{});
  ASSERT_TRUE(channel.Push(data));
  TupleBatchStorage* marker = pool.Acquire();
  marker->label_id = 5;
  ASSERT_TRUE(channel.Push(marker));
  channel.CloseProducer();  // A done.
  channel.CloseProducer();  // B closes without a marker.

  bool complete = false;
  int batches = 0;
  for (;;) {
    TupleBatchStorage* batch = channel.Pop();
    if (batch == nullptr) {
      ASSERT_TRUE(channel.exhausted());
      break;
    }
    if (batch->label_id >= 0) {
      complete = barrier.OnLabel(batch->label_id);
    } else {
      ++batches;
    }
    pool.Release(batch);
  }
  EXPECT_TRUE(complete);
  EXPECT_EQ(batches, 1);
  EXPECT_FALSE(barrier.armed(5));
}

// ---------------------------------------------------------------------------
// Resource-control plane units: config shape, telemetry clock, affinity shim.
// ---------------------------------------------------------------------------

TEST(MpscChannelTest, AddProducerKeepsChannelOpenAcrossOriginalClose) {
  // GrowWorkers registers a grown worker on live downstream channels; the
  // channel must not read as exhausted until EVERY producer — original and
  // added — has closed.
  MpscChannel channel(/*capacity=*/2, /*producers=*/1);
  channel.AddProducer();
  channel.CloseProducer();
  EXPECT_FALSE(channel.exhausted());
  channel.CloseProducer();
  EXPECT_TRUE(channel.exhausted());
}

TEST(NativeOptionsTest, DeprecatedFlatAliasesReadAndWriteNestedFields) {
  NativeOptions options;
  options.batch_tuples = 7;                  // Old name...
  EXPECT_EQ(options.data_path.batch_tuples, 7);  // ...new storage.
  options.data_path.channel_capacity_batches = 9;
  EXPECT_EQ(options.channel_capacity_batches, 9);
  options.balance_period_ns = Millis(3);
  EXPECT_EQ(options.balance.period_ns, Millis(3));
  options.balance.theta = 1.5;
  EXPECT_DOUBLE_EQ(options.balance_theta, 1.5);
  options.balance_max_moves = 5;
  EXPECT_EQ(options.balance.max_moves, 5);
  // The deprecated type name still compiles.
  NativeRuntimeOptions legacy;
  EXPECT_EQ(legacy.data_path.batch_tuples, 64);
}

TEST(NativeOptionsTest, CopiesAreIndependentDespiteReferenceAliases) {
  NativeOptions a;
  a.batch_tuples = 11;
  a.balance.theta = 2.0;
  NativeOptions b = a;  // Copy ctor must NOT alias a's nested fields.
  b.batch_tuples = 13;
  b.balance_theta = 3.0;
  EXPECT_EQ(a.data_path.batch_tuples, 11);
  EXPECT_EQ(b.data_path.batch_tuples, 13);
  EXPECT_DOUBLE_EQ(a.balance.theta, 2.0);
  EXPECT_DOUBLE_EQ(b.balance.theta, 3.0);
  NativeOptions c;
  c = a;  // Assignment likewise copies values, not bindings.
  c.channel_capacity_batches = 5;
  EXPECT_EQ(a.data_path.channel_capacity_batches, 64);
  EXPECT_EQ(c.data_path.channel_capacity_batches, 5);
  // EngineConfig (which embeds NativeOptions) stays copyable — benches copy
  // a base config per row.
  EngineConfig base;
  base.native.batch_tuples = 21;
  EngineConfig row = base;
  row.native.batch_tuples = 22;
  EXPECT_EQ(base.native.data_path.batch_tuples, 21);
  EXPECT_EQ(row.native.data_path.batch_tuples, 22);
}

TEST(CycleClockTest, TicksAdvanceAndConvertToPlausibleNs) {
  const uint64_t t0 = exec::CycleClock::Now();
  // Busy-wait a hair so even a coarse fallback clock moves.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const uint64_t t1 = exec::CycleClock::Now();
  EXPECT_GT(t1, t0);
  EXPECT_GT(exec::CycleClock::NsPerTick(), 0.0);
  const int64_t ns = exec::CycleClock::ToNs(static_cast<int64_t>(t1 - t0));
  EXPECT_GT(ns, 0);
  EXPECT_LT(ns, Seconds(10));  // A spin of 1e5 adds is nowhere near 10 s.
}

TEST(CpuAffinityTest, DetectsAtLeastOneCpuAndGroupsPackages) {
  const exec::CpuTopology topo = exec::CpuTopology::Detect(false);
  ASSERT_FALSE(topo.cpus.empty());
  for (const auto& c : topo.cpus) EXPECT_GE(c.cpu, 0);
  // numa_aware ordering: package ids must be non-interleaved (each package's
  // CPUs contiguous in the list).
  const exec::CpuTopology numa = exec::CpuTopology::Detect(true);
  ASSERT_EQ(numa.cpus.size(), topo.cpus.size());
  for (size_t i = 2; i < numa.cpus.size(); ++i) {
    if (numa.cpus[i].package == numa.cpus[i - 2].package) {
      EXPECT_EQ(numa.cpus[i - 1].package, numa.cpus[i].package)
          << "package ids interleave at index " << i;
    }
  }
}

TEST(CpuAffinityTest, PinThreadToCpuMatchesSupportClaim) {
  std::atomic<bool> stop{false};
  std::thread t([&stop] {
    while (!stop.load()) std::this_thread::yield();
  });
  const exec::CpuTopology topo = exec::CpuTopology::Detect(false);
  const bool pinned = exec::PinThreadToCpu(&t, topo.cpus.front().cpu);
  if (exec::PinningSupported()) {
    EXPECT_TRUE(pinned);  // First online CPU is always a legal target.
  } else {
    EXPECT_FALSE(pinned);  // The shim declines rather than pretending.
  }
  // Pinning to a CPU that cannot exist fails cleanly everywhere.
  EXPECT_FALSE(exec::PinThreadToCpu(&t, 1 << 20));
  stop.store(true);
  t.join();
}

TEST(ExecutionBackendTest, UnboundResourcePlaneYieldsEmptySnapshot) {
  NativeBackend backend;
  EXPECT_EQ(backend.worker_pool(), nullptr);
  const exec::TelemetrySnapshot snap = backend.SampleTelemetry();
  EXPECT_TRUE(snap.workers.empty());
  EXPECT_TRUE(snap.shards.empty());
  EXPECT_TRUE(snap.sources.empty());
  EXPECT_EQ(snap.total_processed, 0);
}

}  // namespace
}  // namespace elasticutor
