// Unit tests for the execution-backend seam (src/exec/): the native
// backend's timer semantics (which must mirror the simulator's), the bounded
// MPSC channel, the batch pool, and the thread-safety of the EventFn
// heap-allocation counter. The sim-vs-native dataflow equivalence lives in
// native_equivalence_test.cc.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "exec/batch_pool.h"
#include "exec/mpsc_channel.h"
#include "exec/native_backend.h"
#include "exec/sim_backend.h"
#include "sim/event_fn.h"

namespace elasticutor {
namespace {

using exec::BatchPool;
using exec::MpscChannel;
using exec::NativeBackend;
using exec::TupleBatchStorage;

// ---------------------------------------------------------------------------
// NativeBackend: wall-clock timers with simulator-compatible semantics.
// ---------------------------------------------------------------------------

TEST(NativeBackendTest, KindAndNameRoundTrip) {
  NativeBackend backend;
  EXPECT_EQ(backend.kind(), exec::BackendKind::kNative);
  EXPECT_STREQ(exec::BackendKindName(backend.kind()), "native");
  exec::SimBackend sim;
  EXPECT_STREQ(exec::BackendKindName(sim.kind()), "sim");
}

TEST(NativeBackendTest, NowIsMonotonic) {
  NativeBackend backend;
  SimTime a = backend.now();
  SimTime b = backend.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(NativeBackendTest, AfterFiresWithinRunUntil) {
  NativeBackend backend;
  bool fired = false;
  backend.After(Millis(1), [&]() { fired = true; });
  uint64_t executed = backend.RunUntil(backend.now() + Millis(200));
  EXPECT_TRUE(fired);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(backend.events_executed(), 1u);
}

TEST(NativeBackendTest, NegativeDelayClampsToNow) {
  NativeBackend backend;
  bool fired = false;
  backend.After(-Millis(5), [&]() { fired = true; });  // Clamps like sim.
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_TRUE(fired);
}

TEST(NativeBackendTest, SameDeadlineFiresInScheduleOrder) {
  NativeBackend backend;
  std::vector<int> order;
  const SimTime at = backend.now() + Millis(2);
  for (int i = 0; i < 8; ++i) {
    backend.At(at, [&order, i]() { order.push_back(i); });
  }
  backend.RunUntil(at + Millis(200));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(NativeBackendTest, CancelPreventsFiring) {
  NativeBackend backend;
  bool fired = false;
  EventId id = backend.After(Millis(5), [&]() { fired = true; });
  EXPECT_TRUE(backend.Cancel(id));
  EXPECT_FALSE(backend.Cancel(id));  // Already cancelled.
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_FALSE(fired);
  EXPECT_EQ(backend.events_executed(), 0u);
}

TEST(NativeBackendTest, CancelAfterFiringReturnsFalse) {
  NativeBackend backend;
  EventId id = backend.After(0, []() {});
  backend.RunUntil(backend.now() + Millis(50));
  EXPECT_FALSE(backend.Cancel(id));
}

TEST(NativeBackendTest, ScheduleFromAnotherThreadFires) {
  NativeBackend backend;
  std::atomic<bool> fired{false};
  // The driver parks far in the future; a worker schedules an earlier timer,
  // which must wake the driver rather than wait out the original deadline.
  std::thread scheduler([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    backend.After(0, [&]() { fired.store(true); });
  });
  backend.RunUntil(backend.now() + Millis(500));
  scheduler.join();
  EXPECT_TRUE(fired.load());
}

TEST(NativeBackendTest, StopWakesUnboundedRunUntil) {
  NativeBackend backend;
  std::thread stopper([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    backend.Stop();
  });
  backend.RunUntil(kSimTimeMax);  // Returns promptly on Stop, no deadline.
  stopper.join();
}

TEST(NativeBackendTest, PeriodicFiresUntilCallbackDeclines) {
  NativeBackend backend;
  int fires = 0;
  backend.Periodic(backend.now() + Millis(1), Millis(1),
                   [&](SimTime) { return ++fires < 3; });
  backend.RunUntil(backend.now() + Millis(500));
  EXPECT_EQ(fires, 3);
}

// ---------------------------------------------------------------------------
// MpscChannel.
// ---------------------------------------------------------------------------

TEST(MpscChannelTest, FifoRoundTripAndCloseDrain) {
  MpscChannel ch(/*capacity=*/4, /*producers=*/1);
  std::array<TupleBatchStorage, 3> batches;
  for (auto& b : batches) EXPECT_TRUE(ch.Push(&b));
  ch.CloseProducer();
  // Closed but not drained: batches come out in FIFO order, then nullptr.
  EXPECT_EQ(ch.Pop(), &batches[0]);
  EXPECT_EQ(ch.TryPop(), &batches[1]);
  EXPECT_EQ(ch.Pop(), &batches[2]);
  EXPECT_EQ(ch.Pop(), nullptr);
  EXPECT_EQ(ch.TryPop(), nullptr);
  EXPECT_EQ(ch.batches_pushed(), 3);
}

TEST(MpscChannelTest, TryPopOnEmptyOpenChannelReturnsNull) {
  MpscChannel ch(2, 1);
  EXPECT_EQ(ch.TryPop(), nullptr);
  ch.CloseProducer();
}

TEST(MpscChannelTest, PopBlocksUntilPush) {
  MpscChannel ch(2, 1);
  TupleBatchStorage batch;
  TupleBatchStorage* popped = nullptr;
  std::thread consumer([&]() { popped = ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ch.Push(&batch));
  consumer.join();
  EXPECT_EQ(popped, &batch);
  EXPECT_GE(ch.pop_waits(), 1);
  ch.CloseProducer();
}

TEST(MpscChannelTest, FullChannelBlocksProducerUntilPop) {
  MpscChannel ch(/*capacity=*/1, /*producers=*/1);
  TupleBatchStorage first, second;
  EXPECT_TRUE(ch.Push(&first));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&]() {
    EXPECT_TRUE(ch.Push(&second));  // Blocks: channel is full.
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ch.Pop(), &first);  // Frees a slot; producer unblocks.
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(ch.Pop(), &second);
  EXPECT_GE(ch.push_blocks(), 1);
  ch.CloseProducer();
}

TEST(MpscChannelTest, LastProducerCloseWakesBlockedConsumer) {
  MpscChannel ch(4, /*producers=*/3);
  TupleBatchStorage sentinel;
  TupleBatchStorage* popped = &sentinel;
  std::thread consumer([&]() { popped = ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ch.CloseProducer();
  ch.CloseProducer();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ch.CloseProducer();  // Last close: consumer must see nullptr.
  consumer.join();
  EXPECT_EQ(popped, nullptr);
}

TEST(MpscChannelTest, MultiProducerStressDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  MpscChannel ch(/*capacity=*/8, kProducers);
  std::vector<std::unique_ptr<TupleBatchStorage>> storage;
  storage.reserve(kProducers * kPerProducer);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    storage.push_back(std::make_unique<TupleBatchStorage>());
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(ch.Push(storage[p * kPerProducer + i].get()));
      }
      ch.CloseProducer();
    });
  }
  int consumed = 0;
  while (ch.Pop() != nullptr) ++consumed;
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_EQ(ch.batches_pushed(), kProducers * kPerProducer);
}

TEST(MpscChannelTest, AbortUnblocksFullChannelProducer) {
  MpscChannel ch(/*capacity=*/1, /*producers=*/1);
  TupleBatchStorage first, second;
  EXPECT_TRUE(ch.Push(&first));
  std::atomic<bool> push_result{true};
  std::thread producer([&]() { push_result.store(ch.Push(&second)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.Abort();
  producer.join();
  EXPECT_FALSE(push_result.load());  // Aborted push reports failure.
}

// ---------------------------------------------------------------------------
// BatchPool.
// ---------------------------------------------------------------------------

TEST(BatchPoolTest, ReleaseThenAcquireReusesWithoutAllocating) {
  BatchPool pool;
  TupleBatchStorage* a = pool.Acquire();
  EXPECT_EQ(pool.allocated(), 1);
  a->tuples.resize(16);
  const size_t capacity = a->tuples.capacity();
  pool.Release(a);
  TupleBatchStorage* b = pool.Acquire();
  EXPECT_EQ(b, a);                 // Reused, not reallocated.
  EXPECT_EQ(pool.allocated(), 1);  // Flat: the steady-state invariant.
  EXPECT_TRUE(b->tuples.empty());  // Cleared on release...
  EXPECT_GE(b->tuples.capacity(), capacity);  // ...but capacity retained.
  pool.Release(b);
}

TEST(BatchPoolTest, ConcurrentAcquireReleaseIsSafe) {
  BatchPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kRounds; ++i) {
        TupleBatchStorage* batch = pool.Acquire();
        batch->tuples.emplace_back();
        pool.Release(batch);
      }
    });
  }
  for (auto& t : threads) t.join();
  // At most one live batch per thread at any instant.
  EXPECT_GE(pool.allocated(), 1);
  EXPECT_LE(pool.allocated(), kThreads);
}

// ---------------------------------------------------------------------------
// EventFn::heap_allocations() under concurrent construction.
// ---------------------------------------------------------------------------

TEST(EventFnCounterTest, ConcurrentHeapFallbacksAreCountedExactly) {
  const int64_t before = EventFn::heap_allocations();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kPerThread; ++i) {
        // Oversized capture: guaranteed inline-storage miss.
        std::array<char, EventFn::kInlineBytes + 1> big{};
        EventFn fn([big]() { (void)big; });
        fn();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Relaxed atomics still count exactly; only ordering is unconstrained.
  EXPECT_EQ(EventFn::heap_allocations() - before, kThreads * kPerThread);
}

TEST(EventFnCounterTest, InlineCallablesDoNotTouchTheCounter) {
  const int64_t before = EventFn::heap_allocations();
  int x = 0;
  EventFn fn([&x]() { ++x; });
  EXPECT_FALSE(fn.on_heap());
  fn();
  EXPECT_EQ(x, 1);
  EXPECT_EQ(EventFn::heap_allocations(), before);
}

}  // namespace
}  // namespace elasticutor
