// Tests for the resource-centric baseline: the operator-level repartitioning
// protocol (pause -> drain -> migrate -> update -> resume), state
// consistency across repartitions, and operator rescaling.
#include <gtest/gtest.h>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

struct RcRig {
  std::unique_ptr<Engine> engine;
  MicroWorkload workload;

  explicit RcRig(bool auto_controller, double rate = 3000.0) {
    MicroOptions options;
    options.generator_executors = 2;
    options.calculator_executors = 4;
    options.shards_per_executor = 16;
    options.num_keys = 1024;
    options.mode = SourceSpec::Mode::kTrace;
    options.trace_rate_per_sec = rate;
    workload = std::move(BuildMicroWorkload(options, 17)).value();
    EngineConfig config;
    config.paradigm = Paradigm::kResourceCentric;
    config.num_nodes = 4;
    config.cores_per_node = 4;
    config.validate_key_order = true;
    config.rc.enabled = auto_controller;
    engine = std::make_unique<Engine>(workload.topology, config);
    ELASTICUTOR_CHECK(engine->Setup().ok());
  }
};

TEST(RcControllerTest, ProbeMoveMigratesShardConsistently) {
  RcRig rig(/*auto_controller=*/false);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));

  OperatorId op = rig.workload.calculator;
  OperatorPartition* part = rig.engine->runtime()->partition(op);
  ShardId shard = 3;
  int from = part->ExecutorOfShard(shard);
  int to = (from + 1) % part->num_executors();

  size_t ops_before = rig.engine->metrics()->elasticity_ops().size();
  ASSERT_TRUE(rig.engine->rc_controller()->ProbeMoveShard(op, shard, to).ok());
  rig.engine->RunFor(Seconds(2));

  EXPECT_EQ(part->ExecutorOfShard(shard), to);
  EXPECT_FALSE(part->paused());  // Resumed.
  const auto& ops = rig.engine->metrics()->elasticity_ops();
  ASSERT_GT(ops.size(), ops_before);
  // Global sync is expensive: pause + drain + routing updates across both
  // generator executors.
  EXPECT_GT(ops.back().sync_ns, Millis(5));
  EXPECT_EQ(rig.engine->order_violations(), 0);
  // The shard state now lives in the destination executor's store.
  auto dest = std::static_pointer_cast<SingleTaskExecutor>(
      rig.engine->runtime()->executor(op, to));
  EXPECT_TRUE(dest->state_store()->HasShard(shard));
}

TEST(RcControllerTest, PauseStallsOperatorDuringRepartition) {
  RcRig rig(/*auto_controller=*/false);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  OperatorId op = rig.workload.calculator;
  OperatorPartition* part = rig.engine->runtime()->partition(op);
  ASSERT_TRUE(rig.engine->rc_controller()
                  ->ProbeMoveShard(op, 0, (part->ExecutorOfShard(0) + 1) %
                                              part->num_executors())
                  .ok());
  // Immediately after the trigger the operator must be paused.
  EXPECT_TRUE(part->paused());
  rig.engine->RunFor(Seconds(2));
  EXPECT_FALSE(part->paused());
}

TEST(RcControllerTest, RepartitionBalancesSkewedLoad) {
  RcRig rig(/*auto_controller=*/true);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(8));
  // The controller had several cycles; with a Zipf workload it should have
  // repartitioned at least once and kept the system consistent.
  EXPECT_EQ(rig.engine->order_violations(), 0);
  EXPECT_GT(rig.engine->metrics()->sink_count(), 10000);
}

TEST(RcControllerTest, TriggerRepartitionRejectsWhileActive) {
  RcRig rig(/*auto_controller=*/false);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  OperatorId op = rig.workload.calculator;
  OperatorPartition* part = rig.engine->runtime()->partition(op);
  ASSERT_TRUE(rig.engine->rc_controller()
                  ->ProbeMoveShard(op, 1, (part->ExecutorOfShard(1) + 1) %
                                              part->num_executors())
                  .ok());
  EXPECT_FALSE(rig.engine->rc_controller()->TriggerRepartition(op).ok());
}

TEST(RcControllerTest, StateNeverLostAcrossRepartitions) {
  RcRig rig(/*auto_controller=*/false);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  OperatorId op = rig.workload.calculator;
  OperatorPartition* part = rig.engine->runtime()->partition(op);

  auto count_shards = [&]() {
    size_t total = 0;
    for (const auto& ex : rig.engine->runtime()->executors(op)) {
      total += std::static_pointer_cast<SingleTaskExecutor>(ex)
                   ->state_store()
                   ->num_shards();
    }
    return total;
  };
  size_t before = count_shards();
  for (int i = 0; i < 6; ++i) {
    int from = part->ExecutorOfShard(i);
    rig.engine->rc_controller()
        ->ProbeMoveShard(op, i, (from + 1) % part->num_executors())
        .ok();
    rig.engine->RunFor(Seconds(2));
  }
  EXPECT_EQ(count_shards(), before);  // Every shard exists exactly once.
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

}  // namespace
}  // namespace elasticutor
