// Tests for the elastic executor and the intra-executor load balancer:
// shard reassignment protocol, core add/remove, state sharing, imbalance
// reduction, order preservation.
#include <gtest/gtest.h>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

// ---- Load balancer unit tests ----

TEST(LoadBalancerTest, ImbalanceFactorBasics) {
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor({}), 1.0);
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor({2, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor({4, 2, 0}), 2.0);
}

TEST(LoadBalancerTest, ReachesThetaWhenPossible) {
  // 16 equal shards on slot 0 of 4 slots: trivially balanceable.
  std::vector<double> load(16, 1.0);
  std::vector<int> assignment(16, 0);
  auto moves = balance::PlanMoves(load, &assignment, 4, 1.2, 1000);
  std::vector<double> slot(4, 0);
  for (size_t s = 0; s < load.size(); ++s) slot[assignment[s]] += load[s];
  EXPECT_LE(balance::ImbalanceFactor(slot), 1.2);
  EXPECT_FALSE(moves.empty());
}

TEST(LoadBalancerTest, StopsWhenNoMoveImproves) {
  // One huge shard cannot be split; δ stays above θ but planning halts.
  std::vector<double> load = {10.0, 0.1, 0.1, 0.1};
  std::vector<int> assignment = {0, 1, 1, 1};
  auto moves = balance::PlanMoves(load, &assignment, 2, 1.2, 1000);
  EXPECT_LT(moves.size(), 5u);  // Terminates quickly, no thrash.
}

TEST(LoadBalancerTest, DoesNotTouchBalancedSlots) {
  std::vector<double> load = {1, 1, 1, 1};
  std::vector<int> assignment = {0, 1, 2, 3};
  auto moves = balance::PlanMoves(load, &assignment, 4, 1.2, 1000);
  EXPECT_TRUE(moves.empty());
}

TEST(LoadBalancerTest, FrozenSlotsExcluded) {
  std::vector<double> load(12, 1.0);
  std::vector<int> assignment(12, 0);
  std::vector<bool> frozen = {false, false, true};
  auto moves = balance::PlanMoves(load, &assignment, 3, 1.2, 1000, &frozen);
  for (const auto& m : moves) EXPECT_NE(m.to, 2);
  for (int slot : assignment) EXPECT_NE(slot, 2);
}

TEST(LoadBalancerTest, EvacuationSpreadsHeaviestFirst) {
  std::vector<double> shard_load = {5.0, 3.0, 1.0};
  std::vector<double> slot_load = {0.0, 0.0, 0.0};
  std::vector<bool> allowed = {false, true, true};
  auto plan = balance::PlanEvacuation({0, 1, 2}, shard_load, &slot_load,
                                      /*from=*/0, allowed);
  ASSERT_TRUE(plan.ok());
  const auto& moves = *plan;
  ASSERT_EQ(moves.size(), 3u);
  EXPECT_EQ(moves[0].shard, 0);  // Heaviest placed first.
  // Greedy least-loaded: 5 -> slot1, 3 -> slot2, 1 -> slot2.
  EXPECT_NEAR(slot_load[1], 5.0, 1e-9);
  EXPECT_NEAR(slot_load[2], 4.0, 1e-9);
}

TEST(LoadBalancerTest, EvacuationWithNoDestinationReturnsStatus) {
  // Full-cluster fault: every candidate destination is disallowed. The
  // planner must report failure instead of CHECK-aborting the process.
  std::vector<double> shard_load = {1.0};
  std::vector<double> slot_load = {1.0, 0.0};
  std::vector<bool> allowed = {false, false};
  auto plan = balance::PlanEvacuation({0}, shard_load, &slot_load,
                                      /*from=*/0, allowed);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NEAR(slot_load[0], 1.0, 1e-9);  // Untouched on failure.
}

// ---- Capacity-aware planner ----

TEST(LoadBalancerTest, ImbalanceFactorNormalizesByCapacity) {
  // Equal raw loads, but slot 1 is half speed: normalized loads {2, 4}
  // against a balanced level of (2+2)/(1+0.5) = 8/3 -> delta = 1.5.
  std::vector<double> load = {2.0, 2.0};
  std::vector<double> caps = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor(load, &caps), 1.5);
  // Unit capacities reproduce the paper's max/avg exactly.
  std::vector<double> unit = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(balance::ImbalanceFactor({4, 2}, &unit),
                   balance::ImbalanceFactor({4, 2}));
}

TEST(LoadBalancerTest, SlowSlotShedsLoadUnderCapacity) {
  // 10 equal shards split evenly over a nominal slot and a 4x-slow slot.
  // Raw loads are balanced (the homogeneous planner would not move), but
  // normalized loads are {5, 20}: the slow slot must shed down to ~1/5 of
  // the total.
  std::vector<double> load(10, 1.0);
  std::vector<int> assignment = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<double> caps = {1.0, 0.25};

  std::vector<int> untouched = assignment;
  auto none = balance::PlanMoves(load, &untouched, 2, 1.2, 1000);
  EXPECT_TRUE(none.empty());  // Homogeneous view: already balanced.

  auto moves = balance::PlanMoves(load, &assignment, 2, 1.2, 1000,
                                  /*frozen=*/nullptr, &caps);
  EXPECT_FALSE(moves.empty());
  std::vector<double> slot(2, 0.0);
  for (size_t s = 0; s < load.size(); ++s) slot[assignment[s]] += load[s];
  EXPECT_LE(balance::ImbalanceFactor(slot, &caps), 1.2);
  EXPECT_LT(slot[1], slot[0]);  // The slow slot carries the small share.
  EXPECT_NEAR(slot[1], 2.0, 1.01);  // ~ total * 0.25/1.25.
}

TEST(LoadBalancerTest, FrozenSlotKeepsLoadDespiteSpareCapacity) {
  // Slot 2 is fast and idle but frozen: the planner must balance over the
  // other two only, never routing anything to (or off) the frozen slot.
  std::vector<double> load(12, 1.0);
  std::vector<int> assignment(12, 0);
  std::vector<bool> frozen = {false, false, true};
  std::vector<double> caps = {1.0, 1.0, 100.0};
  auto moves = balance::PlanMoves(load, &assignment, 3, 1.2, 1000, &frozen,
                                  &caps);
  for (const auto& m : moves) EXPECT_NE(m.to, 2);
  for (int slot : assignment) EXPECT_NE(slot, 2);
  std::vector<double> slot(3, 0.0);
  for (size_t s = 0; s < load.size(); ++s) slot[assignment[s]] += load[s];
  // δ over the two live slots only (the planner stops at θ = 1.2, i.e. a
  // 7/5 split of the 12 unit shards).
  EXPECT_LE(balance::ImbalanceFactor({slot[0], slot[1]}), 1.2);
  EXPECT_NEAR(slot[0] + slot[1], 12.0, 1e-9);
}

TEST(LoadBalancerTest, ZeroCapacitySlotTreatedAsFrozen) {
  // A dead slot (capacity 0) neither gives nor receives, exactly like a
  // frozen slot — and does not divide-by-zero the normalization.
  std::vector<double> load(8, 1.0);
  std::vector<int> assignment = {0, 0, 0, 0, 0, 0, 2, 2};
  std::vector<double> caps = {1.0, 1.0, 0.0};
  auto moves = balance::PlanMoves(load, &assignment, 3, 1.2, 1000,
                                  /*frozen=*/nullptr, &caps);
  for (const auto& m : moves) {
    EXPECT_NE(m.to, 2);
    EXPECT_NE(m.from, 2);
  }
  EXPECT_EQ(assignment[6], 2);
  EXPECT_EQ(assignment[7], 2);
  std::vector<double> slot(3, 0.0);
  for (size_t s = 0; s < load.size(); ++s) slot[assignment[s]] += load[s];
  EXPECT_NEAR(slot[0], 3.0, 1e-9);  // The live slots split the rest.
  EXPECT_NEAR(slot[1], 3.0, 1e-9);
}

TEST(LoadBalancerTest, EvacuationPrefersFastSlots) {
  // One heavy shard, destinations at speed 1.0 vs 0.25 with equal (zero)
  // load: the fast slot wins; zero-capacity slots are never destinations.
  std::vector<double> shard_load = {4.0, 1.0};
  std::vector<double> slot_load = {0.0, 0.0, 0.0, 0.0};
  std::vector<bool> allowed = {false, true, true, true};
  std::vector<double> caps = {1.0, 0.25, 1.0, 0.0};
  auto plan = balance::PlanEvacuation({0, 1}, shard_load, &slot_load,
                                      /*from=*/0, allowed, &caps);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ((*plan)[0].to, 2);  // 4.0/1.0 beats 4.0/0.25.
  EXPECT_EQ((*plan)[1].to, 1);  // Then (4+1)/1 = 5 vs 1/0.25 = 4.
  for (const auto& m : *plan) EXPECT_NE(m.to, 3);
}

TEST(LoadBalancerTest, MoveCountBounded) {
  Rng rng(3);
  std::vector<double> load(256);
  for (auto& l : load) l = rng.NextDouble();
  std::vector<int> assignment(256, 0);
  auto moves = balance::PlanMoves(load, &assignment, 8, 1.2, 10);
  EXPECT_LE(moves.size(), 10u);
}

// ---- Elastic executor integration fixtures ----

struct ElasticRig {
  std::unique_ptr<Engine> engine;
  MicroWorkload workload;
  std::shared_ptr<ElasticExecutor> exec;

  explicit ElasticRig(bool validate = true, int64_t state_bytes = 32 * kKiB,
                      StateLayerConfig state_config = StateLayerConfig{}) {
    MicroOptions options;
    options.generator_executors = 2;
    options.calculator_executors = 1;
    options.shards_per_executor = 32;
    options.num_keys = 512;
    options.shard_state_bytes = state_bytes;
    options.mode = SourceSpec::Mode::kTrace;
    options.trace_rate_per_sec = 2500.0;
    workload = std::move(BuildMicroWorkload(options, 11)).value();
    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.num_nodes = 4;
    config.cores_per_node = 4;
    config.validate_key_order = validate;
    config.scheduler.enabled = false;  // Tests drive cores manually.
    config.state = state_config;
    engine = std::make_unique<Engine>(workload.topology, config);
    ELASTICUTOR_CHECK(engine->Setup().ok());
    exec = engine->elastic_executors(workload.calculator)[0];
  }

  void AddCore(NodeId node) {
    ASSERT_GE(engine->ledger()->Acquire(node, exec->id()), 0);
    ASSERT_TRUE(exec->AddCore(node).ok());
  }
};

TEST(ElasticExecutorTest, ScalesOutAndProcesses) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  rig.AddCore(home);
  rig.AddCore((home + 1) % 4);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(4));
  EXPECT_GT(rig.engine->metrics()->sink_count(), 5000);
  EXPECT_EQ(rig.engine->order_violations(), 0);
  EXPECT_EQ(rig.exec->num_tasks(), 3);
  EXPECT_GT(rig.exec->shards_on_task_count((home + 1) % 4), 0)
      << "balancer should move shards onto the remote task";
}

TEST(ElasticExecutorTest, IntraNodeReassignSkipsMigration) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  rig.AddCore(home);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  rig.exec->set_balancing_frozen(true);
  rig.engine->RunFor(Millis(300));
  int64_t migration_before =
      rig.engine->net()->inter_node_bytes(Purpose::kStateMigration);
  size_t ops_before = rig.engine->metrics()->elasticity_ops().size();
  ASSERT_TRUE(rig.exec->ProbeReassign(3, home).ok());
  rig.engine->RunFor(Millis(500));
  const auto& ops = rig.engine->metrics()->elasticity_ops();
  ASSERT_GT(ops.size(), ops_before);
  EXPECT_FALSE(ops.back().inter_node);
  EXPECT_EQ(ops.back().moved_bytes, 0);  // Intra-process state sharing.
  EXPECT_EQ(rig.engine->net()->inter_node_bytes(Purpose::kStateMigration),
            migration_before);
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

TEST(ElasticExecutorTest, InterNodeReassignMigratesState) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  NodeId remote = (home + 1) % 4;
  rig.AddCore(remote);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  rig.exec->set_balancing_frozen(true);
  rig.engine->RunFor(Millis(300));
  size_t ops_before = rig.engine->metrics()->elasticity_ops().size();
  ASSERT_TRUE(rig.exec->ProbeReassign(5, remote).ok());
  rig.engine->RunFor(Millis(500));
  const auto& ops = rig.engine->metrics()->elasticity_ops();
  ASSERT_GT(ops.size(), ops_before);
  EXPECT_TRUE(ops.back().inter_node);
  EXPECT_GE(ops.back().moved_bytes, 32 * kKiB);
  EXPECT_GT(rig.engine->net()->inter_node_bytes(Purpose::kStateMigration), 0);
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

TEST(ElasticExecutorTest, RemoveCoreEvacuatesShards) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  NodeId remote = (home + 1) % 4;
  rig.AddCore(remote);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(2));  // Balancer spreads shards to the remote.
  ASSERT_EQ(rig.exec->num_tasks(), 2);
  ASSERT_GT(rig.exec->shards_on_task_count(remote), 0);

  bool released = false;
  ASSERT_TRUE(rig.exec->RemoveCore(remote, [&]() { released = true; }).ok());
  rig.engine->RunFor(Seconds(2));
  EXPECT_TRUE(released);
  EXPECT_EQ(rig.exec->num_tasks(), 1);
  EXPECT_EQ(rig.exec->shards_on_task_count(remote), 0);
  EXPECT_EQ(rig.engine->order_violations(), 0);
  // All 32 shards must be intact in the home store.
  EXPECT_EQ(rig.exec->state_bytes(),
            rig.exec->state_bytes());  // Accessor sanity.
}

TEST(ElasticExecutorTest, CannotRemoveLastCore) {
  ElasticRig rig;
  EXPECT_FALSE(rig.exec->RemoveCore(rig.exec->home_node(), nullptr).ok());
}

TEST(ElasticExecutorTest, BalancerReducesImbalance) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  rig.AddCore(home);
  rig.AddCore(home);
  rig.AddCore(home);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(4));
  // All shards started on one task; after a few balance rounds δ <= θ-ish.
  EXPECT_LT(rig.exec->CurrentImbalance(), 1.5);
  EXPECT_GT(rig.exec->reassignments_done(), 0);
}

TEST(ElasticExecutorTest, OrderPreservedUnderChurn) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  NodeId remote = (home + 2) % 4;
  rig.AddCore(home);
  rig.AddCore(remote);
  rig.engine->Start();
  // Churn: probe reassignments while traffic flows.
  for (int round = 0; round < 12; ++round) {
    rig.engine->RunFor(Millis(300));
    rig.exec->ProbeReassign(round % 32, round % 2 == 0 ? remote : home)
        .ok();  // Some may fail (paused); that's fine.
  }
  rig.engine->RunFor(Seconds(1));
  EXPECT_EQ(rig.engine->order_violations(), 0);
  EXPECT_GT(rig.engine->metrics()->sink_count(), 2000);
}

// The tentpole property of chunked-live migration: the routing pause does
// not grow with shard state size, because the state pre-copies while the
// source task keeps processing and only the dirty delta ships in the pause.
TEST(ElasticExecutorTest, ChunkedLivePauseStaysFlatAsStateGrows) {
  // 4 MiB shards: a sync-blob transfer alone needs >= 33 ms on the wire
  // (4 MiB at 125 MB/s), so the strategies are cleanly separable.
  const int64_t kBig = 4 * kMiB;

  auto probe = [](MigrationStrategy strategy) {
    StateLayerConfig state;
    state.migration.strategy = strategy;
    ElasticRig rig(/*validate=*/true, kBig, state);
    NodeId home = rig.exec->home_node();
    NodeId remote = (home + 1) % 4;
    rig.AddCore(remote);
    rig.engine->Start();
    rig.engine->RunFor(Seconds(1));
    rig.exec->set_balancing_frozen(true);
    rig.engine->RunFor(Millis(300));
    size_t before = rig.engine->metrics()->elasticity_ops().size();
    // Probe the first shard that still sits on a home task (a shard already
    // on the remote task has no second task there to move to).
    bool probed = false;
    for (int s = 0; s < rig.exec->num_shards() && !probed; ++s) {
      probed = rig.exec->ProbeReassign(s, remote).ok();
    }
    EXPECT_TRUE(probed);
    rig.engine->RunFor(Millis(800));
    const auto& ops = rig.engine->metrics()->elasticity_ops();
    EXPECT_GT(ops.size(), before);
    EXPECT_EQ(rig.engine->order_violations(), 0);
    return ops.back();
  };

  ElasticityOp sync = probe(MigrationStrategy::kSyncBlob);
  ElasticityOp live = probe(MigrationStrategy::kChunkedLive);

  // Both ship the whole shard eventually...
  EXPECT_GE(sync.moved_bytes, kBig);
  EXPECT_GE(live.moved_bytes, kBig);
  // ... but sync-blob pauses for the full transfer while chunked-live
  // pre-copies outside the pause and ships only a tiny delta inside it.
  EXPECT_GT(sync.pause_ns, Millis(33));  // >= 4 MiB / 125 MB/s on the wire.
  EXPECT_EQ(sync.precopy_ns, 0);
  EXPECT_GT(live.precopy_ns, Millis(20));
  EXPECT_LT(live.delta_bytes, 64 * kKiB);
  EXPECT_LT(live.pause_ns, Millis(25));
  EXPECT_LT(live.pause_ns, sync.pause_ns / 2);
}

TEST(ElasticExecutorTest, ExternalKvChargesAccessBytesNotMigration) {
  StateLayerConfig state;
  state.backend = StateBackendKind::kExternalKv;
  ElasticRig rig(/*validate=*/true, 32 * kKiB, state);
  NodeId home = rig.exec->home_node();
  NodeId remote = (home + 1) % 4;
  rig.AddCore(remote);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(1));
  rig.exec->set_balancing_frozen(true);
  rig.engine->RunFor(Millis(300));
  // Per-tuple read/write round trips are attributed to the network...
  EXPECT_GT(rig.engine->net()->intra_node_bytes(Purpose::kStateAccess) +
                rig.engine->net()->inter_node_bytes(Purpose::kStateAccess),
            0);
  // ... and a reassignment toward a remote task migrates nothing.
  size_t before = rig.engine->metrics()->elasticity_ops().size();
  bool probed = false;
  for (int s = 0; s < rig.exec->num_shards() && !probed; ++s) {
    probed = rig.exec->ProbeReassign(s, remote).ok();
  }
  ASSERT_TRUE(probed);
  rig.engine->RunFor(Millis(500));
  const auto& ops = rig.engine->metrics()->elasticity_ops();
  ASSERT_GT(ops.size(), before);
  EXPECT_EQ(ops.back().moved_bytes, 0);
  EXPECT_EQ(rig.engine->net()->inter_node_bytes(Purpose::kStateMigration), 0);
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

// The tentpole property of capacity-aware balancing: an *undetected*
// straggler (node slowed via the fault plane, no crash signal) sheds shards
// because the per-task service-rate EWMA reveals its real speed, even
// though offered load shares look balanced.
TEST(ElasticExecutorTest, StragglerTaskShedsShards) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  NodeId slow = (home + 1) % 4;
  rig.AddCore(slow);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(2));  // Balanced while both nodes are healthy.
  int slow_before = rig.exec->shards_on_task_count(slow);
  EXPECT_GT(slow_before, 8) << "healthy tasks should split ~evenly";

  rig.engine->faults()->SetCpuFactor(slow, 4.0);
  rig.engine->RunFor(Seconds(4));
  int slow_after = rig.exec->shards_on_task_count(slow);
  int home_after = rig.exec->shards_on_task_count(home);
  // Speed estimate converges toward 0.25 and the planner drains the slow
  // task toward ~1/5 of the *load* (shard counts track it loosely under
  // the zipf key skew).
  EXPECT_LT(rig.exec->TaskSpeedOn(slow), 0.5);
  EXPECT_LT(slow_after, slow_before - 2);
  EXPECT_LT(slow_after, home_after / 2);
  EXPECT_EQ(rig.engine->order_violations(), 0);

  // Recovery: the node heals, the EWMA climbs back, shards return.
  rig.engine->faults()->SetCpuFactor(slow, 1.0);
  rig.engine->RunFor(Seconds(4));
  EXPECT_GT(rig.exec->TaskSpeedOn(slow), 0.7);
  EXPECT_GT(rig.exec->shards_on_task_count(slow), slow_after);
}

// Edge of the capacity model: a *severe* straggler (50x) gets drained to
// zero shards, after which the task accrues no busy time and thus no speed
// observations. The recovery drift must still bring its estimate — and its
// shards — back once the node heals, or the core is silently stranded.
TEST(ElasticExecutorTest, FullyDrainedTaskRecoversAfterHeal) {
  ElasticRig rig;
  NodeId home = rig.exec->home_node();
  NodeId slow = (home + 1) % 4;
  rig.AddCore(slow);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(2));

  rig.engine->faults()->SetCpuFactor(slow, 50.0);
  rig.engine->RunFor(Seconds(6));
  int slow_during = rig.exec->shards_on_task_count(slow);
  EXPECT_LE(slow_during, 2) << "a 50x straggler should be drained (almost) dry";

  rig.engine->faults()->SetCpuFactor(slow, 1.0);
  rig.engine->RunFor(Seconds(8));  // Drift probes it; measurements confirm.
  EXPECT_GT(rig.exec->TaskSpeedOn(slow), 0.6);
  EXPECT_GT(rig.exec->shards_on_task_count(slow), 8)
      << "healed task must win back a real share of the shards";
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

TEST(ElasticExecutorTest, StateConservedAcrossMigrations) {
  // Default operator logic counts tuples per key; after heavy churn, the
  // sum of all per-key counters must equal the number of processed tuples.
  ElasticRig rig(/*validate=*/true);
  NodeId home = rig.exec->home_node();
  rig.AddCore((home + 1) % 4);
  rig.AddCore((home + 2) % 4);
  rig.engine->Start();
  rig.engine->RunFor(Seconds(4));
  // state_bytes grew by per-key entries; and nothing was lost: every shard
  // still exists exactly once across all stores.
  int64_t bytes = rig.exec->state_bytes();
  EXPECT_GE(bytes, 32 * 32 * kKiB);  // 32 shards x 32 KiB baseline.
  EXPECT_EQ(rig.engine->order_violations(), 0);
}

}  // namespace
}  // namespace elasticutor
