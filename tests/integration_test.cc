// Cross-module integration and property tests: the correctness invariants
// of DESIGN.md §7, swept across paradigms and dynamics with parameterized
// suites.
#include <gtest/gtest.h>

#include <tuple>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

// ---- Property: per-key order + conservation under (paradigm, omega) ----

using Sweep = std::tuple<Paradigm, double>;

class OrderInvariantTest : public ::testing::TestWithParam<Sweep> {};

TEST_P(OrderInvariantTest, NoReorderingNoLoss) {
  auto [paradigm, omega] = GetParam();
  MicroOptions options;
  options.num_keys = 2048;
  options.generator_executors = 4;
  options.calculator_executors = 4;
  options.shards_per_executor = 32;
  options.shuffles_per_minute = omega;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 8000.0;
  auto workload = BuildMicroWorkload(options, 123);
  ASSERT_TRUE(workload.ok());

  EngineConfig config;
  config.paradigm = paradigm;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.validate_key_order = true;
  // Faster controllers so elasticity actually triggers inside the window.
  config.scheduler.interval_ns = Millis(500);
  config.rc.interval_ns = Millis(500);
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  workload->InstallDynamics(&engine);
  engine.Start();
  engine.RunFor(Seconds(10));
  engine.StopSources();
  engine.RunFor(Seconds(5));  // Drain.

  EXPECT_EQ(engine.order_violations(), 0);
  // Conservation: every emitted tuple was processed (drained system).
  int64_t emitted = 0;
  for (const auto& sp : engine.source_executors(workload->generator)) {
    emitted += sp->emitted();
  }
  EXPECT_EQ(engine.metrics()->sink_count(), emitted);
  for (OperatorId op = 0; op < engine.topology().num_operators(); ++op) {
    EXPECT_EQ(engine.runtime()->inflight(op), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParadigmOmegaSweep, OrderInvariantTest,
    ::testing::Combine(::testing::Values(Paradigm::kStatic,
                                         Paradigm::kResourceCentric,
                                         Paradigm::kElastic),
                       ::testing::Values(0.0, 8.0, 30.0)));

// ---- Property: state backends x migration strategies keep invariants ----

using BackendSweep = std::tuple<StateBackendKind, MigrationStrategy>;

class BackendInvariantTest : public ::testing::TestWithParam<BackendSweep> {};

TEST_P(BackendInvariantTest, OrderAndDrainHold) {
  auto [backend, strategy] = GetParam();
  MicroOptions options;
  options.num_keys = 1024;
  options.generator_executors = 2;
  options.calculator_executors = 4;
  options.shards_per_executor = 16;
  options.shuffles_per_minute = 20.0;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 4000.0;
  auto workload = BuildMicroWorkload(options, 5);
  ASSERT_TRUE(workload.ok());
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.validate_key_order = true;
  config.state.backend = backend;
  config.state.migration.strategy = strategy;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  workload->InstallDynamics(&engine);
  engine.Start();
  engine.RunFor(Seconds(8));
  engine.StopSources();
  engine.RunFor(Seconds(4));
  EXPECT_EQ(engine.order_violations(), 0);
  EXPECT_GT(engine.metrics()->sink_count(), 10000);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendInvariantTest,
    ::testing::Combine(::testing::Values(StateBackendKind::kLocalShared,
                                         StateBackendKind::kAlwaysMigrate,
                                         StateBackendKind::kExternalKv),
                       ::testing::Values(MigrationStrategy::kSyncBlob,
                                         MigrationStrategy::kChunkedLive)));

// ---- Property: shard granularity sweep keeps invariants ----

class ShardGranularityTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardGranularityTest, BalancesAndPreservesOrder) {
  MicroOptions options;
  options.num_keys = 1024;
  options.generator_executors = 2;
  options.calculator_executors = 2;
  options.shards_per_executor = GetParam();
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 6000.0;
  auto workload = BuildMicroWorkload(options, 31);
  ASSERT_TRUE(workload.ok());
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 2;
  config.cores_per_node = 8;
  config.validate_key_order = true;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(6));
  EXPECT_EQ(engine.order_violations(), 0);
  EXPECT_GT(engine.metrics()->sink_count(), 10000);
}

INSTANTIATE_TEST_SUITE_P(Granularity, ShardGranularityTest,
                         ::testing::Values(1, 4, 16, 64, 256));

// ---- Network conservation across a full engine run ----

TEST(ConservationTest, NetworkMessagesAllDelivered) {
  MicroOptions options;
  options.generator_executors = 4;
  options.calculator_executors = 4;
  options.shards_per_executor = 16;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 10000.0;
  auto workload = BuildMicroWorkload(options, 77);
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(5));
  engine.StopSources();
  engine.RunFor(Seconds(3));
  EXPECT_EQ(engine.net()->messages_sent(), engine.net()->messages_delivered());
}

// ---- SSE end-to-end across paradigms ----

class SseSmokeTest : public ::testing::TestWithParam<Paradigm> {};

TEST_P(SseSmokeTest, RunsAndMatchesOrders) {
  SseOptions options;
  options.executors_per_operator = 2;
  options.shards_per_executor = 8;
  options.source_executors = 2;
  options.trace.num_stocks = 200;
  options.trace.base_rate_per_sec = 3000.0;
  auto workload = BuildSseWorkload(options, 9);
  ASSERT_TRUE(workload.ok());
  EngineConfig config;
  config.paradigm = GetParam();
  config.num_nodes = 4;
  config.cores_per_node = 8;
  config.validate_key_order = true;
  Engine engine(workload->topology, config);
  ASSERT_TRUE(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Seconds(6));
  EXPECT_EQ(engine.order_violations(), 0);
  // The matching engine produced transaction records that reached the 11
  // analytics sinks.
  EXPECT_GT(engine.metrics()->sink_count(), 5000);
}

INSTANTIATE_TEST_SUITE_P(AllParadigms, SseSmokeTest,
                         ::testing::Values(Paradigm::kStatic,
                                           Paradigm::kResourceCentric,
                                           Paradigm::kElastic));

// ---- Determinism of the full stack ----

TEST(DeterminismTest, IdenticalSeedsIdenticalResults) {
  auto run = []() {
    MicroOptions options;
    options.generator_executors = 2;
    options.calculator_executors = 2;
    options.shards_per_executor = 16;
    options.shuffles_per_minute = 10.0;
    auto workload = BuildMicroWorkload(options, 1234);
    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.num_nodes = 2;
    config.cores_per_node = 4;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    workload->InstallDynamics(&engine);
    engine.Start();
    engine.RunFor(Seconds(5));
    return std::make_tuple(engine.metrics()->sink_count(),
                           engine.exec()->events_executed(),
                           engine.net()->total_inter_node_bytes());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace elasticutor
