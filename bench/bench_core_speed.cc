// Core speed: per-tuple cost of the simulator hot path itself, and what
// channel micro-batching (EngineConfig::max_batch_tuples) buys. Unlike the
// figure benches this measures the HARNESS, not the modeled system: the
// deterministic columns (events / callback heap allocs / messages per
// routed tuple) are exact at a fixed seed and scale and are gated in CI via
// bench/expectations.json; wall-clock tuples/s is informational (machine-
// dependent) and reported alongside.
//
// Topology: generator -> calculator (sink), single calculator executor so
// consecutive emissions share a destination and runs coalesce fully.
// Offered load is kept below capacity, so steady state has no back-pressure
// retries and the counters isolate the per-tuple event/allocation cost:
// 3 events/tuple unbatched (spout loop, delivery, completion) amortizing
// toward 1 (completion only) as the batch grows.
#include <chrono>

#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

const int kBatches[] = {1, 8, 64};

struct RowResult {
  PerfCounters perf;
  double tput = 0.0;
  double wall_ms = 0.0;
  double wall_tps = 0.0;
};

RowResult RunOne(Paradigm paradigm, int batch) {
  MicroOptions options;
  options.calc_cost_ns = Micros(5);
  options.gen_overhead_ns = Micros(10);
  options.calculator_executors = 1;
  // Offered rate ~50% of processing capacity: 1 spout (100k tup/s) per two
  // calculator cores (200k tup/s each at 5 us), so spouts pace generation
  // and steady state is retry-free.
  options.generator_executors = paradigm == Paradigm::kElastic ? 2 : 1;
  options.shards_per_executor = 64;
  auto workload = BuildMicroWorkload(options, /*seed=*/42);
  ELASTICUTOR_CHECK(workload.ok());
  // The static paradigm must not auto-provision the whole cluster: one
  // single-core executor keeps every emission on one destination channel.
  workload->topology.mutable_spec(workload->calculator).static_executors = 1;

  EngineConfig config;
  config.paradigm = paradigm;
  config.num_nodes = 4;
  config.scheduler.enabled = false;  // Cores are pinned for the sweep.
  config.max_batch_tuples = batch;
  // Queue capacity above the largest batch: a 64-tuple burst must admit
  // fully, or the elastic tasks' default 8-deep queues turn the measurement
  // into back-pressure dynamics instead of pure harness cost.
  config.task_queue_cap = 64;
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  engine.Start();

  if (paradigm == Paradigm::kElastic) {
    auto ex = engine.elastic_executors(workload->calculator)[0];
    NodeId home = ex->home_node();
    for (int extra = 0; extra < 3; ++extra) {  // 4 local cores total.
      ELASTICUTOR_CHECK(engine.ledger()->Acquire(home, ex->id()) >= 0);
      ELASTICUTOR_CHECK(ex->AddCore(home).ok());
    }
  }

  engine.RunFor(Scaled(Seconds(3)));  // Warm-up (balancer spreads shards).
  if (paradigm == Paradigm::kElastic) {
    // Freeze balancing for the measured window: reassignments are control-
    // plane work, and this bench gates the steady-state data plane.
    for (auto& ex : engine.elastic_executors(workload->calculator)) {
      ex->set_balancing_frozen(true);
    }
  }
  engine.ResetMetricsAfterWarmup();

  auto wall_start = std::chrono::steady_clock::now();
  engine.RunFor(Scaled(Seconds(8)));
  auto wall_end = std::chrono::steady_clock::now();

  RowResult r;
  r.perf = engine.Perf();
  r.tput = engine.MeasuredThroughput();
  r.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  r.wall_tps = r.wall_ms > 0.0
                   ? static_cast<double>(r.perf.routed_tuples) /
                         (r.wall_ms / 1e3)
                   : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("core speed",
         "simulator hot-path cost per routed tuple vs micro-batch size");

  TablePrinter table({"paradigm", "batch", "tput(tup/s)", "routed",
                      "events_per_tuple", "allocs_per_tuple",
                      "msgs_per_tuple", "events_x_vs_b1", "wall_ms",
                      "wall_tup/s", "wall_x_vs_b1"});
  table.PrintHeader();
  for (Paradigm paradigm : {Paradigm::kElastic, Paradigm::kStatic}) {
    double base_events_per_tuple = 0.0;
    double base_wall_tps = 0.0;
    for (int batch : kBatches) {
      RowResult r = RunOne(paradigm, batch);
      if (batch == 1) {
        base_events_per_tuple = r.perf.events_per_tuple();
        base_wall_tps = r.wall_tps;
      }
      double events_x = r.perf.events_per_tuple() > 0.0
                            ? base_events_per_tuple /
                                  r.perf.events_per_tuple()
                            : 0.0;
      double wall_x = base_wall_tps > 0.0 && r.wall_tps > 0.0
                          ? r.wall_tps / base_wall_tps
                          : 0.0;
      table.PrintRow({ParadigmName(paradigm), FmtInt(batch), Fmt(r.tput, 0),
                      FmtInt(r.perf.routed_tuples),
                      Fmt(r.perf.events_per_tuple(), 3),
                      Fmt(r.perf.heap_allocs_per_tuple(), 6),
                      Fmt(r.perf.messages_per_tuple(), 3), Fmt(events_x, 2),
                      Fmt(r.wall_ms, 1), Fmt(r.wall_tps, 0), Fmt(wall_x, 2)});
    }
  }
  std::printf(
      "\nevents/allocs/msgs per routed tuple are deterministic (gated in "
      "CI); wall-clock columns are informational. Unbatched the harness "
      "pays 3 events per tuple (spout loop, delivery, completion); "
      "batching amortizes all but the completion event.\n");
  return 0;
}
