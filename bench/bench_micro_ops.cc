// google-benchmark micro-operation benchmarks: the hot-path primitives of
// the system — hashing/routing, Zipf sampling, the balancer's planning
// round, Erlang-C/Jackson evaluation, Algorithm 1, the event queue and the
// order book. These bound the realism of the "scheduling time" results and
// document the cost of each building block.
#include <benchmark/benchmark.h>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace {

void BM_HashKey(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(++key, 3));
  }
}
BENCHMARK(BM_HashKey);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(10000, 0.5);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue queue;
  int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.Push(t + (i * 37) % 101, []() {});
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(queue.Pop());
    }
    t += 101;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_ErlangC(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MmkSojournSeconds(k, k * 900.0, 1000.0));
  }
}
BENCHMARK(BM_ErlangC)->Arg(2)->Arg(8)->Arg(32);

void BM_GreedyAllocation(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  std::vector<ExecutorDemand> demands(m);
  Rng rng(7);
  for (auto& d : demands) {
    d.lambda = 500.0 + rng.NextDouble() * 8000.0;
    d.mu = 1000.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllocateCores(demands, 256, 0.05, true));
  }
}
BENCHMARK(BM_GreedyAllocation)->Arg(32)->Arg(192);

AssignmentInput AssignmentBenchInput(int m) {
  const int n = 32;
  AssignmentInput in;
  in.node_capacity.assign(n, 8);
  in.home.resize(m);
  in.target.resize(m);
  in.state_bytes.assign(m, 8e6);
  in.data_intensity.assign(m, 100e3);
  in.current = SparseAssignment(m);
  Rng rng(11);
  int total = 0;
  for (int j = 0; j < m; ++j) {
    in.home[j] = j % n;
    in.current.Add(j % n, j, 1);
    in.target[j] = 1 + static_cast<int>(rng.NextBounded(3));
    total += in.target[j];
  }
  while (total > 256) {
    int j = static_cast<int>(rng.NextBounded(m));
    if (in.target[j] > 1) {
      --in.target[j];
      --total;
    }
  }
  return in;
}

void BM_Assignment(benchmark::State& state) {
  AssignmentInput in = AssignmentBenchInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(in));
  }
}
BENCHMARK(BM_Assignment)->Arg(32)->Arg(192);

void BM_AssignmentDense(benchmark::State& state) {
  AssignmentInput in = AssignmentBenchInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentDense(in));
  }
}
BENCHMARK(BM_AssignmentDense)->Arg(32)->Arg(192);

void BM_BalancerPlan(benchmark::State& state) {
  int shards = static_cast<int>(state.range(0));
  std::vector<double> load = ZipfWeights(shards, 0.5);
  for (auto _ : state) {
    std::vector<int> assignment(shards);
    for (int s = 0; s < shards; ++s) assignment[s] = s % 8;
    benchmark::DoNotOptimize(
        balance::PlanMoves(load, &assignment, 8, 1.2, 256));
  }
}
BENCHMARK(BM_BalancerPlan)->Arg(256)->Arg(8192);

void BM_OrderBookExecute(benchmark::State& state) {
  OrderBook book;
  Rng rng(3);
  std::vector<Trade> trades;
  for (auto _ : state) {
    trades.clear();
    auto side = rng.NextBool(0.5) ? OrderBook::Side::kBuy
                                  : OrderBook::Side::kSell;
    int64_t price = 1000 + static_cast<int64_t>(rng.NextGaussian(0, 3));
    benchmark::DoNotOptimize(book.Execute(side, price, 100, &trades));
  }
}
BENCHMARK(BM_OrderBookExecute);

void BM_StateAccess(benchmark::State& state) {
  ProcessStateStore store;
  ELASTICUTOR_CHECK(store.CreateShard(0, 32768).ok());
  uint64_t key = 0;
  for (auto _ : state) {
    StateAccessor accessor(&store, 0, key++ % 1024);
    benchmark::DoNotOptimize(accessor.GetOrCreate<int64_t>());
  }
}
BENCHMARK(BM_StateAccess);

}  // namespace
}  // namespace elasticutor

BENCHMARK_MAIN();
