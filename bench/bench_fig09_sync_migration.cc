// Figure 9: (a) synchronization time vs the number of upstream executors —
// RC grows 2-3 orders of magnitude and widens with upstream count;
// Elasticutor stays flat around 2 ms (shard reassignment is local to the
// executor). (b) state migration time vs shard state size {32 KB .. 32 MB}:
// intra-node migration is negligible under intra-process state sharing;
// inter-node migration grows with size once network transfer dominates.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

MicroOptions ProbeOptions() {
  MicroOptions options;
  options.mode = SourceSpec::Mode::kTrace;
  options.trace_rate_per_sec = 20000.0;
  return options;
}

struct Avg {
  double sync_ms = 0;
  double mig_ms = 0;
  double precopy_ms = 0;
  double pause_ms = 0;
  double delta_kb = 0;
  int n = 0;
  void Add(const ElasticityOp& op) {
    sync_ms += ToMillis(op.sync_ns);
    mig_ms += ToMillis(op.migration_ns);
    precopy_ms += ToMillis(op.precopy_ns);
    pause_ms += ToMillis(op.pause_ns);
    delta_kb += static_cast<double>(op.delta_bytes) / 1024.0;
    ++n;
  }
  double sync() const { return n ? sync_ms / n : 0; }
  double mig() const { return n ? mig_ms / n : 0; }
  double precopy() const { return n ? precopy_ms / n : 0; }
  double pause() const { return n ? pause_ms / n : 0; }
  double delta() const { return n ? delta_kb / n : 0; }
};

// Runs probes on Elasticutor with the given options; returns averages over
// `probes` reassignments toward `inter` (remote) or local tasks. The
// balancer is disabled so every shard starts on the first local task and
// each probe is exactly one controlled intra- or inter-node move.
Avg ElasticProbe(const MicroOptions& options, bool inter, int probes,
                 StateLayerConfig state = StateLayerConfig{}) {
  auto workload = BuildMicroWorkload(options, 42);
  ELASTICUTOR_CHECK(workload.ok());
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.scheduler.enabled = false;
  config.balancer.enabled = false;
  config.state = state;
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  auto ex = engine.elastic_executors(workload->calculator)[0];
  NodeId home = ex->home_node();
  NodeId remote = (home + 1) % engine.cluster().num_nodes();
  for (NodeId node : {home, remote}) {
    ELASTICUTOR_CHECK(engine.ledger()->Acquire(node, ex->id()) >= 0);
    ELASTICUTOR_CHECK(ex->AddCore(node).ok());
  }
  engine.Start();
  engine.RunFor(Scaled(Seconds(2)));
  Avg avg;
  size_t before = engine.metrics()->elasticity_ops().size();
  for (int i = 0; i < probes; ++i) {
    // All shards sit on the first (local) task; the move direction is
    // therefore fully controlled.
    ELASTICUTOR_CHECK(
        ex->ProbeReassign(5 + i, inter ? remote : home).ok());
    // Wait long enough for the largest state transfer to finish.
    engine.RunFor(Millis(600) +
                  SecondsF(static_cast<double>(options.shard_state_bytes) /
                           100e6));
  }
  const auto& ops = engine.metrics()->elasticity_ops();
  for (size_t i = before; i < ops.size(); ++i) {
    if (ops[i].inter_node == inter) avg.Add(ops[i]);
  }
  return avg;
}

// Runs a single-shard RC repartition probe; returns averages.
Avg RcProbe(const MicroOptions& options, bool inter, int probes) {
  auto workload = BuildMicroWorkload(options, 42);
  ELASTICUTOR_CHECK(workload.ok());
  EngineConfig config;
  config.paradigm = Paradigm::kResourceCentric;
  config.rc.enabled = false;
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  engine.Start();
  engine.RunFor(Scaled(Seconds(2)));
  OperatorId op = workload->calculator;
  OperatorPartition* part = engine.runtime()->partition(op);
  auto execs = engine.runtime()->executors(op);
  Avg avg;
  size_t before = engine.metrics()->elasticity_ops().size();
  int done = 0;
  for (int shard = 0; done < probes && shard < part->num_shards(); ++shard) {
    int from = part->ExecutorOfShard(shard);
    int to = -1;
    for (size_t e = 0; e < execs.size(); ++e) {
      if (static_cast<int>(e) == from) continue;
      bool same = execs[e]->home_node() == execs[from]->home_node();
      if (same != inter) {
        to = static_cast<int>(e);
        break;
      }
    }
    if (to < 0) continue;
    if (!engine.rc_controller()->ProbeMoveShard(op, shard, to).ok()) continue;
    ++done;
    engine.RunFor(Millis(1500));
  }
  const auto& ops = engine.metrics()->elasticity_ops();
  for (size_t i = before; i < ops.size(); ++i) avg.Add(ops[i]);
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 9", "(a) sync vs upstream executors; (b) migration vs "
                     "state size");

  std::printf("\n(a) synchronization time vs number of upstream executors\n");
  TablePrinter ta({"upstream", "RC_sync_ms", "EC_sync_ms"});
  ta.PrintHeader();
  for (int upstream : {1, 2, 4, 8, 16, 32}) {
    MicroOptions options = ProbeOptions();
    options.generator_executors = upstream;
    // Fewer generators bound the offered trace rate; keep load proportional.
    options.trace_rate_per_sec = 600.0 * upstream;
    Avg rc = RcProbe(options, /*inter=*/true, /*probes=*/8);
    Avg ec = ElasticProbe(options, /*inter=*/true, /*probes=*/8);
    ta.PrintRow({FmtInt(upstream), Fmt(rc.sync(), 2), Fmt(ec.sync(), 2)});
  }

  std::printf("\n(b) state migration time vs shard state size (sync-blob, "
              "the paper's stop-the-world migration)\n");
  TablePrinter tb({"state", "RC_intra_ms", "RC_inter_ms", "EC_intra_ms",
                   "EC_inter_ms"});
  tb.PrintHeader();
  struct Size {
    const char* label;
    int64_t bytes;
  };
  StateLayerConfig sync_state;
  sync_state.migration.strategy = MigrationStrategy::kSyncBlob;
  for (Size size : {Size{"32KB", 32 * kKiB}, Size{"256KB", 256 * kKiB},
                    Size{"2MB", 2 * kMiB}, Size{"8MB", 8 * kMiB},
                    Size{"32MB", 32 * kMiB}}) {
    MicroOptions options = ProbeOptions();
    options.shard_state_bytes = size.bytes;
    Avg rc_intra = RcProbe(options, false, 4);
    Avg rc_inter = RcProbe(options, true, 4);
    Avg ec_intra = ElasticProbe(options, false, 4, sync_state);
    Avg ec_inter = ElasticProbe(options, true, 4, sync_state);
    tb.PrintRow({size.label, Fmt(rc_intra.mig(), 2), Fmt(rc_inter.mig(), 2),
                 Fmt(ec_intra.mig(), 2), Fmt(ec_inter.mig(), 2)});
  }

  // (c) The new scenario axis: the same inter-node reassignment under the
  // three state-layer designs — sync-blob (pause grows linearly with state),
  // chunked-live (64 KB pre-copy chunks; pause stays roughly flat, only the
  // dirty delta ships inside it) and external-KV (nothing migrates; the cost
  // moved to per-tuple access RPCs instead).
  std::printf("\n(c) reassignment pause vs shard state size by migration "
              "strategy (inter-node)\n");
  TablePrinter tc({"state", "sync_pause_ms", "live_pause_ms",
                   "live_precopy_ms", "live_delta_kb", "extkv_pause_ms"},
                  /*width=*/17);
  tc.PrintHeader();
  StateLayerConfig live_state;
  live_state.migration.strategy = MigrationStrategy::kChunkedLive;
  StateLayerConfig ext_state;
  ext_state.backend = StateBackendKind::kExternalKv;
  for (Size size : {Size{"32KB", 32 * kKiB}, Size{"256KB", 256 * kKiB},
                    Size{"2MB", 2 * kMiB}, Size{"8MB", 8 * kMiB},
                    Size{"32MB", 32 * kMiB}}) {
    MicroOptions options = ProbeOptions();
    options.shard_state_bytes = size.bytes;
    Avg sync = ElasticProbe(options, true, 4, sync_state);
    Avg live = ElasticProbe(options, true, 4, live_state);
    Avg ext = ElasticProbe(options, true, 4, ext_state);
    tc.PrintRow({size.label, Fmt(sync.pause(), 2), Fmt(live.pause(), 2),
                 Fmt(live.precopy(), 2), Fmt(live.delta(), 1),
                 Fmt(ext.pause(), 2)});
  }
  std::printf("\npaper: EC sync flat ~2 ms regardless of upstream count; "
              "intra-node migration ~0 (state sharing); inter-node grows "
              "with size. New: chunked-live pause stays flat as state grows "
              "(the sync-blob pause is the linear baseline)\n");
  return 0;
}
