// Ablation (paper §3.2 design discussion): the elastic executor's state
// backend x migration strategy —
//  * shared     : intra-process state sharing (the paper's design; same-
//                 process shard moves migrate nothing),
//  * migrate    : per-task private state (every reassignment serializes and
//                 copies, even on the same node) — run under both sync-blob
//                 and chunked-live to show live pre-copy rescuing the
//                 worst-case design,
//  * external   : RAMCloud-style external store (no migration ever, but
//                 every tuple pays two store round trips).
// Measures throughput / latency / reassignment cost under the dynamic
// micro workload.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Ablation: state backend",
         "intra-process sharing vs always-migrate vs external store");

  TablePrinter table({"backend", "strategy", "tput(tup/s)", "mean_lat_ms",
                      "reassigns", "avg_pause_ms", "avg_mig_ms"});
  table.PrintHeader();

  struct Mode {
    const char* name;
    StateBackendKind backend;
    MigrationStrategy strategy;
  };
  for (Mode mode :
       {Mode{"shared", StateBackendKind::kLocalShared,
             MigrationStrategy::kChunkedLive},
        Mode{"migrate", StateBackendKind::kAlwaysMigrate,
             MigrationStrategy::kSyncBlob},
        Mode{"migrate", StateBackendKind::kAlwaysMigrate,
             MigrationStrategy::kChunkedLive},
        Mode{"external", StateBackendKind::kExternalKv,
             MigrationStrategy::kChunkedLive}}) {
    MicroOptions options;
    options.shuffles_per_minute = 8.0;
    options.shard_state_bytes = 1 * kMiB;  // Big enough that copies hurt.
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.state.backend = mode.backend;
    config.state.migration.strategy = mode.strategy;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    workload->InstallDynamics(&engine);

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(8)), Scaled(Seconds(20)));
    table.PrintRow({mode.name, MigrationStrategyName(mode.strategy),
                    Fmt(r.throughput_tps, 0), Fmt(r.mean_latency_ms, 2),
                    FmtInt(r.elasticity_ops), Fmt(r.avg_pause_ms, 2),
                    Fmt(r.avg_migration_ms, 2)});
  }
  std::printf("\nexpected: sharing wins; sync-blob migrate pays full-pause "
              "copies on every move, chunked-live shrinks its pauses to the "
              "dirty delta; external pays two store round-trips per tuple\n");
  return 0;
}
