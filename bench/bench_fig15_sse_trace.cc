// Figure 15: arrival rates of the 5 most popular stocks over time in the
// (synthetic) SSE order stream — the workload-dynamics illustration. Rates
// are queried analytically and printed in 10-second bins, showing waves,
// flash surges and popularity drift. Uses the same shared scenario
// definition as fig16 (scn::SseMarketSession): per-stock surges/drift come
// from the trace model, the aggregate session wave from the scenario's
// RateShaper.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 15", "arrival rates of the 5 most popular stocks");

  scn::SseSession session = scn::SseMarketSession(/*base_rate_per_sec=*/
                                                  120000.0);
  SseTraceModel trace(session.trace, /*seed=*/42);
  RateShaper wave(session.scenario);
  std::vector<int> top = trace.TopStocks(5);

  TablePrinter table({"t(s)", "stock#1", "stock#2", "stock#3", "stock#4",
                      "stock#5", "aggregate"});
  table.PrintHeader();
  for (int t = 0; t <= 600; t += 10) {
    SimTime now = Seconds(t);
    std::vector<std::string> row{FmtInt(t)};
    for (int stock : top) {
      row.push_back(Fmt(trace.StockRate(stock, now) * wave.FactorAt(now), 0));
    }
    row.push_back(Fmt(trace.AggregateRate(now) * wave.FactorAt(now), 0));
    table.PrintRow(row);
  }
  std::printf("\n(orders/s; flash surges multiply a stock's rate 5-20x for "
              "10-40 s, popularity drifts every 30 s — the dynamics that "
              "demand rapid elasticity)\n");
  return 0;
}
