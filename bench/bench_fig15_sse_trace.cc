// Figure 15: arrival rates of the 5 most popular stocks over time in the
// (synthetic) SSE order stream — the workload-dynamics illustration. Rates
// are queried analytically from the trace model and printed in 10-second
// bins, showing waves, flash surges and popularity drift.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 15", "arrival rates of the 5 most popular stocks");

  SseTraceOptions options;
  SseTraceModel trace(options, /*seed=*/42);
  std::vector<int> top = trace.TopStocks(5);

  TablePrinter table({"t(s)", "stock#1", "stock#2", "stock#3", "stock#4",
                      "stock#5", "aggregate"});
  table.PrintHeader();
  for (int t = 0; t <= 600; t += 10) {
    SimTime now = Seconds(t);
    std::vector<std::string> row{FmtInt(t)};
    for (int stock : top) {
      row.push_back(Fmt(trace.StockRate(stock, now), 0));
    }
    row.push_back(Fmt(trace.AggregateRate(now), 0));
    table.PrintRow(row);
  }
  std::printf("\n(orders/s; flash surges multiply a stock's rate 5-20x for "
              "10-40 s, popularity drifts every 30 s — the dynamics that "
              "demand rapid elasticity)\n");
  return 0;
}
