// Figure 13: impact of the number of executors per operator (y) and shards
// per executor (z) on Elasticutor's throughput, under the default workload
// (a), a data-intensive workload with 8 KB tuples (b), and a highly dynamic
// workload with ω = 16 (c). Static and RC throughput shown for reference.
//
// Paper shape: throughput rises with z and saturates (too few shards =>
// poor intra-executor balance); y = 1 suffers in the data-intensive case
// (all traffic through one main process) and small y suffers under high ω
// (more migration); y = #cores removes elasticity entirely (degenerates to
// static). One or two executors per node is robust.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

double RunParadigm(Paradigm paradigm, const MicroOptions& options,
                   double omega) {
  auto workload = BuildMicroWorkload(options, 42);
  ELASTICUTOR_CHECK(workload.ok());
  EngineConfig config;
  config.paradigm = paradigm;
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  ScenarioDriver driver(scn::MicroDynamics(omega), &engine, workload->keys);
  driver.Install();
  return RunAndMeasure(&engine, Scaled(Seconds(6)), Scaled(Seconds(10)))
      .throughput_tps;
}

void Panel(const char* title, const MicroOptions& base, double omega) {
  std::printf("\n%s\n", title);
  std::printf("static reference: %.0f tuples/s, RC reference: %.0f tuples/s\n",
              RunParadigm(Paradigm::kStatic, base, omega),
              RunParadigm(Paradigm::kResourceCentric, base, omega));
  TablePrinter table({"y\\z", "z=1", "z=16", "z=64", "z=256"});
  table.PrintHeader();
  for (int y : {1, 8, 32, 256}) {
    std::vector<std::string> row{FmtInt(y)};
    for (int z : {1, 16, 64, 256}) {
      MicroOptions options = base;
      options.calculator_executors = y;
      options.shards_per_executor = z;
      row.push_back(Fmt(RunParadigm(Paradigm::kElastic, options, omega), 0));
    }
    table.PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 13", "throughput vs #executors (y) and #shards (z)");

  MicroOptions def;
  Panel("(a) default workload (s = 128 B, ω = 2)", def, /*omega=*/2.0);
  Panel("(b) data-intensive workload (s = 8 KB, ω = 2)", [&] {
    MicroOptions o = def;
    o.tuple_bytes = 8192;
    return o;
  }(), /*omega=*/2.0);
  Panel("(c) highly dynamic workload (s = 128 B, ω = 16)", def,
        /*omega=*/16.0);

  std::printf("\npaper: more shards help until balance is already fine; "
              "y = 1 collapses when data-intensive; small y suffers at high "
              "ω; y = #cores loses elasticity\n");
  return 0;
}
