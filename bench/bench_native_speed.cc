// Native-backend speed: real tuples/s of the multithreaded runtime
// (exec/native_runtime.h) as worker threads scale 1 -> 2 -> 4 -> 8, plus
// the two health signals of the native data path: batches_alloc (the batch
// pool's total allocations, bounded by pipeline capacity — not tuple
// count — once recycling works) and channel contention (push_blocks /
// pop_waits per 1k tuples).
//
// Unlike the figure benches this measures the HARNESS on real hardware, so
// tuples/s and the speedup column are machine-dependent: the `cores` column
// reports std::thread::hardware_concurrency(), and CI only gates the
// speedup when the machine actually has that many cores (the `min_cores`
// conditional in scripts/check_bench_json.py). batches_alloc is gated
// unconditionally — pooling correctness does not depend on core count.
//
// Per-tuple work is a deterministic hash spin (kSpinRounds) on top of the
// per-key counter update, heavy enough that worker CPU (not source-side
// generation or channel locking) dominates and the sweep exposes scaling.
//
// A second table measures the elastic paradigm on the same workload:
// sustained live reassignments per second and the routing-pause
// percentiles (flip -> shard installed) while 8 worker threads process
// under load — the native analog of the paper's reassignment-latency
// numbers. Pause percentiles are wall-clock and hence min_cores-gated like
// the speedups; the completed-move count is not.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

const int kWorkerCounts[] = {1, 2, 4, 8};
constexpr int64_t kBaseTuplesPerSource = 400000;
constexpr int kSources = 2;
constexpr int kSpinRounds = 120;

// Deterministic CPU burn: a few hundred ns of integer hashing per tuple.
uint64_t SpinHash(uint64_t seed) {
  uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kSpinRounds; ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
  }
  return h;
}

struct RowResult {
  int64_t tuples = 0;
  double wall_ms = 0.0;
  double wall_tps = 0.0;
  int64_t allocs = 0;
  int64_t push_blocks = 0;
  int64_t pop_waits = 0;
  int64_t batches_pushed = 0;
};

MicroWorkload BuildSpeedWorkload(int workers, int64_t tuples_per_source) {
  MicroOptions options;
  options.num_keys = 4096;
  options.zipf_skew = 0.5;
  options.generator_executors = kSources;
  options.calculator_executors = workers;
  options.shards_per_executor = 16;
  options.shard_state_bytes = 1 << 10;
  options.mode = SourceSpec::Mode::kSaturation;
  auto workload = BuildMicroWorkload(options, /*seed=*/42);
  ELASTICUTOR_CHECK(workload.ok());
  workload->topology.mutable_spec(workload->generator).source.max_tuples =
      tuples_per_source;
  OperatorSpec& calc = workload->topology.mutable_spec(workload->calculator);
  calc.logic = [](const Tuple& t, StateAccessor& state, EmitContext*) {
    int64_t* acc = state.GetOrCreate<int64_t>();
    *acc += static_cast<int64_t>(SpinHash(t.key + static_cast<uint64_t>(*acc)));
  };
  return std::move(workload).value();
}

EngineConfig SpeedConfig(int workers) {
  EngineConfig config;
  config.paradigm = Paradigm::kStatic;
  config.backend = exec::BackendKind::kNative;
  config.native.workers_per_operator = workers;
  config.native.data_path.batch_tuples = 64;
  config.native.data_path.channel_capacity_batches = 64;
  config.num_nodes = 4;
  config.seed = 42;
  return config;
}

RowResult RunOne(int workers, int64_t tuples_per_source) {
  MicroWorkload workload = BuildSpeedWorkload(workers, tuples_per_source);
  Engine engine(workload.topology, SpeedConfig(workers));
  ELASTICUTOR_CHECK(engine.Setup().ok());

  auto wall_start = std::chrono::steady_clock::now();
  engine.Start();
  engine.RunToCompletion();
  auto wall_end = std::chrono::steady_clock::now();

  exec::NativeRuntime* native = engine.native();
  RowResult r;
  r.tuples = native->total_processed();
  ELASTICUTOR_CHECK(r.tuples == kSources * tuples_per_source);
  r.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  r.wall_tps = r.wall_ms > 0.0
                   ? static_cast<double>(r.tuples) / (r.wall_ms / 1e3)
                   : 0.0;
  r.allocs = native->batches_allocated();
  r.push_blocks = native->push_blocks();
  r.pop_waits = native->pop_waits();
  r.batches_pushed = native->batches_pushed();
  return r;
}

struct ElasticResult {
  int64_t tuples = 0;
  double wall_tps = 0.0;
  int64_t reassigns = 0;
  double migr_per_s = 0.0;
  double pause_p50_ms = 0.0;
  double pause_p99_ms = 0.0;
};

constexpr int kElasticWorkers = 8;
constexpr int64_t kElasticMoveTarget = 200;

// Same workload, elastic paradigm: a rotating full-shard sweep posts moves
// while the workers process, until kElasticMoveTarget moves completed; the
// sources then stop and the dataflow drains. Reported migrations/s is
// completed moves over the whole run (sustained, not burst).
ElasticResult RunElastic(int64_t tuples_per_source) {
  MicroWorkload workload =
      BuildSpeedWorkload(kElasticWorkers, tuples_per_source);
  EngineConfig config = SpeedConfig(kElasticWorkers);
  config.paradigm = Paradigm::kElastic;
  config.native.migration_copy_bytes_per_sec = 256e6;  // Paced pre-copy.
  Engine engine(workload.topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());

  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  const int shards = native->num_shards(calc);
  auto wall_start = std::chrono::steady_clock::now();
  engine.Start();
  int round = 0;
  while (native->reassignments_done() < kElasticMoveTarget &&
         round < 4000) {
    engine.RunFor(Micros(500));
    ++round;
    for (int s = 0; s < shards; ++s) {
      // Rotation keeps every move a real relocation; shards still in
      // transition just skip the round.
      (void)native->ReassignShard(calc, s, (s + round) % kElasticWorkers);
    }
  }
  engine.StopSources();
  engine.RunToCompletion();
  auto wall_end = std::chrono::steady_clock::now();

  ElasticResult r;
  r.tuples = native->total_processed();
  // Zero lost or duplicated tuples across every live move — the property
  // the labeling barrier exists to provide. (StopSources may cut the
  // budget short, so compare against what the sources actually emitted.)
  ELASTICUTOR_CHECK(r.tuples == native->source_emitted());
  ELASTICUTOR_CHECK(native->sink_count() == r.tuples);
  ELASTICUTOR_CHECK(native->migrations_in_flight() == 0);
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  r.wall_tps = wall_s > 0.0 ? static_cast<double>(r.tuples) / wall_s : 0.0;
  r.reassigns = native->reassignments_done();
  r.migr_per_s =
      wall_s > 0.0 ? static_cast<double>(r.reassigns) / wall_s : 0.0;
  std::vector<SimDuration> pauses = native->migration_pauses();
  std::sort(pauses.begin(), pauses.end());
  auto pct = [&pauses](double p) {
    if (pauses.empty()) return 0.0;
    size_t i = static_cast<size_t>(p * static_cast<double>(pauses.size()));
    i = std::min(i, pauses.size() - 1);
    return static_cast<double>(pauses[i]) / 1e6;
  };
  r.pause_p50_ms = pct(0.50);
  r.pause_p99_ms = pct(0.99);
  return r;
}

// ---- Skew-shifted workload: static vs elastic -----------------------------
//
// The resource-control plane's headline comparison (the paper's Figure 6
// dynamic, on real threads): ~90% of the offered load concentrates on a
// small hot-key set, and the hot set jumps to a different worker's shards
// every quarter of the run. Static routing strands each phase's hot load
// on one thread; the elastic run lets the driver's balance tick — fed by
// TelemetrySnapshot wall-busy, not processed counts — spread the hot
// shards as each phase lands. Identical tuple budget and per-tuple work,
// so tup/s and p99 are directly comparable across the two rows.

constexpr int kSkewWorkers = 8;
constexpr int kSkewPhases = 4;
constexpr int kHotPerPhase = 4;

struct SkewSchedule {
  std::atomic<int64_t> emitted{0};
  int64_t phase_len = 1;
  // hot[p]: keys that all hash to distinct shards initially routed to
  // worker p (filled after Setup, when the real partition exists).
  std::array<std::array<uint64_t, kHotPerPhase>, kSkewPhases> hot{};
};

struct SkewResult {
  int64_t tuples = 0;
  double wall_ms = 0.0;
  double wall_tps = 0.0;
  double p99_ms = 0.0;
  int64_t reassigns = 0;
};

SkewResult RunSkew(Paradigm paradigm, int64_t tuples_per_source) {
  MicroWorkload workload =
      BuildSpeedWorkload(kSkewWorkers, tuples_per_source);
  auto sched = std::make_shared<SkewSchedule>();
  sched->phase_len =
      std::max<int64_t>(1, kSources * tuples_per_source / kSkewPhases);
  OperatorSpec& gen = workload.topology.mutable_spec(workload.generator);
  gen.source.factory = [sched](Rng* rng, SimTime) {
    const int64_t n =
        sched->emitted.fetch_add(1, std::memory_order_relaxed);
    const int phase = static_cast<int>(
        std::min<int64_t>(n / sched->phase_len, kSkewPhases - 1));
    Tuple t;
    t.key = rng->NextBounded(10) < 9
                ? sched->hot[phase][rng->NextBounded(kHotPerPhase)]
                : rng->NextBounded(4096);
    t.size_bytes = 64;
    return t;
  };

  EngineConfig config = SpeedConfig(kSkewWorkers);
  config.paradigm = paradigm;
  if (paradigm == Paradigm::kElastic) {
    config.native.migration_copy_bytes_per_sec = 256e6;
    config.native.balance.period_ns = Millis(10);
    config.native.balance.theta = 1.15;
    config.native.balance.max_moves = 4;
    config.native.balance.use_wall_busy = true;
  }
  Engine engine(workload.topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());

  // Pick hot keys from the live partition: phase p's keys land on
  // kHotPerPhase distinct shards all routed to worker p at t=0, so each
  // phase shift re-strands the hot load on a single thread.
  exec::NativeRuntime* native = engine.native();
  const OperatorId calc = workload.calculator;
  for (int p = 0; p < kSkewPhases; ++p) {
    std::vector<ShardId> used;
    int found = 0;
    for (uint64_t key = 0; found < kHotPerPhase; ++key) {
      ELASTICUTOR_CHECK(key < (1u << 20));  // 128 shards: hits are dense.
      const ShardId s = native->shard_of_key(calc, key);
      if (native->worker_of_shard(calc, s) != p) continue;
      if (std::find(used.begin(), used.end(), s) != used.end()) continue;
      used.push_back(s);
      sched->hot[p][found++] = key;
    }
  }

  auto wall_start = std::chrono::steady_clock::now();
  engine.Start();
  engine.RunToCompletion();
  auto wall_end = std::chrono::steady_clock::now();

  SkewResult r;
  r.tuples = native->total_processed();
  ELASTICUTOR_CHECK(r.tuples == kSources * tuples_per_source);
  ELASTICUTOR_CHECK(native->sink_count() == r.tuples);
  r.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  r.wall_tps = r.wall_ms > 0.0
                   ? static_cast<double>(r.tuples) / (r.wall_ms / 1e3)
                   : 0.0;
  r.p99_ms = static_cast<double>(engine.LatencyHistogram().P99()) / 1e6;
  r.reassigns =
      paradigm == Paradigm::kElastic ? native->reassignments_done() : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("native speed",
         "real multithreaded throughput of the native execution backend");

  // Tuple budget scales with ELASTICUTOR_BENCH_SCALE (it is the bench's
  // duration knob: saturation sources have no time axis).
  const int64_t tuples_per_source = std::max<int64_t>(
      2000, static_cast<int64_t>(kBaseTuplesPerSource * TimeScale()));
  const int64_t total = kSources * tuples_per_source;
  const unsigned cores = std::thread::hardware_concurrency();

  TablePrinter table({"paradigm", "workers", "cores", "tuples", "wall_ms",
                      "tup/s", "speedup_vs_1", "batches_alloc",
                      "push_blocks_per_kt", "pop_waits_per_kt",
                      "batches_pushed"});
  table.PrintHeader();
  double base_tps = 0.0;
  for (int workers : kWorkerCounts) {
    RowResult r = RunOne(workers, tuples_per_source);
    if (workers == 1) base_tps = r.wall_tps;
    const double speedup =
        base_tps > 0.0 && r.wall_tps > 0.0 ? r.wall_tps / base_tps : 0.0;
    const double per_kt = 1000.0 / static_cast<double>(total);
    table.PrintRow({"static", FmtInt(workers), FmtInt(cores),
                    FmtInt(r.tuples), Fmt(r.wall_ms, 1), Fmt(r.wall_tps, 0),
                    Fmt(speedup, 2), FmtInt(r.allocs),
                    Fmt(static_cast<double>(r.push_blocks) * per_kt, 3),
                    Fmt(static_cast<double>(r.pop_waits) * per_kt, 3),
                    FmtInt(r.batches_pushed)});
  }

  std::printf("\n");
  TablePrinter elastic_table({"paradigm", "workers", "cores", "reassigns",
                              "migr_per_s", "pause_p50_ms", "pause_p99_ms",
                              "tuples", "tup/s"});
  elastic_table.PrintHeader();
  ElasticResult e = RunElastic(tuples_per_source);
  elastic_table.PrintRow({"elastic", FmtInt(kElasticWorkers), FmtInt(cores),
                          FmtInt(e.reassigns), Fmt(e.migr_per_s, 0),
                          Fmt(e.pause_p50_ms, 3), Fmt(e.pause_p99_ms, 3),
                          FmtInt(e.tuples), Fmt(e.wall_tps, 0)});

  std::printf("\n");
  TablePrinter skew_table({"paradigm", "workers", "cores", "tuples",
                           "wall_ms", "tup/s", "x_vs_static", "p99_ms",
                           "p99_x_vs_static", "reassigns"});
  skew_table.PrintHeader();
  SkewResult ss = RunSkew(Paradigm::kStatic, tuples_per_source);
  SkewResult se = RunSkew(Paradigm::kElastic, tuples_per_source);
  const double skew_x =
      ss.wall_tps > 0.0 && se.wall_tps > 0.0 ? se.wall_tps / ss.wall_tps
                                             : 0.0;
  const double skew_p99_x =
      ss.p99_ms > 0.0 && se.p99_ms > 0.0 ? se.p99_ms / ss.p99_ms : 0.0;
  skew_table.PrintRow({"skew-static", FmtInt(kSkewWorkers), FmtInt(cores),
                       FmtInt(ss.tuples), Fmt(ss.wall_ms, 1),
                       Fmt(ss.wall_tps, 0), Fmt(1.0, 2), Fmt(ss.p99_ms, 3),
                       Fmt(1.0, 2), FmtInt(ss.reassigns)});
  skew_table.PrintRow({"skew-elastic", FmtInt(kSkewWorkers), FmtInt(cores),
                       FmtInt(se.tuples), Fmt(se.wall_ms, 1),
                       Fmt(se.wall_tps, 0), Fmt(skew_x, 2),
                       Fmt(se.p99_ms, 3), Fmt(skew_p99_x, 2),
                       FmtInt(se.reassigns)});

  std::printf(
      "\ntuples/s, speedups and pause percentiles are machine-dependent "
      "(CI gates them only on machines with enough cores — see min_cores "
      "in bench/expectations.json); batches_alloc is capacity-bounded, not "
      "tuple-bounded: the pool goes flat once every channel's pipeline is "
      "primed. The elastic row drives live full-shard rotation sweeps "
      "(>= %d completed moves) while 8 workers process under load; pauses "
      "span routing flip -> shard installed. The skew table shifts a "
      "90%%-hot key set across workers every quarter-run: skew-static "
      "strands each phase on one thread, skew-elastic lets the wall-busy "
      "balance tick spread it (x_vs_static > 1 and p99_x_vs_static < 1 "
      "expected on >= 8 real cores).\n",
      static_cast<int>(kElasticMoveTarget));
  return 0;
}
