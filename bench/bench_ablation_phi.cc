// Ablation (paper §4.2): the data-intensity threshold φ of Algorithm 1.
// φ trades the feasibility of the assignment problem against computation
// locality: low φ pins more executors to local cores (less remote traffic)
// but may need doubling to find a feasible assignment. Sweeps φ̃ on a
// data-intensive micro workload.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Ablation: locality threshold φ",
         "remote traffic and throughput vs φ̃");

  TablePrinter table({"phi", "tput(tup/s)", "remote_MB/s", "migr_MB/s",
                      "phi_used"});
  table.PrintHeader();

  struct Mode {
    const char* name;
    double phi;
  };
  for (Mode mode :
       {Mode{"64KB/s", 64.0 * 1024}, Mode{"512KB/s", 512.0 * 1024},
        Mode{"4MB/s", 4096.0 * 1024}, Mode{"inf", 1e18}}) {
    MicroOptions options;
    options.tuple_bytes = 2048;  // Data-intensive: locality matters.
    options.shuffles_per_minute = 4.0;
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.scheduler.phi_bytes_per_sec = mode.phi;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    workload->InstallDynamics(&engine);

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(8)), Scaled(Seconds(20)));
    table.PrintRow({mode.name, Fmt(r.throughput_tps, 0),
                    Fmt(r.remote_task_rate_mbps, 2),
                    Fmt(r.migration_rate_mbps, 2),
                    Fmt(engine.scheduler()->last_phi_used() / 1024.0, 0) +
                        "KB/s"});
  }
  std::printf("\nexpected: low φ̃ keeps data-intensive executors local "
              "(less remote traffic); φ = ∞ disables the locality "
              "constraint\n");
  return 0;
}
