// Ablation (paper §3.1): the intra-executor load balancer. Compares the
// paper's δ-greedy heuristic against (a) no balancing at all and (b) a
// coarser θ, under the skewed dynamic micro workload. Shows why bounding
// max/avg task load at 1.2 matters for multi-core executors.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Ablation: intra-executor balancer",
         "θ sensitivity and balancing off");

  TablePrinter table({"balancer", "tput(tup/s)", "mean_lat_ms", "p99_ms",
                      "reassigns"});
  table.PrintHeader();

  struct Mode {
    const char* name;
    bool enabled;
    double theta;
  };
  for (Mode mode : {Mode{"off", false, 1.2}, Mode{"theta=2.0", true, 2.0},
                    Mode{"theta=1.2", true, 1.2},
                    Mode{"theta=1.05", true, 1.05}}) {
    MicroOptions options;
    options.shuffles_per_minute = 4.0;
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.balancer.enabled = mode.enabled;
    config.balancer.theta = mode.theta;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    workload->InstallDynamics(&engine);

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(8)), Scaled(Seconds(20)));
    table.PrintRow({mode.name, Fmt(r.throughput_tps, 0),
                    Fmt(r.mean_latency_ms, 2), Fmt(r.p99_latency_ms, 2),
                    FmtInt(r.elasticity_ops)});
  }
  std::printf("\nexpected: no balancing leaves multi-core executors "
              "skew-bound; very tight θ churns shards for little gain "
              "(paper picks 1.2)\n");
  return 0;
}
