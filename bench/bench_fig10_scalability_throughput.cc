// Figure 10: throughput of a SINGLE elastic executor as it scales from 1 to
// 256 cores, under (a) varying per-tuple computation cost and (b) varying
// tuple size. Paper shape: near-linear scaling for compute-heavy workloads;
// data-intensive configurations (0.01 ms/tuple or 8 KB tuples) stop scaling
// around 16 cores, where the local node's NIC (all remote-task traffic
// funnels through the main process) saturates.
#include "harness/experiment.h"
#include "harness/single_executor.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {
const int kCores[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

MicroOptions Base() {
  MicroOptions options;
  // Mild skew so no single key's serial-processing bound dominates the
  // scalability measurement (the paper studies the data-intensity limits
  // here, not key skew).
  options.zipf_skew = 0.2;
  options.shards_per_executor = 1024;
  options.generator_executors = 32;
  options.gen_overhead_ns = Micros(1);
  return options;
}
}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 10", "single-executor scale-out: throughput vs cores");

  std::printf("\n(a) varying computation cost (tuple size 128 B)\n");
  TablePrinter ta({"cores", "10ms", "1ms", "0.1ms", "0.01ms"});
  ta.PrintHeader();
  for (int cores : kCores) {
    std::vector<std::string> row{FmtInt(cores)};
    for (double cost_ms : {10.0, 1.0, 0.1, 0.01}) {
      MicroOptions options = Base();
      options.calc_cost_ns = MillisF(cost_ms);
      auto r = RunSingleExecutor(options, cores, Scaled(Seconds(3)),
                                 Scaled(Seconds(4)));
      row.push_back(Fmt(r.throughput_tps, 0));
    }
    ta.PrintRow(row);
  }

  std::printf("\n(b) varying tuple size (computation cost 1 ms)\n");
  TablePrinter tb({"cores", "128B", "512B", "2KB", "8KB"});
  tb.PrintHeader();
  for (int cores : kCores) {
    std::vector<std::string> row{FmtInt(cores)};
    for (int bytes : {128, 512, 2048, 8192}) {
      MicroOptions options = Base();
      options.tuple_bytes = bytes;
      auto r = RunSingleExecutor(options, cores, Scaled(Seconds(3)),
                                 Scaled(Seconds(4)));
      row.push_back(Fmt(r.throughput_tps, 0));
    }
    tb.PrintRow(row);
  }
  std::printf("\npaper: data-intensive configs (0.01 ms or 8 KB) flatten "
              "around 16 cores — remote data transfer saturates the main "
              "process's 1 Gbps NIC\n");
  return 0;
}
