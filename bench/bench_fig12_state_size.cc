// Figure 12: throughput of a single elastic executor scaling out under
// different shard state sizes, at ω = 2 (left) and ω = 16 (right). Paper
// shape: scaling is unaffected up to multi-MB shard state; at 32 MB shards
// the state migration triggered by load-balancing against shuffles becomes
// the bottleneck, and the effect sharpens at ω = 16.
#include "harness/experiment.h"
#include "harness/single_executor.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {
const int kCores[] = {1, 4, 8, 16, 32, 64, 128, 256};

MicroOptions Base(double omega) {
  MicroOptions options;
  options.zipf_skew = 0.2;
  options.shards_per_executor = 256;  // Fewer, bigger shards: state matters.
  options.generator_executors = 32;
  options.gen_overhead_ns = Micros(1);
  options.shuffles_per_minute = omega;
  return options;
}

void Sweep(double omega) {
  std::printf("\nthroughput (tuples/s) at ω = %.0f\n", omega);
  TablePrinter table({"cores", "32KB", "1MB", "8MB", "32MB"});
  table.PrintHeader();
  for (int cores : kCores) {
    std::vector<std::string> row{FmtInt(cores)};
    for (int64_t bytes : {32 * kKiB, 1 * kMiB, 8 * kMiB, 32 * kMiB}) {
      MicroOptions options = Base(omega);
      options.shard_state_bytes = bytes;
      auto r = RunSingleExecutor(options, cores, Scaled(Seconds(4)),
                                 Scaled(Seconds(8)));
      row.push_back(Fmt(r.throughput_tps, 0));
    }
    table.PrintRow(row);
  }
}
}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 12",
         "single-executor scale-out vs shard state size, ω = 2 and 16");
  Sweep(2.0);
  Sweep(16.0);
  std::printf("\npaper: 32 MB shard state prevents efficient use of remote "
              "cores; higher ω needs more migration and degrades further\n");
  return 0;
}
