// Figure 8: breakdown of a single shard-reassignment's cost — intra-node vs
// inter-node, synchronization time vs state-migration time — for RC and
// Elasticutor. Probes run against a moderately loaded system (trace mode),
// as single controlled reassignments.
//
// Paper values (ms): RC sync ≈ 260 (intra) / 297 (inter), Elasticutor sync
// ≈ 2.6 / 2.8; migration ≈ 0.3-8.8 (dominated by the 32 KB transfer only in
// the inter-node case). The 2-orders-of-magnitude sync gap is the headline.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

struct Probe {
  double sync_ms = 0;
  double precopy_ms = 0;
  double migration_ms = 0;
  double pause_ms = 0;
  double delta_kb = 0;
  int count = 0;
};

Probe Summarize(const std::vector<ElasticityOp>& ops, size_t from,
                bool inter) {
  Probe p;
  for (size_t i = from; i < ops.size(); ++i) {
    if (ops[i].inter_node != inter) continue;
    p.sync_ms += ToMillis(ops[i].sync_ns);
    p.precopy_ms += ToMillis(ops[i].precopy_ns);
    p.migration_ms += ToMillis(ops[i].migration_ns);
    p.pause_ms += ToMillis(ops[i].pause_ns);
    p.delta_kb += static_cast<double>(ops[i].delta_bytes) / 1024.0;
    ++p.count;
  }
  if (p.count > 0) {
    p.sync_ms /= p.count;
    p.precopy_ms /= p.count;
    p.migration_ms /= p.count;
    p.pause_ms /= p.count;
    p.delta_kb /= p.count;
  }
  return p;
}

MicroOptions ProbeOptions() {
  MicroOptions options;
  options.mode = SourceSpec::Mode::kTrace;
  // Light enough that even a single-core executor absorbs its hottest key
  // (the probe engines run with a frozen core allocation).
  options.trace_rate_per_sec = 20000.0;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 8",
         "per-shard reassignment time breakdown (sync vs migration)");
  TablePrinter table({"paradigm", "locality", "sync_ms", "precopy_ms",
                      "migration_ms", "pause_ms", "delta_kb", "samples"});
  table.PrintHeader();

  const int kProbes = 24;

  // ---- Elasticutor ----
  {
    auto workload = BuildMicroWorkload(ProbeOptions(), 42);
    ELASTICUTOR_CHECK(workload.ok());
    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.scheduler.enabled = false;  // Manual core placement below.
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());

    // Executor 0: two extra local cores and two remote cores.
    auto ex = engine.elastic_executors(workload->calculator)[0];
    NodeId home = ex->home_node();
    NodeId remote = (home + 1) % engine.cluster().num_nodes();
    for (NodeId node : {home, home, remote, remote}) {
      ELASTICUTOR_CHECK(engine.ledger()->Acquire(node, ex->id()) >= 0);
      ELASTICUTOR_CHECK(ex->AddCore(node).ok());
    }
    engine.Start();
    engine.RunFor(Scaled(Seconds(4)));  // Let the balancer spread shards.
    ex->set_balancing_frozen(true);     // Quiescent for clean probes.
    engine.RunFor(Millis(500));

    int next_shard = 10;
    for (bool inter : {false, true}) {
      size_t before = engine.metrics()->elasticity_ops().size();
      for (int i = 0; i < kProbes; ++i) {
        ELASTICUTOR_CHECK(
            ex->ProbeReassign(next_shard++, inter ? remote : home).ok());
        engine.RunFor(Millis(400));
      }
      Probe p = Summarize(engine.metrics()->elasticity_ops(), before, inter);
      table.PrintRow({"elasticutor", inter ? "inter-node" : "intra-node",
                      Fmt(p.sync_ms, 2), Fmt(p.precopy_ms, 2),
                      Fmt(p.migration_ms, 2), Fmt(p.pause_ms, 2),
                      Fmt(p.delta_kb, 1), FmtInt(p.count)});
    }
  }

  // ---- RC ----
  {
    auto workload = BuildMicroWorkload(ProbeOptions(), 42);
    ELASTICUTOR_CHECK(workload.ok());
    EngineConfig config;
    config.paradigm = Paradigm::kResourceCentric;
    config.rc.enabled = false;  // Probes drive repartitions manually.
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    engine.Start();
    engine.RunFor(Scaled(Seconds(3)));

    OperatorId op = workload->calculator;
    OperatorPartition* part = engine.runtime()->partition(op);
    auto execs = engine.runtime()->executors(op);
    RcController* rc = engine.rc_controller();

    for (bool inter : {false, true}) {
      size_t before = engine.metrics()->elasticity_ops().size();
      int done = 0;
      for (int shard = 0; done < kProbes && shard < part->num_shards();
           ++shard) {
        int from = part->ExecutorOfShard(shard);
        // Find a destination executor on the same / a different node.
        int to = -1;
        for (size_t e = 0; e < execs.size(); ++e) {
          if (static_cast<int>(e) == from) continue;
          bool same = execs[e]->home_node() == execs[from]->home_node();
          if (same != inter) {
            to = static_cast<int>(e);
            break;
          }
        }
        if (to < 0) continue;
        if (!rc->ProbeMoveShard(op, shard, to).ok()) continue;
        ++done;
        engine.RunFor(Millis(1200));
      }
      Probe p = Summarize(engine.metrics()->elasticity_ops(), before, inter);
      table.PrintRow({"resource-centric", inter ? "inter-node" : "intra-node",
                      Fmt(p.sync_ms, 2), Fmt(p.precopy_ms, 2),
                      Fmt(p.migration_ms, 2), Fmt(p.pause_ms, 2),
                      Fmt(p.delta_kb, 1), FmtInt(p.count)});
    }
  }

  std::printf("\npaper: RC sync 260.4 / 297.3 ms, EC sync 2.62 / 2.83 ms — "
              "the executor-centric design removes global synchronization\n");
  return 0;
}
