// Shared experiment harness for the per-figure/per-table benches: runs an
// engine through warm-up + measurement and extracts the metrics the paper
// reports; provides fixed-width table printing so every bench emits rows in
// the paper's format.
//
// Durations scale with the ELASTICUTOR_BENCH_SCALE environment variable
// (default 1.0) so CI can run quick passes and full runs stay available.
#pragma once

#include <string>
#include <vector>

#include "elasticutor/elasticutor.h"

namespace elasticutor {
namespace bench {

/// Parses harness flags and enables machine-readable output. Call first in
/// main(). Recognized: `--json <path>` — serialize every table row printed by
/// this process to `path` as a JSON array of objects (one object per row,
/// keyed by column header). The ELASTICUTOR_BENCH_JSON environment variable
/// is an equivalent no-flag spelling; the flag wins when both are set.
/// Unknown arguments are left untouched for the bench's own parsing.
void BenchInit(int argc, char** argv);

/// Multiplier from ELASTICUTOR_BENCH_SCALE (clamped to [0.05, 100]).
double TimeScale();

/// `d` scaled by TimeScale().
SimDuration Scaled(SimDuration d);

struct ExperimentResult {
  double throughput_tps = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int64_t completed = 0;

  // Elasticity operations during the measured window.
  int64_t elasticity_ops = 0;
  double avg_sync_ms = 0.0;
  double avg_precopy_ms = 0.0;    // Live pre-copy (processing continues).
  double avg_migration_ms = 0.0;  // In-pause state transfer.
  double avg_pause_ms = 0.0;      // Total routing-pause window.
  double avg_delta_kb = 0.0;      // KB shipped inside the pause.

  // Network rates over the measured window (inter-node only).
  double migration_rate_mbps = 0.0;   // MB/s of state migration.
  double remote_task_rate_mbps = 0.0; // MB/s main <-> remote task traffic.

  int64_t order_violations = 0;
};

/// Start → warm-up → reset → measure; returns the window's metrics.
ExperimentResult RunAndMeasure(Engine* engine, SimDuration warmup,
                               SimDuration measure);

/// Compute the result from an engine already run past a measured window that
/// started at ResetMetricsAfterWarmup().
ExperimentResult Snapshot(Engine* engine, SimDuration measured);

/// Fixed-width table output. Cells wider than the column get padded to
/// cell.size() + 2 instead of silently running into the next column. When a
/// JSON sink is armed (see BenchInit), every PrintRow also records the row as
/// an object keyed by the column headers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 14);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> headers_;
  int width_;
};

std::string Fmt(double value, int precision = 1);
std::string FmtInt(int64_t value);

/// Prints the standard bench banner (figure id + description + scale note).
void Banner(const std::string& experiment, const std::string& description);

}  // namespace bench
}  // namespace elasticutor
