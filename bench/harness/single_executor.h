// Shared helper for the single-elastic-executor scale-out experiments
// (Figs 10-12): ONE elastic executor for the calculator operator, cores
// added manually (local first, then remote, as in the paper's testbed where
// the first 8 cores are local), scheduler disabled, balancer enabled.
#pragma once

#include "harness/experiment.h"

namespace elasticutor {
namespace bench {

struct SingleExecutorResult {
  double throughput_tps = 0;
  double p99_latency_ms = 0;
  double mean_latency_ms = 0;
};

/// Builds the micro workload with ONE calculator executor, grants it
/// `cores` CPU cores (8 local, rest round-robin over remote nodes), runs
/// warm-up + measure and returns the results.
inline SingleExecutorResult RunSingleExecutor(MicroOptions options, int cores,
                                              SimDuration warmup,
                                              SimDuration measure,
                                              uint64_t seed = 42) {
  options.calculator_executors = 1;
  auto workload = BuildMicroWorkload(options, seed);
  ELASTICUTOR_CHECK(workload.ok());

  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.scheduler.enabled = false;  // Cores are pinned for the sweep.
  Engine engine(workload->topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  workload->InstallDynamics(&engine);

  auto ex = engine.elastic_executors(workload->calculator)[0];
  NodeId home = ex->home_node();
  int granted = 1;  // Setup granted the first local core.
  // Fill the local node first, then spread over remote nodes round-robin.
  while (granted < cores) {
    NodeId node = -1;
    if (engine.ledger()->FreeOn(home) > 0) {
      node = home;
    } else {
      for (int i = 1; i < engine.cluster().num_nodes(); ++i) {
        NodeId candidate = (home + granted + i) % engine.cluster().num_nodes();
        if (engine.ledger()->FreeOn(candidate) > 0) {
          node = candidate;
          break;
        }
      }
    }
    ELASTICUTOR_CHECK_MSG(node >= 0, "cluster out of cores");
    ELASTICUTOR_CHECK(engine.ledger()->Acquire(node, ex->id()) >= 0);
    ELASTICUTOR_CHECK(ex->AddCore(node).ok());
    ++granted;
  }

  // Shards start concentrated on the first task; give the balancer a few
  // rounds to spread them before measuring (scale-out warm-up).
  ExperimentResult r = RunAndMeasure(&engine, warmup + Seconds(3), measure);
  SingleExecutorResult out;
  out.throughput_tps = r.throughput_tps;
  out.p99_latency_ms = r.p99_latency_ms;
  out.mean_latency_ms = r.mean_latency_ms;
  return out;
}

}  // namespace bench
}  // namespace elasticutor
