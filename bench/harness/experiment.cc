#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace elasticutor {
namespace bench {

double TimeScale() {
  static double scale = []() {
    const char* env = std::getenv("ELASTICUTOR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    if (v <= 0.0) return 1.0;
    return std::clamp(v, 0.05, 100.0);
  }();
  return scale;
}

SimDuration Scaled(SimDuration d) {
  return static_cast<SimDuration>(static_cast<double>(d) * TimeScale());
}

ExperimentResult Snapshot(Engine* engine, SimDuration measured) {
  ExperimentResult result;
  double seconds = std::max(ToSeconds(measured), 1e-9);
  const EngineMetrics& m = *engine->metrics();
  result.completed = m.sink_count();
  result.throughput_tps = static_cast<double>(m.sink_count()) / seconds;
  result.mean_latency_ms = m.latency().mean() / 1e6;
  result.p99_latency_ms = static_cast<double>(m.latency().P99()) / 1e6;

  const auto& ops = m.elasticity_ops();
  result.elasticity_ops = static_cast<int64_t>(ops.size());
  if (!ops.empty()) {
    double sync = 0, migration = 0;
    for (const auto& op : ops) {
      sync += ToMillis(op.sync_ns);
      migration += ToMillis(op.migration_ns);
    }
    result.avg_sync_ms = sync / ops.size();
    result.avg_migration_ms = migration / ops.size();
  }

  const Network& net = *engine->net();
  result.migration_rate_mbps =
      net.inter_node_bytes(Purpose::kStateMigration) / 1e6 / seconds;
  result.remote_task_rate_mbps =
      net.inter_node_bytes(Purpose::kRemoteTask) / 1e6 / seconds;
  result.order_violations = engine->order_violations();
  return result;
}

ExperimentResult RunAndMeasure(Engine* engine, SimDuration warmup,
                               SimDuration measure) {
  engine->Start();
  engine->RunFor(warmup);
  engine->ResetMetricsAfterWarmup();
  engine->RunFor(measure);
  return Snapshot(engine, measure);
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

void TablePrinter::PrintHeader() const {
  for (const auto& h : headers_) {
    std::printf("%-*s", width_, h.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < headers_.size(); ++i) {
    for (int c = 0; c < width_ - 2; ++c) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtInt(int64_t value) { return std::to_string(value); }

void Banner(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  if (TimeScale() != 1.0) {
    std::printf("(durations scaled by ELASTICUTOR_BENCH_SCALE=%.2f)\n",
                TimeScale());
  }
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace elasticutor
