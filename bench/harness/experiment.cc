#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace elasticutor {
namespace bench {

namespace {

// JSON sink state: armed by BenchInit (--json) or ELASTICUTOR_BENCH_JSON,
// flushed atexit so every bench gets serialization without per-bench code.
struct JsonSink {
  std::string path;
  std::string experiment;  // Set by Banner().
  std::vector<std::string> records;

  void Flush() {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write JSON to %s\n", path.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < records.size(); ++i) {
      std::fputs(records[i].c_str(), f);
      std::fputs(i + 1 < records.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }
};

JsonSink& Sink() {
  static JsonSink sink;
  return sink;
}

void FlushJsonAtExit() { Sink().Flush(); }

void ArmJson(std::string path) {
  bool first = Sink().path.empty();
  Sink().path = std::move(path);
  if (first) std::atexit(FlushJsonAtExit);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Emits a cell as a JSON number when it parses fully as one (the harness
// formats numbers via Fmt/FmtInt, so "12.50" round-trips), else as a string.
// Only plain decimal/scientific spellings qualify — strtod also accepts
// "inf", "nan" and hex floats, none of which are valid JSON.
std::string JsonValue(const std::string& cell) {
  if (!cell.empty() &&
      cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
    char* end = nullptr;
    std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != cell.c_str()) return cell;
  }
  return "\"" + JsonEscape(cell) + "\"";
}

void RecordRow(const std::vector<std::string>& headers,
               const std::vector<std::string>& cells) {
  JsonSink& sink = Sink();
  if (sink.path.empty()) return;
  std::string rec = "  {\"experiment\": \"" + JsonEscape(sink.experiment) +
                    "\"";
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string key = i < headers.size() ? headers[i]
                                         : "col" + std::to_string(i);
    rec += ", \"" + JsonEscape(key) + "\": " + JsonValue(cells[i]);
  }
  rec += "}";
  sink.records.push_back(std::move(rec));
}

}  // namespace

void BenchInit(int argc, char** argv) {
  const char* env = std::getenv("ELASTICUTOR_BENCH_JSON");
  std::string path = env != nullptr ? env : "";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      path = argv[i + 1];
      break;
    }
  }
  if (!path.empty()) ArmJson(std::move(path));
}

double TimeScale() {
  static double scale = []() {
    const char* env = std::getenv("ELASTICUTOR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    if (v <= 0.0) return 1.0;
    return std::clamp(v, 0.05, 100.0);
  }();
  return scale;
}

SimDuration Scaled(SimDuration d) {
  return static_cast<SimDuration>(static_cast<double>(d) * TimeScale());
}

ExperimentResult Snapshot(Engine* engine, SimDuration measured) {
  ExperimentResult result;
  double seconds = std::max(ToSeconds(measured), 1e-9);
  const EngineMetrics& m = *engine->metrics();
  result.completed = m.sink_count();
  result.throughput_tps = static_cast<double>(m.sink_count()) / seconds;
  result.mean_latency_ms = m.latency().mean() / 1e6;
  result.p99_latency_ms = static_cast<double>(m.latency().P99()) / 1e6;

  const auto& ops = m.elasticity_ops();
  result.elasticity_ops = static_cast<int64_t>(ops.size());
  if (!ops.empty()) {
    double sync = 0, precopy = 0, migration = 0, pause = 0, delta = 0;
    for (const auto& op : ops) {
      sync += ToMillis(op.sync_ns);
      precopy += ToMillis(op.precopy_ns);
      migration += ToMillis(op.migration_ns);
      pause += ToMillis(op.pause_ns);
      delta += static_cast<double>(op.delta_bytes) / 1024.0;
    }
    result.avg_sync_ms = sync / ops.size();
    result.avg_precopy_ms = precopy / ops.size();
    result.avg_migration_ms = migration / ops.size();
    result.avg_pause_ms = pause / ops.size();
    result.avg_delta_kb = delta / ops.size();
  }

  const Network& net = *engine->net();
  result.migration_rate_mbps =
      net.inter_node_bytes(Purpose::kStateMigration) / 1e6 / seconds;
  result.remote_task_rate_mbps =
      net.inter_node_bytes(Purpose::kRemoteTask) / 1e6 / seconds;
  result.order_violations = engine->order_violations();
  return result;
}

ExperimentResult RunAndMeasure(Engine* engine, SimDuration warmup,
                               SimDuration measure) {
  engine->Start();
  engine->RunFor(warmup);
  engine->ResetMetricsAfterWarmup();
  engine->RunFor(measure);
  return Snapshot(engine, measure);
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

namespace {
// Column width for one cell: wide cells get two trailing spaces instead of
// overflowing into the neighbor (e.g. 16-char "resource-centric" in a
// 12-wide column).
int CellWidth(int width, const std::string& cell) {
  return std::max(width, static_cast<int>(cell.size()) + 2);
}
}  // namespace

void TablePrinter::PrintHeader() const {
  for (const auto& h : headers_) {
    std::printf("%-*s", CellWidth(width_, h), h.c_str());
  }
  std::printf("\n");
  for (const auto& h : headers_) {
    int w = CellWidth(width_, h);
    for (int c = 0; c < w - 2; ++c) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) {
    std::printf("%-*s", CellWidth(width_, c), c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
  RecordRow(headers_, cells);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtInt(int64_t value) { return std::to_string(value); }

void Banner(const std::string& experiment, const std::string& description) {
  Sink().experiment = experiment;
  std::printf("============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  if (TimeScale() != 1.0) {
    std::printf("(durations scaled by ELASTICUTOR_BENCH_SCALE=%.2f)\n",
                TimeScale());
  }
  std::printf("============================================================\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace elasticutor
