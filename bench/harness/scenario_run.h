// Shared measurement flow of the scenario benches (bench_scn_*): warm-up,
// a baseline window, then the disturbance + recovery window. The caller
// builds the engine, installs a ScenarioDriver whose first disturbance fires
// exactly at warmup + baseline, and gets back the paper-style numbers:
// pre/post p99 latency and the time-to-rebalance computed from the global
// per-second throughput series.
//
// Note on ELASTICUTOR_BENCH_SCALE: the throughput series bins are fixed at
// one second of simulated time, so at scales where the baseline window
// shrinks below one bin the recovery stats degenerate (baseline 0, ttr -1).
// The JSON stays well-formed; full-scale runs give the real numbers.
#pragma once

#include "harness/experiment.h"

namespace elasticutor {
namespace bench {

struct ScenarioPhaseResult {
  double baseline_tps = 0.0;
  double p99_pre_ms = 0.0;
  double p99_post_ms = 0.0;       // Over the disturbance + recovery window.
  double mean_post_ms = 0.0;
  double post_tput = 0.0;
  RecoveryStats recovery;
  // Busy time accrued per node over the disturbance + recovery window —
  // where the cluster's processing actually happened. Fault benches report
  // the victim node's share: a capacity-aware paradigm drains it, a blind
  // one keeps feeding it.
  std::vector<int64_t> post_busy_ns_by_node;

  /// Percent of the post-window busy time spent on `node` (0 when nothing
  /// ran anywhere).
  double BusySharePct(int node) const {
    double total = 0.0;
    for (int64_t ns : post_busy_ns_by_node) total += static_cast<double>(ns);
    if (total <= 0.0 ||
        node >= static_cast<int>(post_busy_ns_by_node.size())) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(post_busy_ns_by_node[node]) / total;
  }
};

/// `engine` must be Setup() but not Start()ed, with the scenario driver
/// already installed.
inline ScenarioPhaseResult RunScenarioPhases(Engine* engine,
                                             SimDuration warmup,
                                             SimDuration baseline_window,
                                             SimDuration post_window,
                                             double recovery_threshold) {
  ScenarioPhaseResult r;
  engine->Start();
  engine->RunFor(warmup);
  engine->ResetMetricsAfterWarmup();
  engine->RunFor(baseline_window);
  r.p99_pre_ms = static_cast<double>(engine->LatencyHistogram().P99()) / 1e6;

  const SimTime disturb_at = engine->exec()->now();
  engine->ResetMetricsAfterWarmup();  // Post-window gets its own histogram
                                      // and per-node busy attribution.
  engine->RunFor(post_window);
  r.p99_post_ms = static_cast<double>(engine->LatencyHistogram().P99()) / 1e6;
  r.post_busy_ns_by_node = engine->metrics()->busy_ns_by_node();
  r.mean_post_ms = engine->LatencyHistogram().mean() / 1e6;
  r.post_tput = engine->MeasuredThroughput();
  r.recovery = MeasureRecovery(engine->metrics()->sink_throughput_series(),
                               disturb_at - baseline_window, disturb_at,
                               engine->exec()->now(), recovery_threshold);
  r.baseline_tps = r.recovery.baseline_tps;
  return r;
}

}  // namespace bench
}  // namespace elasticutor
