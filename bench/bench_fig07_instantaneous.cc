// Figure 7: instantaneous throughput (1-second window) over time at ω = 2
// (a key shuffle every 30 s). Paper shape: static low but stable; RC and
// Elasticutor high with transient dips at each shuffle — RC's dips last
// 10-20 s, Elasticutor's 1-3 s.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 7", "instantaneous throughput over time, ω = 2");

  const SimDuration total = Scaled(Seconds(95));
  std::vector<std::vector<double>> series;
  std::vector<const char*> names;

  for (Paradigm paradigm : {Paradigm::kStatic, Paradigm::kResourceCentric,
                            Paradigm::kElastic}) {
    MicroOptions options;
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = paradigm;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    ScenarioDriver driver(scn::MicroDynamics(2.0), &engine, workload->keys);
    driver.Install();
    engine.Start();
    engine.RunFor(total);

    std::vector<double> bins;
    for (const auto& [start, count] :
         engine.metrics()->sink_throughput_series().Bins()) {
      (void)start;
      bins.push_back(count);
    }
    series.push_back(std::move(bins));
    names.push_back(ParadigmName(paradigm));
  }

  TablePrinter table({"t(s)", names[0], names[1], names[2]});
  table.PrintHeader();
  size_t bins = 0;
  for (const auto& s : series) bins = std::max(bins, s.size());
  for (size_t b = 5; b < bins; ++b) {  // Skip initial ramp-up seconds.
    std::vector<std::string> row{FmtInt(static_cast<int64_t>(b))};
    for (const auto& s : series) {
      row.push_back(b < s.size() ? Fmt(s[b], 0) : "-");
    }
    table.PrintRow(row);
  }
  std::printf("\n(key shuffles at t = 30, 60, 90 s; watch the dip depth and "
              "recovery length per paradigm)\n");
  return 0;
}
