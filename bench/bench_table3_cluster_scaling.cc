// Table 3: Elasticutor's throughput and scheduling time as the cluster
// scales from 8 to 32 nodes (SSE workload, saturation). Paper values:
// 66.6 / 121.3 / 218.6 k tuples/s and 4.1 / 5.2 / 5.7 ms scheduling time —
// near-linear throughput scaling with a scheduler that stays in the
// milliseconds.
//
// Beyond the paper: a large-cluster control-plane sweep (128/512/2048
// nodes, one executor per node, millions of keys of state) that runs
// Algorithm 1 standalone on synthetic saturation demands — hot executors
// double their cores, cold ones shrink — and times the sparse indexed-heap
// solver against the retained dense reference oracle on identical inputs
// (outputs are CHECK'd equal). This is the scale where the dense
// O(n·m)-per-grant scan melts (seconds per cycle at 2048 nodes) while the
// heap solver stays in single-digit milliseconds.
#include <chrono>

#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// One synthetic control-plane cycle set for an n-node cluster: every node
// contributes one executor holding 4 of the node's 8 cores; each cycle a
// rotating window of 32 executors turns hot (target 8) and 32 turns cold
// (target 2, becoming dealloc donors), everyone else holds steady. The
// assignment is carried across cycles (current ← x), so later cycles diff
// against the previous plan exactly like the live scheduler.
struct SweepResult {
  int64_t keys = 0;
  int64_t grants = 0;
  double sparse_ms = 0.0;  // Mean per-cycle solve wall (heap solver).
  double dense_ms = 0.0;   // Mean per-cycle solve wall (dense oracle).
  double diff_ms = 0.0;    // Mean per-cycle PlanCoreDiff wall.
};

SweepResult RunControlPlaneSweep(int nodes, int cycles) {
  using Clock = std::chrono::steady_clock;
  const int m = nodes;
  constexpr int kKeysPerExecutor = 2048;
  constexpr double kBytesPerKey = 512.0;

  AssignmentInput in;
  in.node_capacity.assign(nodes, 8);
  in.home.resize(m);
  in.state_bytes.resize(m);
  in.data_intensity.resize(m);
  in.target.assign(m, 4);
  in.current = SparseAssignment(m);
  for (int j = 0; j < m; ++j) {
    in.home[j] = j;
    in.current.Add(j, j, 4);
    in.state_bytes[j] = kKeysPerExecutor * kBytesPerKey;
    // Every 8th executor is data-intensive (above φ): its grants are
    // locality-constrained to the home node.
    in.data_intensity[j] = j % 8 == 0 ? 1e7 : 100e3;
  }

  SweepResult result;
  result.keys = static_cast<int64_t>(m) * kKeysPerExecutor;
  const int perturbed = std::min(32, m / 2);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Rotate the hot/cold windows so every cycle replans fresh executors.
    int hot_base = (cycle * 2 * perturbed) % m;
    for (int k = 0; k < perturbed; ++k) {
      in.target[(hot_base + k) % m] = 8;
      in.target[(hot_base + perturbed + k) % m] = 2;
    }

    auto t0 = Clock::now();
    AssignmentOutput sparse = SolveAssignment(in);
    auto t1 = Clock::now();
    AssignmentOutput dense = SolveAssignmentDense(in);
    auto t2 = Clock::now();
    ELASTICUTOR_CHECK_MSG(sparse.feasible && dense.feasible,
                          "sweep instance must be feasible");
    // The whole point of keeping the oracle: identical decisions.
    ELASTICUTOR_CHECK_MSG(sparse.x == dense.x &&
                              sparse.migration_cost_bytes ==
                                  dense.migration_cost_bytes,
                          "sparse and dense solvers diverged");
    DiffPlan plan = PlanCoreDiff(in.current, sparse.x);
    auto t3 = Clock::now();

    result.sparse_ms += MsBetween(t0, t1);
    result.dense_ms += MsBetween(t1, t2);
    result.diff_ms += MsBetween(t2, t3);
    result.grants += static_cast<int64_t>(plan.adds.size());

    // Carry the plan into the next cycle; steady executors keep whatever
    // they hold (targets pinned to their new totals, like the deadband).
    in.current = std::move(sparse.x);
    for (int j = 0; j < m; ++j) in.target[j] = in.current.Total(j);
  }
  result.sparse_ms /= cycles;
  result.dense_ms /= cycles;
  result.diff_ms /= cycles;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Table 3", "Elasticutor throughput & scheduling time vs cluster "
                    "size");

  TablePrinter table({"nodes", "tput(tup/s)", "sched_time_ms", "measure_ms",
                      "targets_ms", "solve_ms", "diff_ms", "cycle_p99_ms",
                      "cycle_max_ms"});
  table.PrintHeader();

  for (int nodes : {8, 16, 32}) {
    SseOptions options;
    options.mode = SourceSpec::Mode::kSaturation;
    // Executors scale with the cluster: every one of the 12 processing
    // operators still needs >= 1 core per executor.
    options.executors_per_operator = std::max(2, nodes / 4);
    options.source_executors = nodes;
    auto workload = BuildSseWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.num_nodes = nodes;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(6)), Scaled(Seconds(10)));
    const SchedulerTiming& t = engine.scheduler()->timing();
    table.PrintRow({FmtInt(nodes), Fmt(r.throughput_tps, 0),
                    Fmt(engine.scheduler()->avg_scheduling_wall_ms(), 2),
                    Fmt(t.Avg(t.measure_ms), 3), Fmt(t.Avg(t.targets_ms), 3),
                    Fmt(t.Avg(t.solve_ms), 3), Fmt(t.Avg(t.diff_ms), 3),
                    Fmt(t.P99CycleMs(), 2), Fmt(t.MaxCycleMs(), 2)});
  }
  std::printf("\npaper: 66.6k / 121.3k / 218.6k tuples/s; scheduling time "
              "4.1 / 5.2 / 5.7 ms (wall clock of the allocation + Algorithm "
              "1 computation)\n");

  std::printf("\nlarge-cluster control plane (synthetic saturation demands, "
              "sparse heap solver vs dense reference on identical inputs)\n");
  TablePrinter sweep({"nodes", "execs", "keys", "grants", "sched_time_ms",
                      "dense_ms", "speedup_vs_dense", "plan_diff_ms"});
  sweep.PrintHeader();
  for (int nodes : {128, 512, 2048}) {
    SweepResult r = RunControlPlaneSweep(nodes, /*cycles=*/3);
    double speedup = r.dense_ms / std::max(r.sparse_ms, 1e-6);
    sweep.PrintRow({FmtInt(nodes), FmtInt(nodes), FmtInt(r.keys),
                    FmtInt(r.grants), Fmt(r.sparse_ms, 3), Fmt(r.dense_ms, 2),
                    Fmt(speedup, 1), Fmt(r.diff_ms, 3)});
  }
  return 0;
}
