// Table 3: Elasticutor's throughput and scheduling time as the cluster
// scales from 8 to 32 nodes (SSE workload, saturation). Paper values:
// 66.6 / 121.3 / 218.6 k tuples/s and 4.1 / 5.2 / 5.7 ms scheduling time —
// near-linear throughput scaling with a scheduler that stays in the
// milliseconds.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Table 3", "Elasticutor throughput & scheduling time vs cluster "
                    "size");

  TablePrinter table({"nodes", "tput(tup/s)", "sched_time_ms"});
  table.PrintHeader();

  for (int nodes : {8, 16, 32}) {
    SseOptions options;
    options.mode = SourceSpec::Mode::kSaturation;
    // Executors scale with the cluster: every one of the 12 processing
    // operators still needs >= 1 core per executor.
    options.executors_per_operator = std::max(2, nodes / 4);
    options.source_executors = nodes;
    auto workload = BuildSseWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.num_nodes = nodes;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(6)), Scaled(Seconds(10)));
    table.PrintRow({FmtInt(nodes), Fmt(r.throughput_tps, 0),
                    Fmt(engine.scheduler()->avg_scheduling_wall_ms(), 2)});
  }
  std::printf("\npaper: 66.6k / 121.3k / 218.6k tuples/s; scheduling time "
              "4.1 / 5.2 / 5.7 ms (wall clock of the allocation + Algorithm "
              "1 computation)\n");
  return 0;
}
