// Figure 6: throughput (a) and mean processing latency (b) of the three
// paradigms as workload dynamics ω (key shuffles per minute) varies.
// Paper shape: static flat and low (skew-bound); RC close to Elasticutor at
// small ω, degrading by orders of magnitude as ω reaches 16; Elasticutor
// highest with only marginal degradation.
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 6", "throughput & mean latency vs workload dynamics ω");

  TablePrinter table({"omega", "paradigm", "tput(tup/s)", "mean_lat_ms",
                      "p99_lat_ms"});
  table.PrintHeader();

  for (double omega : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (Paradigm paradigm : {Paradigm::kStatic, Paradigm::kResourceCentric,
                              Paradigm::kElastic}) {
      MicroOptions options;
      auto workload = BuildMicroWorkload(options, /*seed=*/42);
      ELASTICUTOR_CHECK(workload.ok());

      EngineConfig config;
      config.paradigm = paradigm;
      Engine engine(workload->topology, config);
      ELASTICUTOR_CHECK(engine.Setup().ok());
      ScenarioDriver driver(scn::MicroDynamics(omega), &engine,
                            workload->keys);
      driver.Install();

      ExperimentResult r =
          RunAndMeasure(&engine, Scaled(Seconds(10)), Scaled(Seconds(30)));
      table.PrintRow({Fmt(omega, 0), ParadigmName(paradigm),
                      Fmt(r.throughput_tps, 0), Fmt(r.mean_latency_ms, 2),
                      Fmt(r.p99_latency_ms, 2)});
    }
  }
  return 0;
}
