// Scenario bench: straggler and node-failure recovery. An 8-node cluster
// runs a steady trace-mode micro workload; one node then (a) turns into a
// 4x straggler for a window, or (b) "crashes" (fail-slow: unschedulable +
// 8x slowdown, see fault_plane.h) and rejoins 15 s later. One shared
// scenario definition per case (scn::Straggler / scn::FailRecover), three
// paradigms.
//
// Expected shape: for the crash, static and RC have no reaction path — the
// dead node's key ranges back up until rejoin — while Elasticutor's
// scheduler sees the node's capacity go to zero and evacuates its cores
// within a few scheduling cycles (time-to-rebalance ~3 s vs the full 15 s
// fault window, p99 roughly an order of magnitude lower). The *undetected*
// straggler gets no crash signal at all: the win there comes from
// capacity-aware balancing — each task's service-rate EWMA exposes the
// slow node, the intra-executor planner drains shards off it (watch
// victim_busy_pct fall), and the scheduler's placement penalty keeps new
// cores away. Static rides the slowdown out; RC can only dilute by
// repartitioning keys among its pinned executors.
#include "harness/experiment.h"
#include "harness/scenario_run.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Scenario: failover",
         "straggler & fail-slow node crash; recovery per paradigm");

  const SimDuration warmup = Scaled(Seconds(10));
  const SimDuration baseline_window = Scaled(Seconds(10));
  const SimDuration fault_len = Scaled(Seconds(15));
  const SimDuration post_window = Scaled(Seconds(35));  // Fault + recovery.
  const SimTime disturb_at = warmup + baseline_window;
  const NodeId victim = 1;

  std::vector<Scenario> scenarios = {
      scn::Straggler(disturb_at, fault_len, victim, /*cpu_factor=*/4.0),
      scn::FailRecover(disturb_at, fault_len, victim),
  };

  // victim_busy_pct: share of post-disturbance busy time spent on the
  // victim node. A fair share is 100/8 = 12.5%; a blind paradigm *rises*
  // above it during a straggler window (stretched service times), while
  // capacity-aware balancing drains the node toward its real capacity.
  TablePrinter table({"scenario", "paradigm", "baseline_tps", "trough_tps",
                      "t_rebalance_s", "p99_pre_ms", "p99_post_ms",
                      "mean_post_ms", "post_tput", "victim_busy_pct"});
  table.PrintHeader();

  for (const Scenario& scenario : scenarios) {
    for (Paradigm paradigm : {Paradigm::kStatic, Paradigm::kResourceCentric,
                              Paradigm::kElastic}) {
      MicroOptions options;
      options.mode = SourceSpec::Mode::kTrace;
      // 8 nodes x 8 cores: one node is 12.5% of the cluster, so the fault
      // is visible; 40k orders/s at 0.5 ms/tuple leaves headroom for
      // evacuation. 16 executors (not 32) on 64 cores: after losing a node
      // the scheduler must still be able to give every executor enough
      // integer cores, or the evacuated cluster is structurally overloaded
      // no matter how well it rebalances.
      options.trace_rate_per_sec = 40000.0;
      options.generator_executors = 16;
      options.calculator_executors = 16;
      options.calc_cost_ns = MillisF(0.5);
      auto workload = BuildMicroWorkload(options, /*seed=*/42);
      ELASTICUTOR_CHECK(workload.ok());

      EngineConfig config;
      config.paradigm = paradigm;
      config.num_nodes = 8;
      Engine engine(workload->topology, config);
      ELASTICUTOR_CHECK(engine.Setup().ok());

      ScenarioDriver driver(scenario, &engine, workload->keys);
      driver.Install();

      ScenarioPhaseResult r = RunScenarioPhases(
          &engine, warmup, baseline_window, post_window,
          /*recovery_threshold=*/0.9);
      table.PrintRow({scenario.name, ParadigmName(paradigm),
                      Fmt(r.baseline_tps, 0), Fmt(r.recovery.trough_tps, 0),
                      Fmt(r.recovery.time_to_recover_s, 2),
                      Fmt(r.p99_pre_ms, 2), Fmt(r.p99_post_ms, 2),
                      Fmt(r.mean_post_ms, 2), Fmt(r.post_tput, 0),
                      Fmt(r.BusySharePct(victim), 1)});
    }
  }
  std::printf("\n(t_rebalance_s = seconds from fault onset until throughput "
              "stays >= 90%% of baseline; -1 = not recovered in the window; "
              "the crash is fail-slow — see docs/scenarios.md)\n");
  return 0;
}
