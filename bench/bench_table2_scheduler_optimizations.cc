// Table 2: naive-EC vs Elasticutor on the SSE workload — state migration
// rate and remote data transfer rate. The migration-cost minimization and
// computation-locality constraint of Algorithm 1 are the difference.
// Paper values: migration 13.9 -> 2.4 MB/s; remote transfer 235.3 -> 21.6
// MB/s (5x and 10x reductions).
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Table 2", "naive-EC vs Elasticutor: migration & remote traffic");

  TablePrinter table({"metric", "naive-EC", "elasticutor"});
  double migration[2] = {0, 0};
  double remote[2] = {0, 0};
  double tput[2] = {0, 0};
  double solve_avg[2] = {0, 0};
  double cycle_p99[2] = {0, 0};
  double cycle_max[2] = {0, 0};

  for (int naive = 1; naive >= 0; --naive) {
    SseOptions options;
    options.executors_per_operator = 4;
    options.trace.base_rate_per_sec = 95000.0;
    auto workload = BuildSseWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = Paradigm::kElastic;
    config.num_nodes = 16;
    config.scheduler.naive_assignment = naive == 1;
    config.task_queue_cap = 64;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());

    ExperimentResult r =
        RunAndMeasure(&engine, Scaled(Seconds(10)), Scaled(Seconds(40)));
    migration[naive] = r.migration_rate_mbps;
    remote[naive] = r.remote_task_rate_mbps;
    tput[naive] = r.throughput_tps;
    const SchedulerTiming& t = engine.scheduler()->timing();
    solve_avg[naive] = t.Avg(t.solve_ms);
    cycle_p99[naive] = t.P99CycleMs();
    cycle_max[naive] = t.MaxCycleMs();
  }

  table.PrintHeader();
  table.PrintRow({"state migration (MB/s)", Fmt(migration[1], 2),
                  Fmt(migration[0], 2)});
  table.PrintRow({"remote transfer (MB/s)", Fmt(remote[1], 2),
                  Fmt(remote[0], 2)});
  table.PrintRow({"throughput (tup/s)", Fmt(tput[1], 0), Fmt(tput[0], 0)});
  // Control-plane cost of each assignment policy (first-fit vs Algorithm 1).
  table.PrintRow({"solve avg (ms)", Fmt(solve_avg[1], 3),
                  Fmt(solve_avg[0], 3)});
  table.PrintRow({"cycle p99 (ms)", Fmt(cycle_p99[1], 3),
                  Fmt(cycle_p99[0], 3)});
  table.PrintRow({"cycle max (ms)", Fmt(cycle_max[1], 3),
                  Fmt(cycle_max[0], 3)});
  std::printf("\npaper: 13.9 -> 2.4 MB/s migration, 235.3 -> 21.6 MB/s "
              "remote transfer (5x / 10x lower with the optimized "
              "scheduler)\n");
  return 0;
}
