// Figure 16: the SSE application (Fig 14 topology) under the four
// approaches — static, RC, naive-EC and Elasticutor — driven by the
// synthetic order trace. Prints instantaneous throughput and mean latency
// per 10-second bin.
//
// Paper shape: both executor-centric variants roughly double the throughput
// of static/RC and cut latency by 1-2 orders of magnitude; the gap between
// naive-EC and Elasticutor is visible but small in comparison (the paradigm
// matters more than the scheduler optimizations).
#include "harness/experiment.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {

struct Mode {
  const char* name;
  Paradigm paradigm;
  bool naive = false;
};

}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 16", "SSE application: throughput & latency over time");

  // 16 nodes keeps the bench quick; capacity ~= 100k orders/s, trace pushes
  // ~75% on average with surges beyond it.
  const int kNodes = 16;
  const SimDuration total = Scaled(Seconds(70));
  const int kBin = 10;

  std::vector<Mode> modes = {
      {"static", Paradigm::kStatic},
      {"rc", Paradigm::kResourceCentric},
      {"naive-EC", Paradigm::kElastic, /*naive=*/true},
      {"elasticutor", Paradigm::kElastic, /*naive=*/false},
  };

  std::vector<std::vector<double>> tput(modes.size());
  std::vector<std::vector<double>> lat(modes.size());
  std::vector<double> mean_tput(modes.size());
  std::vector<double> mean_lat(modes.size());

  // The paper's Fig 16 regime: offered load above the static baseline's
  // imbalance-limited capacity but within elastic capacity. The session-wave
  // dynamics come from the same shared scenario definition fig15 plots.
  scn::SseSession session = scn::SseMarketSession(/*base_rate_per_sec=*/
                                                  95000.0);

  for (size_t m = 0; m < modes.size(); ++m) {
    SseOptions options;
    // 4 executors/op: with one task pinned per core (no thread
    // time-sharing, unlike Storm), every executor's minimum core strands
    // capacity on near-idle operators; 12 ops x 4 = 48 minimum cores on the
    // 128-core cluster leaves the transactor room to grow (DESIGN.md §2).
    options.executors_per_operator = 4;
    options.trace = session.trace;
    auto workload = BuildSseWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = modes[m].paradigm;
    config.num_nodes = kNodes;
    config.scheduler.naive_assignment = modes[m].naive;
    // Comparable buffering: static/RC executors queue 256 tuples each;
    // give elastic tasks equivalent depth so surges are absorbed rather
    // than reflected into spout backlog.
    config.task_queue_cap = 64;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());
    ScenarioDriver driver(session.scenario, &engine);
    driver.Install();
    engine.Start();
    engine.RunFor(total);

    auto tbins = engine.metrics()->sink_throughput_series().Bins();
    auto lsum = engine.metrics()->latency_sum_series().Bins();
    auto lcount = engine.metrics()->latency_count_series().Bins();
    for (size_t b = 0; b + kBin <= tbins.size(); b += kBin) {
      double t = 0, ls = 0, lc = 0;
      for (int i = 0; i < kBin; ++i) {
        t += tbins[b + i].second;
        if (b + i < lsum.size()) ls += lsum[b + i].second;
        if (b + i < lcount.size()) lc += lcount[b + i].second;
      }
      tput[m].push_back(t / kBin);
      lat[m].push_back(lc > 0 ? ls / lc / 1e6 : 0.0);
    }
    mean_tput[m] = static_cast<double>(engine.metrics()->sink_count()) /
                   ToSeconds(total);
    mean_lat[m] = engine.metrics()->latency().mean() / 1e6;
  }

  std::printf("\n(a) instantaneous throughput (completed tuples/s, 10 s "
              "bins)\n");
  TablePrinter ta({"t(s)", modes[0].name, modes[1].name, modes[2].name,
                   modes[3].name});
  ta.PrintHeader();
  for (size_t b = 0; b < tput[0].size(); ++b) {
    std::vector<std::string> row{FmtInt(static_cast<int64_t>(b) * kBin)};
    for (size_t m = 0; m < modes.size(); ++m) {
      row.push_back(b < tput[m].size() ? Fmt(tput[m][b], 0) : "-");
    }
    ta.PrintRow(row);
  }

  std::printf("\n(b) mean processing latency (ms, 10 s bins)\n");
  TablePrinter tb({"t(s)", modes[0].name, modes[1].name, modes[2].name,
                   modes[3].name});
  tb.PrintHeader();
  for (size_t b = 0; b < lat[0].size(); ++b) {
    std::vector<std::string> row{FmtInt(static_cast<int64_t>(b) * kBin)};
    for (size_t m = 0; m < modes.size(); ++m) {
      row.push_back(b < lat[m].size() ? Fmt(lat[m][b], 2) : "-");
    }
    tb.PrintRow(row);
  }

  std::printf("\nwhole-run summary:\n");
  TablePrinter ts({"approach", "tput(tup/s)", "mean_lat_ms"});
  ts.PrintHeader();
  for (size_t m = 0; m < modes.size(); ++m) {
    ts.PrintRow({modes[m].name, Fmt(mean_tput[m], 0), Fmt(mean_lat[m], 2)});
  }
  std::printf("\npaper: executor-centric approaches ~2x the throughput of "
              "static/RC with latency 1-2 orders lower; naive-EC close to "
              "Elasticutor (the paradigm is the main win)\n");
  return 0;
}
