// Scenario bench: flash crowd. A steady trace-mode micro workload is hit by
// a hotspot (20% of traffic collapsing onto 64 random keys) arriving
// together with a 1.5x rate surge — the "breaking news" shape that motivates
// rapid elasticity. One shared scenario definition (scn::FlashCrowd), three
// paradigms; rows report the pre-disturbance baseline, the dip, the time to
// rebalance back to 90% of baseline, and p99 latency before/after.
//
// Expected shape: static dips hard and stays degraded until the hotspot
// ends (its partitioning cannot follow the hot keys); RC recovers on the
// scale of repartitioning rounds; Elasticutor restores throughput within a
// few scheduler/balancer cycles by moving cores, not keys.
#include "harness/experiment.h"
#include "harness/scenario_run.h"

using namespace elasticutor;
using namespace elasticutor::bench;

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Scenario: flash crowd",
         "hotspot + rate surge; time-to-rebalance per paradigm");

  const SimDuration warmup = Scaled(Seconds(10));
  const SimDuration baseline_window = Scaled(Seconds(10));
  const SimDuration surge_len = Scaled(Seconds(15));
  const SimDuration post_window = Scaled(Seconds(35));  // Surge + recovery.
  const SimTime disturb_at = warmup + baseline_window;

  TablePrinter table({"scenario", "paradigm", "baseline_tps", "trough_tps",
                      "t_rebalance_s", "p99_pre_ms", "p99_post_ms",
                      "post_tput"});
  table.PrintHeader();

  for (Paradigm paradigm : {Paradigm::kStatic, Paradigm::kResourceCentric,
                            Paradigm::kElastic}) {
    MicroOptions options;
    options.mode = SourceSpec::Mode::kTrace;
    options.trace_rate_per_sec = 80000.0;  // ~1/3 of cluster capacity.
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    ELASTICUTOR_CHECK(workload.ok());

    EngineConfig config;
    config.paradigm = paradigm;
    Engine engine(workload->topology, config);
    ELASTICUTOR_CHECK(engine.Setup().ok());

    Scenario scenario = scn::FlashCrowd(disturb_at, surge_len,
                                        /*rate_mult=*/1.5, /*share=*/0.2,
                                        /*keys=*/64);
    ScenarioDriver driver(scenario, &engine, workload->keys);
    driver.Install();

    ScenarioPhaseResult r = RunScenarioPhases(
        &engine, warmup, baseline_window, post_window,
        /*recovery_threshold=*/0.9);
    table.PrintRow({scenario.name, ParadigmName(paradigm),
                    Fmt(r.baseline_tps, 0), Fmt(r.recovery.trough_tps, 0),
                    Fmt(r.recovery.time_to_recover_s, 2),
                    Fmt(r.p99_pre_ms, 2), Fmt(r.p99_post_ms, 2),
                    Fmt(r.post_tput, 0)});
  }
  std::printf("\n(t_rebalance_s = seconds from the surge until throughput "
              "stays >= 90%% of baseline; -1 = not recovered in the window)\n");
  return 0;
}
