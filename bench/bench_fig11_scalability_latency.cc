// Figure 11: 99th-percentile latency of a single elastic executor as it
// scales out, same sweeps as Fig 10. Paper shape: flat p99 in most settings;
// once remote transfer becomes the bottleneck (cost <= 0.1 ms or size >=
// 2 KB at high core counts) latency rises sharply but stays bounded thanks
// to back-pressure.
#include "harness/experiment.h"
#include "harness/single_executor.h"

using namespace elasticutor;
using namespace elasticutor::bench;

namespace {
const int kCores[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

MicroOptions Base() {
  MicroOptions options;
  options.zipf_skew = 0.2;
  options.shards_per_executor = 1024;
  options.generator_executors = 32;
  options.gen_overhead_ns = Micros(1);
  return options;
}
}  // namespace

int main(int argc, char** argv) {
  BenchInit(argc, argv);
  Banner("Figure 11", "single-executor scale-out: p99 latency vs cores");

  std::printf("\n(a) varying computation cost (tuple size 128 B), p99 ms\n");
  TablePrinter ta({"cores", "10ms", "1ms", "0.1ms", "0.01ms"});
  ta.PrintHeader();
  for (int cores : kCores) {
    std::vector<std::string> row{FmtInt(cores)};
    for (double cost_ms : {10.0, 1.0, 0.1, 0.01}) {
      MicroOptions options = Base();
      options.calc_cost_ns = MillisF(cost_ms);
      auto r = RunSingleExecutor(options, cores, Scaled(Seconds(3)),
                                 Scaled(Seconds(4)));
      row.push_back(Fmt(r.p99_latency_ms, 2));
    }
    ta.PrintRow(row);
  }

  std::printf("\n(b) varying tuple size (computation cost 1 ms), p99 ms\n");
  TablePrinter tb({"cores", "128B", "512B", "2KB", "8KB"});
  tb.PrintHeader();
  for (int cores : kCores) {
    std::vector<std::string> row{FmtInt(cores)};
    for (int bytes : {128, 512, 2048, 8192}) {
      MicroOptions options = Base();
      options.tuple_bytes = bytes;
      auto r = RunSingleExecutor(options, cores, Scaled(Seconds(3)),
                                 Scaled(Seconds(4)));
      row.push_back(Fmt(r.p99_latency_ms, 2));
    }
    tb.PrintRow(row);
  }
  std::printf("\npaper: latency bounded by back-pressure even where remote "
              "transfer is the bottleneck\n");
  return 0;
}
