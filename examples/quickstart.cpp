// Quickstart: build the Fig-5 micro topology, run it under Elasticutor on a
// simulated 8-node cluster, and print throughput/latency.
//
// Durations honor ELASTICUTOR_BENCH_SCALE so CI smoke runs stay short.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "elasticutor/elasticutor.h"
#include "harness/experiment.h"

using namespace elasticutor;

int main() {
  // 1. Describe the workload: 10K keys, Zipf 0.5, shuffled twice a minute.
  MicroOptions options;
  options.shuffles_per_minute = 2.0;
  options.calculator_executors = 8;   // y elastic executors.
  options.shards_per_executor = 64;   // z shards each.
  options.generator_executors = 8;
  auto workload = BuildMicroWorkload(options, /*seed=*/42);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 2. Configure the engine: Elasticutor paradigm on 8 nodes x 8 cores.
  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 8;
  config.cores_per_node = 8;

  Engine engine(workload->topology, config);
  Status st = engine.Setup();
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }
  workload->InstallDynamics(&engine);

  // 3. Run: warm up 5 simulated seconds, measure 30 (covers a key shuffle).
  engine.Start();
  engine.RunFor(bench::Scaled(Seconds(5)));
  engine.ResetMetricsAfterWarmup();
  engine.RunFor(bench::Scaled(Seconds(30)));

  // 4. Report.
  std::printf("Paradigm:        %s\n", ParadigmName(config.paradigm));
  std::printf("Cluster:         %d nodes x %d cores\n", config.num_nodes,
              config.cores_per_node);
  std::printf("Throughput:      %.0f tuples/s\n", engine.MeasuredThroughput());
  std::printf("Mean latency:    %.2f ms\n",
              engine.LatencyHistogram().mean() / 1e6);
  std::printf("p99 latency:     %.2f ms\n",
              static_cast<double>(engine.LatencyHistogram().P99()) / 1e6);
  std::printf("Key shuffles:    %lld\n",
              static_cast<long long>(workload->keys->shuffles_applied()));
  return 0;
}
