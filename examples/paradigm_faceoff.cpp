// Compares the three execution paradigms (Table 1) on the same dynamic
// workload: static, resource-centric (operator-level key repartitioning),
// and Elasticutor (executor-centric core reassignment).
//
//   ./build/examples/paradigm_faceoff [omega]
//
// omega = key shuffles per minute (default 2). Durations honor
// ELASTICUTOR_BENCH_SCALE so CI smoke runs stay short.
#include <cstdio>
#include <cstdlib>

#include "elasticutor/elasticutor.h"
#include "harness/experiment.h"

using namespace elasticutor;

int main(int argc, char** argv) {
  double omega = argc > 1 ? std::atof(argv[1]) : 2.0;
  std::printf("micro workload, omega = %.1f shuffles/min, 32 nodes x 8 "
              "cores\n\n", omega);
  std::printf("%-18s %12s %14s %12s %16s\n", "paradigm", "tuples/s",
              "mean lat (ms)", "p99 (ms)", "elasticity ops");

  for (Paradigm paradigm : {Paradigm::kStatic, Paradigm::kResourceCentric,
                            Paradigm::kElastic}) {
    MicroOptions options;
    options.shuffles_per_minute = omega;
    auto workload = BuildMicroWorkload(options, /*seed=*/42);
    if (!workload.ok()) return 1;

    EngineConfig config;
    config.paradigm = paradigm;
    Engine engine(workload->topology, config);
    if (!engine.Setup().ok()) return 1;
    workload->InstallDynamics(&engine);

    engine.Start();
    engine.RunFor(bench::Scaled(Seconds(10)));
    engine.ResetMetricsAfterWarmup();
    engine.RunFor(bench::Scaled(Seconds(30)));

    const EngineMetrics& m = *engine.metrics();
    std::printf("%-18s %12.0f %14.2f %12.2f %16zu\n", ParadigmName(paradigm),
                engine.MeasuredThroughput(), m.latency().mean() / 1e6,
                static_cast<double>(m.latency().P99()) / 1e6,
                m.elasticity_ops().size());
  }
  std::printf("\nThe executor-centric paradigm holds throughput and latency "
              "as dynamics rise;\nre-run with omega 8 or 16 to watch the "
              "resource-centric approach fall apart.\n");
  return 0;
}
