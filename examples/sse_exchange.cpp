// Runs the stock-exchange application of the paper's §5.4 (Fig 14): a
// synthetic SSE order stream feeds a matching-engine transactor whose
// transaction records fan out to six statistics operators and five
// event-detection operators — all running as elastic executors under the
// dynamic scheduler.
//
// Durations honor ELASTICUTOR_BENCH_SCALE so CI smoke runs stay short.
//
//   ./build/examples/sse_exchange
#include <cstdio>

#include "elasticutor/elasticutor.h"
#include "harness/experiment.h"

using namespace elasticutor;

int main() {
  SseOptions options;
  options.executors_per_operator = 8;
  options.trace.base_rate_per_sec = 50000.0;
  auto workload = BuildSseWorkload(options, /*seed=*/7);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 16;
  Engine engine(workload->topology, config);
  if (!engine.Setup().ok()) return 1;

  std::printf("SSE exchange on 16 nodes x 8 cores — %d operators, top "
              "stocks: ", workload->topology.num_operators());
  for (int stock : workload->trace->TopStocks(3)) std::printf("#%d ", stock);
  std::printf("\n\n%6s %14s %14s %14s %12s\n", "t(s)", "orders/s(in)",
              "completed/s", "mean lat ms", "core moves");

  engine.Start();
  int64_t last_sinks = 0;
  const double step_s = ToSeconds(bench::Scaled(Seconds(10)));
  for (int t = 10; t <= 120; t += 10) {
    engine.RunUntil(bench::Scaled(Seconds(t)));
    int64_t sinks = engine.metrics()->sink_count();
    double lat_ms = engine.metrics()->latency().mean() / 1e6;
    std::printf("%6d %14.0f %14.0f %14.2f %12lld\n", t,
                workload->trace->AggregateRate(bench::Scaled(Seconds(t))),
                static_cast<double>(sinks - last_sinks) / step_s, lat_ms,
                static_cast<long long>(
                    engine.scheduler()->core_moves_issued()));
    last_sinks = sinks;
  }

  std::printf("\nscheduler: %lld cycles, %.2f ms average scheduling time\n",
              static_cast<long long>(engine.scheduler()->cycles()),
              engine.scheduler()->avg_scheduling_wall_ms());
  std::printf("state migrated: %.1f MB; remote-task traffic: %.1f MB\n",
              engine.net()->inter_node_bytes(Purpose::kStateMigration) / 1e6,
              engine.net()->inter_node_bytes(Purpose::kRemoteTask) / 1e6);
  return 0;
}
