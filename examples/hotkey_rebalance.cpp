// Demonstrates rapid elasticity against a hot-key storm: a uniform key
// distribution suddenly collapses onto a small hot set (one executor's key
// subspace), and the dynamic scheduler shifts CPU cores to the overloaded
// elastic executor within a couple of scheduling intervals — no key
// repartitioning, no global synchronization.
//
// Durations honor ELASTICUTOR_BENCH_SCALE so CI smoke runs stay short.
//
//   ./build/examples/hotkey_rebalance
#include <cstdio>
#include <memory>

#include "elasticutor/elasticutor.h"
#include "harness/experiment.h"

using namespace elasticutor;

int main() {
  const int kKeys = 8192;
  // Shared switch the source factory reads: when hot, 60% of tuples hit a
  // 32-key hot set (each hot key stays below one core's serial capacity, so
  // the system can recover once cores move).
  auto hot = std::make_shared<bool>(false);

  TopologyBuilder builder;
  OperatorSpec source;
  source.name = "events";
  source.is_source = true;
  source.num_executors = 16;
  source.shards_per_executor = 1;
  source.source.mode = SourceSpec::Mode::kTrace;
  source.source.rate_fn = [](SimTime) { return 40000.0; };
  source.source.factory = [hot](Rng* rng, SimTime) {
    Tuple t;
    bool spike = *hot && rng->NextBool(0.6);
    t.key = spike ? rng->NextBounded(32)
                  : rng->NextBounded(kKeys);
    t.size_bytes = 128;
    return t;
  };
  OperatorId src = builder.AddOperator(std::move(source));

  OperatorSpec worker;
  worker.name = "worker";
  worker.num_executors = 8;
  worker.shards_per_executor = 64;
  worker.mean_cost_ns = Millis(1);
  worker.selectivity = 0.0;
  OperatorId work = builder.AddOperator(std::move(worker));
  ELASTICUTOR_CHECK(builder.Connect(src, work).ok());
  Topology topology = std::move(builder.Build()).value();

  EngineConfig config;
  config.paradigm = Paradigm::kElastic;
  config.num_nodes = 8;
  Engine engine(topology, config);
  ELASTICUTOR_CHECK(engine.Setup().ok());
  engine.Start();

  // Flip the distribution at t = 20 s, back at t = 45 s.
  engine.exec()->At(bench::Scaled(Seconds(20)), [hot]() { *hot = true; });
  engine.exec()->At(bench::Scaled(Seconds(45)), [hot]() { *hot = false; });

  std::printf("hot-key storm between t=20s and t=45s (60%% of traffic on 32 "
              "of %d keys)\n\n", kKeys);
  std::printf("%6s %12s %12s   cores per executor\n", "t(s)", "done/s",
              "lat ms");
  int64_t last = 0;
  const double step_s = ToSeconds(bench::Scaled(Seconds(5)));
  for (int t = 5; t <= 60; t += 5) {
    engine.RunUntil(bench::Scaled(Seconds(t)));
    int64_t sinks = engine.metrics()->sink_count();
    std::printf("%6d %12.0f %12.2f   ", t,
                static_cast<double>(sinks - last) / step_s,
                engine.metrics()->latency().mean() / 1e6);
    last = sinks;
    for (const auto& ex : engine.elastic_executors(work)) {
      std::printf("%d ", ex->num_tasks());
    }
    std::printf("\n");
  }
  std::printf("\nwatch the hot executor's core count jump after t=20s and "
              "relax after t=45s —\nthat is executor-centric elasticity: "
              "cores move, keys stay.\n");
  return 0;
}
